"""Render every reproducible paper figure as SVG.

Synthesizes a trace, runs the per-figure analyses, and writes the
figures (CCDFs on log-log axes, time-of-day curves, popularity pmfs with
fitted Zipf lines) into ./figures/ -- the visual counterpart of the
numeric EXPERIMENTS.md record.

Run:  python examples/render_figures.py [outdir]
"""

import sys
import time

from repro.experiments import ExperimentContext
from repro.synthesis import SynthesisConfig
from repro.viz import render_all


def main() -> None:
    outdir = sys.argv[1] if len(sys.argv) > 1 else "figures"
    start = time.time()
    ctx = ExperimentContext(SynthesisConfig(days=1.0, mean_arrival_rate=0.3, seed=42))
    print("synthesizing trace and rendering figures ...")
    paths = render_all(ctx, outdir)
    for path in paths:
        print(f"  {path}")
    print(f"{len(paths)} figures in {time.time() - start:.1f}s")


if __name__ == "__main__":
    main()
