"""Quickstart: generate a synthetic P2P query workload (Figure 12).

The paper's deliverable is a recipe for generating realistic synthetic
workloads for evaluating new P2P system designs.  This example generates
an hour of workload from 200 steady-state peers using the paper's
published model and prints the headline statistics, so you can see the
characterized behaviour (passive majority, regional heterogeneity,
Zipf-like query popularity) fall out of the generator.

Run:  python examples/quickstart.py
"""

from collections import Counter

import numpy as np

from repro.core import Region, SyntheticWorkloadGenerator
from repro.core.generator_columnar import WORKLOAD_REGION_CODE
from repro.core.popularity import CLASS_ORDER

def main() -> None:
    generator = SyntheticWorkloadGenerator(n_peers=200, seed=2004)
    # The columnar workload is a struct-of-arrays -- statistics below are
    # plain NumPy reductions, with no per-session objects materialized.
    workload = generator.generate_columnar(duration_seconds=3600.0)
    n = workload.n_sessions

    print(f"generated {n} sessions from 200 steady-state peers (1 hour)")

    n_passive = int(workload.session_passive.sum())
    print(f"\npassive sessions: {n_passive} "
          f"({100 * n_passive / n:.0f}% -- the paper reports 75-90%)")

    print("\nper-region behaviour:")
    counts = workload.query_counts()
    for region in (Region.NORTH_AMERICA, Region.EUROPE, Region.ASIA):
        mine = workload.session_region == WORKLOAD_REGION_CODE[region]
        active = mine & ~workload.session_passive
        mean_q = counts[active].mean() if active.any() else 0.0
        print(f"  {region.short}: {int(mine.sum()):4d} sessions, "
              f"{int(active.sum()):3d} active, {mean_q:.1f} queries/active session")

    queries = Counter(workload.query_keywords.tolist())
    print(f"\ndistinct queries: {len(queries)}; total queries: {workload.n_queries}")
    print("top 5 queries:")
    for keywords, count in queries.most_common(5):
        print(f"  {count:3d}x {keywords}")

    classes = Counter(
        CLASS_ORDER[code].value for code in workload.query_class.tolist()
    )
    print("\nquery classes (97% should come from the peer's own region):")
    for cls, count in classes.most_common():
        print(f"  {cls}: {count}")


if __name__ == "__main__":
    main()
