"""Quickstart: generate a synthetic P2P query workload (Figure 12).

The paper's deliverable is a recipe for generating realistic synthetic
workloads for evaluating new P2P system designs.  This example generates
an hour of workload from 200 steady-state peers using the paper's
published model and prints the headline statistics, so you can see the
characterized behaviour (passive majority, regional heterogeneity,
Zipf-like query popularity) fall out of the generator.

Run:  python examples/quickstart.py
"""

from collections import Counter

import numpy as np

from repro.core import Region, SyntheticWorkloadGenerator

def main() -> None:
    generator = SyntheticWorkloadGenerator(n_peers=200, seed=2004)
    sessions = generator.generate(duration_seconds=3600.0)

    print(f"generated {len(sessions)} sessions from 200 steady-state peers (1 hour)")

    passive = [s for s in sessions if s.passive]
    print(f"\npassive sessions: {len(passive)} "
          f"({100 * len(passive) / len(sessions):.0f}% -- the paper reports 75-90%)")

    print("\nper-region behaviour:")
    for region in (Region.NORTH_AMERICA, Region.EUROPE, Region.ASIA):
        mine = [s for s in sessions if s.region is region]
        active = [s for s in mine if not s.passive]
        mean_q = np.mean([s.query_count for s in active]) if active else 0.0
        print(f"  {region.short}: {len(mine):4d} sessions, "
              f"{len(active):3d} active, {mean_q:.1f} queries/active session")

    queries = Counter(q.keywords for s in sessions for q in s.queries)
    print(f"\ndistinct queries: {len(queries)}; total queries: {sum(queries.values())}")
    print("top 5 queries:")
    for keywords, count in queries.most_common(5):
        print(f"  {count:3d}x {keywords}")

    classes = Counter(q.query_class for s in sessions for q in s.queries)
    print("\nquery classes (97% should come from the peer's own region):")
    for cls, count in classes.most_common():
        print(f"  {cls}: {count}")


if __name__ == "__main__":
    main()
