"""Full reproduction in one script: synthesize, filter, characterize.

Walks the complete pipeline of the paper --

1. synthesize a measurement trace (the substitute for 40 days of live
   Gnutella measurement),
2. apply filter rules 1-5 (Section 3.3) and print the Table 2 accounting,
3. run every per-figure/table experiment and print paper-vs-measured rows.

Run:  python examples/full_reproduction.py [--days DAYS] [--rate RATE]
(the default quarter-day trace finishes in well under a minute; use
--days 2 --rate 0.35 for the scale the benchmarks use.)
"""

from __future__ import annotations

import argparse
import time

from repro.experiments import ALL_EXPERIMENTS, ExperimentContext, run_experiment
from repro.synthesis import SynthesisConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--days", type=float, default=0.5)
    parser.add_argument("--rate", type=float, default=0.3)
    parser.add_argument("--seed", type=int, default=20040315)
    args = parser.parse_args()

    config = SynthesisConfig(days=args.days, mean_arrival_rate=args.rate, seed=args.seed)
    ctx = ExperimentContext(config)

    start = time.time()
    print(f"synthesizing {args.days:g} days at {args.rate:g} connections/second ...")
    trace = ctx.trace
    print(f"  {trace.n_connections} connections, {trace.hop1_query_count()} hop-1 "
          f"queries ({time.time() - start:.1f}s)\n")

    for experiment_id in ALL_EXPERIMENTS:
        print(run_experiment(experiment_id, ctx).render())
        print()
    print(f"total {time.time() - start:.1f}s")


if __name__ == "__main__":
    main()
