"""Evaluating search designs with the synthetic workload.

The paper motivates its characterization with exactly this use case:
"Chawathe et al. use simulations of client query behavior to evaluate a
new overlay network architecture and a new biased random walk search
protocol."  This example drives the Gnutella overlay substrate with
queries drawn from the synthetic workload generator and compares three
flooding configurations on messages-per-query and hit rate:

* TTL 7 flooding (classic Gnutella),
* TTL 3 flooding (bounded horizon),
* TTL 7 flooding with 3x content replication (Cohen & Shenker's remedy).

Run:  python examples/evaluate_search_designs.py
"""

from __future__ import annotations

import numpy as np

from repro.core import SyntheticWorkloadGenerator
from repro.core.popularity import QueryClassId, QueryUniverse
from repro.gnutella import OverlayNetwork

N_QUERIES = 120


def build_network(seed: int, replication: float) -> tuple:
    """An overlay whose libraries hold entries from the query universe."""
    universe = QueryUniverse(seed=seed, scale=0.2)
    catalog = list(universe.daily_ranking(0, QueryClassId.NA_ONLY))
    net = OverlayNetwork(n_ultrapeers=50, n_leaves=150, ultrapeer_degree=5, seed=seed)
    net.seed_libraries(catalog, mean_files=8.0 * replication)
    return net, universe


def run_config(label: str, ttl: int, replication: float, seed: int = 31) -> dict:
    net, universe = build_network(seed, replication)
    generator = SyntheticWorkloadGenerator(n_peers=100, seed=seed, universe=universe)
    # The columnar workload hands back the query strings as one array --
    # no per-session object materialization just to harvest keywords.
    workload = generator.generate_columnar(duration_seconds=7200.0)
    queries = workload.query_keywords[:N_QUERIES].tolist()
    origins = [i for i, n in net.nodes.items() if n.is_ultrapeer]
    messages, hits = [], 0
    for k, keywords in enumerate(queries):
        outcome = net.flood_query(origins[k % len(origins)], keywords, ttl=ttl)
        messages.append(outcome.messages_sent)
        hits += 1 if outcome.hits > 0 else 0
    return {
        "label": label,
        "mean_messages": float(np.mean(messages)),
        "hit_rate": hits / len(queries),
    }


def main() -> None:
    print(f"driving {N_QUERIES} workload queries through each search design\n")
    rows = [
        run_config("flood TTL=7", ttl=7, replication=1.0),
        run_config("flood TTL=3", ttl=3, replication=1.0),
        run_config("flood TTL=7 + 3x replication", ttl=7, replication=3.0),
    ]
    print(f"{'design':32s} {'msgs/query':>12s} {'hit rate':>10s}")
    for row in rows:
        print(f"{row['label']:32s} {row['mean_messages']:12.1f} {row['hit_rate']:10.2f}")
    print(
        "\ntakeaway: a realistic (filtered, regionalized, Zipf-light) workload "
        "matters -- popularity skew is mild after removing automated re-queries, "
        "so replication helps hit rate more than deeper flooding does."
    )


if __name__ == "__main__":
    main()
