"""Measurement inside a live overlay: validating the methodology.

The paper's methodology rests on one mechanical property of the Gnutella
protocol (Section 3.2): because a client sends every user query to *all*
of its direct neighbours, a passive ultrapeer receives every query of a
directly connected peer with hop count exactly 1 -- which is what lets
the paper attribute queries to sessions without any identifier in the
QUERY message.

This example runs the measurement node as a real node in the
event-driven overlay simulator: churning peers connect, flood their
(client-expanded) query streams as real messages, and leave.  It then
verifies the attribution property held for every single query and prints
the hop-count histogram of everything the monitor saw.

Run:  python examples/live_measurement.py
"""

from repro.gnutella.livesim import LiveOverlayMeasurement


def main() -> None:
    sim = LiveOverlayMeasurement(seed=2004)
    print("running 1 simulated hour of churn against the in-overlay monitor ...")
    sessions = sim.run(duration_seconds=3600.0, mean_arrival_gap=15.0)
    stats = sim.stats

    print(f"\npeers connected to the monitor: {stats.peers_connected}")
    print(f"sessions recorded:              {len(sessions)}")
    print(f"queries sent by those peers:    {stats.stream_queries_sent}")
    print(f"observed at hop count 1:        {stats.hop1_queries_observed}")
    print(f"relayed queries (hops >= 2):    {stats.relayed_queries_observed}")

    print("\nhop-count histogram at the monitor:")
    for hops in sorted(stats.hop_histogram):
        count = stats.hop_histogram[hops]
        print(f"  hops={hops}: {'#' * min(count // 5 + 1, 60)} {count}")

    ok = stats.hop1_queries_observed == stats.stream_queries_sent
    print(
        f"\nattribution property (every direct peer query seen at hop 1): "
        f"{'HOLDS' if ok else 'VIOLATED'}"
    )
    active = [s for s in sessions if not s.is_passive]
    print(f"sessions with queries: {len(active)}; "
          f"example: {active[0].query_count if active else 0} queries, "
          f"duration {active[0].duration:.0f}s" if active else "")


if __name__ == "__main__":
    main()
