"""Query-result caching under user vs. automated workloads.

Section 4.6 closes with a sharp systems implication: "as a consequence of
the small Zipf parameters, caching of responses will be more effective in
systems that use aggressive automated re-query features than in systems
that only issue queries on the users action."  (Sripanidkulchai's famous
3.7x traffic reduction was measured on an *unfiltered* query stream.)

This example measures an LRU result-cache hit rate at an ultrapeer fed by
two versions of the same synthesized trace: the raw stream (automated
re-queries included) and the filtered user stream (rules 1-2 applied).

Run:  python examples/query_cache_study.py
"""

from __future__ import annotations

from repro.analysis.caching import cache_hit_rates, query_stream
from repro.filtering import apply_filters
from repro.synthesis import synthesize_trace

CACHE_SIZES = (8, 64, 512)


def main() -> None:
    print("synthesizing a quarter-day trace ...")
    trace = synthesize_trace(days=0.25, mean_arrival_rate=0.35, seed=404)
    filtered = apply_filters(trace.sessions)
    raw = query_stream(trace.sessions)
    user = query_stream(filtered.sessions)
    print(f"raw stream: {len(raw)} queries; user stream: {len(user)} queries\n")

    print(f"{'cache size':>10s} {'raw hit rate':>14s} {'user hit rate':>14s}")
    for row in cache_hit_rates(trace.sessions, filtered.sessions, capacities=CACHE_SIZES):
        print(f"{row['capacity']:>10.0f} {row['raw_hit_rate']:>14.3f} "
              f"{row['user_hit_rate']:>14.3f}")

    print(
        "\ntakeaway: the automated re-query traffic is exactly the part a "
        "cache absorbs; on the true user workload the cache wins far less, "
        "as the paper predicts from the small Zipf parameters."
    )


if __name__ == "__main__":
    main()
