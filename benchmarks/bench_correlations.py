"""Benchmark C1: the paper's headline correlation structure."""

from repro.experiments.exp_correlations import run_correlations

from conftest import run_and_render


def test_correlations(ctx, benchmark):
    result = run_and_render(benchmark, run_correlations, ctx)
    assert result.rows
