"""Benchmark TA3: Table A.3: Weibull+lognormal model of time until first query.

Regenerates the paper artifact from the shared bench-scale synthesized
trace and prints paper-vs-measured rows; the timed section is the
analysis that produces the artifact (synthesis is shared and untimed).
"""

from repro.experiments.exp_fits import run_tableA3

from conftest import run_and_render


def test_tableA3(ctx, benchmark):
    result = run_and_render(benchmark, run_tableA3, ctx)
    assert result.rows
