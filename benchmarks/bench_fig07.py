"""Benchmark F7: Figure 7: time until first query.

Regenerates the paper artifact from the shared bench-scale synthesized
trace and prints paper-vs-measured rows; the timed section is the
analysis that produces the artifact (synthesis is shared and untimed).
"""

from repro.experiments.exp_active import run_fig7

from conftest import run_and_render


def test_fig07(ctx, benchmark):
    result = run_and_render(benchmark, run_fig7, ctx)
    assert result.rows
