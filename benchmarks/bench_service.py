"""Benchmark S1: the workload streaming service under fan-out.

Measures the ``repro.service`` event-stream server end to end over
loopback TCP: strong scaling (one fixed stream, a growing subscriber
cohort, with end-to-end latency percentiles from STAMP probes), weak
scaling (offered load grows with the generator worker pool), and the
byte-reproducibility contract (the deterministic frame concatenation is
identical across runs and worker counts).  Emits ``BENCH_service.json``
at the repo root -- the acceptance record for the >= 500k aggregate
events/s floor at the largest cohort.

Scale knobs (environment): ``SERVICE_CLIENTS`` (default ``1,2,4,8``),
``SERVICE_PEERS`` (default ``2000``), ``SERVICE_FRAMES`` (default
``48``).
"""

import os
from pathlib import Path

from repro.service.bench import measure_service
from repro.synthesis.bench import write_bench_report

SERVICE_CLIENTS = tuple(
    int(n) for n in os.environ.get("SERVICE_CLIENTS", "1,2,4,8").split(",")
)
SERVICE_PEERS = int(os.environ.get("SERVICE_PEERS", "2000"))
SERVICE_FRAMES = int(os.environ.get("SERVICE_FRAMES", "48"))
SERVICE_FLOOR_EVENTS_PER_S = float(
    os.environ.get("SERVICE_FLOOR_EVENTS_PER_S", "500000")
)


def test_emit_service_report():
    """Full service measurement + BENCH_service.json emission."""
    report = measure_service(
        clients=SERVICE_CLIENTS, n_peers=SERVICE_PEERS, n_frames=SERVICE_FRAMES
    )
    path = write_bench_report(
        report, Path(__file__).resolve().parent.parent / "BENCH_service.json"
    )
    print(f"\n  report written to {path}")
    for label, run in report["strong_scaling"].items():
        latency = run["latency"] or {}
        print(f"  {label}: {run['events_per_second']:.0f} events/s aggregate, "
              f"{run['mib_per_second']} MiB/s, "
              f"p99 {latency.get('p99_ms', 'n/a')} ms")
    for label, run in report["weak_scaling"].items():
        print(f"  {label}: {run['n_peers']} peers -> "
              f"{run['events_per_second']:.0f} events/s aggregate")
    assert report["rerun_identical"] is True
    assert report["workers_identical"] is True
    for run in report["strong_scaling"].values():
        assert run["complete_clients"] == run["clients"]
    sustained = report["sustained"]
    assert sustained["clients"] == max(SERVICE_CLIENTS)
    assert sustained["events_per_second"] >= SERVICE_FLOOR_EVENTS_PER_S, sustained
