"""Benchmark F1: Figure 1: geographic mix of one-hop vs. all peers by hour.

Regenerates the paper artifact from the shared bench-scale synthesized
trace and prints paper-vs-measured rows; the timed section is the
analysis that produces the artifact (synthesis is shared and untimed).
"""

from repro.experiments.exp_geography import run_fig1

from conftest import run_and_render


def test_fig01(ctx, benchmark):
    result = run_and_render(benchmark, run_fig1, ctx)
    assert result.rows
