"""Benchmark F5: Figure 5: passive session duration CCDFs (region / key period).

Regenerates the paper artifact from the shared bench-scale synthesized
trace and prints paper-vs-measured rows; the timed section is the
analysis that produces the artifact (synthesis is shared and untimed).
"""

from repro.experiments.exp_passive import run_fig5

from conftest import run_and_render


def test_fig05(ctx, benchmark):
    result = run_and_render(benchmark, run_fig5, ctx)
    assert result.rows
