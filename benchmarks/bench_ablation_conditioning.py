"""Ablation: how much the conditional structure of the model matters.

The paper's central modeling claim is that the workload must be
conditioned on geography and peak/non-peak periods ("the previous
workload measures ... include aggregate measures that obscure
heterogeneous behavior").  This bench compares the per-region anchors of
a fully conditioned generated workload against an 'aggregate' workload
that uses North American parameters for everyone -- quantifying the
error an unconditioned model makes.
"""

from __future__ import annotations

import numpy as np

from repro.core import Region, SyntheticWorkloadGenerator, WorkloadModel
from repro.core.parameters import (
    interarrival_model,
    last_query_model,
    passive_duration_model,
    queries_per_session_model,
)

from conftest import run_and_render  # noqa: F401


def _aggregate_model() -> WorkloadModel:
    """A model that ignores region (everyone behaves North American)."""
    paper = WorkloadModel.paper()
    na = Region.NORTH_AMERICA
    return WorkloadModel(
        geographic_mix=paper.geographic_mix,
        passive_fraction=lambda region, hour: paper.passive_fraction(na, hour),
        passive_duration=lambda region, peak: passive_duration_model(na, peak),
        queries_per_session=lambda region: queries_per_session_model(na),
        first_query=lambda region, peak, n: paper.first_query(na, peak, n),
        interarrival=lambda region, peak, n: interarrival_model(na, peak, n),
        last_query=lambda region, peak, n: last_query_model(na, peak, n),
        name="aggregate-na",
    )


def _eu_median_queries(sessions):
    counts = [s.query_count for s in sessions if not s.passive and s.region is Region.EUROPE]
    return float(np.median(counts)) if counts else 0.0


def test_conditioning_ablation(ctx, benchmark):
    def generate_both():
        conditioned = SyntheticWorkloadGenerator(n_peers=200, seed=8).generate(43200.0)
        aggregate = SyntheticWorkloadGenerator(
            model=_aggregate_model(), n_peers=200, seed=8
        ).generate(43200.0)
        return conditioned, aggregate

    conditioned, aggregate = benchmark.pedantic(generate_both, rounds=1, iterations=1)
    cond_eu = _eu_median_queries(conditioned)
    aggr_eu = _eu_median_queries(aggregate)
    print()
    print("== Ablation: regional conditioning of the workload model ==")
    print(f"  EU median queries/active session: conditioned {cond_eu:.1f} vs "
          f"aggregate-NA model {aggr_eu:.1f}")
    asia_cond = [s.query_count for s in conditioned if not s.passive and s.region is Region.ASIA]
    asia_aggr = [s.query_count for s in aggregate if not s.passive and s.region is Region.ASIA]
    print(f"  AS mean queries/active session: conditioned {np.mean(asia_cond):.2f} vs "
          f"aggregate {np.mean(asia_aggr):.2f}")
    print("  paper: Europe issues significantly more and Asia significantly fewer "
          "queries than North America -- an aggregate model erases both")
    assert cond_eu >= aggr_eu
    assert np.mean(asia_cond) < np.mean(asia_aggr)
