"""Benchmark TA4: Table A.4: lognormal+Pareto model of query interarrival time.

Regenerates the paper artifact from the shared bench-scale synthesized
trace and prints paper-vs-measured rows; the timed section is the
analysis that produces the artifact (synthesis is shared and untimed).
"""

from repro.experiments.exp_fits import run_tableA4

from conftest import run_and_render


def test_tableA4(ctx, benchmark):
    result = run_and_render(benchmark, run_tableA4, ctx)
    assert result.rows
