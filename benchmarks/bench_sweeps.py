"""Sensitivity sweeps over the calibrated knobs (ablation evidence).

Regenerates the DESIGN.md calibration arguments: the hot-set persistence
value is the one that lands the Figure 10 drift anchor; the client
re-query intervals land the Table 2 rule-2 fraction; the distributions
are scale-invariant in the synthesis rate.
"""

from __future__ import annotations

from repro.experiments.sweeps import (
    sweep_arrival_rate,
    sweep_persistence,
    sweep_requery_interval,
)

from conftest import run_and_render  # noqa: F401


def test_sweep_persistence(benchmark):
    rows = benchmark.pedantic(sweep_persistence, rounds=1, iterations=1)
    print("\n  rho   mean top10 retained   frac days <= 4")
    for row in rows:
        print(f"  {row['rho']:.2f}  {row['mean_retained']:19.2f}  {row['frac_days_le4']:15.2f}")
    print("  paper anchor: ~0.8 of days retain <= 4 (default rho = 0.55)")
    # Retention must increase monotonically with persistence.
    retained = [row["mean_retained"] for row in rows]
    assert retained == sorted(retained)


def test_sweep_requery_interval(benchmark):
    rows = benchmark.pedantic(sweep_requery_interval, rounds=1, iterations=1)
    print("\n  interval scale   rule-2 fraction (paper 0.635)")
    for row in rows:
        print(f"  {row['interval_scale']:14.1f}   {row['rule2_fraction']:.3f}")
    fractions = [row["rule2_fraction"] for row in rows]
    assert fractions == sorted(fractions, reverse=True)


def test_sweep_arrival_rate(benchmark):
    rows = benchmark.pedantic(sweep_arrival_rate, rounds=1, iterations=1)
    print("\n  rate   sessions   passive   EU P[>=5 queries]")
    for row in rows:
        print(f"  {row['rate']:.2f}  {row['sessions']:9d}   {row['passive_fraction']:.3f}"
              f"   {row['eu_p_ge5_queries']:.3f}")
    passives = [row["passive_fraction"] for row in rows]
    assert max(passives) - min(passives) < 0.05  # scale invariance
