"""Benchmark F4: Figure 4: fraction of connected peers that are passive.

Regenerates the paper artifact from the shared bench-scale synthesized
trace and prints paper-vs-measured rows; the timed section is the
analysis that produces the artifact (synthesis is shared and untimed).
"""

from repro.experiments.exp_passive import run_fig4

from conftest import run_and_render


def test_fig04(ctx, benchmark):
    result = run_and_render(benchmark, run_fig4, ctx)
    assert result.rows
