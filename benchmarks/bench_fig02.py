"""Benchmark F2: Figure 2: shared-files distribution of one-hop vs. all peers.

Regenerates the paper artifact from the shared bench-scale synthesized
trace and prints paper-vs-measured rows; the timed section is the
analysis that produces the artifact (synthesis is shared and untimed).
"""

from repro.experiments.exp_geography import run_fig2

from conftest import run_and_render


def test_fig02(ctx, benchmark):
    result = run_and_render(benchmark, run_fig2, ctx)
    assert result.rows
