"""Benchmark FA1: Figure A.1: goodness of fit of the example models.

Regenerates the paper artifact from the shared bench-scale synthesized
trace and prints paper-vs-measured rows; the timed section is the
analysis that produces the artifact (synthesis is shared and untimed).
"""

from repro.experiments.exp_fits import run_figA1

from conftest import run_and_render


def test_figA1(ctx, benchmark):
    result = run_and_render(benchmark, run_figA1, ctx)
    assert result.rows
