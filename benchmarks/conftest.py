"""Shared benchmark fixtures.

One bench-scale trace is synthesized per session and shared by every
per-figure benchmark; each benchmark times the analysis step that
regenerates its table/figure and prints the paper-vs-measured rows.
"""

from __future__ import annotations

import pytest

from repro.core import host_block
from repro.experiments import ExperimentContext
from repro.synthesis import SynthesisConfig


def pytest_report_header(config):
    """Stamp the same host block the JSON bench reports carry."""
    block = host_block()
    return "bench host: " + ", ".join(f"{k}={v}" for k, v in block.items())

#: Bench scale: 2 days at 0.35 conn/s gives ~60k connections -- large
#: enough for stable distributions, synthesized once in ~20 s.
BENCH_CONFIG = SynthesisConfig(days=2.0, mean_arrival_rate=0.35, seed=20040315)


@pytest.fixture(scope="session")
def ctx():
    context = ExperimentContext(BENCH_CONFIG)
    # Materialize the shared trace and filtered views outside any timer.
    context.trace
    context.filtered
    context.views
    return context


def run_and_render(benchmark, runner, context):
    """Time one full regeneration of the artifact and print its rows."""
    result = benchmark.pedantic(runner, args=(context,), rounds=1, iterations=1)
    print()
    print(result.render())
    return result
