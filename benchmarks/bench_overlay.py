"""Overlay-scale gate: the flooding simulator past toy populations.

This is the acceptance benchmark for the batched columnar overlay
engine (:mod:`repro.gnutella.columnar_overlay`): replay one Fig. 12
workload through both engine backends at the largest event-feasible
population, prove every observable identical (the equivalence battery,
including byte-identity across ``jobs``), require the columnar engine
to clear the messages-per-second speedup floor, then run the columnar
engine alone at a population the event engine cannot touch -- all
inside the same laptop-class RSS budget as the paper-scale streaming
gate.

``OVERLAY_*`` environment knobs override the measured scales (the CI
smoke gate shrinks them; unset means the full committed run: a
50k+-peer hour of churn).  The run emits ``BENCH_overlay.json`` at the
repo root.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.analysis.paper_scale import DEFAULT_RSS_BUDGET_MB
from repro.gnutella.overlay_bench import measure_overlay
from repro.synthesis.bench import write_bench_report

OVERLAY_EVENT_PEERS = int(os.environ.get("OVERLAY_EVENT_PEERS", "600"))
OVERLAY_EVENT_SECONDS = float(os.environ.get("OVERLAY_EVENT_SECONDS", "1800"))
OVERLAY_SCALE_PEERS = int(os.environ.get("OVERLAY_SCALE_PEERS", "10000"))
OVERLAY_SCALE_SECONDS = float(os.environ.get("OVERLAY_SCALE_SECONDS", "3600"))
OVERLAY_JOBS = int(os.environ.get("OVERLAY_JOBS", "1"))
OVERLAY_MIN_SPEEDUP = float(os.environ.get("OVERLAY_MIN_SPEEDUP", "20"))
OVERLAY_MIN_PEERS = int(os.environ.get("OVERLAY_MIN_PEERS", "50000"))


def test_emit_overlay_report():
    """Full overlay measurement + BENCH_overlay.json emission."""
    report = measure_overlay(
        event_peers=OVERLAY_EVENT_PEERS,
        event_run_seconds=OVERLAY_EVENT_SECONDS,
        scale_peers=OVERLAY_SCALE_PEERS,
        scale_run_seconds=OVERLAY_SCALE_SECONDS,
        jobs=OVERLAY_JOBS,
    )
    path = write_bench_report(
        report, Path(__file__).resolve().parent.parent / "BENCH_overlay.json"
    )
    event = report["runs"]["event_small"]
    small = report["runs"]["columnar_small"]
    big = report["runs"]["columnar_scale"]
    print(f"\n  report written to {path}")
    print(f"  event:    {event['peers_simulated']} peers, "
          f"{event['messages_total']} messages in {event['seconds']} s")
    print(f"  columnar: same workload in {small['seconds']} s "
          f"({report['speedup']['speedup']}x messages/s)")
    print(f"  at scale: {big['peers_simulated']} peers, "
          f"{big['messages_total']} messages in {big['seconds']} s "
          f"({big['messages_per_second']} msg/s)")
    print(f"  peak RSS {report['budget']['peak_rss_mb']} MiB "
          f"(budget {report['budget']['rss_budget_mb']} MiB)")
    for name, ok in report["equivalence"]["checks"].items():
        print(f"  equivalence {name}: {'identical' if ok else 'MISMATCH'}")
    print(f"  jobs byte-identity: {report['equivalence']['jobs_identical']}")
    assert report["equivalence"]["all_identical"] is True
    assert report["equivalence"]["jobs_identical"] is True
    speedup = report["speedup"]["speedup"]
    assert speedup >= OVERLAY_MIN_SPEEDUP, (
        f"columnar speedup {speedup}x below the {OVERLAY_MIN_SPEEDUP}x floor"
    )
    assert big["peers_simulated"] >= OVERLAY_MIN_PEERS, (
        f"scale run simulated {big['peers_simulated']} peers, "
        f"need >= {OVERLAY_MIN_PEERS}"
    )
    assert report["budget"]["within_budget"] is True
    assert report["budget"]["rss_budget_mb"] == DEFAULT_RSS_BUDGET_MB
