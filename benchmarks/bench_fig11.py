"""Benchmark F11: Figure 11: per-day query popularity Zipf fits.

Regenerates the paper artifact from the shared bench-scale synthesized
trace and prints paper-vs-measured rows; the timed section is the
analysis that produces the artifact (synthesis is shared and untimed).
"""

from repro.experiments.exp_popularity import run_fig11

from conftest import run_and_render


def test_fig11(ctx, benchmark):
    result = run_and_render(benchmark, run_fig11, ctx)
    assert result.rows
