"""Analysis-path performance benchmarks: loads, filtering, fan-out.

These time the steps downstream of synthesis (not a paper artifact):

* warm trace loads -- archival JSONL parse vs. columnar ``.npz`` read,
* the rules 1-5 filter plus the analysis measures on its output --
  record loop vs. vectorized columnar (which must reproduce the Table 2
  accounting exactly to count at all),
* the ``run_all`` experiment fan-out at 1 vs. N worker processes.

``ANALYSIS_DAYS`` scales the measured window (default 0.5) and
``ANALYSIS_JOBS`` the fan-out worker count (default 4).  The run emits
``BENCH_analysis.json`` at the repo root; the report records the host
core count, since fan-out scaling on a single-core machine only shows
the overhead floor, not the speedup.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.analysis import active_sessions
from repro.analysis.bench import measure_analysis
from repro.analysis.popularity import daily_region_counts
from repro.filtering import apply_filters, apply_filters_columnar
from repro.measurement import ColumnarTrace
from repro.synthesis import SynthesisConfig, TraceCache, load_or_synthesize
from repro.synthesis.bench import write_bench_report

from conftest import run_and_render  # noqa: F401

ANALYSIS_DAYS = float(os.environ.get("ANALYSIS_DAYS", "0.5"))
ANALYSIS_JOBS = int(os.environ.get("ANALYSIS_JOBS", "4"))


def _config():
    return SynthesisConfig(days=ANALYSIS_DAYS, mean_arrival_rate=0.35, seed=20040315)


def _warm_cache(tmp_path, format):
    cache = TraceCache(tmp_path / format, format=format)
    trace = load_or_synthesize(_config(), cache=cache)
    return cache, trace


def test_trace_load_jsonl(benchmark, tmp_path):
    cache, _ = _warm_cache(tmp_path, "jsonl")

    trace = benchmark.pedantic(lambda: cache.load(_config()), rounds=3, iterations=1)
    print(f"\n  parsed {trace.n_connections} connections from warm JSONL per round")
    assert trace.n_connections > 100


def test_trace_load_npz_columnar(benchmark, tmp_path):
    cache, _ = _warm_cache(tmp_path, "npz")

    columnar = benchmark.pedantic(
        lambda: cache.load_columnar(_config()), rounds=3, iterations=1
    )
    print(f"\n  read {columnar.n_sessions} sessions, {columnar.n_queries} queries "
          f"from warm .npz per round")
    assert columnar.n_sessions > 100


def test_filter_analysis_loop(benchmark, tmp_path):
    _, trace = _warm_cache(tmp_path, "npz")

    def run():
        filtered = apply_filters(trace.sessions)
        daily_region_counts(filtered.sessions)
        active_sessions(filtered)
        filtered.interarrival_times()
        return filtered

    filtered = benchmark.pedantic(run, rounds=3, iterations=1)
    print(f"\n  record loop kept {filtered.report.final_sessions} sessions, "
          f"{filtered.report.final_queries} queries per round")
    assert filtered.report.final_queries > 0


def test_filter_analysis_columnar(benchmark, tmp_path):
    _, trace = _warm_cache(tmp_path, "npz")
    columnar = ColumnarTrace.from_trace(trace)
    baseline = apply_filters(trace.sessions).report.as_dict()

    def run():
        cfiltered = apply_filters_columnar(columnar)
        daily_region_counts(cfiltered)
        active_sessions(cfiltered)
        cfiltered.interarrival_times()
        return cfiltered

    cfiltered = benchmark.pedantic(run, rounds=3, iterations=1)
    print(f"\n  columnar path kept {cfiltered.report.final_sessions} sessions, "
          f"{cfiltered.report.final_queries} queries per round")
    assert cfiltered.report.as_dict() == baseline


def test_emit_analysis_report(tmp_path):
    """Full analysis measurement + BENCH_analysis.json emission."""
    report = measure_analysis(
        days=ANALYSIS_DAYS,
        run_all_jobs=(1, ANALYSIS_JOBS),
        cache_dir=tmp_path / "cache",
    )
    path = write_bench_report(
        report, Path(__file__).resolve().parent.parent / "BENCH_analysis.json"
    )
    print(f"\n  report written to {path} (host cores: {report['host']['cpu_count']})")
    for label, run in report["runs"].items():
        extras = {k: v for k, v in run.items() if k.startswith("speedup")}
        print(f"  {label}: {run['seconds']} s {extras or ''}")
    assert report["table2_identical"] is True
