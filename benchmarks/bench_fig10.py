"""Benchmark F10: Figure 10: hot-set drift of the most popular queries.

Regenerates the paper artifact from the shared bench-scale synthesized
trace and prints paper-vs-measured rows; the timed section is the
analysis that produces the artifact (synthesis is shared and untimed).
"""

from repro.experiments.exp_popularity import run_fig10

from conftest import run_and_render


def test_fig10(ctx, benchmark):
    result = run_and_render(benchmark, run_fig10, ctx)
    assert result.rows
