"""Benchmark X2: derived download workload (extension).

Regenerates the download-layer measures (size distribution, time between
downloads, per-class completion and throughput) from the shared trace.
"""

from repro.experiments.exp_transfers import run_downloads

from conftest import run_and_render


def test_ext_downloads(ctx, benchmark):
    result = run_and_render(benchmark, run_downloads, ctx)
    assert result.rows
