"""Benchmark T3: Table 3: geographic query class sizes for 1/2/4-day periods.

Regenerates the paper artifact from the shared bench-scale synthesized
trace and prints paper-vs-measured rows; the timed section is the
analysis that produces the artifact (synthesis is shared and untimed).
"""

from repro.experiments.exp_tables import run_table3

from conftest import run_and_render


def test_table3(ctx, benchmark):
    result = run_and_render(benchmark, run_table3, ctx)
    assert result.rows
