"""Benchmark X3: caching extension experiment."""

from repro.experiments.exp_systems import run_caching

from conftest import run_and_render


def test_ext_caching(ctx, benchmark):
    result = run_and_render(benchmark, run_caching, ctx)
    assert result.rows
