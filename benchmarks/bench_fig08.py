"""Benchmark F8: Figure 8: query interarrival time.

Regenerates the paper artifact from the shared bench-scale synthesized
trace and prints paper-vs-measured rows; the timed section is the
analysis that produces the artifact (synthesis is shared and untimed).
"""

from repro.experiments.exp_active import run_fig8

from conftest import run_and_render


def test_fig08(ctx, benchmark):
    result = run_and_render(benchmark, run_fig8, ctx)
    assert result.rows
