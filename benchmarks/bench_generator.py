"""Benchmark G1: Figure 12 generator: closed-loop validation of the synthetic workload.

Regenerates the paper artifact from the shared bench-scale synthesized
trace and prints paper-vs-measured rows; the timed section is the
analysis that produces the artifact (synthesis is shared and untimed).
"""

from repro.experiments.exp_generator import run_generator_validation

from conftest import run_and_render


def test_generator(ctx, benchmark):
    result = run_and_render(benchmark, run_generator_validation, ctx)
    assert result.rows
