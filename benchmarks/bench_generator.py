"""Benchmark G1: Figure 12 generator: closed-loop validation of the synthetic workload.

Regenerates the paper artifact from the shared bench-scale synthesized
trace and prints paper-vs-measured rows; the timed section is the
analysis that produces the artifact (synthesis is shared and untimed).

``test_emit_generator_report`` additionally measures event vs. columnar
generation throughput at ``GENERATOR_PEERS`` (default ``200,10000``)
steady-state peers and emits ``BENCH_generator.json`` at the repo root
-- the acceptance record for the columnar backend's >= 10x
sessions/second requirement at ``n_peers=10_000``.
"""

import os
from pathlib import Path

from repro.core.generator_bench import measure_generator
from repro.experiments.exp_generator import run_generator_validation
from repro.synthesis.bench import write_bench_report

from conftest import run_and_render

GENERATOR_PEERS = tuple(
    int(n) for n in os.environ.get("GENERATOR_PEERS", "200,10000").split(",")
)
GENERATOR_HOURS = float(os.environ.get("GENERATOR_HOURS", "1.0"))
GENERATOR_JOBS = int(os.environ.get("GENERATOR_JOBS", "4"))


def test_generator(ctx, benchmark):
    result = run_and_render(benchmark, run_generator_validation, ctx)
    assert result.rows


def test_emit_generator_report():
    """Full generator measurement + BENCH_generator.json emission."""
    report = measure_generator(
        n_peers=GENERATOR_PEERS, hours=GENERATOR_HOURS, jobs=GENERATOR_JOBS
    )
    path = write_bench_report(
        report, Path(__file__).resolve().parent.parent / "BENCH_generator.json"
    )
    print(f"\n  report written to {path}")
    for label, run in report["runs"].items():
        print(f"  {label}: {run['sessions_per_second']} sessions/s, "
              f"{run['queries_per_second']} queries/s ({run['seconds']} s)")
    assert report["jobs_identical"] is True
    assert report["ks_checks"]["ok"] is True, report["ks_checks"]
    largest = max(GENERATOR_PEERS)
    assert report["runs"][f"columnar_n{largest}"]["speedup_vs_event"] >= 10.0
