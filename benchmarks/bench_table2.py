"""Benchmark T2: Table 2: queries and sessions removed by filter rules 1-5.

Regenerates the paper artifact from the shared bench-scale synthesized
trace and prints paper-vs-measured rows; the timed section is the
analysis that produces the artifact (synthesis is shared and untimed).
"""

from repro.experiments.exp_tables import run_table2

from conftest import run_and_render


def test_table2(ctx, benchmark):
    result = run_and_render(benchmark, run_table2, ctx)
    assert result.rows
