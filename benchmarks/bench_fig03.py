"""Benchmark F3: Figure 3: per-region query load vs. time of day (30-min bins).

Regenerates the paper artifact from the shared bench-scale synthesized
trace and prints paper-vs-measured rows; the timed section is the
analysis that produces the artifact (synthesis is shared and untimed).
"""

from repro.experiments.exp_geography import run_fig3

from conftest import run_and_render


def test_fig03(ctx, benchmark):
    result = run_and_render(benchmark, run_fig3, ctx)
    assert result.rows
