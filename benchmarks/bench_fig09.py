"""Benchmark F9: Figure 9: time after last query.

Regenerates the paper artifact from the shared bench-scale synthesized
trace and prints paper-vs-measured rows; the timed section is the
analysis that produces the artifact (synthesis is shared and untimed).
"""

from repro.experiments.exp_active import run_fig9

from conftest import run_and_render


def test_fig09(ctx, benchmark):
    result = run_and_render(benchmark, run_fig9, ctx)
    assert result.rows
