"""Benchmark TA1: Table A.1: bimodal lognormal model of passive session duration.

Regenerates the paper artifact from the shared bench-scale synthesized
trace and prints paper-vs-measured rows; the timed section is the
analysis that produces the artifact (synthesis is shared and untimed).
"""

from repro.experiments.exp_fits import run_tableA1

from conftest import run_and_render


def test_tableA1(ctx, benchmark):
    result = run_and_render(benchmark, run_tableA1, ctx)
    assert result.rows
