"""Benchmark X1: query hit-rate characterization (paper's future work).

Regenerates the extension experiment -- hit rate overall / by region /
by popularity decile, plus the SHA1-vs-keyword contrast -- from the
shared bench-scale trace.
"""

from repro.experiments.exp_hits import run_hit_rate

from conftest import run_and_render


def test_ext_hitrate(ctx, benchmark):
    result = run_and_render(benchmark, run_hit_rate, ctx)
    assert result.rows
