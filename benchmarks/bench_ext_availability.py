"""Benchmark X4: availability extension experiment."""

from repro.experiments.exp_systems import run_availability

from conftest import run_and_render


def test_ext_availability(ctx, benchmark):
    result = run_and_render(benchmark, run_availability, ctx)
    assert result.rows
