"""Benchmark T1: Table 1: overall trace characteristics (message mix per connection).

Regenerates the paper artifact from the shared bench-scale synthesized
trace and prints paper-vs-measured rows; the timed section is the
analysis that produces the artifact (synthesis is shared and untimed).
"""

from repro.experiments.exp_tables import run_table1

from conftest import run_and_render


def test_table1(ctx, benchmark):
    result = run_and_render(benchmark, run_table1, ctx)
    assert result.rows
