"""Substrate performance benchmarks: synthesis, generation, and flooding.

These time the building blocks themselves (not a paper artifact):

* trace synthesis throughput, sequential and sharded (connections/second
  of wall time),
* warm trace-cache reads vs. fresh synthesis,
* Fig. 12 generator throughput (sessions/second of wall time),
* overlay query flooding cost as a function of TTL.

``SUBSTRATE_DAYS`` scales the synthesis benchmarks (default 0.5 -- large
enough that the sharded run is measured above process-spawn noise, which
dominates below ~0.1 days; the acceptance measurements in
docs/METHODOLOGY.md were taken at 2.0), and ``SUBSTRATE_JOBS`` sets the
sharded worker count (default 4).  The run also emits
``BENCH_substrate.json`` at the repo root via the same reporting path as
the tier-1 smoke test; each run entry records the window it was measured
at, so reports from different scales cannot be confused.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.core import SyntheticWorkloadGenerator
from repro.gnutella import OverlayNetwork
from repro.synthesis import SynthesisConfig, TraceCache, TraceSynthesizer, load_or_synthesize
from repro.synthesis.bench import measure_substrate, write_bench_report

from conftest import run_and_render  # noqa: F401

SUBSTRATE_DAYS = float(os.environ.get("SUBSTRATE_DAYS", "0.5"))
SUBSTRATE_JOBS = int(os.environ.get("SUBSTRATE_JOBS", "4"))


def _config(**overrides):
    base = dict(days=SUBSTRATE_DAYS, mean_arrival_rate=0.3, seed=77)
    base.update(overrides)
    return SynthesisConfig(**base)


def test_synthesis_throughput(benchmark):
    config = _config()

    def run():
        return TraceSynthesizer(config).run()

    trace = benchmark.pedantic(run, rounds=3, iterations=1)
    print(f"\n  synthesized {trace.n_connections} connections, "
          f"{trace.hop1_query_count()} hop-1 queries per round")
    assert trace.n_connections > 100


def test_sharded_synthesis_throughput(benchmark):
    config = _config(jobs=SUBSTRATE_JOBS)

    def run():
        return TraceSynthesizer(config).run()

    trace = benchmark.pedantic(run, rounds=3, iterations=1)
    print(f"\n  synthesized {trace.n_connections} connections across "
          f"{SUBSTRATE_JOBS} shards per round")
    assert trace.n_connections > 100


def test_cache_warm_read(benchmark, tmp_path):
    config = _config()
    cache = TraceCache(tmp_path / "cache")
    load_or_synthesize(config, cache=cache)  # populate outside the timer

    def run():
        return load_or_synthesize(config, cache=cache)

    trace = benchmark.pedantic(run, rounds=3, iterations=1)
    print(f"\n  loaded {trace.n_connections} connections from warm cache per round")
    assert trace.n_connections > 100


def test_emit_substrate_report(tmp_path):
    """Full substrate measurement + BENCH_substrate.json emission."""
    report = measure_substrate(
        days=SUBSTRATE_DAYS, jobs=(1, SUBSTRATE_JOBS), cache_dir=tmp_path / "cache"
    )
    path = write_bench_report(
        report, Path(__file__).resolve().parent.parent / "BENCH_substrate.json"
    )
    print(f"\n  report written to {path}")
    for label, run in report["runs"].items():
        print(f"  {label}: {run['connections_per_second']} conn/s ({run['seconds']} s)")


def test_generator_throughput(benchmark):
    def run():
        return SyntheticWorkloadGenerator(n_peers=200, seed=5).generate(3600.0)

    sessions = benchmark.pedantic(run, rounds=3, iterations=1)
    print(f"\n  generated {len(sessions)} sessions per round")
    assert sessions


def test_flood_cost_by_ttl(benchmark):
    net = OverlayNetwork(n_ultrapeers=60, n_leaves=180, ultrapeer_degree=5, seed=13)
    net.seed_libraries([f"song {i}" for i in range(500)], mean_files=10)
    origins = [i for i, n in net.nodes.items() if n.is_ultrapeer][:5]

    def flood_all():
        rows = []
        for ttl in (1, 2, 4, 7):
            outcomes = [
                net.flood_query(origin, f"song {k}", ttl=ttl)
                for k, origin in enumerate(origins)
            ]
            rows.append((
                ttl,
                sum(o.messages_sent for o in outcomes) / len(outcomes),
                sum(o.reach for o in outcomes) / len(outcomes),
            ))
        return rows

    rows = benchmark.pedantic(flood_all, rounds=1, iterations=1)
    print("\n  TTL  avg messages  avg peers reached")
    for ttl, messages, reach in rows:
        print(f"  {ttl:3d}  {messages:12.1f}  {reach:17.1f}")
    # Flooding cost grows with TTL until the network is saturated.
    assert rows[-1][1] >= rows[0][1]
