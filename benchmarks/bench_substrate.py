"""Substrate performance benchmarks: synthesis, generation, and flooding.

These time the building blocks themselves (not a paper artifact):

* trace synthesis throughput (connections/second of wall time),
* Fig. 12 generator throughput (sessions/second of wall time),
* overlay query flooding cost as a function of TTL.
"""

from __future__ import annotations

from repro.core import SyntheticWorkloadGenerator
from repro.gnutella import OverlayNetwork
from repro.synthesis import SynthesisConfig, TraceSynthesizer

from conftest import run_and_render  # noqa: F401


def test_synthesis_throughput(benchmark):
    config = SynthesisConfig(days=0.1, mean_arrival_rate=0.3, seed=77)

    def run():
        return TraceSynthesizer(config).run()

    trace = benchmark.pedantic(run, rounds=3, iterations=1)
    print(f"\n  synthesized {trace.n_connections} connections, "
          f"{trace.hop1_query_count()} hop-1 queries per round")
    assert trace.n_connections > 100


def test_generator_throughput(benchmark):
    def run():
        return SyntheticWorkloadGenerator(n_peers=200, seed=5).generate(3600.0)

    sessions = benchmark.pedantic(run, rounds=3, iterations=1)
    print(f"\n  generated {len(sessions)} sessions per round")
    assert sessions


def test_flood_cost_by_ttl(benchmark):
    net = OverlayNetwork(n_ultrapeers=60, n_leaves=180, ultrapeer_degree=5, seed=13)
    net.seed_libraries([f"song {i}" for i in range(500)], mean_files=10)
    origins = [i for i, n in net.nodes.items() if n.is_ultrapeer][:5]

    def flood_all():
        rows = []
        for ttl in (1, 2, 4, 7):
            outcomes = [
                net.flood_query(origin, f"song {k}", ttl=ttl)
                for k, origin in enumerate(origins)
            ]
            rows.append((
                ttl,
                sum(o.messages_sent for o in outcomes) / len(outcomes),
                sum(o.reach for o in outcomes) / len(outcomes),
            ))
        return rows

    rows = benchmark.pedantic(flood_all, rounds=1, iterations=1)
    print("\n  TTL  avg messages  avg peers reached")
    for ttl, messages, reach in rows:
        print(f"  {ttl:3d}  {messages:12.1f}  {reach:17.1f}")
    # Flooding cost grows with TTL until the network is saturated.
    assert rows[-1][1] >= rows[0][1]
