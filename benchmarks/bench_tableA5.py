"""Benchmark TA5: Table A.5: lognormal model of time after last query.

Regenerates the paper artifact from the shared bench-scale synthesized
trace and prints paper-vs-measured rows; the timed section is the
analysis that produces the artifact (synthesis is shared and untimed).
"""

from repro.experiments.exp_fits import run_tableA5

from conftest import run_and_render


def test_tableA5(ctx, benchmark):
    result = run_and_render(benchmark, run_tableA5, ctx)
    assert result.rows
