"""Paper-scale out-of-core gate: the 40-day trace in bounded memory.

This is the acceptance benchmark for the streaming pipeline: synthesize
the paper's full measurement window (40 days at ~1.26 connections per
second) as on-disk shards, run rules 1-5 plus every Fig. 1-11 reducer in
one streaming pass, and prove (a) the process's peak RSS stays under a
laptop-class 2 GiB budget and (b) at ``PAPER_SCALE_EQ_DAYS`` the
streamed products are bit-identical to the in-memory path.

``PAPER_SCALE_DAYS`` overrides the measured window (the CI smoke gate
runs ``2.0``; unset means the full 40 days) and ``PAPER_SCALE_JOBS``
the synthesis worker count.  The run emits ``BENCH_paper_scale.json``
at the repo root.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.analysis.paper_scale import DEFAULT_RSS_BUDGET_MB, measure_paper_scale
from repro.synthesis.bench import write_bench_report

PAPER_SCALE_DAYS = os.environ.get("PAPER_SCALE_DAYS")
PAPER_SCALE_JOBS = int(os.environ.get("PAPER_SCALE_JOBS", "1"))
PAPER_SCALE_EQ_DAYS = float(os.environ.get("PAPER_SCALE_EQ_DAYS", "2.0"))


def test_emit_paper_scale_report(tmp_path):
    """Full paper-scale measurement + BENCH_paper_scale.json emission."""
    report = measure_paper_scale(
        days=float(PAPER_SCALE_DAYS) if PAPER_SCALE_DAYS else None,
        jobs=PAPER_SCALE_JOBS,
        equivalence_days=PAPER_SCALE_EQ_DAYS,
        workdir=tmp_path / "shards",
    )
    path = write_bench_report(
        report, Path(__file__).resolve().parent.parent / "BENCH_paper_scale.json"
    )
    synth = report["runs"]["synthesize_stream"]
    analyze = report["runs"]["filter_analyze_stream"]
    print(f"\n  report written to {path}")
    print(f"  synthesize: {synth['connections']} connections into "
          f"{synth['n_shards']} shards in {synth['seconds']} s")
    print(f"  analyze: Table 2 + Fig 1-11 in {analyze['seconds']} s "
          f"({analyze['final_queries']} queries kept)")
    print(f"  peak RSS {report['budget']['peak_rss_mb']} MiB "
          f"(budget {report['budget']['rss_budget_mb']} MiB)")
    for name, ok in report["equivalence"]["checks"].items():
        print(f"  equivalence {name}: {'identical' if ok else 'MISMATCH'}")
    assert report["equivalence"]["all_identical"] is True
    assert report["budget"]["within_budget"] is True
    assert report["budget"]["rss_budget_mb"] == DEFAULT_RSS_BUDGET_MB
