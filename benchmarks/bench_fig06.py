"""Benchmark F6: Figure 6: number of queries per active session.

Regenerates the paper artifact from the shared bench-scale synthesized
trace and prints paper-vs-measured rows; the timed section is the
analysis that produces the artifact (synthesis is shared and untimed).
"""

from repro.experiments.exp_active import run_fig6

from conftest import run_and_render


def test_fig06(ctx, benchmark):
    result = run_and_render(benchmark, run_fig6, ctx)
    assert result.rows
