"""Benchmark TA2: Table A.2: lognormal model of queries per active session.

Regenerates the paper artifact from the shared bench-scale synthesized
trace and prints paper-vs-measured rows; the timed section is the
analysis that produces the artifact (synthesis is shared and untimed).
"""

from repro.experiments.exp_fits import run_tableA2

from conftest import run_and_render


def test_tableA2(ctx, benchmark):
    result = run_and_render(benchmark, run_tableA2, ctx)
    assert result.rows
