"""Shared helpers for the per-figure analyses."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Optional, Protocol, Sequence, Tuple

from repro.core.events import SessionRecord
from repro.core.regions import KeyPeriod, Region, hour_of_day

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations only
    from repro.filtering.columnar import ColumnarFilterResult

__all__ = [
    "session_start_hour",
    "session_start_period",
    "sessions_by_region",
    "group_by",
    "MAJOR",
    "StreamingReducer",
]

MAJOR = (Region.NORTH_AMERICA, Region.EUROPE, Region.ASIA)


class StreamingReducer(Protocol):
    """One-pass accumulator over filtered trace chunks.

    The out-of-core analysis pipeline pushes each shard's
    :class:`~repro.filtering.ColumnarFilterResult` through every reducer
    exactly once (``update``), then asks each for its figure/table
    product (``finalize``).  Implementations must depend only on running
    state whose merge across chunks is exact -- integer counts, array
    concatenations in chunk order, per-session values -- so the streamed
    product is identical to the in-memory analysis of the whole trace.
    """

    def update(self, block: "ColumnarFilterResult") -> None:
        """Fold one chunk's filter result into the running state."""
        ...

    def finalize(self) -> Any:
        """Produce the final figure/table product."""
        ...


def session_start_hour(session: SessionRecord) -> int:
    """Measurement-node hour in which the session started."""
    return hour_of_day(session.start)


def session_start_period(session: SessionRecord) -> Optional[KeyPeriod]:
    """The Section 4.2 key period the session starts in, if any."""
    hour = session_start_hour(session)
    for period in KeyPeriod:
        if period.start_hour == hour:
            return period
    return None


def sessions_by_region(sessions: Iterable[SessionRecord]) -> Dict[Region, List[SessionRecord]]:
    """Split sessions into the three characterized regions (OTHER dropped)."""
    out: Dict[Region, List[SessionRecord]] = {r: [] for r in MAJOR}
    for session in sessions:
        if session.region in out:
            out[session.region].append(session)
    return out


def group_by(items: Sequence, key) -> Dict:
    """Tiny multimap helper: group ``items`` by ``key(item)``."""
    out: Dict = {}
    for item in items:
        out.setdefault(key(item), []).append(item)
    return out
