"""Figures 6-9: active session characteristics.

All timing measures follow the paper's convention ("the analysis ... is
based on the number of queries with filter rules 4 and 5 applied"): the
per-session query stream used here is the rule-4/5 *eligible* stream
from the filter pipeline; the rules-1-3 stream is kept for the Figure
6(c) variant ("filter rules 4 & 5 not applied").

Measures per active session:

* number of queries (Fig. 6, Table A.2),
* time until first query (Fig. 7, Table A.3),
* query interarrival times (Fig. 8, Table A.4),
* time after last query (Fig. 9, Table A.5),

each conditioned on geographic region, key time-of-day period, and the
session's query-count class where the paper finds correlations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.events import SessionRecord
from repro.core.parameters import (
    first_query_class,
    interarrival_query_class,
    last_query_class,
)
from repro.core.regions import KeyPeriod, Region, hour_of_day
from repro.core.stats import Ccdf, empirical_ccdf
from repro.filtering import ColumnarFilterResult, FilterResult
from repro.measurement.columnar import REGION_ORDER

from .common import MAJOR, session_start_period

__all__ = [
    "ActiveSession",
    "active_sessions",
    "queries_per_session_ccdf",
    "queries_per_session_ccdf_unfiltered",
    "first_query_ccdf",
    "interarrival_ccdf",
    "time_after_last_ccdf",
]


@dataclass(frozen=True)
class ActiveSession:
    """Per-session measures derived from the eligible query stream."""

    region: Region
    start: float
    duration: float
    n_queries: int            # rules 4-5 applied (the paper's default)
    n_queries_unfiltered: int  # rules 1-3 only (Fig. 6c variant)
    time_until_first: float
    time_after_last: float
    interarrivals: tuple
    start_period: Optional[KeyPeriod]
    last_query_hour: int

    @property
    def last_query_period(self) -> Optional[KeyPeriod]:
        """Key period containing the last query (Fig. 9c conditions on it)."""
        for period in KeyPeriod:
            if period.start_hour == self.last_query_hour:
                return period
        return None


def active_sessions(
    result: Union[FilterResult, ColumnarFilterResult],
) -> List[ActiveSession]:
    """Extract the active-session views from a filter result.

    Accepts the record-oriented :class:`FilterResult` (per-session loop)
    or a :class:`~repro.filtering.ColumnarFilterResult`, where the
    first/last-query anchors, counts, and interarrival gaps come from
    ``searchsorted``/``bincount``/``diff`` reductions over the flat
    query table.  Both produce value-identical views.
    """
    if isinstance(result, ColumnarFilterResult):
        return _active_sessions_columnar(result)
    views: List[ActiveSession] = []
    for session, eligible in zip(result.sessions, result.interarrival_queries):
        if not eligible:
            continue
        times = [q.timestamp for q in eligible]
        views.append(
            ActiveSession(
                region=session.region,
                start=session.start,
                duration=session.duration,
                n_queries=len(eligible),
                n_queries_unfiltered=session.query_count,
                time_until_first=times[0] - session.start,
                time_after_last=session.end - times[-1],
                interarrivals=tuple(b - a for a, b in zip(times, times[1:])),
                start_period=session_start_period(session),
                last_query_hour=hour_of_day(times[-1]),
            )
        )
    return views


def _active_sessions_columnar(result: ColumnarFilterResult) -> List[ActiveSession]:
    """Vectorized view extraction over the eligible query stream."""
    trace = result.trace
    eligible_rows = np.flatnonzero(result.eligible_mask)
    if not eligible_rows.size:
        return []
    seg = result.session_index[eligible_rows]
    ts = trace.query_timestamp[eligible_rows]

    n_eligible = np.bincount(seg, minlength=trace.n_sessions)
    active_rows = np.flatnonzero(n_eligible > 0)
    # seg is sorted (queries are session-major), so the first/last
    # eligible timestamp of each active session is a searchsorted pair.
    first_ts = ts[np.searchsorted(seg, active_rows, side="left")]
    last_ts = ts[np.searchsorted(seg, active_rows, side="right") - 1]
    n_kept = np.bincount(
        result.session_index[result.query_mask], minlength=trace.n_sessions
    )

    start = trace.session_start[active_rows]
    end = trace.session_end[active_rows]
    counts = n_eligible[active_rows]
    per_session_gaps = np.split(
        np.diff(ts)[seg[1:] == seg[:-1]], np.cumsum(counts - 1)[:-1]
    )

    period_by_hour = {p.start_hour: p for p in KeyPeriod}
    start_hours = ((start % 86400.0) // 3600.0).astype(np.int64).tolist()
    last_hours = ((last_ts % 86400.0) // 3600.0).astype(np.int64).tolist()
    rows = zip(
        trace.session_region[active_rows].tolist(),
        start.tolist(),
        (end - start).tolist(),
        counts.tolist(),
        n_kept[active_rows].tolist(),
        (first_ts - start).tolist(),
        (end - last_ts).tolist(),
        per_session_gaps,
        start_hours,
        last_hours,
    )
    return [
        ActiveSession(
            region=REGION_ORDER[code],
            start=s_start,
            duration=s_duration,
            n_queries=n,
            n_queries_unfiltered=n_unfiltered,
            time_until_first=until_first,
            time_after_last=after_last,
            interarrivals=tuple(gaps.tolist()),
            start_period=period_by_hour.get(start_hour),
            last_query_hour=last_hour,
        )
        for (
            code, s_start, s_duration, n, n_unfiltered,
            until_first, after_last, gaps, start_hour, last_hour,
        ) in rows
    ]


def _by_region(views: Sequence[ActiveSession], measure) -> Dict[Region, Ccdf]:
    out: Dict[Region, Ccdf] = {}
    for region in MAJOR:
        values = [v for view in views if view.region is region for v in measure(view)]
        if values:
            out[region] = empirical_ccdf(values)
    return out


def _by_period(views: Sequence[ActiveSession], region: Region, measure, period_of) -> Dict[KeyPeriod, Ccdf]:
    out: Dict[KeyPeriod, Ccdf] = {}
    for period in KeyPeriod:
        values = [
            v
            for view in views
            if view.region is region and period_of(view) is period
            for v in measure(view)
        ]
        if values:
            out[period] = empirical_ccdf(values)
    return out


# -- Figure 6: number of queries per active session ---------------------------

def queries_per_session_ccdf(
    views: Sequence[ActiveSession],
    region: Optional[Region] = None,
    period: Optional[KeyPeriod] = None,
):
    """Fig. 6(a) per region (region=None) or 6(b) per period for a region."""
    measure = lambda view: (view.n_queries,)
    if region is None:
        return _by_region(views, measure)
    return _by_period(views, region, measure, lambda v: v.start_period)


def queries_per_session_ccdf_unfiltered(views: Sequence[ActiveSession]) -> Dict[Region, Ccdf]:
    """Fig. 6(c): query counts without rules 4 and 5 applied."""
    return _by_region(views, lambda view: (view.n_queries_unfiltered,))


# -- Figure 7: time until first query -----------------------------------------

def first_query_ccdf(
    views: Sequence[ActiveSession],
    region: Optional[Region] = None,
    by_query_class: bool = False,
):
    """Fig. 7(a) per region; 7(b) per query-count class for ``region``;
    7(c) per key period for ``region`` (when neither flag set but region
    given without classes, period split is returned)."""
    measure = lambda view: (max(view.time_until_first, 1e-3),)
    if region is None:
        return _by_region(views, measure)
    if by_query_class:
        out: Dict[str, Ccdf] = {}
        for label in ("<3", "=3", ">3"):
            values = [
                view.time_until_first
                for view in views
                if view.region is region and first_query_class(view.n_queries) == label
            ]
            if values:
                out[label] = empirical_ccdf([max(v, 1e-3) for v in values])
        return out
    return _by_period(views, region, measure, lambda v: v.start_period)


# -- Figure 8: query interarrival time ----------------------------------------

def interarrival_ccdf(
    views: Sequence[ActiveSession],
    region: Optional[Region] = None,
    by_query_class: bool = False,
):
    """Fig. 8(a) per region; 8(b) per query-count class for ``region``;
    8(c) per key period for ``region``."""
    measure = lambda view: view.interarrivals
    if region is None:
        return _by_region(views, measure)
    if by_query_class:
        out: Dict[str, Ccdf] = {}
        for label in ("=2", "3-7", ">7"):
            values = [
                gap
                for view in views
                if view.region is region
                and interarrival_query_class(view.n_queries) == label
                for gap in view.interarrivals
            ]
            if values:
                out[label] = empirical_ccdf(values)
        return out
    return _by_period(views, region, measure, lambda v: v.start_period)


# -- Figure 9: time after last query --------------------------------------------

def time_after_last_ccdf(
    views: Sequence[ActiveSession],
    region: Optional[Region] = None,
    by_query_class: bool = False,
):
    """Fig. 9(a) per region; 9(b) per query-count class for ``region``;
    9(c) per key period of the *last query* for ``region``."""
    measure = lambda view: (max(view.time_after_last, 1e-3),)
    if region is None:
        return _by_region(views, measure)
    if by_query_class:
        out: Dict[str, Ccdf] = {}
        for label in ("1", "2-7", ">7"):
            values = [
                view.time_after_last
                for view in views
                if view.region is region and last_query_class(view.n_queries) == label
            ]
            if values:
                out[label] = empirical_ccdf([max(v, 1e-3) for v in values])
        return out
    return _by_period(views, region, measure, lambda v: v.last_query_period)
