"""Peer availability and churn (after Bhagwan, Savage & Voelker, IPTPS'02).

The paper cites Bhagwan et al.'s characterization of "the fraction of
time that hosts are available as well as the frequency of arrivals and
departures, including time of day effects".  This module computes those
measures from the trace:

* arrival and departure rates per time-of-day bin,
* the concurrent-connection curve (how many one-hop peers are online),
* the aggregate availability (peer-seconds online / trace span).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.events import SessionRecord
from repro.core.stats import SECONDS_PER_HOUR, TimeOfDayBinner

__all__ = ["ChurnProfile", "churn_by_hour", "concurrency_curve", "aggregate_availability"]


@dataclass
class ChurnProfile:
    """Arrivals and departures per hour-of-day bin (day-averaged curves
    plus raw totals)."""

    bin_hours: np.ndarray
    arrivals: np.ndarray
    departures: np.ndarray
    total_arrivals: int
    total_departures: int

    @property
    def peak_arrival_hour(self) -> int:
        return int(self.bin_hours[int(np.argmax(self.arrivals))])

    @property
    def churn_balance(self) -> float:
        """Total arrivals / total departures (>= 1; the excess is peers
        still connected when the trace ends)."""
        if not self.total_departures:
            return float("inf")
        return self.total_arrivals / self.total_departures


def churn_by_hour(
    sessions: Sequence[SessionRecord], end_time: float = float("inf")
) -> ChurnProfile:
    """Arrival/departure rates per hour of day.

    Sessions whose recorded end coincides with (or exceeds) ``end_time``
    were truncated by the trace boundary, not by a real departure, and
    are excluded from the departure counts.
    """
    if not sessions:
        raise ValueError("no sessions")
    arrivals = TimeOfDayBinner()
    departures = TimeOfDayBinner()
    total_departures = 0
    for session in sessions:
        arrivals.add(session.start)
        if session.end < end_time:
            departures.add(session.end)
            total_departures += 1
    return ChurnProfile(
        bin_hours=arrivals.bin_starts_hours(),
        arrivals=arrivals.average(),
        departures=departures.average() if total_departures else np.zeros(24),
        total_arrivals=len(sessions),
        total_departures=total_departures,
    )


def concurrency_curve(
    sessions: Sequence[SessionRecord], step_seconds: float = 300.0
) -> Tuple[np.ndarray, np.ndarray]:
    """(times, online_count): concurrent one-hop connections over the trace.

    Computed by sweeping session start/end events, sampled every
    ``step_seconds`` -- the "up to 200 connections" load curve of the
    measurement node.
    """
    if not sessions:
        raise ValueError("no sessions")
    if step_seconds <= 0:
        raise ValueError("step_seconds must be positive")
    events: List[Tuple[float, int]] = []
    for session in sessions:
        events.append((session.start, +1))
        events.append((session.end, -1))
    events.sort()
    t_start = events[0][0]
    t_end = events[-1][0]
    times = np.arange(t_start, t_end + step_seconds, step_seconds)
    counts = np.zeros_like(times)
    level = 0
    index = 0
    for slot, t in enumerate(times):
        while index < len(events) and events[index][0] <= t:
            level += events[index][1]
            index += 1
        counts[slot] = level
    return times, counts


def aggregate_availability(
    sessions: Sequence[SessionRecord], trace_span_seconds: float
) -> float:
    """Mean fraction of the trace a connected peer stays online.

    Bhagwan et al. report host availability well under 10% over day
    scales; with single-connection peers this is mean session duration
    over the trace span.
    """
    if trace_span_seconds <= 0:
        raise ValueError("trace_span_seconds must be positive")
    if not sessions:
        raise ValueError("no sessions")
    durations = np.array([s.duration for s in sessions])
    return float(np.mean(durations) / trace_span_seconds)
