"""Figures 4 and 5: passive peers.

Figure 4: fraction of sessions starting in each 1-hour bin that issue no
queries, per region, with min/avg/max across days.

Figure 5: CCDF of connected session duration for passive peers, (a) per
region, (b)/(c) per Section 4.2 key period within a region.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Union

import numpy as np

from repro.core.events import SessionRecord
from repro.core.regions import KeyPeriod, Region
from repro.core.stats import Ccdf, TimeOfDayBinner, empirical_ccdf, ratio_binner_fraction
from repro.filtering import ColumnarFilterResult
from repro.measurement.columnar import REGION_CODE

from .common import MAJOR, session_start_period

__all__ = [
    "PassiveFractionProfile",
    "passive_fraction_by_hour",
    "passive_duration_ccdf_by_region",
    "passive_duration_ccdf_by_period",
]


@dataclass
class PassiveFractionProfile:
    """Figure 4 curves for one region."""

    region: Region
    bin_hours: np.ndarray
    average: np.ndarray
    minimum: np.ndarray
    maximum: np.ndarray

    @property
    def overall_average(self) -> float:
        return float(np.nanmean(self.average))

    @property
    def diurnal_swing(self) -> float:
        """Peak-to-trough fluctuation of the average curve."""
        return float(np.nanmax(self.average) - np.nanmin(self.average))


def passive_fraction_by_hour(sessions: Sequence[SessionRecord]) -> Dict[Region, PassiveFractionProfile]:
    """Compute the Figure 4 curves from filtered sessions.

    "We count the number of peer sessions that begin in a 1-hour
    interval that issue no queries ... and calculate the ratio to all
    sessions that start in the same hour."
    """
    passive = {r: TimeOfDayBinner() for r in MAJOR}
    total = {r: TimeOfDayBinner() for r in MAJOR}
    for session in sessions:
        if session.region not in total:
            continue
        total[session.region].add(session.start)
        if session.is_passive:
            passive[session.region].add(session.start)
        else:
            passive[session.region].add(session.start, 0.0)
    profiles: Dict[Region, PassiveFractionProfile] = {}
    for region in MAJOR:
        if not total[region].days:
            continue  # no sessions from this region in the trace
        avg, lo, hi = ratio_binner_fraction(passive[region], total[region])
        profiles[region] = PassiveFractionProfile(
            region=region,
            bin_hours=total[region].bin_starts_hours(),
            average=avg,
            minimum=lo,
            maximum=hi,
        )
    return profiles


def _passive_columns(result: ColumnarFilterResult):
    """(region code, start, duration) columns of the passive survivors.

    A passive session is a rule-3 survivor whose rules-1-3 kept query
    stream is empty — exactly ``is_passive`` on the materialized records.
    """
    trace = result.trace
    kept_per_session = np.bincount(
        result.session_index[result.query_mask], minlength=trace.n_sessions
    )
    passive_rows = np.flatnonzero(result.session_mask & (kept_per_session == 0))
    start = trace.session_start[passive_rows]
    return (
        trace.session_region[passive_rows],
        start,
        trace.session_end[passive_rows] - start,
    )


def passive_duration_ccdf_by_region(
    sessions: Union[Sequence[SessionRecord], ColumnarFilterResult],
) -> Dict[Region, Ccdf]:
    """Figure 5(a): passive session duration CCDF per region (seconds)."""
    out: Dict[Region, Ccdf] = {}
    if isinstance(sessions, ColumnarFilterResult):
        code, _, duration = _passive_columns(sessions)
        for region in MAJOR:
            durations = duration[code == REGION_CODE[region]]
            if durations.size:
                out[region] = empirical_ccdf(durations.tolist())
        return out
    for region in MAJOR:
        durations = [
            s.duration for s in sessions if s.region is region and s.is_passive
        ]
        if durations:
            out[region] = empirical_ccdf(durations)
    return out


def passive_duration_ccdf_by_period(
    sessions: Union[Sequence[SessionRecord], ColumnarFilterResult],
    region: Region,
) -> Dict[KeyPeriod, Ccdf]:
    """Figures 5(b)/(c): duration CCDF per key start period, one region."""
    out: Dict[KeyPeriod, Ccdf] = {}
    if isinstance(sessions, ColumnarFilterResult):
        code, start, duration = _passive_columns(sessions)
        in_region = code == REGION_CODE[region]
        hour = ((start % 86400.0) // 3600.0).astype(np.int64)
        for period in KeyPeriod:
            durations = duration[in_region & (hour == period.start_hour)]
            if durations.size:
                out[period] = empirical_ccdf(durations.tolist())
        return out
    for period in KeyPeriod:
        durations = [
            s.duration
            for s in sessions
            if s.region is region and s.is_passive and session_start_period(s) is period
        ]
        if durations:
            out[period] = empirical_ccdf(durations)
    return out
