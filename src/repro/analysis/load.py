"""Figure 3: query load per region vs. time of day (30-minute bins).

"Figure 3 plots the number of queries received from the one-hop peers
from each geographical region in bins of 30 minutes as a function of
time of day.  The average values of each bin are averaged over the
entire measurement period" -- with min and max day curves showing the
high per-bin variance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Sequence

import numpy as np

from repro.core.events import SessionRecord
from repro.core.regions import KeyPeriod, Region
from repro.core.stats import TimeOfDayBinner

from .common import MAJOR

__all__ = ["LoadProfile", "query_load", "peak_period_table"]


@dataclass
class LoadProfile:
    """Per-bin query counts for one region: average/min/max across days."""

    region: Region
    bin_hours: np.ndarray
    average: np.ndarray
    minimum: np.ndarray
    maximum: np.ndarray

    def load_in_period(self, period: KeyPeriod) -> float:
        """Average queries per bin inside a Section 4.2 key period."""
        mask = (self.bin_hours >= period.start_hour) & (self.bin_hours < period.start_hour + 1)
        return float(self.average[mask].mean())


def query_load(
    sessions: Sequence[SessionRecord], bin_minutes: int = 30
) -> Dict[Region, LoadProfile]:
    """Compute the Figure 3 curves from (one-hop) sessions.

    Uses the raw hop-1 query stream (the figure predates the user/system
    split -- it characterizes observed load).  Pass filtered sessions to
    get the user-load variant.
    """
    binners = {r: TimeOfDayBinner(bin_seconds=bin_minutes * 60) for r in MAJOR}
    for session in sessions:
        if session.region not in binners:
            continue
        for query in session.queries:
            binners[session.region].add(query.timestamp)
    profiles: Dict[Region, LoadProfile] = {}
    for region, binner in binners.items():
        if not binner.days:
            raise ValueError(f"no queries observed for {region}")
        profiles[region] = LoadProfile(
            region=region,
            bin_hours=binner.bin_starts_hours(),
            average=binner.average(),
            minimum=binner.minimum(),
            maximum=binner.maximum(),
        )
    return profiles


def peak_period_table(profiles: Dict[Region, LoadProfile]) -> Dict[KeyPeriod, Dict[Region, float]]:
    """Average load of every region in each key period (Section 4.2).

    The paper identifies 03:00-04:00 as an NA peak / EU sink, 11:00-12:00
    as an NA sink / EU peak, 13:00-14:00 as an EU+Asia peak, and
    19:00-20:00 as a joint NA/EU peak; this table lets a bench verify
    those orderings.
    """
    return {
        period: {region: profile.load_in_period(period) for region, profile in profiles.items()}
        for period in KeyPeriod
    }
