"""Paper-scale out-of-core gate, shared by benchmarks and smoke tests.

:func:`measure_paper_scale` runs the full streaming pipeline at the
paper's measurement scale -- 40 days at ~1.26 connections/second, the
one configuration the in-memory record path cannot hold comfortably --
and returns a report proving two things at once:

* **it fits**: synthesis spills time-ordered shards to disk, rules 1-5
  and every Fig. 1-11 reducer run in a single bounded-memory pass, and
  the process's peak RSS stays under a laptop-class budget;
* **it's right**: at a scale where both pipelines run
  (``equivalence_days``), the streamed Table 2 report and every figure
  product are *bit-identical* to the in-memory path (tolerance 0.0 --
  the reducers are engineered for identical reduction order, not
  KS-approximate agreement).

The real gate (``benchmarks/bench_paper_scale.py``) runs it at the full
40 days and emits ``BENCH_paper_scale.json``; the tier-1 smoke test and
the CI gate run the same code at ``days=2.0``.
"""

from __future__ import annotations

import shutil
import tempfile
import time
from dataclasses import replace
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.core import host_block, peak_rss_mb
from repro.core.popularity import QueryClassId
from repro.core.regions import Region
from repro.filtering import apply_filters_columnar
from repro.synthesis import SynthesisConfig, TraceSynthesizer, scenario_config

from .active import active_sessions
from .correlations import session_correlations
from .geographic import geographic_distribution
from .load import query_load
from .passive import (
    passive_duration_ccdf_by_period,
    passive_duration_ccdf_by_region,
    passive_fraction_by_hour,
)
from .popularity import daily_region_counts, fit_class_popularity, query_class_sizes
from .shared_files import shared_files_distribution
from .streaming import run_streaming

__all__ = ["DEFAULT_RSS_BUDGET_MB", "measure_paper_scale", "streamed_equivalence_checks"]

#: The acceptance budget: the full 40-day paper scenario must complete
#: synthesis + filtering + Fig. 1-11 analyses under 2 GiB of peak RSS.
DEFAULT_RSS_BUDGET_MB = 2048.0

_MAJOR = (Region.NORTH_AMERICA, Region.EUROPE, Region.ASIA)


def _arrays_equal(a, b) -> bool:
    """Exact equality, treating NaN == NaN (both sides compute the same NaNs)."""
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape:
        return False
    if a.dtype.kind == "f" or b.dtype.kind == "f":
        af = a.astype(np.float64)
        bf = b.astype(np.float64)
        return bool(np.all((af == bf) | (np.isnan(af) & np.isnan(bf))))
    return bool(np.array_equal(a, b))


def _ccdfs_equal(a, b) -> bool:
    return _arrays_equal(a.x, b.x) and _arrays_equal(a.fraction, b.fraction)


def _ccdf_dicts_equal(a, b) -> bool:
    if set(a) != set(b):
        return False
    return all(_ccdfs_equal(a[k], b[k]) for k in a)


def _traces_identical(a, b) -> bool:
    """Field-by-field exact equality of two ``ColumnarTrace`` bundles."""
    import dataclasses

    for f in dataclasses.fields(a):
        va, vb = getattr(a, f.name), getattr(b, f.name)
        if isinstance(va, np.ndarray):
            if va.dtype != vb.dtype or not np.array_equal(va, vb):
                return False
        elif va != vb:
            return False
    return True


def streamed_equivalence_checks(config: SynthesisConfig, workdir: Union[str, Path]) -> dict:
    """Streamed vs. in-memory products at the SAME config: exact equality.

    Both pipelines must run the same configuration (including
    ``shard_days``): the shard windows partition the synthesis RNG
    streams, so a sharded config compared against an unsharded one would
    legitimately differ.  With the config held fixed, every product is
    required to match bit for bit -- the returned ``tolerance`` is 0.0
    by construction, recorded so the report states what "equal" meant.
    """
    workdir = Path(workdir)
    sharded = TraceSynthesizer(config).run_sharded(workdir / "equivalence-trace")
    streamed = run_streaming(sharded)

    full = TraceSynthesizer(config).run_columnar()
    block = apply_filters_columnar(full)
    record = full.to_trace()
    views = active_sessions(block)

    checks = {}
    checks["trace_concat_byte_identical"] = _traces_identical(sharded.concat(), full)
    checks["table2_report"] = streamed.report.as_dict() == block.report.as_dict()

    geo = geographic_distribution(record)
    checks["f1_geographic"] = all(
        _arrays_equal(streamed.geographic.one_hop[r], geo.one_hop[r])
        and _arrays_equal(streamed.geographic.all_peers[r], geo.all_peers[r])
        for r in _MAJOR
    )
    shared = shared_files_distribution(record)
    checks["f2_shared_files"] = _arrays_equal(
        streamed.shared_files.one_hop, shared.one_hop
    ) and _arrays_equal(streamed.shared_files.all_peers, shared.all_peers)
    load = query_load(record.sessions)
    checks["f3_load"] = set(streamed.load) == set(load) and all(
        _arrays_equal(streamed.load[r].average, load[r].average)
        and _arrays_equal(streamed.load[r].minimum, load[r].minimum)
        and _arrays_equal(streamed.load[r].maximum, load[r].maximum)
        for r in load
    )
    frac = passive_fraction_by_hour(block.to_filter_result().sessions)
    checks["f4_passive_fraction"] = set(streamed.passive_fraction) == set(frac) and all(
        _arrays_equal(streamed.passive_fraction[r].average, frac[r].average)
        for r in frac
    )
    checks["f5_passive_durations"] = _ccdf_dicts_equal(
        streamed.passive.by_region(), passive_duration_ccdf_by_region(block)
    ) and all(
        _ccdf_dicts_equal(
            streamed.passive.by_period(region),
            passive_duration_ccdf_by_period(block, region),
        )
        for region in (Region.NORTH_AMERICA, Region.EUROPE)
    )

    active = streamed.active
    from .active import (
        first_query_ccdf,
        interarrival_ccdf,
        queries_per_session_ccdf,
        queries_per_session_ccdf_unfiltered,
        time_after_last_ccdf,
    )

    checks["f6_queries_per_session"] = _ccdf_dicts_equal(
        active.queries_per_session_ccdf(), queries_per_session_ccdf(views)
    ) and _ccdf_dicts_equal(
        active.queries_per_session_ccdf_unfiltered(),
        queries_per_session_ccdf_unfiltered(views),
    )
    checks["f7_first_query"] = _ccdf_dicts_equal(
        active.first_query_ccdf(), first_query_ccdf(views)
    ) and _ccdf_dicts_equal(
        active.first_query_ccdf(region=Region.NORTH_AMERICA, by_query_class=True),
        first_query_ccdf(views, region=Region.NORTH_AMERICA, by_query_class=True),
    )
    checks["f8_interarrival"] = _ccdf_dicts_equal(
        active.interarrival_ccdf(), interarrival_ccdf(views)
    ) and _ccdf_dicts_equal(
        active.interarrival_ccdf(region=Region.EUROPE, by_query_class=True),
        interarrival_ccdf(views, region=Region.EUROPE, by_query_class=True),
    )
    checks["f9_time_after_last"] = _ccdf_dicts_equal(
        active.time_after_last_ccdf(), time_after_last_ccdf(views)
    ) and _ccdf_dicts_equal(
        active.time_after_last_ccdf(region=Region.NORTH_AMERICA, by_query_class=True),
        time_after_last_ccdf(views, region=Region.NORTH_AMERICA, by_query_class=True),
    )
    checks["c1_correlations"] = all(
        [
            (c.name, c.rho, c.n, c.significant)
            for c in active.correlations(region=region)
        ]
        == [
            (c.name, c.rho, c.n, c.significant)
            for c in session_correlations(views, region=region)
        ]
        for region in (None, *_MAJOR)
    )
    checks["t3_f10_f11_daily_counts"] = streamed.daily == daily_region_counts(block)

    return {
        "days": config.days,
        "tolerance": 0.0,
        "checks": checks,
        "all_identical": all(checks.values()),
    }


def measure_paper_scale(
    days: Optional[float] = None,
    shard_hours: float = 24.0,
    seed: int = 20040315,
    jobs: int = 1,
    equivalence_days: float = 2.0,
    rss_budget_mb: float = DEFAULT_RSS_BUDGET_MB,
    workdir: Optional[Union[str, Path]] = None,
) -> dict:
    """Run the streamed paper scenario end to end and report on it.

    ``days=None`` runs the paper's full 40-day window (the ``paper``
    scenario); the CI gate passes ``days=2.0``.  ``workdir`` holds the
    shard spill (a private temporary directory when omitted).  Peak RSS
    is the *process* high-water mark -- run this in a fresh process for
    a meaningful budget check, as ``benchmarks/bench_paper_scale.py``
    does.
    """
    config = scenario_config("paper", seed=seed, jobs=jobs)
    if days is not None:
        config = replace(config, days=float(days))
    config = replace(config, shard_days=float(shard_hours) / 24.0)

    tmpdir: Optional[str] = None
    if workdir is None:
        tmpdir = tempfile.mkdtemp(prefix="repro-p2p-paper-scale-")
        workdir = tmpdir
    workdir = Path(workdir)

    report = {
        "scale": {
            "days": config.days,
            "mean_arrival_rate": config.mean_arrival_rate,
            "seed": seed,
            "shard_hours": shard_hours,
            "jobs": jobs,
        },
        "host": host_block(),
        "runs": {},
    }
    try:
        # -- phase 1: streamed synthesis ----------------------------------
        t0 = time.perf_counter()
        sharded = TraceSynthesizer(config).run_sharded(workdir / "trace")
        elapsed = time.perf_counter() - t0
        shard_bytes = sum(
            (sharded.root / info.file).stat().st_size for info in sharded.shards
        )
        report["runs"]["synthesize_stream"] = {
            "days": config.days,
            "connections": sharded.n_connections,
            "hop1_queries": sharded.hop1_query_count(),
            "n_shards": sharded.n_shards,
            "shard_bytes_on_disk": shard_bytes,
            "seconds": round(elapsed, 4),
            "connections_per_second": round(
                sharded.n_connections / max(elapsed, 1e-9), 1
            ),
            "peak_rss_mb": round(peak_rss_mb(), 1),
        }

        # -- phase 2: one streaming pass, rules 1-5 + every figure --------
        t0 = time.perf_counter()
        streamed = run_streaming(sharded)
        active = streamed.active
        # Finalize-side figure products (cheap array reductions; they are
        # part of the "analyze the whole trace" claim, so stay timed).
        figures = {
            "f1_regions": len(streamed.geographic.one_hop),
            "f2_bins": int(streamed.shared_files.counts.size),
            "f3_regions": len(streamed.load),
            "f4_regions": len(streamed.passive_fraction),
            "f5_region_ccdfs": len(streamed.passive.by_region()),
            "f6_region_ccdfs": len(active.queries_per_session_ccdf()),
            "f7_region_ccdfs": len(active.first_query_ccdf()),
            "f8_region_ccdfs": len(active.interarrival_ccdf()),
            "f9_region_ccdfs": len(active.time_after_last_ccdf()),
            "c1_correlations": len(active.correlations()),
            "t3_days": len(streamed.daily),
        }
        if int(config.days) >= 1:
            figures["t3_class_sizes_1day"] = query_class_sizes(streamed.daily, 1).na_only
            try:
                figures["f11_na_alpha"] = round(
                    fit_class_popularity(streamed.daily, QueryClassId.NA_ONLY).fit.alpha, 4
                )
            except ValueError:
                figures["f11_na_alpha"] = None
        elapsed = time.perf_counter() - t0
        report["runs"]["filter_analyze_stream"] = {
            "seconds": round(elapsed, 4),
            "final_sessions": streamed.report.final_sessions,
            "final_queries": streamed.report.final_queries,
            "active_sessions": int(active.region.size),
            "figures": figures,
            "peak_rss_mb": round(peak_rss_mb(), 1),
        }
        report["table2"] = streamed.report.as_dict()

        # -- phase 3: exactness at a scale both pipelines can run ---------
        t0 = time.perf_counter()
        report["equivalence"] = streamed_equivalence_checks(
            replace(config, days=float(equivalence_days)), workdir
        )
        report["equivalence"]["seconds"] = round(time.perf_counter() - t0, 4)
    finally:
        if tmpdir is not None:
            shutil.rmtree(tmpdir, ignore_errors=True)

    peak = round(peak_rss_mb(), 1)
    report["host"]["peak_rss_mb"] = peak
    report["budget"] = {
        "rss_budget_mb": rss_budget_mb,
        "peak_rss_mb": peak,
        "within_budget": bool(peak <= rss_budget_mb),
    }
    return report
