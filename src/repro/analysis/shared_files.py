"""Figure 2: number of shared files, one-hop vs. all peers.

"We observe the number of shared files as reported in PONG messages from
all peers and in PONG messages from one-hop peers ... the fraction of
each class of peers that report each number of shared files from zero to
one hundred" (Section 3.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.measurement import Trace

__all__ = ["SharedFilesProfile", "shared_files_distribution"]


@dataclass
class SharedFilesProfile:
    """Fraction of peers reporting each shared-file count 0..max_files."""

    counts: np.ndarray  # 0..max_files
    one_hop: np.ndarray
    all_peers: np.ndarray

    def max_divergence(self) -> float:
        """Largest per-bin gap between the two populations."""
        return float(np.max(np.abs(self.one_hop - self.all_peers)))

    def free_rider_fraction(self, one_hop: bool = True) -> float:
        """Fraction of peers sharing zero files."""
        return float((self.one_hop if one_hop else self.all_peers)[0])


def shared_files_distribution(trace: Trace, max_files: int = 100) -> SharedFilesProfile:
    """Compute the Figure 2 curves from a trace.

    One-hop library sizes come from the connected sessions' advertised
    shared-file counts; all-peers sizes from sampled PONG observations.
    Fractions are over all peers of the class (counts above ``max_files``
    contribute to the denominator but not to a plotted bin, as in the
    paper's 0-100 axis).
    """
    if max_files < 1:
        raise ValueError(f"max_files must be >= 1, got {max_files}")
    bins = np.arange(max_files + 1)
    one_hop_hist = np.zeros(max_files + 1)
    all_hist = np.zeros(max_files + 1)
    n_one_hop = 0
    n_all = 0
    for session in trace.sessions:
        n_one_hop += 1
        if session.shared_files <= max_files:
            one_hop_hist[session.shared_files] += 1
    for pong in trace.pongs:
        n_all += 1
        if pong.shared_files <= max_files:
            all_hist[pong.shared_files] += 1
    if n_one_hop == 0 or n_all == 0:
        raise ValueError("trace has no sessions or no PONG samples")
    return SharedFilesProfile(
        counts=bins,
        one_hop=one_hop_hist / n_one_hop,
        all_peers=all_hist / n_all,
    )
