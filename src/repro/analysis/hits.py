"""Query hit-rate characterization (the paper's stated future work).

"Future work includes characterizing the query hit rate of the peers,
including the correlation of hit rate with other measures."  This module
implements that characterization on a trace whose queries carry QUERYHIT
response counts:

* the overall hit rate (fraction of queries answered at all) and the
  responder-count CCDF;
* hit rate conditioned on geographic region;
* hit rate conditioned on popularity rank (do popular queries hit more?);
* hit rate of user vs. automated traffic (SHA1 source searches mostly
  miss, which is why clients re-send them).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.events import SessionRecord
from repro.core.regions import Region
from repro.core.stats import Ccdf, empirical_ccdf

from .common import MAJOR
from .popularity import daily_region_counts

__all__ = [
    "HitRateSummary",
    "hit_rate_summary",
    "hit_rate_by_region",
    "hits_ccdf",
    "hit_rate_by_popularity_decile",
]


@dataclass(frozen=True)
class HitRateSummary:
    """Aggregate hit statistics over a query population."""

    n_queries: int
    hit_rate: float        # fraction of queries with >= 1 responder
    mean_hits: float
    mean_hits_answered: float  # mean over answered queries only

    @classmethod
    def from_hits(cls, hits: Sequence[int]) -> "HitRateSummary":
        if len(hits) == 0:
            raise ValueError("no queries")
        arr = np.asarray(hits, dtype=float)
        answered = arr[arr > 0]
        return cls(
            n_queries=int(arr.size),
            hit_rate=float((arr > 0).mean()),
            mean_hits=float(arr.mean()),
            mean_hits_answered=float(answered.mean()) if answered.size else 0.0,
        )


def _all_hits(sessions: Sequence[SessionRecord], sha1: Optional[bool] = None) -> List[int]:
    return [
        q.hits
        for s in sessions
        for q in s.queries
        if sha1 is None or q.sha1 == sha1
    ]


def hit_rate_summary(
    sessions: Sequence[SessionRecord], sha1: Optional[bool] = None
) -> HitRateSummary:
    """Overall hit statistics; ``sha1`` restricts to (non-)source searches."""
    return HitRateSummary.from_hits(_all_hits(sessions, sha1=sha1))


def hit_rate_by_region(sessions: Sequence[SessionRecord]) -> Dict[Region, HitRateSummary]:
    """Hit statistics split by the querying peer's region."""
    out: Dict[Region, HitRateSummary] = {}
    for region in MAJOR:
        hits = [q.hits for s in sessions if s.region is region for q in s.queries]
        if hits:
            out[region] = HitRateSummary.from_hits(hits)
    return out


def hits_ccdf(sessions: Sequence[SessionRecord]) -> Ccdf:
    """CCDF of responder counts over all queries."""
    hits = _all_hits(sessions)
    if not hits:
        raise ValueError("no queries in sessions")
    return empirical_ccdf([float(h) for h in hits])


def hit_rate_by_popularity_decile(
    sessions: Sequence[SessionRecord], n_bins: int = 10
) -> List[Tuple[int, float, float]]:
    """Hit rate as a function of the query's same-day popularity decile.

    Returns ``(decile, hit_rate, mean_hits)`` rows, decile 1 being the
    most popular queries of each day.  A positive popularity/hit-rate
    correlation is the expected signature: replication follows demand.
    """
    if n_bins < 2:
        raise ValueError("need at least 2 bins")
    daily = daily_region_counts(sessions)
    # Rank every query string per day by observed count (across regions).
    day_rank: Dict[int, Dict[str, int]] = {}
    for day, per_region in daily.items():
        totals: Dict[str, int] = {}
        for counter in per_region.values():
            for query, count in counter.items():
                totals[query] = totals.get(query, 0) + count
        ranked = sorted(totals, key=totals.get, reverse=True)
        day_rank[day] = {query: idx for idx, query in enumerate(ranked)}
    bins: List[List[int]] = [[] for _ in range(n_bins)]
    for session in sessions:
        for query in session.queries:
            day = int(query.timestamp // 86400.0)
            ranks = day_rank.get(day)
            if not ranks or query.keywords not in ranks:
                continue
            position = ranks[query.keywords] / max(len(ranks), 1)
            bins[min(int(position * n_bins), n_bins - 1)].append(query.hits)
    rows: List[Tuple[int, float, float]] = []
    for index, hits in enumerate(bins, start=1):
        if not hits:
            continue
        arr = np.asarray(hits, dtype=float)
        rows.append((index, float((arr > 0).mean()), float(arr.mean())))
    return rows
