"""Figure 1: geographic distribution of one-hop vs. all peers by hour.

The one-hop curve counts connected sessions active in each hour; the
all-peers curve counts the IP addresses observed in PONG and QUERYHIT
messages (Section 3.4).  The paper's representativeness argument is that
the two curves nearly coincide per region.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

import numpy as np

from repro.core.regions import Region, hour_of_day
from repro.measurement import Trace

from .common import MAJOR

__all__ = ["GeographicProfile", "geographic_distribution"]


@dataclass
class GeographicProfile:
    """Hourly fraction of peers per region, one-hop and all-peers."""

    hours: np.ndarray  # 0..23
    one_hop: Dict[Region, np.ndarray]
    all_peers: Dict[Region, np.ndarray]

    def max_divergence(self, region: Region) -> float:
        """Largest |one_hop - all_peers| gap over the day (representativeness)."""
        return float(np.max(np.abs(self.one_hop[region] - self.all_peers[region])))


def geographic_distribution(trace: Trace) -> GeographicProfile:
    """Compute the Figure 1 curves from a trace.

    One-hop peers are binned by session start hour; all-peers samples
    come from the PONG and QUERYHIT observations.  Fractions in each
    hour bin are normalized over all four regions (OTHER included in the
    denominator, as in the paper where the three curves sum to < 1).
    """
    hours = np.arange(24)
    one_hop_counts = {r: np.zeros(24) for r in Region}
    all_counts = {r: np.zeros(24) for r in Region}
    for session in trace.sessions:
        one_hop_counts[session.region][hour_of_day(session.start)] += 1
    for pong in trace.pongs:
        all_counts[pong.region][hour_of_day(pong.timestamp)] += 1
    for hit in trace.queryhits:
        all_counts[hit.region][hour_of_day(hit.timestamp)] += 1

    def normalize(counts: Dict[Region, np.ndarray]) -> Dict[Region, np.ndarray]:
        total = sum(counts.values())
        total = np.maximum(total, 1.0)
        return {r: counts[r] / total for r in Region}

    one_hop = normalize(one_hop_counts)
    all_peers = normalize(all_counts)
    return GeographicProfile(
        hours=hours,
        one_hop={r: one_hop[r] for r in MAJOR},
        all_peers={r: all_peers[r] for r in MAJOR},
    )
