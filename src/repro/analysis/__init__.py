"""Per-figure/table characterizations of a (filtered) trace."""

from .active import (
    ActiveSession,
    active_sessions,
    first_query_ccdf,
    interarrival_ccdf,
    queries_per_session_ccdf,
    queries_per_session_ccdf_unfiltered,
    time_after_last_ccdf,
)
from .availability import (
    ChurnProfile,
    aggregate_availability,
    churn_by_hour,
    concurrency_curve,
)
from .caching import LruResultCache, cache_hit_rates, query_stream
from .common import MAJOR, session_start_hour, session_start_period, sessions_by_region
from .correlations import CorrelationResult, session_correlations, spearman
from .geographic import GeographicProfile, geographic_distribution
from .hits import (
    HitRateSummary,
    hit_rate_by_popularity_decile,
    hit_rate_by_region,
    hit_rate_summary,
    hits_ccdf,
)
from .load import LoadProfile, peak_period_table, query_load
from .passive import (
    PassiveFractionProfile,
    passive_duration_ccdf_by_period,
    passive_duration_ccdf_by_region,
    passive_fraction_by_hour,
)
from .popularity import (
    PopularityFit,
    daily_class_ranking,
    daily_region_counts,
    drift_counts,
    drift_distribution,
    fit_class_popularity,
    popularity_pmf,
    query_class_sizes,
)
from .shared_files import SharedFilesProfile, shared_files_distribution
from .streaming import (
    ActiveArrays,
    PassiveDurations,
    StreamingActive,
    StreamingAnalysis,
    StreamingGeographic,
    StreamingPassiveDurations,
    StreamingPassiveFraction,
    StreamingPopularity,
    StreamingQueryLoad,
    StreamingSharedFiles,
    run_streaming,
)
from .common import StreamingReducer
from .summary import table1, table1_comparison, table2, table2_comparison

__all__ = [
    "ChurnProfile", "aggregate_availability", "churn_by_hour", "concurrency_curve",
    "LruResultCache", "cache_hit_rates", "query_stream",
    "CorrelationResult", "session_correlations", "spearman",
    "ActiveSession", "active_sessions", "first_query_ccdf", "interarrival_ccdf",
    "queries_per_session_ccdf", "queries_per_session_ccdf_unfiltered", "time_after_last_ccdf",
    "MAJOR", "session_start_hour", "session_start_period", "sessions_by_region",
    "GeographicProfile", "geographic_distribution",
    "HitRateSummary", "hit_rate_by_popularity_decile", "hit_rate_by_region",
    "hit_rate_summary", "hits_ccdf",
    "LoadProfile", "peak_period_table", "query_load",
    "PassiveFractionProfile", "passive_duration_ccdf_by_period",
    "passive_duration_ccdf_by_region", "passive_fraction_by_hour",
    "PopularityFit", "daily_class_ranking", "daily_region_counts", "drift_counts",
    "drift_distribution", "fit_class_popularity", "popularity_pmf", "query_class_sizes",
    "SharedFilesProfile", "shared_files_distribution",
    "ActiveArrays", "PassiveDurations", "StreamingActive", "StreamingAnalysis",
    "StreamingGeographic", "StreamingPassiveDurations", "StreamingPassiveFraction",
    "StreamingPopularity", "StreamingQueryLoad", "StreamingReducer",
    "StreamingSharedFiles", "run_streaming",
    "table1", "table1_comparison", "table2", "table2_comparison",
]
