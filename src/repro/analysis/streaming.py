"""Single-pass streaming accumulators for the Figure 1-11 analyses.

Each reducer here implements the
:class:`~repro.analysis.common.StreamingReducer` protocol: it folds one
filtered trace chunk at a time into running state whose cross-chunk
merge is *exact* -- integer counts, per-session scalars, and array
concatenations in chunk order -- and finalizes into the same product the
in-memory analysis functions compute over the whole trace at once.

Exactness relies on two properties of the sharded pipeline:

* shards arrive in canonical global order (a shard's sessions all start
  before the next shard's), so concatenating per-chunk per-session
  arrays reproduces the full-trace session order, and
* every accumulated quantity is either order-independent
  (:func:`empirical_ccdf` sorts; ``Counter`` merges sum; time-of-day
  bins hold exact float64 integer counts) or per-session (medians,
  first/last anchors) and therefore local to one chunk.

The streamed outputs are asserted *equal* -- not approximately equal --
to the in-memory path by the equivalence suite and the paper-scale
bench.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Union

import numpy as np

from repro.core.regions import KeyPeriod, Region
from repro.core.stats import (
    Ccdf,
    TimeOfDayBinner,
    empirical_ccdf,
    ratio_binner_fraction,
)
from repro.filtering.columnar import ColumnarFilterResult
from repro.filtering.pipeline import FilterReport
from repro.filtering.streaming import StreamingFilter
from repro.measurement.columnar import REGION_CODE, REGION_ORDER, ColumnarTrace

from .active import ActiveSession
from .common import MAJOR
from .correlations import CorrelationResult, spearman
from .geographic import GeographicProfile
from .load import LoadProfile
from .passive import PassiveFractionProfile, _passive_columns
from .popularity import _daily_region_counts_columnar
from .shared_files import SharedFilesProfile

__all__ = [
    "ActiveArrays",
    "PassiveDurations",
    "StreamingActive",
    "StreamingAnalysis",
    "StreamingGeographic",
    "StreamingPassiveDurations",
    "StreamingPassiveFraction",
    "StreamingPopularity",
    "StreamingQueryLoad",
    "StreamingSharedFiles",
    "run_streaming",
]

_N_REGIONS = len(REGION_ORDER)


def _hour_of_day_array(timestamps: np.ndarray) -> np.ndarray:
    """Vectorized :func:`repro.core.regions.hour_of_day`."""
    return ((np.asarray(timestamps) % 86400.0) // 3600.0).astype(np.int64)


# -- Figure 1: geographic distribution ----------------------------------------

class StreamingGeographic:
    """Streaming :func:`~repro.analysis.geographic.geographic_distribution`.

    Pure integer (region, hour) counts over all sessions and all
    PONG/QUERYHIT observations; the normalization happens once at
    finalize, on totals identical to the in-memory pass.
    """

    def __init__(self) -> None:
        self._one_hop = np.zeros((_N_REGIONS, 24), dtype=np.int64)
        self._all = np.zeros((_N_REGIONS, 24), dtype=np.int64)

    def update(self, block: ColumnarFilterResult) -> None:
        trace = block.trace
        if trace.n_sessions:
            code = np.asarray(trace.session_region, dtype=np.int64)
            np.add.at(self._one_hop, (code, _hour_of_day_array(trace.session_start)), 1)
        for prefix in ("pong", "hit"):
            ts = np.asarray(getattr(trace, prefix + "_timestamp"))
            if ts.size:
                code = np.asarray(getattr(trace, prefix + "_region"), dtype=np.int64)
                np.add.at(self._all, (code, _hour_of_day_array(ts)), 1)

    def finalize(self) -> GeographicProfile:
        def normalize(counts: np.ndarray) -> np.ndarray:
            total = np.maximum(counts.astype(float).sum(axis=0), 1.0)
            return counts.astype(float) / total

        one_hop = normalize(self._one_hop)
        all_peers = normalize(self._all)
        code = {r: REGION_CODE[r] for r in MAJOR}
        return GeographicProfile(
            hours=np.arange(24),
            one_hop={r: one_hop[code[r]] for r in MAJOR},
            all_peers={r: all_peers[code[r]] for r in MAJOR},
        )


# -- Figure 2: shared files ----------------------------------------------------

class StreamingSharedFiles:
    """Streaming :func:`~repro.analysis.shared_files.shared_files_distribution`."""

    def __init__(self, max_files: int = 100) -> None:
        if max_files < 1:
            raise ValueError(f"max_files must be >= 1, got {max_files}")
        self.max_files = max_files
        self._one_hop = np.zeros(max_files + 1, dtype=np.int64)
        self._all = np.zeros(max_files + 1, dtype=np.int64)
        self._n_one_hop = 0
        self._n_all = 0

    def _fold(self, hist: np.ndarray, values: np.ndarray) -> int:
        values = np.asarray(values)
        small = values[values <= self.max_files]
        if small.size:
            hist += np.bincount(small, minlength=self.max_files + 1)
        return int(values.size)

    def update(self, block: ColumnarFilterResult) -> None:
        self._n_one_hop += self._fold(self._one_hop, block.trace.session_shared_files)
        self._n_all += self._fold(self._all, block.trace.pong_shared_files)

    def finalize(self) -> SharedFilesProfile:
        if self._n_one_hop == 0 or self._n_all == 0:
            raise ValueError("trace has no sessions or no PONG samples")
        return SharedFilesProfile(
            counts=np.arange(self.max_files + 1),
            one_hop=self._one_hop.astype(float) / self._n_one_hop,
            all_peers=self._all.astype(float) / self._n_all,
        )


# -- Figure 3: query load -------------------------------------------------------

class StreamingQueryLoad:
    """Streaming :func:`~repro.analysis.load.query_load` (raw hop-1 stream)."""

    def __init__(self, bin_minutes: int = 30) -> None:
        self._binners = {r: TimeOfDayBinner(bin_seconds=bin_minutes * 60) for r in MAJOR}

    def update(self, block: ColumnarFilterResult) -> None:
        trace = block.trace
        if not trace.n_queries:
            return
        qts = np.asarray(trace.query_timestamp)
        code = np.asarray(trace.session_region)[block.session_index]
        for region in MAJOR:
            mask = code == REGION_CODE[region]
            if mask.any():
                self._binners[region].add_array(qts[mask])

    def finalize(self) -> Dict[Region, LoadProfile]:
        profiles: Dict[Region, LoadProfile] = {}
        for region, binner in self._binners.items():
            if not binner.days:
                raise ValueError(f"no queries observed for {region}")
            profiles[region] = LoadProfile(
                region=region,
                bin_hours=binner.bin_starts_hours(),
                average=binner.average(),
                minimum=binner.minimum(),
                maximum=binner.maximum(),
            )
        return profiles


# -- Figure 4: passive fraction by hour -----------------------------------------

class StreamingPassiveFraction:
    """Streaming :func:`~repro.analysis.passive.passive_fraction_by_hour`."""

    def __init__(self) -> None:
        self._passive = {r: TimeOfDayBinner() for r in MAJOR}
        self._total = {r: TimeOfDayBinner() for r in MAJOR}

    def update(self, block: ColumnarFilterResult) -> None:
        trace = block.trace
        rows = np.flatnonzero(block.session_mask)
        if not rows.size:
            return
        kept = np.bincount(
            block.session_index[block.query_mask], minlength=trace.n_sessions
        )
        start = np.asarray(trace.session_start)[rows]
        code = np.asarray(trace.session_region)[rows]
        # Active sessions contribute 0.0 so every day with sessions is
        # present in both binners (the loop path does the same).
        passive = (kept[rows] == 0).astype(np.float64)
        for region in MAJOR:
            mask = code == REGION_CODE[region]
            if mask.any():
                self._total[region].add_array(start[mask])
                self._passive[region].add_array(start[mask], passive[mask])

    def finalize(self) -> Dict[Region, PassiveFractionProfile]:
        profiles: Dict[Region, PassiveFractionProfile] = {}
        for region in MAJOR:
            if not self._total[region].days:
                continue
            avg, lo, hi = ratio_binner_fraction(self._passive[region], self._total[region])
            profiles[region] = PassiveFractionProfile(
                region=region,
                bin_hours=self._total[region].bin_starts_hours(),
                average=avg,
                minimum=lo,
                maximum=hi,
            )
        return profiles


# -- Figure 5: passive durations --------------------------------------------------

@dataclass
class PassiveDurations:
    """(region, start, duration) columns of every passive rule-3 survivor."""

    region_code: np.ndarray
    start: np.ndarray
    duration: np.ndarray

    def by_region(self) -> Dict[Region, Ccdf]:
        """Streamed :func:`~repro.analysis.passive.passive_duration_ccdf_by_region`."""
        out: Dict[Region, Ccdf] = {}
        for region in MAJOR:
            durations = self.duration[self.region_code == REGION_CODE[region]]
            if durations.size:
                out[region] = empirical_ccdf(durations)
        return out

    def by_period(self, region: Region) -> Dict[KeyPeriod, Ccdf]:
        """Streamed :func:`~repro.analysis.passive.passive_duration_ccdf_by_period`."""
        out: Dict[KeyPeriod, Ccdf] = {}
        in_region = self.region_code == REGION_CODE[region]
        hour = _hour_of_day_array(self.start)
        for period in KeyPeriod:
            durations = self.duration[in_region & (hour == period.start_hour)]
            if durations.size:
                out[period] = empirical_ccdf(durations)
        return out


class StreamingPassiveDurations:
    """Accumulates the Figure 5 passive-session columns chunk by chunk."""

    def __init__(self) -> None:
        self._parts: List[tuple] = []

    def update(self, block: ColumnarFilterResult) -> None:
        code, start, duration = _passive_columns(block)
        if code.size:
            self._parts.append(
                (np.asarray(code), np.asarray(start), np.asarray(duration))
            )

    def finalize(self) -> PassiveDurations:
        if not self._parts:
            return PassiveDurations(
                region_code=np.empty(0, np.int8),
                start=np.empty(0, np.float64),
                duration=np.empty(0, np.float64),
            )
        return PassiveDurations(
            region_code=np.concatenate([p[0] for p in self._parts]),
            start=np.concatenate([p[1] for p in self._parts]),
            duration=np.concatenate([p[2] for p in self._parts]),
        )


# -- Figures 6-9: active sessions ---------------------------------------------

_EMPTY_ACTIVE = {
    "region": np.empty(0, np.int8),
    "start": np.empty(0, np.float64),
    "duration": np.empty(0, np.float64),
    "n_queries": np.empty(0, np.int64),
    "n_unfiltered": np.empty(0, np.int64),
    "until_first": np.empty(0, np.float64),
    "after_last": np.empty(0, np.float64),
    "start_hour": np.empty(0, np.int64),
    "last_hour": np.empty(0, np.int64),
    "median_gap": np.empty(0, np.float64),
    "gaps": np.empty(0, np.float64),
}


@dataclass
class ActiveArrays:
    """Per-active-session columns: the array form of the ``ActiveSession``
    view list, carrying everything the Figure 6-9 CCDFs and the
    correlation measures need without per-session Python objects.

    ``gaps`` is the flat eligible-interarrival column in session-major
    order; session ``i`` owns ``n_queries[i] - 1`` consecutive gaps.
    """

    region: np.ndarray        # REGION_CODE per active session
    start: np.ndarray
    duration: np.ndarray
    n_queries: np.ndarray     # rules 4-5 applied (the paper's default)
    n_unfiltered: np.ndarray  # rules 1-3 only (Fig. 6c variant)
    until_first: np.ndarray
    after_last: np.ndarray
    start_hour: np.ndarray
    last_hour: np.ndarray
    median_gap: np.ndarray    # NaN for single-query sessions
    gaps: np.ndarray

    def __len__(self) -> int:
        return int(self.region.size)

    # Per-gap owner attributes, for the Figure 8 groupings.
    def _gap_owner(self, column: np.ndarray) -> np.ndarray:
        return np.repeat(column, np.maximum(self.n_queries - 1, 0))

    def _region_mask(self, region: Region) -> np.ndarray:
        return self.region == REGION_CODE[region]

    def _ccdf_by_region(self, values: np.ndarray, owner_region: np.ndarray) -> Dict[Region, Ccdf]:
        out: Dict[Region, Ccdf] = {}
        for region in MAJOR:
            selected = values[owner_region == REGION_CODE[region]]
            if selected.size:
                out[region] = empirical_ccdf(selected)
        return out

    def _ccdf_by_period(
        self,
        values: np.ndarray,
        owner_region: np.ndarray,
        owner_hour: np.ndarray,
        region: Region,
    ) -> Dict[KeyPeriod, Ccdf]:
        out: Dict[KeyPeriod, Ccdf] = {}
        in_region = owner_region == REGION_CODE[region]
        for period in KeyPeriod:
            selected = values[in_region & (owner_hour == period.start_hour)]
            if selected.size:
                out[period] = empirical_ccdf(selected)
        return out

    def _ccdf_by_class(
        self, values: np.ndarray, labels: tuple, masks: tuple, region: Region
    ) -> Dict[str, Ccdf]:
        out: Dict[str, Ccdf] = {}
        in_region = self._region_mask(region)
        for label, mask in zip(labels, masks):
            selected = values[in_region & mask]
            if selected.size:
                out[label] = empirical_ccdf(selected)
        return out

    # -- Figure 6 -----------------------------------------------------------

    def queries_per_session_ccdf(self, region: Optional[Region] = None):
        """Streamed :func:`~repro.analysis.active.queries_per_session_ccdf`."""
        if region is None:
            return self._ccdf_by_region(self.n_queries, self.region)
        return self._ccdf_by_period(self.n_queries, self.region, self.start_hour, region)

    def queries_per_session_ccdf_unfiltered(self) -> Dict[Region, Ccdf]:
        """Streamed :func:`~repro.analysis.active.queries_per_session_ccdf_unfiltered`."""
        return self._ccdf_by_region(self.n_unfiltered, self.region)

    # -- Figure 7 -----------------------------------------------------------

    def first_query_ccdf(self, region: Optional[Region] = None, by_query_class: bool = False):
        """Streamed :func:`~repro.analysis.active.first_query_ccdf`."""
        values = np.maximum(self.until_first, 1e-3)
        if region is None:
            return self._ccdf_by_region(values, self.region)
        if by_query_class:
            n = self.n_queries
            return self._ccdf_by_class(
                values, ("<3", "=3", ">3"), (n < 3, n == 3, n > 3), region
            )
        return self._ccdf_by_period(values, self.region, self.start_hour, region)

    # -- Figure 8 -----------------------------------------------------------

    def interarrival_ccdf(self, region: Optional[Region] = None, by_query_class: bool = False):
        """Streamed :func:`~repro.analysis.active.interarrival_ccdf`."""
        gap_region = self._gap_owner(self.region)
        if region is None:
            return self._ccdf_by_region(self.gaps, gap_region)
        if by_query_class:
            gap_n = self._gap_owner(self.n_queries)
            out: Dict[str, Ccdf] = {}
            in_region = gap_region == REGION_CODE[region]
            for label, mask in (
                ("=2", gap_n <= 2),
                ("3-7", (gap_n >= 3) & (gap_n <= 7)),
                (">7", gap_n > 7),
            ):
                selected = self.gaps[in_region & mask]
                if selected.size:
                    out[label] = empirical_ccdf(selected)
            return out
        return self._ccdf_by_period(
            self.gaps, gap_region, self._gap_owner(self.start_hour), region
        )

    # -- Figure 9 -----------------------------------------------------------

    def time_after_last_ccdf(self, region: Optional[Region] = None, by_query_class: bool = False):
        """Streamed :func:`~repro.analysis.active.time_after_last_ccdf`."""
        values = np.maximum(self.after_last, 1e-3)
        if region is None:
            return self._ccdf_by_region(values, self.region)
        if by_query_class:
            n = self.n_queries
            return self._ccdf_by_class(
                values, ("1", "2-7", ">7"), (n <= 1, (n >= 2) & (n <= 7), n > 7), region
            )
        return self._ccdf_by_period(values, self.region, self.last_hour, region)

    # -- correlations ---------------------------------------------------------

    def correlations(self, region: Optional[Region] = None) -> List[CorrelationResult]:
        """Streamed :func:`~repro.analysis.correlations.session_correlations`."""
        selected = (
            np.ones(len(self), dtype=bool) if region is None else self._region_mask(region)
        )
        with_gaps = selected & (self.n_queries >= 2)
        results: List[CorrelationResult] = []
        n_selected = int(selected.sum())
        if n_selected >= 3:
            results.append(
                CorrelationResult(
                    name="duration vs #queries",
                    rho=spearman(self.duration[selected], self.n_queries[selected]),
                    n=n_selected,
                )
            )
            results.append(
                CorrelationResult(
                    name="time-after-last vs #queries",
                    rho=spearman(self.after_last[selected], self.n_queries[selected]),
                    n=n_selected,
                )
            )
        n_gaps = int(with_gaps.sum())
        if n_gaps >= 3:
            results.append(
                CorrelationResult(
                    name="median interarrival vs #queries",
                    rho=spearman(self.median_gap[with_gaps], self.n_queries[with_gaps]),
                    n=n_gaps,
                )
            )
        return results

    # -- record views ---------------------------------------------------------

    def views(self) -> List[ActiveSession]:
        """Materialize the ``ActiveSession`` record views.

        The explicit opt-out of streaming for consumers that still want
        per-session objects; identical to
        ``active_sessions(apply_filters_columnar(trace))`` on the full
        trace.  Costs O(total gaps) Python objects -- avoid at paper
        scale.
        """
        period_by_hour = {p.start_hour: p for p in KeyPeriod}
        if not len(self):
            return []
        per_session_gaps = np.split(self.gaps, np.cumsum(self.n_queries - 1)[:-1])
        cols = [
            col.tolist()  # repro: noqa[MEM501] -- record views are the explicit opt-out of streaming
            for col in (
                self.region, self.start, self.duration, self.n_queries,
                self.n_unfiltered, self.until_first, self.after_last,
                self.start_hour, self.last_hour,
            )
        ]
        rows = zip(*cols[:7], per_session_gaps, *cols[7:])
        return [
            ActiveSession(
                region=REGION_ORDER[code],
                start=start,
                duration=duration,
                n_queries=n,
                n_queries_unfiltered=n_unfiltered,
                time_until_first=until_first,
                time_after_last=after_last,
                interarrivals=tuple(gaps.tolist()),  # repro: noqa[MEM501] -- one session's gaps, bounded
                start_period=period_by_hour.get(start_hour),
                last_query_hour=last_hour,
            )
            for (
                code, start, duration, n, n_unfiltered,
                until_first, after_last, gaps, start_hour, last_hour,
            ) in rows
        ]


class StreamingActive:
    """Accumulates :class:`ActiveArrays` one filtered chunk at a time.

    The per-chunk extraction mirrors
    :func:`~repro.analysis.active._active_sessions_columnar` reduction
    for reduction: everything per-session (first/last anchors, gap
    medians) is computed inside the owning chunk, so concatenation in
    chunk order reproduces the full-trace arrays exactly.
    """

    def __init__(self) -> None:
        self._chunks: List[Dict[str, np.ndarray]] = []

    def update(self, block: ColumnarFilterResult) -> None:
        trace = block.trace
        eligible_rows = np.flatnonzero(block.eligible_mask)
        if not eligible_rows.size:
            return
        seg = block.session_index[eligible_rows]
        ts = np.asarray(trace.query_timestamp)[eligible_rows]
        n_eligible = np.bincount(seg, minlength=trace.n_sessions)
        active_rows = np.flatnonzero(n_eligible > 0)
        first_ts = ts[np.searchsorted(seg, active_rows, side="left")]
        last_ts = ts[np.searchsorted(seg, active_rows, side="right") - 1]
        n_kept = np.bincount(
            block.session_index[block.query_mask], minlength=trace.n_sessions
        )
        start = np.asarray(trace.session_start)[active_rows]
        end = np.asarray(trace.session_end)[active_rows]
        counts = n_eligible[active_rows]
        gaps = np.diff(ts)[seg[1:] == seg[:-1]]
        per_session = np.split(gaps, np.cumsum(counts - 1)[:-1])
        medians = np.array(
            [np.median(g) if g.size else np.nan for g in per_session],
            dtype=np.float64,
        )
        self._chunks.append(
            {
                "region": np.asarray(trace.session_region)[active_rows],
                "start": start,
                "duration": end - start,
                "n_queries": counts.astype(np.int64),
                "n_unfiltered": n_kept[active_rows].astype(np.int64),
                "until_first": first_ts - start,
                "after_last": end - last_ts,
                "start_hour": _hour_of_day_array(start),
                "last_hour": _hour_of_day_array(last_ts),
                "median_gap": medians,
                "gaps": gaps,
            }
        )

    def finalize(self) -> ActiveArrays:
        if not self._chunks:
            return ActiveArrays(**_EMPTY_ACTIVE)
        return ActiveArrays(
            **{
                name: np.concatenate([chunk[name] for chunk in self._chunks])
                for name in _EMPTY_ACTIVE
            }
        )


# -- Figures 10-11 / Table 3: popularity ----------------------------------------

class StreamingPopularity:
    """Streaming :func:`~repro.analysis.popularity.daily_region_counts`.

    Per-chunk (day, region, query) counts merge by summation; finalize
    rebuilds each day's Counters with keys in ascending order, which is
    exactly the insertion order the full-trace ``np.unique`` reduction
    produces -- so even ``Counter.most_common()`` tie-breaking matches.
    """

    def __init__(self) -> None:
        self._acc: Dict[int, Dict[Region, Counter]] = {}

    def update(self, block: ColumnarFilterResult) -> None:
        for day, regions in _daily_region_counts_columnar(block).items():
            dst = self._acc.setdefault(day, {r: Counter() for r in MAJOR})
            for region in MAJOR:
                dst[region].update(regions[region])

    def finalize(self) -> Dict[int, Dict[Region, Counter]]:
        out: Dict[int, Dict[Region, Counter]] = {}
        for day in sorted(self._acc):
            rebuilt: Dict[Region, Counter] = {r: Counter() for r in MAJOR}
            for region in MAJOR:
                source = self._acc[day][region]
                for keyword in sorted(source):
                    rebuilt[region][keyword] = source[keyword]
            out[day] = rebuilt
        return out


# -- one-pass driver -------------------------------------------------------------

@dataclass
class StreamingAnalysis:
    """Everything the Figure 1-11 / Table 2-3 consumers need, from one pass."""

    report: FilterReport
    geographic: GeographicProfile
    shared_files: SharedFilesProfile
    load: Dict[Region, LoadProfile]
    passive_fraction: Dict[Region, PassiveFractionProfile]
    passive: PassiveDurations
    active: ActiveArrays
    daily: Dict[int, Dict[Region, Counter]]


def run_streaming(
    shards: Union[Iterable[ColumnarTrace], "object"],
    split_sessions: bool = False,
) -> StreamingAnalysis:
    """Filter and analyze a sharded trace in one bounded-memory pass.

    ``shards`` is a :class:`~repro.measurement.shards.ShardedTrace` (its
    shards are visited memory-mapped, one at a time) or any iterable of
    time-ordered :class:`ColumnarTrace` chunks.
    """
    chunks = shards.iter_shards() if hasattr(shards, "iter_shards") else iter(shards)
    filt = StreamingFilter(split_sessions=split_sessions)
    geographic = StreamingGeographic()
    shared_files = StreamingSharedFiles()
    load = StreamingQueryLoad()
    passive_fraction = StreamingPassiveFraction()
    passive = StreamingPassiveDurations()
    active = StreamingActive()
    popularity = StreamingPopularity()
    reducers = (
        geographic, shared_files, load, passive_fraction, passive, active, popularity,
    )
    for chunk in chunks:
        block = filt.push(chunk)
        if block is not None:
            for reducer in reducers:
                reducer.update(block)
    tail = filt.finish()
    if tail is not None:
        for reducer in reducers:
            reducer.update(tail)
    return StreamingAnalysis(
        report=filt.report,
        geographic=geographic.finalize(),
        shared_files=shared_files.finalize(),
        load=load.finalize(),
        passive_fraction=passive_fraction.finalize(),
        passive=passive.finalize(),
        active=active.finalize(),
        daily=popularity.finalize(),
    )
