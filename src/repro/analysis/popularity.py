"""Figures 10-11 and Table 3: query popularity, drift, and classes.

Methodology per Section 4.6:

* popularity must be ranked *per day* -- the hot set drifts (Fig. 10);
* queries split into seven disjoint geographic classes (Table 3);
* the per-day, per-class rank/frequency line is Zipf-like (Fig. 11),
  with the NA/EU intersection class showing a flattened head fit by a
  body and a steep tail.

All functions take rules-1-3 filtered sessions: the popularity measures
include the rule-4/5 queries ("we include these queries in the measures
of the query popularity distribution").
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.core.events import SessionRecord
from repro.core.fitting import ZipfFit, fit_zipf, fit_zipf_body_tail
from repro.core.parameters import QueryClassSizes
from repro.core.popularity import QueryClassId
from repro.core.regions import Region
from repro.filtering.columnar import ColumnarFilterResult
from repro.measurement.columnar import REGION_CODE, REGION_ORDER

from .common import MAJOR

#: Every popularity measure accepts the rules-1-3 filtered session
#: records, the columnar filter result (the vectorized path), or an
#: already-reduced daily dictionary (the streaming path's accumulator).
SessionsLike = Union[
    Sequence[SessionRecord],
    ColumnarFilterResult,
    Dict[int, Dict[Region, Counter]],
]

__all__ = [
    "daily_region_counts",
    "query_class_sizes",
    "daily_class_ranking",
    "popularity_pmf",
    "PopularityFit",
    "fit_class_popularity",
    "drift_counts",
    "drift_distribution",
]

_SECONDS_PER_DAY = 86400.0


def daily_region_counts(
    sessions: SessionsLike,
) -> Dict[int, Dict[Region, Counter]]:
    """Per-day, per-region query string counts.

    A query is attributed to the day containing its timestamp and the
    region of the session that issued it.  Given a
    :class:`~repro.filtering.ColumnarFilterResult` the binning runs as
    one ``np.unique`` reduction over a combined (day, region, query)
    key; given session records it walks them (both produce identical
    dictionaries).
    """
    if isinstance(sessions, dict):
        return sessions  # already reduced (streaming accumulator output)
    if isinstance(sessions, ColumnarFilterResult):
        return _daily_region_counts_columnar(sessions)
    out: Dict[int, Dict[Region, Counter]] = {}
    for session in sessions:
        if session.region not in MAJOR:
            continue
        for query in session.queries:
            day = int(query.timestamp // _SECONDS_PER_DAY)
            out.setdefault(day, {r: Counter() for r in MAJOR})[session.region][
                query.keywords
            ] += 1
    return out


def _daily_region_counts_columnar(
    result: ColumnarFilterResult,
) -> Dict[int, Dict[Region, Counter]]:
    """Array-reduction implementation over the rules-1-3 kept queries."""
    trace = result.trace
    rows = np.flatnonzero(result.query_mask)
    region_code = trace.session_region[result.session_index[rows]]
    major = np.isin(region_code, [REGION_CODE[r] for r in MAJOR])
    rows = rows[major]
    region_code = region_code[major].astype(np.int64)
    out: Dict[int, Dict[Region, Counter]] = {}
    if not rows.size:
        return out
    day = (trace.query_timestamp[rows] // _SECONDS_PER_DAY).astype(np.int64)
    keywords, kw_code = np.unique(trace.query_keywords[rows], return_inverse=True)
    n_regions = np.int64(len(REGION_ORDER))
    n_keywords = np.int64(keywords.size)
    combined = (day * n_regions + region_code) * n_keywords + kw_code
    unique, counts = np.unique(combined, return_counts=True)
    u_keyword = keywords[unique % n_keywords]
    u_region = (unique // n_keywords) % n_regions
    u_day = unique // (n_keywords * n_regions)
    for d, code, keyword, count in zip(
        u_day.tolist(), u_region.tolist(), u_keyword.tolist(), counts.tolist()
    ):
        out.setdefault(d, {r: Counter() for r in MAJOR})[REGION_ORDER[code]][
            keyword
        ] = count
    return out


def _window_sets(
    daily: Dict[int, Dict[Region, Counter]], days: Sequence[int]
) -> Dict[Region, Set[str]]:
    sets: Dict[Region, Set[str]] = {r: set() for r in MAJOR}
    for day in days:
        for region in MAJOR:
            sets[region].update(daily[day][region])
    return sets


def query_class_sizes(
    sessions: SessionsLike, period_days: int = 1
) -> QueryClassSizes:
    """Table 3: distinct-query class sizes for one period length.

    Computes the class sizes for every disjoint window of
    ``period_days`` days and averages them (the paper shows "typical
    periods").  Note the returned *_only fields are disjoint counts;
    Table 3's per-region rows are totals, recoverable as
    only + pair intersections + triple.
    """
    daily = daily_region_counts(sessions)
    days = sorted(daily)
    if len(days) < period_days:
        raise ValueError(f"trace spans {len(days)} days; need >= {period_days}")
    windows = [days[i : i + period_days] for i in range(0, len(days) - period_days + 1, period_days)]
    acc = np.zeros(7)
    for window in windows:
        sets = _window_sets(daily, window)
        na, eu, asia = sets[Region.NORTH_AMERICA], sets[Region.EUROPE], sets[Region.ASIA]
        triple = na & eu & asia
        na_eu = (na & eu) - triple
        na_as = (na & asia) - triple
        eu_as = (eu & asia) - triple
        acc += np.array(
            [
                len(na - eu - asia),
                len(eu - na - asia),
                len(asia - na - eu),
                len(na_eu),
                len(na_as),
                len(eu_as),
                len(triple),
            ]
        )
    acc = np.round(acc / len(windows)).astype(int)
    return QueryClassSizes(
        na_only=int(acc[0]), eu_only=int(acc[1]), as_only=int(acc[2]),
        na_eu=int(acc[3]), na_as=int(acc[4]), eu_as=int(acc[5]), all_three=int(acc[6]),
    )


def daily_class_ranking(
    daily: Dict[int, Dict[Region, Counter]], day: int, cls: QueryClassId
) -> List[Tuple[str, int]]:
    """The (query, count) ranking of one class on one day, descending.

    A query's class membership is decided by which regions issued it that
    day; its count is the total across the member regions.
    """
    counts = daily[day]
    na, eu, asia = (set(counts[r]) for r in MAJOR)
    membership = {
        QueryClassId.NA_ONLY: na - eu - asia,
        QueryClassId.EU_ONLY: eu - na - asia,
        QueryClassId.AS_ONLY: asia - na - eu,
        QueryClassId.NA_EU: (na & eu) - asia,
        QueryClassId.NA_AS: (na & asia) - eu,
        QueryClassId.EU_AS: (eu & asia) - na,
        QueryClassId.ALL: na & eu & asia,
    }[cls]
    totals = Counter()
    for region in MAJOR:
        for query in membership:
            if query in counts[region]:
                totals[query] += counts[region][query]
    return totals.most_common()


def popularity_pmf(
    sessions: SessionsLike,
    cls: QueryClassId,
    max_rank: int = 100,
    min_day_queries: int = 30,
) -> np.ndarray:
    """Figure 11: average per-day popularity pmf for a query class.

    Ranks queries separately on each day (preserving hot-set drift) and
    averages the normalized frequency at each rank across days.  Days
    with fewer than ``min_day_queries`` observations for the class are
    skipped: their head frequencies are pure sampling noise and would
    flatten-or-steepen the averaged line arbitrarily.
    """
    daily = daily_region_counts(sessions)
    if not daily:
        raise ValueError("no queries in sessions")
    per_rank: List[List[float]] = [[] for _ in range(max_rank)]
    for day in sorted(daily):
        ranking = daily_class_ranking(daily, day, cls)
        if not ranking:
            continue
        total = sum(count for _, count in ranking)
        if total < min_day_queries:
            continue
        for rank, (_, count) in enumerate(ranking[:max_rank]):
            per_rank[rank].append(count / total)
    pmf = np.array([np.mean(values) if values else 0.0 for values in per_rank])
    return pmf[pmf > 0]


@dataclass
class PopularityFit:
    """Zipf fit(s) of a class popularity pmf (Figure 11)."""

    pmf: np.ndarray
    fit: ZipfFit
    tail_fit: Optional[ZipfFit] = None  # present for the intersection class


def fit_class_popularity(
    sessions: SessionsLike,
    cls: QueryClassId,
    max_rank: int = 100,
    split_rank: Optional[int] = None,
    min_day_queries: int = 30,
) -> PopularityFit:
    """Fit the Figure 11 Zipf line(s) to a class's measured popularity."""
    pmf = popularity_pmf(sessions, cls, max_rank=max_rank, min_day_queries=min_day_queries)
    if pmf.size < 2:
        raise ValueError(f"class {cls} has too few ranked queries ({pmf.size})")
    if split_rank is not None and 1 < split_rank < pmf.size:
        body, tail = fit_zipf_body_tail(pmf, split_rank)
        return PopularityFit(pmf=pmf, fit=body, tail_fit=tail)
    return PopularityFit(pmf=pmf, fit=fit_zipf(pmf))


def drift_counts(
    sessions: SessionsLike,
    region: Region = Region.NORTH_AMERICA,
    rank_range: Tuple[int, int] = (1, 10),
    top_n: int = 100,
) -> List[int]:
    """Figure 10 statistic: per day-pair, how many of day n's queries at
    ranks ``rank_range`` appear in day n+1's top ``top_n``."""
    daily = daily_region_counts(sessions)
    days = sorted(daily)
    lo, hi = rank_range
    counts: List[int] = []
    for a, b in zip(days, days[1:]):
        if b != a + 1:
            continue  # only consecutive days
        rank_a = [q for q, _ in daily[a][region].most_common()]
        rank_b = [q for q, _ in daily[b][region].most_common()]
        subset = set(rank_a[lo - 1 : hi])
        counts.append(len(subset & set(rank_b[:top_n])))
    return counts


def drift_distribution(counts: Sequence[int], max_x: int = 4) -> np.ndarray:
    """CCDF over day pairs: fraction of days with > x queries retained,
    for x = 0..max_x (the Figure 10 axes)."""
    if not counts:
        raise ValueError("no day pairs")
    arr = np.asarray(counts)
    return np.array([float((arr > x).mean()) for x in range(max_x + 1)])
