"""Tables 1 and 2: overall trace characteristics and filter accounting."""

from __future__ import annotations

from typing import Dict

from repro.core.parameters import PAPER_TABLE1, PAPER_TABLE2
from repro.filtering import FilterReport
from repro.measurement import Trace

__all__ = ["table1", "table2", "table1_comparison", "table2_comparison"]

_TABLE1_ROWS = (
    "query_messages",
    "queryhit_messages",
    "ping_messages",
    "pong_messages",
    "direct_connections",
    "hop1_query_messages",
)


def table1(trace: Trace) -> Dict[str, int]:
    """Table 1 rows for a (synthesized) trace."""
    counters = dict(trace.counters)
    counters.setdefault("direct_connections", trace.n_connections)
    counters.setdefault("hop1_query_messages", trace.hop1_query_count())
    return {row: int(counters.get(row, 0)) for row in _TABLE1_ROWS}


def table2(report: FilterReport) -> Dict[str, int]:
    """Table 2 rows from a filter report."""
    return report.as_dict()


def table1_comparison(trace: Trace) -> Dict[str, Dict[str, float]]:
    """Paper vs. measured Table 1, with scale-free ratios.

    Absolute counts differ by the synthesis scale factor, so the
    comparison also reports each row normalized by the number of direct
    connections, which is scale-invariant.
    """
    ours = table1(trace)
    out: Dict[str, Dict[str, float]] = {}
    paper_conns = PAPER_TABLE1["direct_connections"]
    our_conns = max(ours["direct_connections"], 1)
    for row in _TABLE1_ROWS:
        out[row] = {
            "paper": PAPER_TABLE1[row],
            "ours": ours[row],
            "paper_per_connection": PAPER_TABLE1[row] / paper_conns,
            "ours_per_connection": ours[row] / our_conns,
        }
    return out


def table2_comparison(report: FilterReport) -> Dict[str, Dict[str, float]]:
    """Paper vs. measured Table 2, normalized by initial query/session counts."""
    ours = report.as_dict()
    out: Dict[str, Dict[str, float]] = {}
    for row, paper_value in PAPER_TABLE2.items():
        paper_base = PAPER_TABLE2[
            "initial_sessions" if "session" in row else "initial_queries"
        ]
        our_base = max(
            ours["initial_sessions" if "session" in row else "initial_queries"], 1
        )
        out[row] = {
            "paper": paper_value,
            "ours": ours[row],
            "paper_fraction": paper_value / paper_base,
            "ours_fraction": ours[row] / our_base,
        }
    return out
