"""Correlation structure of the workload (paper introduction, claim 4).

"We also find a significant correlation between session duration and the
number of queries issued during the session, but not between query
interarrival time and number of queries issued."  (For Europe, Section
4.5 later qualifies the second half: many-query EU sessions *do* have
shorter gaps.)

This module measures those correlations directly with Spearman rank
correlation (robust to the heavy tails of every quantity involved).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.regions import Region

from .active import ActiveSession

__all__ = ["CorrelationResult", "spearman", "session_correlations"]


@dataclass(frozen=True)
class CorrelationResult:
    """One correlation measurement."""

    name: str
    rho: float
    n: int

    @property
    def significant(self) -> bool:
        """Crude significance: |rho| beyond ~3 standard errors.

        The standard error of Spearman's rho under independence is
        approximately ``1 / sqrt(n - 1)``.
        """
        if self.n < 10:
            return False
        return abs(self.rho) > 3.0 / np.sqrt(self.n - 1)


def spearman(a: Sequence[float], b: Sequence[float]) -> float:
    """Spearman rank correlation coefficient."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.size != b.size:
        raise ValueError(f"length mismatch: {a.size} vs {b.size}")
    if a.size < 3:
        raise ValueError("need at least 3 observations")
    from scipy.stats import spearmanr

    rho, _ = spearmanr(a, b)
    return float(rho)


def session_correlations(
    views: Sequence[ActiveSession], region: Optional[Region] = None
) -> List[CorrelationResult]:
    """The paper's three headline correlations for active sessions.

    * duration vs. number of queries (expected: strong positive),
    * median interarrival gap vs. number of queries (expected: none for
      North America; negative for Europe).  The *median* gap is used
      because the gap distribution's Pareto tail has alpha < 1: the
      sample mean of more gaps grows mechanically with the sample size,
      which would fabricate a positive correlation.
    * time after last query vs. number of queries (expected: positive,
      Fig. 9b).
    """
    selected = [v for v in views if region is None or v.region is region]
    with_gaps = [v for v in selected if v.interarrivals]
    results: List[CorrelationResult] = []
    if len(selected) >= 3:
        results.append(
            CorrelationResult(
                name="duration vs #queries",
                rho=spearman([v.duration for v in selected],
                             [v.n_queries for v in selected]),
                n=len(selected),
            )
        )
        results.append(
            CorrelationResult(
                name="time-after-last vs #queries",
                rho=spearman([v.time_after_last for v in selected],
                             [v.n_queries for v in selected]),
                n=len(selected),
            )
        )
    if len(with_gaps) >= 3:
        results.append(
            CorrelationResult(
                name="median interarrival vs #queries",
                rho=spearman([float(np.median(v.interarrivals)) for v in with_gaps],
                             [v.n_queries for v in with_gaps]),
                n=len(with_gaps),
            )
        )
    return results
