"""Analysis-path throughput measurement, shared by benchmarks and smoke tests.

:func:`measure_analysis` times the performance-critical paths downstream
of synthesis -- warm trace loads (archival JSONL vs. columnar ``.npz``),
the rules 1-5 filter plus the analysis measures that sit on its output
(record-loop vs. vectorized columnar), and the ``run_all`` experiment
fan-out at different worker counts -- and returns a plain dict of
timing figures.  It also asserts that the vectorized filter reproduces
the record-loop Table 2 accounting *exactly*; a benchmark that got a
different answer faster would be worthless.

The real benchmark suite (``benchmarks/bench_analysis.py``) runs it at
bench scale; the tier-1 smoke test runs the same code at tiny scale so
the measurement path is exercised on every test run.  Both emit the
same ``BENCH_analysis.json`` report shape via
:func:`repro.synthesis.bench.write_bench_report`.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.analysis import active_sessions
from repro.analysis.popularity import daily_region_counts
from repro.core import host_block, peak_rss_mb
from repro.filtering import apply_filters, apply_filters_columnar
from repro.synthesis import SynthesisConfig, TraceCache, load_or_synthesize
from repro.synthesis.cache import effective_shard_count

__all__ = ["measure_analysis"]


def measure_analysis(
    days: float = 0.5,
    mean_arrival_rate: float = 0.35,
    seed: int = 20040315,
    run_all_jobs: Sequence[int] = (1, 4),
    cache_dir: Optional[Union[str, Path]] = None,
) -> dict:
    """Time warm trace loads, the filter+analysis stage, and ``run_all``.

    Returns a report dict shaped like the substrate one: per-run entries
    under ``"runs"`` with seconds and derived speedups.  ``cache_dir``
    holds the two cache trees (JSONL and ``.npz``) used for the load
    comparison; a temporary directory is required, so ``None`` raises.
    ``run_all_jobs`` lists the worker counts to fan the experiment
    registry out over (empty to skip that — it runs all 26 experiments
    per entry); the host core count is recorded so scaling numbers on
    small machines are interpretable.
    """
    if cache_dir is None:
        raise ValueError("measure_analysis needs a cache_dir for the load comparison")
    cache_dir = Path(cache_dir)
    config = SynthesisConfig(days=days, mean_arrival_rate=mean_arrival_rate, seed=seed)
    report = {
        "scale": {"days": days, "mean_arrival_rate": mean_arrival_rate, "seed": seed},
        "host": host_block(),
        "runs": {},
    }

    def timed(label, fn, repeat=3, **extra):
        best, value = None, None
        for _ in range(repeat):
            t0 = time.perf_counter()
            value = fn()
            elapsed = time.perf_counter() - t0
            best = elapsed if best is None else min(best, elapsed)
        report["runs"][label] = {"seconds": round(best, 4), **extra}
        return value

    # -- warm trace loads: archival JSONL vs. columnar .npz ---------------
    cache_jsonl = TraceCache(cache_dir / "jsonl", format="jsonl")
    cache_npz = TraceCache(cache_dir / "npz", format="npz")
    trace = load_or_synthesize(config, cache=cache_npz)
    cache_jsonl.store(config, trace)

    timed("trace_load_jsonl", lambda: cache_jsonl.load(config))
    columnar = timed("trace_load_npz", lambda: cache_npz.load_columnar(config))
    _speedup(report, "trace_load_npz", "trace_load_jsonl")

    # -- filter + analysis stage: record loop vs. vectorized columnar -----
    def loop_stage():
        filtered = apply_filters(trace.sessions)
        daily_region_counts(filtered.sessions)
        active_sessions(filtered)
        filtered.interarrival_times()
        return filtered

    def columnar_stage():
        cfiltered = apply_filters_columnar(columnar)
        daily_region_counts(cfiltered)
        active_sessions(cfiltered)
        cfiltered.interarrival_times()
        return cfiltered

    filtered = timed("filter_analysis_loop", loop_stage)
    cfiltered = timed("filter_analysis_columnar", columnar_stage)
    _speedup(report, "filter_analysis_columnar", "filter_analysis_loop")

    # The speedup only counts if the answers agree: Table 2 must be
    # reproduced exactly by the vectorized path.
    loop_table2 = filtered.report.as_dict()
    columnar_table2 = cfiltered.report.as_dict()
    if loop_table2 != columnar_table2:
        raise AssertionError(
            f"columnar filter diverged from the record loop: "
            f"{loop_table2} != {columnar_table2}"
        )
    report["table2"] = dict(loop_table2)
    report["table2_identical"] = True

    # -- run_all fan-out ---------------------------------------------------
    if run_all_jobs:
        from repro.experiments import ExperimentContext, run_all
        from repro.experiments.registry import ALL_EXPERIMENTS, effective_run_jobs

        baseline_label = None
        for jobs in run_all_jobs:
            label = f"run_all_jobs{int(jobs)}"
            ctx = ExperimentContext(config, cache=cache_npz)

            # The effective worker count (CPU- and task-capped) is what
            # actually ran; recording it keeps "jobs=8 was no faster"
            # interpretable on a 2-core host.
            timed(label, lambda c=ctx, j=int(jobs): run_all(c, jobs=j),
                  repeat=1, jobs=int(jobs),
                  effective_jobs=effective_run_jobs(int(jobs), len(ALL_EXPERIMENTS)))
            if baseline_label is None:
                baseline_label = label
            else:
                _speedup(report, label, baseline_label)

    # Memory joins speed in the perf trajectory: the high-water RSS over
    # all the runs above, and the shard grid the benched config implies.
    report["host"]["peak_rss_mb"] = round(peak_rss_mb(), 1)
    report["host"]["shard_count"] = effective_shard_count(config)
    return report


def _speedup(report: dict, fast_label: str, slow_label: str) -> None:
    fast = report["runs"][fast_label]["seconds"]
    slow = report["runs"][slow_label]["seconds"]
    report["runs"][fast_label][f"speedup_vs_{slow_label}"] = round(
        slow / max(fast, 1e-9), 1
    )
