"""Query-result caching analysis (the paper's closing systems claim).

Section 4.6 ends with: "As a consequence of the small Zipf parameters,
caching of responses will be more effective in systems that use
aggressive automated re-query features than in systems that only issue
queries on the users action."  This module quantifies that claim: an LRU
result cache with entry expiry is driven once by the raw query stream
(automated traffic included) and once by the filtered user stream.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.core.events import SessionRecord

__all__ = ["LruResultCache", "query_stream", "cache_hit_rates"]

#: Default result-cache entry lifetime; cached responses go stale fast in
#: a churning network -- 10 minutes matches the GUID routing horizon.
DEFAULT_TTL_SECONDS = 600.0


class LruResultCache:
    """LRU cache of query results with per-entry expiry."""

    def __init__(self, capacity: int, ttl: float = DEFAULT_TTL_SECONDS):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if ttl <= 0:
            raise ValueError(f"ttl must be positive, got {ttl}")
        self.capacity = capacity
        self.ttl = ttl
        self._entries: "OrderedDict[str, float]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def lookup(self, key: str, now: float) -> bool:
        """Look up (and on miss, insert) a query; returns hit/miss."""
        stored = self._entries.get(key)
        if stored is not None and now - stored <= self.ttl:
            self._entries.move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        if stored is not None:
            del self._entries[key]  # expired
        self._entries[key] = now
        self._entries.move_to_end(key)
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        return False

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __len__(self) -> int:
        return len(self._entries)


def query_stream(sessions: Iterable[SessionRecord]) -> List[Tuple[float, str]]:
    """Time-ordered (timestamp, normalized keywords) pairs of a trace."""
    stream = [
        (q.timestamp, q.keywords.lower()) for s in sessions for q in s.queries
    ]
    stream.sort()
    return stream


def cache_hit_rates(
    raw_sessions: Sequence[SessionRecord],
    user_sessions: Sequence[SessionRecord],
    capacities: Sequence[int] = (8, 64, 512),
    ttl: float = DEFAULT_TTL_SECONDS,
) -> List[Dict[str, float]]:
    """Cache hit rate rows for raw vs. filtered-user query streams."""
    raw = query_stream(raw_sessions)
    user = query_stream(user_sessions)
    if not raw or not user:
        raise ValueError("both streams must contain queries")
    rows = []
    for capacity in capacities:
        raw_cache = LruResultCache(capacity, ttl)
        for now, key in raw:
            raw_cache.lookup(key, now)
        user_cache = LruResultCache(capacity, ttl)
        for now, key in user:
            user_cache.lookup(key, now)
        rows.append({
            "capacity": capacity,
            "raw_hit_rate": raw_cache.hit_rate,
            "user_hit_rate": user_cache.hit_rate,
        })
    return rows
