"""Command-line interface: synthesize traces and reproduce experiments.

Usage examples::

    repro-p2p synthesize --days 2 --rate 0.3 --out trace.jsonl
    repro-p2p experiment F5 F6 --days 2 --rate 0.3
    repro-p2p experiment all
    repro-p2p generate --peers 200 --hours 4 --out workload.jsonl
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

__all__ = ["main", "build_parser", "ENGINE_BACKENDS"]

#: The two engine implementations every pipeline command exposes; the
#: single source of truth for ``--backend`` choices and help text.
ENGINE_BACKENDS = ("columnar", "event")
_BACKEND_HELP = (
    "engine: vectorized columnar fast path over repro.core.kernels "
    "(default) or the per-%s reference loop (identical output)"
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-p2p",
        description=(
            "Reproduction of 'Characterizing the Query Behavior in Peer-to-Peer "
            "File Sharing Systems' (IMC 2004)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    synth = sub.add_parser("synthesize", help="synthesize a measurement trace")
    _add_scale_args(synth)
    synth.add_argument("--out", help="write the trace as JSON lines to this path")

    exp = sub.add_parser("experiment", help="run paper-reproduction experiments")
    exp.add_argument("ids", nargs="+", help="experiment ids (T1, F5, TA2, ...) or 'all'")
    _add_scale_args(exp)
    exp.add_argument("--analysis-jobs", type=_positive_int, default=1,
                     help="worker processes for the experiment fan-out (the trace "
                          "is synthesized once and shared via the cache file)")

    figs = sub.add_parser("figures", help="render the paper's figures as SVG")
    figs.add_argument("--outdir", default="figures", help="output directory")
    _add_scale_args(figs)

    cmp_parser = sub.add_parser(
        "compare", help="compare two archived traces' headline measures"
    )
    cmp_parser.add_argument("trace_a", help="first trace (JSONL)")
    cmp_parser.add_argument("trace_b", help="second trace (JSONL)")
    cmp_parser.add_argument("--tolerance", type=float, default=0.10,
                            help="max CCDF gap considered 'close'")

    lint = sub.add_parser(
        "lint", help="run the determinism/parallel-safety linter (repro.lint)"
    )
    lint.add_argument("paths", nargs="*", default=["src"],
                      help="files or directories to lint (default: src)")
    lint.add_argument("--format", choices=("text", "json", "sarif"),
                      default="text", dest="output_format",
                      help="report format (sarif for code-scanning upload)")
    lint.add_argument("--select", metavar="CODES",
                      help="comma-separated rule codes to run (default: all)")
    lint.add_argument("--ignore", metavar="CODES",
                      help="comma-separated rule codes to skip")
    lint.add_argument("--baseline", metavar="PATH",
                      help="baseline file overriding the pyproject setting")
    lint.add_argument("--no-baseline", action="store_true",
                      help="ignore any baseline; report every finding")
    lint.add_argument("--write-baseline", action="store_true",
                      help="write current findings to the baseline file "
                           "instead of failing on them")
    lint.add_argument("--root", metavar="DIR",
                      help="project root (default: nearest pyproject.toml)")

    ov = sub.add_parser(
        "overlay",
        help="flood a generated workload through the Gnutella overlay simulator",
    )
    ov.add_argument("--peers", type=int, default=200, help="steady-state peer count")
    ov.add_argument("--hours", type=float, default=0.5, help="simulated hours of churn")
    ov.add_argument("--seed", type=int, default=11)
    ov.add_argument("--backend", choices=ENGINE_BACKENDS, default="columnar",
                    help="overlay " + _BACKEND_HELP % "message")
    ov.add_argument("--jobs", type=_positive_int, default=1,
                    help="worker processes for the columnar flood fan-out "
                         "(output is identical for any value)")
    ov.add_argument("--ttl", type=int, default=4, help="query flood TTL")
    ov.add_argument("--delta", type=float, default=30.0, metavar="SECONDS",
                    help="churn round width in simulated seconds (part of the "
                         "simulation identity; both backends honour it)")

    serve = sub.add_parser(
        "serve",
        help="stream the Fig. 12 workload to subscribers over TCP "
             "(one broadcast, then exit; see docs/SERVICE.md)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="TCP port (0 picks an ephemeral port, printed "
                            "on startup)")
    serve.add_argument("--peers", type=int, default=2000,
                       help="steady-state peer count behind the stream")
    serve.add_argument("--seed", type=int, default=404)
    serve.add_argument("--window-seconds", type=float, default=900.0,
                       help="generation window width in simulated seconds")
    serve.add_argument("--batch-sessions", type=int, default=2048,
                       help="sessions per data frame")
    serve.add_argument("--frames", type=_positive_int, default=64,
                       help="data frames in the broadcast")
    serve.add_argument("--codec", choices=("columnar", "jsonl"),
                       default="columnar",
                       help="data frame payload: binary columnar (fast path) "
                            "or JSON lines (debug/compat)")
    serve.add_argument("--jobs", type=_positive_int, default=1,
                       help="generator worker processes (stream bytes are "
                            "identical for any value)")
    serve.add_argument("--rate", type=float, default=None, metavar="EVENTS_PER_S",
                       help="token-bucket offered-load cap in events/second "
                            "(default: as fast as subscribers drain)")
    serve.add_argument("--burst", type=float, default=None, metavar="EVENTS",
                       help="token-bucket burst capacity (default: one "
                            "second of --rate)")
    serve.add_argument("--buffer-frames", type=_positive_int, default=16,
                       help="per-client queue budget; a full queue pauses "
                            "generation (backpressure, never growth)")
    serve.add_argument("--start-clients", type=_positive_int, default=1,
                       help="subscribers to wait for before streaming")
    serve.add_argument("--stamps", action="store_true",
                       help="interleave STAMP latency probes (makes the "
                            "stream nondeterministic; see docs/SERVICE.md)")

    lt = sub.add_parser(
        "loadtest",
        help="drive N concurrent subscribers against a running serve "
             "instance and report aggregate throughput/latency",
    )
    lt.add_argument("--host", default="127.0.0.1")
    lt.add_argument("--port", type=int, required=True)
    lt.add_argument("--clients", type=_positive_int, default=4)
    lt.add_argument("--json", dest="json_out", metavar="PATH",
                    help="also write the full report as JSON to this path")

    gen = sub.add_parser("generate", help="generate a synthetic workload (Fig. 12)")
    gen.add_argument("--peers", type=int, default=200, help="steady-state peer count")
    gen.add_argument("--hours", type=float, default=1.0, help="workload length in hours")
    gen.add_argument("--seed", type=int, default=42)
    gen.add_argument("--backend", choices=ENGINE_BACKENDS, default="columnar",
                     help="generation " + _BACKEND_HELP % "session")
    gen.add_argument("--jobs", type=_positive_int, default=1,
                     help="worker processes for the columnar shard fan-out "
                          "(output is identical for any value)")
    gen.add_argument("--out", help="write the workload to this path: .npz for the "
                                   "compressed columnar archive, anything else for "
                                   "JSON lines (streamed, one session per line)")

    return parser


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {text}")
    return value


def _add_scale_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--days", type=float, default=2.0, help="trace length in days")
    parser.add_argument("--rate", type=float, default=0.35, help="mean connections/second")
    parser.add_argument("--seed", type=int, default=20040315)
    parser.add_argument("--scenario", choices=("smoke", "laptop", "bench", "paper"),
                        help="named preset overriding --days/--rate")
    parser.add_argument("--jobs", type=_positive_int, default=1,
                        help="synthesis worker processes (shards the trace window)")
    parser.add_argument("--backend", choices=ENGINE_BACKENDS, default=None,
                        help="synthesis " + _BACKEND_HELP % "event")
    parser.add_argument("--cache-dir", metavar="DIR",
                        help="trace cache directory (default: $REPRO_P2P_CACHE or "
                             "~/.cache/repro-p2p/traces)")
    parser.add_argument("--cache-format", choices=("npz", "jsonl"), default="npz",
                        help="on-disk format for new cache entries: columnar .npz "
                             "(fast warm loads, the default) or archival JSONL")
    parser.add_argument("--no-cache", action="store_true",
                        help="always synthesize fresh; do not read or write the cache")
    parser.add_argument("--stream", action="store_true",
                        help="out-of-core pipeline: synthesize into time-ordered "
                             "shards and analyze with single-pass streaming "
                             "reducers (bounded memory; identical output)")
    parser.add_argument("--shard-hours", type=float, default=24.0, metavar="H",
                        help="shard width for --stream, in trace hours "
                             "(default: 24, one shard per day)")
    parser.add_argument("--max-rss-mb", type=float, metavar="MB",
                        help="fail (exit 3) if the process's peak resident set "
                             "exceeds this many MiB")


def _scale_config(args):
    from dataclasses import replace

    from repro.synthesis import SynthesisConfig, scenario_config

    jobs = getattr(args, "jobs", 1)
    if getattr(args, "scenario", None):
        config = scenario_config(args.scenario, seed=args.seed, jobs=jobs)
    else:
        config = SynthesisConfig(
            days=args.days, mean_arrival_rate=args.rate, seed=args.seed, jobs=jobs
        )
    backend = getattr(args, "backend", None)
    if backend is not None:
        config = replace(config, backend=backend)
    if getattr(args, "stream", False):
        config = replace(config, shard_days=args.shard_hours / 24.0)
    return config


def _check_rss(args) -> int:
    """Enforce ``--max-rss-mb``; returns the process exit code (0 or 3)."""
    from repro.core import peak_rss_mb

    limit = getattr(args, "max_rss_mb", None)
    if limit is None:
        return 0
    peak = peak_rss_mb()
    if peak > limit:
        print(f"peak RSS {peak:.0f} MiB exceeds --max-rss-mb {limit:g}",
              file=sys.stderr)
        return 3
    print(f"peak RSS {peak:.0f} MiB (budget {limit:g} MiB)")
    return 0


def _trace_cache(args):
    """The CLI's cache selection: None when disabled, else a TraceCache."""
    from repro.synthesis import TraceCache

    if getattr(args, "no_cache", False):
        return None
    return TraceCache(
        getattr(args, "cache_dir", None),
        format=getattr(args, "cache_format", "npz"),
    )


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "synthesize":
        return _cmd_synthesize(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "figures":
        return _cmd_figures(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "generate":
        return _cmd_generate(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "loadtest":
        return _cmd_loadtest(args)
    if args.command == "overlay":
        return _cmd_overlay(args)
    if args.command == "lint":
        return _cmd_lint(args)
    raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover


def _cmd_synthesize(args) -> int:
    from repro.synthesis import TraceSynthesizer, load_or_synthesize

    if args.stream:
        return _cmd_synthesize_stream(args)
    config = _scale_config(args)
    cache = _trace_cache(args)
    if cache is None:
        trace = TraceSynthesizer(config).run()
    else:
        # load() distinguishes a usable entry from a missing/corrupt one,
        # so the hit/miss line reflects what actually happened.
        trace = cache.load(config)
        if trace is None:
            print(f"trace cache miss: {cache.path_for(config)}")
            trace = load_or_synthesize(config, cache=cache)
        else:
            print(f"trace cache hit: {cache.path_for(config)}")
    print(
        f"synthesized {trace.n_connections} connections, "
        f"{trace.hop1_query_count()} hop-1 queries over {trace.duration_days:g} days"
    )
    for name, value in sorted(trace.counters.items()):
        print(f"  {name}: {value}")
    if args.out:
        trace.to_jsonl(args.out)
        print(f"trace written to {args.out}")
    return _check_rss(args)


def _cmd_synthesize_stream(args) -> int:
    """``synthesize --stream``: shards on disk, never the full trace in RAM."""
    import tempfile

    from repro.synthesis import load_or_synthesize_sharded

    config = _scale_config(args)
    cache = _trace_cache(args)
    workdir = None
    try:
        if cache is None:
            workdir = tempfile.mkdtemp(prefix="repro-p2p-stream-")
            sharded = load_or_synthesize_sharded(config, use_cache=False, workdir=workdir)
        else:
            hit = cache.load_sharded(config) is not None
            print(f"trace cache {'hit' if hit else 'miss'}: "
                  f"{cache.shards_path_for(config)}")
            sharded = load_or_synthesize_sharded(config, cache=cache)
        print(
            f"synthesized {sharded.n_connections} connections, "
            f"{sharded.hop1_query_count()} hop-1 queries over "
            f"{sharded.duration_days:g} days in {sharded.n_shards} shard(s)"
        )
        for name, value in sorted(sharded.counters.items()):
            print(f"  {name}: {value}")
        if args.out:
            # Explicit opt-out of bounded memory: concatenation is
            # byte-identical to the single-file synthesis output.
            sharded.concat().to_trace().to_jsonl(args.out)
            print(f"trace written to {args.out}")
        return _check_rss(args)
    finally:
        if workdir is not None:
            import shutil

            shutil.rmtree(workdir, ignore_errors=True)


def _cmd_experiment(args) -> int:
    from repro.experiments import ALL_EXPERIMENTS, ExperimentContext, run_many

    ids = list(ALL_EXPERIMENTS) if "all" in args.ids else args.ids
    unknown = [i for i in ids if i not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiment ids: {unknown}; known: {sorted(ALL_EXPERIMENTS)}",
              file=sys.stderr)
        return 2
    ctx = ExperimentContext(
        _scale_config(args), cache=_trace_cache(args) or False, stream=args.stream
    )
    for result in run_many(ids, ctx, jobs=args.analysis_jobs):
        print(result.render())
        print()
    return _check_rss(args)


def _cmd_figures(args) -> int:
    from repro.experiments import ExperimentContext
    from repro.viz import render_all

    ctx = ExperimentContext(
        _scale_config(args), cache=_trace_cache(args) or False, stream=args.stream
    )
    paths = render_all(ctx, args.outdir)
    for path in paths:
        print(path)
    print(f"rendered {len(paths)} figures into {args.outdir}")
    return 0


def _cmd_compare(args) -> int:
    from repro.core.validation import compare_models
    from repro.filtering import apply_filters
    from repro.measurement import Trace

    def measures(path):
        trace = Trace.from_jsonl(path)
        filtered = apply_filters(trace.sessions)
        durations = [s.duration for s in filtered.sessions if s.is_passive]
        counts = [float(s.query_count) for s in filtered.sessions if not s.is_passive]
        gaps = filtered.interarrival_times()
        return durations, counts, gaps

    dur_a, cnt_a, gap_a = measures(args.trace_a)
    dur_b, cnt_b, gap_b = measures(args.trace_b)
    verdicts = compare_models(
        {
            "passive session duration": (dur_a, dur_b),
            "queries per active session": (cnt_a, cnt_b),
            "query interarrival time": (gap_a, gap_b),
        },
        tolerance=args.tolerance,
    )
    divergent = 0
    for verdict in verdicts:
        print(f"  {verdict}")
        divergent += 0 if verdict.close else 1
    print(f"{len(verdicts) - divergent}/{len(verdicts)} measures within tolerance")
    return 1 if divergent else 0


def _cmd_lint(args) -> int:
    from repro.lint import (
        find_project_root,
        format_json,
        format_sarif,
        format_text,
        load_config,
        run_lint,
        write_baseline_file,
    )

    root = find_project_root(args.root)
    config = load_config(root).with_overrides(
        select=_codes_arg(args.select),
        ignore=_codes_arg(args.ignore),
        baseline=args.baseline,
    )
    baseline = {} if (args.no_baseline or args.write_baseline) else None
    report = run_lint(args.paths, root, config=config, baseline=baseline,
                      cwd=Path.cwd())
    if args.write_baseline:
        if not config.baseline:
            print("no baseline path configured (pyproject or --baseline)",
                  file=sys.stderr)
            return 2
        out = write_baseline_file(report, root / config.baseline)
        print(f"baseline with {len(report.findings)} finding(s) written to {out}")
        return 0
    if args.output_format == "json":
        print(format_json(report))
    elif args.output_format == "sarif":
        print(format_sarif(report))
    else:
        print(format_text(report))
    return report.exit_code


def _codes_arg(text: Optional[str]) -> Optional[List[str]]:
    """``--select``/``--ignore`` comma lists, normalized; None passes through."""
    if text is None:
        return None
    return [c.strip().upper() for c in text.split(",") if c.strip()]


def _cmd_generate(args) -> int:
    from repro.core import SyntheticWorkloadGenerator, to_npz

    generator = SyntheticWorkloadGenerator(
        n_peers=args.peers, seed=args.seed, backend=args.backend, jobs=args.jobs
    )
    duration = args.hours * 3600.0
    if args.backend == "columnar":
        workload = generator.generate_columnar(duration)
        n_sessions = workload.n_sessions
        n_active = int((~workload.session_passive).sum())
        n_queries = workload.n_queries
        sessions = None
    else:
        sessions = generator.generate(duration)
        n_sessions = len(sessions)
        n_active = sum(1 for s in sessions if not s.passive)
        n_queries = sum(s.query_count for s in sessions)
    print(
        f"generated {n_sessions} sessions ({n_active} active, "
        f"{n_queries} queries) from {args.peers} steady-state peers"
    )
    if args.out:
        if args.out.endswith(".npz"):
            if sessions is not None:
                from repro.core import ColumnarWorkload

                workload = ColumnarWorkload.from_sessions(sessions)
            to_npz(workload, args.out)
        else:
            # Stream one session at a time through the canonical JSONL
            # schema (workload_io.session_record), so from_jsonl reads
            # the file back; the columnar path never materializes the
            # full session list.
            from repro.core import to_jsonl

            stream = workload.iter_sessions() if sessions is None else iter(sessions)
            to_jsonl(stream, args.out)
        print(f"workload written to {args.out}")
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from repro.service import ServerConfig, StreamConfig, WorkloadStreamServer

    stream = StreamConfig(
        n_peers=args.peers,
        seed=args.seed,
        window_seconds=args.window_seconds,
        batch_sessions=args.batch_sessions,
        n_frames=args.frames,
        codec=args.codec,
        jobs=args.jobs,
    )
    config = ServerConfig(
        host=args.host,
        port=args.port,
        buffer_frames=args.buffer_frames,
        start_clients=args.start_clients,
        rate_events_per_s=args.rate,
        burst_events=args.burst,
        stamps=args.stamps,
    )

    async def _run() -> int:
        server = WorkloadStreamServer(stream, config)
        await server.start()
        print(f"serving workload stream on {args.host}:{server.port} "
              f"(waiting for {config.start_clients} subscriber(s))",
              flush=True)
        stats = await server.serve()
        print(f"broadcast complete: {stats.frames_produced} frames, "
              f"{stats.events_produced} events, {stats.bytes_produced} bytes "
              f"to {stats.clients_accepted} client(s) "
              f"({stats.clients_completed} complete, "
              f"{stats.clients_dropped} dropped, "
              f"{stats.backpressure_waits} backpressure pauses)")
        return 0

    try:
        return asyncio.run(_run())
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        print("interrupted", file=sys.stderr)
        return 130


def _cmd_loadtest(args) -> int:
    from repro.service import LoadtestConfig, run_loadtest_sync

    report = run_loadtest_sync(
        LoadtestConfig(host=args.host, port=args.port, clients=args.clients)
    )
    print(f"{report['clients']} client(s): {report['events_total']} events "
          f"({report['frames_total']} data frames, {report['bytes_total']} "
          f"bytes) in {report['seconds']} s")
    print(f"  aggregate throughput: {report['events_per_second']} events/s, "
          f"{report['mib_per_second']} MiB/s")
    latency = report["latency"]
    if latency:
        print(f"  end-to-end latency: p50 {latency['p50_ms']} ms, "
              f"p95 {latency['p95_ms']} ms, p99 {latency['p99_ms']} ms "
              f"({latency['samples']} samples)")
    else:
        print("  end-to-end latency: no STAMP probes (serve without --stamps)")
    if args.json_out:
        Path(args.json_out).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"  report written to {args.json_out}")
    if report["complete_clients"] != report["clients"]:
        print(f"only {report['complete_clients']}/{report['clients']} clients "
              f"saw the END frame", file=sys.stderr)
        return 1
    return 0


def _cmd_overlay(args) -> int:
    from dataclasses import replace

    from repro.gnutella.columnar_overlay import OverlayConfig, simulate_workload
    from repro.gnutella.overlay_bench import overlay_workload

    run_seconds = args.hours * 3600.0
    workload = overlay_workload(args.peers, run_seconds, seed=args.seed)
    config = replace(OverlayConfig(), ttl=args.ttl, delta_seconds=args.delta)
    result = simulate_workload(
        workload, run_seconds, config=config,
        backend=args.backend, jobs=args.jobs,
    )
    print(
        f"simulated {result.peers_simulated} peers over {run_seconds:g} s "
        f"in {result.n_rounds} rounds (backend={result.backend})"
    )
    print(
        f"  {result.n_queries} queries flooded: {result.messages_total} "
        f"messages, {int(result.query_hits.sum())} hits"
    )
    print(
        f"  monitor: {result.hop1_session.size} hop-1 captures, "
        f"{result.keepalive_pings} keepalive pings / "
        f"{result.keepalive_pongs} pongs"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
