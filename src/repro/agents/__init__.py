"""Ground-truth peer behaviour used to synthesize the measured trace."""

from .diurnal import ArrivalProcess, intensity_table, relative_intensity
from .population import (
    ULTRAPEER_FRACTION,
    PeerIdentity,
    PeerPopulation,
    sample_shared_files,
    sample_shared_files_batch,
)
from .user_model import SessionPlan, UserBehavior

__all__ = [
    "ArrivalProcess", "intensity_table", "relative_intensity",
    "ULTRAPEER_FRACTION", "PeerIdentity", "PeerPopulation",
    "sample_shared_files", "sample_shared_files_batch",
    "SessionPlan", "UserBehavior",
]
