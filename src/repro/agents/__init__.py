"""Ground-truth peer behaviour used to synthesize the measured trace."""

from .diurnal import ArrivalProcess, relative_intensity
from .population import (
    ULTRAPEER_FRACTION,
    PeerIdentity,
    PeerPopulation,
    sample_shared_files,
)
from .user_model import SessionPlan, UserBehavior

__all__ = [
    "ArrivalProcess", "relative_intensity",
    "ULTRAPEER_FRACTION", "PeerIdentity", "PeerPopulation", "sample_shared_files",
    "SessionPlan", "UserBehavior",
]
