"""Ground-truth user behaviour for trace synthesis.

The synthesized trace must contain *user* behaviour that, once the
client-software noise is filtered out (Section 3.3), exhibits the
distributions the paper measured.  The honest way to achieve that is to
generate the user layer from the paper's own fitted model
(:class:`~repro.core.model.WorkloadModel`) and layer the client
automation on top -- recovering the input distributions through the
measurement + filtering + fitting pipeline then validates the entire
reproduction end to end (the "closed loop" of DESIGN.md).

:class:`UserBehavior` produces one session *plan*: passive or active,
the intended duration, the user's query times and strings, and any
queries the user issued before connecting (which era clients re-send in
a quick burst after connecting -- filter rule 4's traffic source).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.core.model import WorkloadModel
from repro.core.popularity import QueryUniverse
from repro.core.regions import Region, hour_of_day, is_peak_hour

__all__ = ["SessionPlan", "UserBehavior"]

_SECONDS_PER_DAY = 86400.0


@dataclass
class SessionPlan:
    """Ground truth for one user session, before client expansion."""

    region: Region
    start: float
    duration: float
    passive: bool
    #: (offset from session start, query string) pairs, offset-sorted.
    queries: List[Tuple[float, str]] = field(default_factory=list)
    #: Queries the user issued before connecting (re-sent by the client).
    pre_connect_queries: List[str] = field(default_factory=list)

    @property
    def query_count(self) -> int:
        return len(self.queries)


class UserBehavior:
    """Samples ground-truth session plans from a workload model."""

    def __init__(
        self,
        model: Optional[WorkloadModel] = None,
        universe: Optional[QueryUniverse] = None,
        seed: int = 99,
        pre_connect_prob: float = 0.60,
        max_session_seconds: float = 40 * _SECONDS_PER_DAY,
    ):
        if not 0.0 <= pre_connect_prob <= 1.0:
            raise ValueError("pre_connect_prob must be a probability")
        self.model = model or WorkloadModel.paper()
        self.universe = universe or QueryUniverse()
        self.pre_connect_prob = pre_connect_prob
        self.max_session_seconds = float(max_session_seconds)
        self._rng = np.random.default_rng(seed)

    def plan_session(self, region: Region, start: float) -> SessionPlan:
        """One ground-truth session for a peer of ``region`` at ``start``."""
        rng = self._rng
        hour = hour_of_day(start)
        peak = is_peak_hour(region, start)
        if rng.random() < self.model.passive_fraction(region, hour):
            duration = self._cap(self.model.passive_duration(region, peak).sample(rng))
            return SessionPlan(region=region, start=start, duration=duration, passive=True)
        n_queries = max(1, int(math.ceil(self.model.queries_per_session(region).sample(rng))))
        first = self._cap(self.model.first_query(region, peak, n_queries).sample(rng))
        if n_queries > 1:
            gaps = np.clip(
                np.atleast_1d(
                    self.model.interarrival(region, peak, n_queries).sample(
                        rng, size=n_queries - 1
                    )
                ),
                0.0,
                self.max_session_seconds,
            )
            offsets = first + np.concatenate(([0.0], np.cumsum(gaps)))
        else:
            offsets = np.array([first])
        after = self._cap(self.model.last_query(region, peak, n_queries).sample(rng))
        # The fitted model describes *surviving* sessions (>= 64 s after
        # filter rule 3), so user sessions never undercut that floor.
        duration = min(max(float(offsets[-1]) + after, 64.5), self.max_session_seconds)
        offsets = np.minimum(offsets, duration)
        day = int((start + float(offsets[0])) // _SECONDS_PER_DAY)
        sampled = self.universe.sample_batch(rng, day=day, region=region, count=n_queries)
        queries = [(float(o), s.keywords) for o, s in zip(offsets, sampled)]
        plan = SessionPlan(
            region=region, start=start, duration=duration, passive=False, queries=queries
        )
        # The user may have been searching before this connection: those
        # queries exist in the user workload and surface as the client's
        # rule-4 re-query burst.
        if rng.random() < self.pre_connect_prob:
            count = 1 + int(rng.geometric(0.22))
            plan.pre_connect_queries = [
                s.keywords
                for s in self.universe.sample_batch(rng, day=day, region=region, count=count)
            ]
        return plan

    def _cap(self, value: float) -> float:
        return float(min(max(value, 0.0), self.max_session_seconds))
