"""Ground-truth user behaviour for trace synthesis.

The synthesized trace must contain *user* behaviour that, once the
client-software noise is filtered out (Section 3.3), exhibits the
distributions the paper measured.  The honest way to achieve that is to
generate the user layer from the paper's own fitted model
(:class:`~repro.core.model.WorkloadModel`) and layer the client
automation on top -- recovering the input distributions through the
measurement + filtering + fitting pipeline then validates the entire
reproduction end to end (the "closed loop" of DESIGN.md).

:class:`UserBehavior` produces one session *plan*: passive or active,
the intended duration, the user's query times and strings, and any
queries the user issued before connecting (which era clients re-send in
a quick burst after connecting -- filter rule 4's traffic source).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.core import parameters
from repro.core.kernels import group_slices, segmented_offsets_scatter
from repro.core.model import WorkloadModel
from repro.core.popularity import QueryUniverse
from repro.core.regions import Region, hour_of_day, is_peak_hour

__all__ = ["SessionPlan", "SessionPlanBatch", "UserBehavior"]

_SECONDS_PER_DAY = 86400.0

#: Region order shared by all batch APIs (enum declaration order).
_REGIONS: tuple = tuple(Region)


@dataclass
class SessionPlan:
    """Ground truth for one user session, before client expansion."""

    region: Region
    start: float
    duration: float
    passive: bool
    #: (offset from session start, query string) pairs, offset-sorted.
    queries: List[Tuple[float, str]] = field(default_factory=list)
    #: Queries the user issued before connecting (re-sent by the client).
    pre_connect_queries: List[str] = field(default_factory=list)

    @property
    def query_count(self) -> int:
        return len(self.queries)


@dataclass
class SessionPlanBatch:
    """Column-oriented :class:`SessionPlan` set (columnar fast path).

    Queries carry *codes* -- a class index into
    :data:`repro.core.popularity.CLASS_ORDER` plus a popularity rank --
    instead of strings; the synthesis engine gathers strings per
    (day, class) from the universe rankings at emit time.

    Ragged columns use CSR layout: session ``i`` owns flat rows
    ``q_offsets[i]:q_offsets[i+1]`` of ``q_time``/``q_cls``/``q_rank``
    (likewise ``pre_offsets`` for ``pre_cls``/``pre_rank``).  Passive
    sessions own zero rows.
    """

    region_code: np.ndarray
    start: np.ndarray
    passive: np.ndarray
    duration: np.ndarray
    n_queries: np.ndarray
    #: Day whose ranking resolves this session's query codes (the day of
    #: the first user query, matching :meth:`UserBehavior.plan_session`).
    sample_day: np.ndarray
    q_offsets: np.ndarray
    q_time: np.ndarray
    q_cls: np.ndarray
    q_rank: np.ndarray
    pre_offsets: np.ndarray
    pre_cls: np.ndarray
    pre_rank: np.ndarray

    def __len__(self) -> int:
        return int(self.start.shape[0])


class UserBehavior:
    """Samples ground-truth session plans from a workload model."""

    def __init__(
        self,
        model: Optional[WorkloadModel] = None,
        universe: Optional[QueryUniverse] = None,
        seed: int = 99,
        pre_connect_prob: float = 0.60,
        max_session_seconds: float = 40 * _SECONDS_PER_DAY,
    ):
        if not 0.0 <= pre_connect_prob <= 1.0:
            raise ValueError("pre_connect_prob must be a probability")
        self.model = model or WorkloadModel.paper()
        self.universe = universe or QueryUniverse()
        self.pre_connect_prob = pre_connect_prob
        self.max_session_seconds = float(max_session_seconds)
        self._rng = np.random.default_rng(seed)

    def plan_session(self, region: Region, start: float) -> SessionPlan:
        """One ground-truth session for a peer of ``region`` at ``start``."""
        rng = self._rng
        hour = hour_of_day(start)
        peak = is_peak_hour(region, start)
        if rng.random() < self.model.passive_fraction(region, hour):
            duration = self._cap(self.model.passive_duration(region, peak).sample(rng))
            return SessionPlan(region=region, start=start, duration=duration, passive=True)
        n_queries = max(1, int(math.ceil(self.model.queries_per_session(region).sample(rng))))
        first = self._cap(self.model.first_query(region, peak, n_queries).sample(rng))
        if n_queries > 1:
            gaps = np.clip(
                np.atleast_1d(
                    self.model.interarrival(region, peak, n_queries).sample(
                        rng, size=n_queries - 1
                    )
                ),
                0.0,
                self.max_session_seconds,
            )
            offsets = first + np.concatenate(
                ([0.0], np.cumsum(gaps, dtype=np.float64)))
        else:
            offsets = np.array([first])
        after = self._cap(self.model.last_query(region, peak, n_queries).sample(rng))
        # The fitted model describes *surviving* sessions (>= 64 s after
        # filter rule 3), so user sessions never undercut that floor.
        duration = min(max(float(offsets[-1]) + after, 64.5), self.max_session_seconds)
        offsets = np.minimum(offsets, duration)
        day = int((start + float(offsets[0])) // _SECONDS_PER_DAY)
        sampled = self.universe.sample_batch(rng, day=day, region=region, count=n_queries)
        queries = [(float(o), s.keywords) for o, s in zip(offsets, sampled)]
        plan = SessionPlan(
            region=region, start=start, duration=duration, passive=False, queries=queries
        )
        # The user may have been searching before this connection: those
        # queries exist in the user workload and surface as the client's
        # rule-4 re-query burst.
        if rng.random() < self.pre_connect_prob:
            count = 1 + int(rng.geometric(0.22))
            plan.pre_connect_queries = [
                s.keywords
                for s in self.universe.sample_batch(rng, day=day, region=region, count=count)
            ]
        return plan

    def plan_sessions_batch(
        self, region_codes: np.ndarray, starts: np.ndarray
    ) -> SessionPlanBatch:
        """Batched :meth:`plan_session` for the columnar fast path.

        Draws every conditional with array-sized RNG calls, grouping
        sessions by the exact conditioning keys the model dispatches on
        (region, peak/off-peak, and the Table A.3-A.5 query-count
        classes), so each session's marginals match the scalar path;
        only the RNG consumption *order* differs, yielding a different
        but equally-distributed realization (see METHODOLOGY.md).
        """
        rng = self._rng
        region_codes = np.asarray(region_codes, dtype=np.int8)
        starts = np.asarray(starts, dtype=np.float64)
        n = starts.size
        hours = ((starts % _SECONDS_PER_DAY) // 3600.0).astype(np.intp)
        peak_table = np.array(
            [[is_peak_hour(r, h * 3600.0) for h in range(24)] for r in _REGIONS],
            dtype=bool,
        )
        peak = peak_table[region_codes.astype(np.intp), hours]

        # Passive coin, with the (region, hour) fraction looked up once
        # per distinct pair (<= 96 model calls).
        frac = np.empty(n, dtype=np.float64)
        pair = region_codes.astype(np.int64) * 24 + hours
        for key in np.unique(pair):
            frac[pair == key] = self.model.passive_fraction(
                _REGIONS[int(key) // 24], int(key) % 24
            )
        passive = rng.random(n) < frac

        duration = np.empty(n, dtype=np.float64)
        n_queries = np.zeros(n, dtype=np.int64)
        sample_day = (starts // _SECONDS_PER_DAY).astype(np.int64)

        for rc in np.unique(region_codes[passive]):
            for pk in (False, True):
                mask = passive & (region_codes == rc) & (peak == pk)
                g = int(mask.sum())
                if not g:
                    continue
                draw = np.atleast_1d(
                    self.model.passive_duration(_REGIONS[int(rc)], bool(pk)).sample(
                        rng, size=g
                    )
                )
                duration[mask] = np.clip(draw, 0.0, self.max_session_seconds)

        act_idx = np.nonzero(~passive)[0]
        n_act = act_idx.size
        q_total = 0
        q_time = np.zeros(0, dtype=np.float64)
        q_cls = np.zeros(0, dtype=np.int8)
        q_rank = np.zeros(0, dtype=np.int64)
        pre_counts = np.zeros(n, dtype=np.int64)
        pre_cls = np.zeros(0, dtype=np.int8)
        pre_rank = np.zeros(0, dtype=np.int64)
        if n_act:
            rc_a = region_codes[act_idx]
            pk_a = peak[act_idx]
            nq = np.empty(n_act, dtype=np.int64)
            for rc in np.unique(rc_a):
                mask = rc_a == rc
                draw = np.atleast_1d(
                    self.model.queries_per_session(_REGIONS[int(rc)]).sample(
                        rng, size=int(mask.sum())
                    )
                )
                nq[mask] = np.maximum(1, np.ceil(draw)).astype(np.int64)
            ones = np.ones(n_act, dtype=np.int64)
            cap = self.max_session_seconds
            first = np.clip(
                self._grouped_conditional(
                    self.model.first_query, parameters.first_query_class,
                    rc_a, pk_a, nq, ones, rng,
                ),
                0.0, cap,
            )
            gaps = np.clip(
                self._grouped_conditional(
                    self.model.interarrival, parameters.interarrival_query_class,
                    rc_a, pk_a, nq, nq - 1, rng,
                ),
                0.0, cap,
            )
            after = np.clip(
                self._grouped_conditional(
                    self.model.last_query, parameters.last_query_class,
                    rc_a, pk_a, nq, ones, rng,
                ),
                0.0, cap,
            )

            q_total = int(nq.sum())
            # Offsets: first query at `first`, then the gap chain -- one
            # fused scatter + segmented cumulative sum.
            q_time = segmented_offsets_scatter(first, gaps, nq)
            last_offset = q_time[np.cumsum(nq) - 1]
            # Surviving sessions never undercut the 64 s rule-3 floor.
            dur_a = np.minimum(np.maximum(last_offset + after, 64.5), cap)
            q_time = np.minimum(q_time, np.repeat(dur_a, nq))
            duration[act_idx] = dur_a
            n_queries[act_idx] = nq
            sample_day[act_idx] = ((starts[act_idx] + first) // _SECONDS_PER_DAY).astype(
                np.int64
            )

            q_cls = np.empty(q_total, dtype=np.int8)
            q_rank = np.empty(q_total, dtype=np.int64)
            flat_rc = np.repeat(rc_a, nq)
            for rc in np.unique(rc_a):
                mask = flat_rc == rc
                cls_codes, ranks = self.universe.sample_batch_codes(
                    rng, _REGIONS[int(rc)], int(mask.sum())
                )
                q_cls[mask] = cls_codes
                q_rank[mask] = ranks

            pre_coin = rng.random(n_act) < self.pre_connect_prob
            k = int(pre_coin.sum())
            pre_counts_a = np.zeros(n_act, dtype=np.int64)
            if k:
                pre_counts_a[pre_coin] = 1 + rng.geometric(0.22, size=k)
            pre_counts[act_idx] = pre_counts_a
            pre_total = int(pre_counts_a.sum())
            pre_cls = np.empty(pre_total, dtype=np.int8)
            pre_rank = np.empty(pre_total, dtype=np.int64)
            flat_rc_pre = np.repeat(rc_a, pre_counts_a)
            for rc in np.unique(rc_a):
                mask = flat_rc_pre == rc
                g = int(mask.sum())
                if not g:
                    continue
                cls_codes, ranks = self.universe.sample_batch_codes(
                    rng, _REGIONS[int(rc)], g
                )
                pre_cls[mask] = cls_codes
                pre_rank[mask] = ranks

        q_offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(n_queries, out=q_offsets[1:])
        pre_offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(pre_counts, out=pre_offsets[1:])
        return SessionPlanBatch(
            region_code=region_codes,
            start=starts,
            passive=passive,
            duration=duration,
            n_queries=n_queries,
            sample_day=sample_day,
            q_offsets=q_offsets,
            q_time=q_time,
            q_cls=q_cls,
            q_rank=q_rank,
            pre_offsets=pre_offsets,
            pre_cls=pre_cls,
            pre_rank=pre_rank,
        )

    def _grouped_conditional(
        self,
        factory,
        class_fn,
        rc_a: np.ndarray,
        pk_a: np.ndarray,
        nq: np.ndarray,
        sizes: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Flat per-slot draws from a (region, peak, n)-conditioned factory.

        Each session contributes ``sizes[i]`` consecutive flat slots;
        sessions are grouped by (region, peak, ``class_fn(n)``) -- the
        keys both the paper model and fitted models dispatch on -- and
        each group gets one array-sized ``sample`` call.
        """
        sizes = np.asarray(sizes, dtype=np.int64)
        total = int(sizes.sum())
        out = np.zeros(total, dtype=np.float64)
        if total == 0:
            return out
        uniq_n, inv = np.unique(nq, return_inverse=True)
        labels = [class_fn(int(v)) for v in uniq_n.tolist()]
        uniq_labels = sorted(set(labels))
        lab_of_n = np.array([uniq_labels.index(l) for l in labels], dtype=np.int64)
        key = (rc_a.astype(np.int64) * 2 + pk_a.astype(np.int64)) * len(
            uniq_labels
        ) + lab_of_n[inv]
        flat_key = np.repeat(key, sizes)
        # Keys absent from flat_key have zero slots and draw nothing, so
        # grouping the flat rows visits exactly the drawing groups, in
        # the same ascending-key order as the masked loop it replaces.
        order, group_keys, bounds = group_slices(flat_key)
        for g in range(group_keys.size):
            idx = order[bounds[g]:bounds[g + 1]]
            i0 = int(np.nonzero(key == group_keys[g])[0][0])
            dist = factory(_REGIONS[int(rc_a[i0])], bool(pk_a[i0]), int(nq[i0]))
            out[idx] = np.atleast_1d(dist.sample(rng, size=idx.size)).astype(
                np.float64
            )
        return out

    def _cap(self, value: float) -> float:
        return float(min(max(value, 0.0), self.max_session_seconds))
