"""Diurnal connection-arrival model.

The measurement node sees a stream of incoming peer connections whose
rate varies with time of day: the total follows the aggregate activity
of the three regional populations (Figures 1 and 3).  This module turns
a target mean arrival rate into a time-varying Poisson process via
thinning, which the synthesizer samples.
"""

from __future__ import annotations

import math
from typing import Iterator, Optional

import numpy as np

from repro.core.parameters import geographic_mix
from repro.core.regions import Region, hour_of_day

__all__ = ["ArrivalProcess", "intensity_table", "relative_intensity"]


def relative_intensity(hour: int) -> float:
    """Connection-arrival intensity at ``hour`` relative to the daily mean.

    The aggregate diurnal swing at the measurement node is modest: the
    regional mixes shift (Fig. 1) but total connection churn varies by
    roughly +/-25% around the mean, peaking when North America (the
    dominant population) is awake.
    """
    mix = geographic_mix(hour)
    # Weight each region's share by how awake its population is.
    awake = {
        Region.NORTH_AMERICA: _awakeness(hour - 7),
        Region.EUROPE: _awakeness(hour),
        Region.ASIA: _awakeness(hour + 7),
        Region.OTHER: 1.0,
    }
    raw = sum(mix[r] * awake[r] for r in mix)
    return 0.75 + 0.5 * raw  # squash into [0.75, 1.25]


def _awakeness(local_hour: float) -> float:
    """0..1 activity level for a population at its local hour."""
    h = local_hour % 24
    return 0.5 - 0.5 * math.cos(2 * math.pi * (h - 4.0) / 24.0)


def intensity_table() -> np.ndarray:
    """``relative_intensity`` evaluated at every hour, as a length-24 array.

    The vectorized thinning path indexes this table with
    ``(t // 3600) % 24`` instead of calling :func:`relative_intensity`
    per candidate arrival.
    """
    return np.array([relative_intensity(h) for h in range(24)], dtype=float)


class ArrivalProcess:
    """Inhomogeneous Poisson connection arrivals via thinning.

    ``mean_rate`` is connections per second averaged over a day; the
    instantaneous rate is ``mean_rate * relative_intensity(hour)``.
    """

    def __init__(self, mean_rate: float, seed: int = 5):
        if mean_rate <= 0:
            raise ValueError(f"mean_rate must be positive, got {mean_rate}")
        self.mean_rate = float(mean_rate)
        self._rng = np.random.default_rng(seed)
        self._max_rate = self.mean_rate * 1.3  # envelope for thinning

    def arrivals(self, start: float, end: float) -> Iterator[float]:
        """Yield arrival timestamps in ``[start, end)`` in order."""
        if end <= start:
            raise ValueError(f"need end > start, got [{start}, {end})")
        t = start
        while True:
            t += self._rng.exponential(1.0 / self._max_rate)
            if t >= end:
                return
            rate = self.mean_rate * relative_intensity(hour_of_day(t))
            if self._rng.random() < rate / self._max_rate:
                yield t

    def arrival_times(self, start: float, end: float) -> np.ndarray:
        """All arrival timestamps in ``[start, end)``, batch-drawn.

        Same inhomogeneous Poisson process as :meth:`arrivals`, but the
        candidate gaps and thinning uniforms are drawn in blocks and the
        hourly intensity comes from a 24-entry lookup table, so the cost
        per arrival is a few array operations instead of two scalar RNG
        calls plus a trigonometric intensity evaluation.  The RNG stream
        consumption differs from the generator path, so the two methods
        produce different (equally distributed) realizations.
        """
        if end <= start:
            raise ValueError(f"need end > start, got [{start}, {end})")
        table = intensity_table() * (self.mean_rate / self._max_rate)
        accepted = []
        t = start
        while t < end:
            block = max(int((end - t) * self._max_rate * 1.1) + 16, 64)
            gaps = self._rng.exponential(1.0 / self._max_rate, size=block)
            times = t + np.cumsum(gaps)
            u = self._rng.random(block)
            hours = ((times % 86400.0) // 3600.0).astype(np.intp)
            keep = (u < table[hours]) & (times < end)
            accepted.append(times[keep])
            t = float(times[-1])
        return np.concatenate(accepted) if accepted else np.empty(0)
