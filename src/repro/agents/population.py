"""Peer population model: who connects, from where, sharing what.

Supplies the per-connection attributes the synthesized trace needs:

* geographic region, drawn from the Figure 1 time-of-day mix;
* a unique IP address inside the region's GeoIP blocks;
* a client implementation profile (market-share weighted);
* ultrapeer vs. leaf mode ("approximately 40% of the connections are
  from peers running in ultrapeer mode, and 60% are from leaf nodes",
  Section 3.1);
* a shared-files count matching the Figure 2 distribution, including the
  free-rider spike at zero shared files (Adar & Huberman, ref [1]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.parameters import geographic_mix_arrays
from repro.core.regions import Region
from repro.geoip import GeoIpDatabase, IpAllocator
from repro.gnutella.clients import (
    ClientProfile,
    choose_profile,
    choose_profile_indices,
    profile_attribute_arrays,
)

__all__ = [
    "PeerIdentity",
    "PeerIdentityBatch",
    "PeerPopulation",
    "ULTRAPEER_FRACTION",
    "sample_shared_files",
    "sample_shared_files_batch",
]

#: Fixed region-code order shared by the batch APIs (matches the
#: columnar trace backend's ``REGION_ORDER``: the enum declaration order).
REGIONS: tuple = tuple(Region)

#: Section 3.1: ~40% of direct connections come from ultrapeers.
ULTRAPEER_FRACTION = 0.40

#: Fraction of peers sharing zero files (free riders).  Figure 2 shows
#: the zero bin near 10%; Adar & Huberman report much higher free riding
#: by *download* behaviour -- we model the advertised-library statistic.
FREE_RIDER_FRACTION = 0.10


def sample_shared_files(rng: np.random.Generator, mean_files: float = 25.0) -> int:
    """Shared-library size per Figure 2.

    A point mass at zero (free riders) plus a geometric body produces
    the roughly log-linear decay of Figure 2 over 0-100 files.
    """
    if rng.random() < FREE_RIDER_FRACTION:
        return 0
    return int(rng.geometric(1.0 / mean_files))


def sample_shared_files_batch(
    rng: np.random.Generator, count: int, mean_files: float = 25.0
) -> np.ndarray:
    """``count`` draws from the Figure 2 library-size model at once."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    sizes = rng.geometric(1.0 / mean_files, size=count)
    sizes[rng.random(count) < FREE_RIDER_FRACTION] = 0
    return sizes


@dataclass(frozen=True)
class PeerIdentity:
    """Static attributes of one connecting peer."""

    ip: str
    region: Region
    profile: ClientProfile
    ultrapeer: bool
    shared_files: int


@dataclass
class PeerIdentityBatch:
    """Column-oriented :class:`PeerIdentity` set, one row per connection.

    ``region_code`` indexes :data:`REGIONS`; ``profile_index`` indexes
    the population's profile pool (gather parameters with
    :func:`~repro.gnutella.clients.profile_attribute_arrays`).
    """

    ip: np.ndarray
    region_code: np.ndarray
    profile_index: np.ndarray
    ultrapeer: np.ndarray
    shared_files: np.ndarray

    def __len__(self) -> int:
        return int(self.region_code.shape[0])


class PeerPopulation:
    """Factory for connecting-peer identities.

    A single population instance hands out unique IPs for the lifetime
    of a synthesized trace, so connection counts by unique IP (Table 1)
    are meaningful.
    """

    def __init__(
        self,
        seed: int = 2004,
        geoip: Optional[GeoIpDatabase] = None,
        profiles: Optional[tuple] = None,
        ip_counter_start: int = 0,
        ip_counter_limit: Optional[int] = None,
    ):
        """``ip_counter_start``/``ip_counter_limit`` forward to the
        :class:`~repro.geoip.IpAllocator` counter range, giving parallel
        trace shards disjoint address pools (see
        :mod:`repro.synthesis.synthesizer`)."""
        self.geoip = geoip or GeoIpDatabase()
        self.profiles = tuple(profiles) if profiles is not None else None
        self._allocator = IpAllocator(
            self.geoip, seed=seed,
            counter_start=ip_counter_start, counter_limit=ip_counter_limit,
        )
        self._rng = np.random.default_rng(seed)
        self._regions, _, self._mix_cum = geographic_mix_arrays()

    def region_at(self, hour: int) -> Region:
        """Draw a region from the Figure 1 mix for the given hour."""
        cum = self._mix_cum[int(hour) % 24]
        return self._regions[int(np.searchsorted(cum, self._rng.random()))]

    def allocate_ip(self, region: Region) -> str:
        """Hand out a fresh unique address in ``region``'s blocks.

        Public seam for consumers that sample peers outside the normal
        :meth:`spawn` path (e.g. the synthesizer's background PONG/
        QUERYHIT observations), so they share the population's
        uniqueness guarantee without touching allocator internals.
        """
        return self._allocator.allocate(region)

    def allocate_ips(self, region: Region, count: int) -> List[str]:
        """Batch form of :meth:`allocate_ip`."""
        return self._allocator.allocate_many(region, count)

    def sample_background_peer(self, hour: int) -> tuple:
        """(ip, region) of one wider-network peer observed at ``hour``,
        drawn from the same Figure 1 mix as directly connecting peers
        (the paper verifies one-hop peers are representative)."""
        region = self.region_at(hour)
        return self.allocate_ip(region), region

    def spawn(self, hour: int, region: Optional[Region] = None) -> PeerIdentity:
        """Create a new peer identity for a connection starting at ``hour``."""
        rng = self._rng
        region = region or self.region_at(hour)
        profile = choose_profile(rng, self.profiles)
        ultrapeer = profile.ultrapeer_capable and rng.random() < _ultrapeer_prob(profile)
        return PeerIdentity(
            ip=self._allocator.allocate(region),
            region=region,
            profile=profile,
            ultrapeer=ultrapeer,
            shared_files=sample_shared_files(rng),
        )

    def spawn_many(self, hour: int, count: int) -> List[PeerIdentity]:
        return [self.spawn(hour) for _ in range(count)]

    def allocate_ip_array(self, region: Region, count: int) -> np.ndarray:
        """Batch :meth:`allocate_ip` as a NumPy string array (same
        counters, so uniqueness spans both APIs)."""
        return self._allocator.allocate_array(region, count)

    def spawn_batch(self, times: np.ndarray) -> PeerIdentityBatch:
        """One identity per arrival time, drawn with batched RNG.

        The columnar form of :meth:`spawn`: regions come from the
        per-hour Figure 1 mix in one inverse-CDF pass, profiles from the
        market-share weights, the ultrapeer coin applies the same
        per-profile probability as the scalar path, and IPs are
        allocated per region in arrival order -- the ``k``-th arrival of
        a region gets the same address :meth:`spawn` would have handed
        it.
        """
        times = np.asarray(times, dtype=np.float64)
        n = times.size
        rng = self._rng
        hours = ((times % 86400.0) // 3600.0).astype(np.intp)
        region_code = (
            (rng.random(n)[:, None] > self._mix_cum[hours]).sum(axis=1).astype(np.int8)
        )
        profile_index = choose_profile_indices(
            rng, n, self.profiles if self.profiles is not None else None
        )
        pool = self.profiles if self.profiles is not None else None
        attrs = profile_attribute_arrays(pool)
        pool_profiles = tuple(pool) if pool is not None else None
        up_prob = np.array(
            [
                _ultrapeer_prob(p)
                for p in (pool_profiles or _default_profiles())
            ]
        )
        ultrapeer = attrs["ultrapeer_capable"][profile_index] & (
            rng.random(n) < up_prob[profile_index]
        )
        shared = sample_shared_files_batch(rng, n).astype(np.int64)
        ips = np.empty(n, dtype="U15")
        for code in np.unique(region_code):
            positions = np.nonzero(region_code == code)[0]
            ips[positions] = self._allocator.allocate_array(
                REGIONS[int(code)], positions.size
            )
        return PeerIdentityBatch(
            ip=ips,
            region_code=region_code,
            profile_index=profile_index,
            ultrapeer=ultrapeer,
            shared_files=shared,
        )


def _ultrapeer_prob(profile: ClientProfile) -> float:
    """Per-profile ultrapeer probability, normalized so the population
    hits the 40% aggregate of Section 3.1 given the default market mix."""
    capable_share = sum(p.market_share for p in _capable_profiles())
    if capable_share <= 0:
        return 0.0
    return min(1.0, ULTRAPEER_FRACTION / capable_share)


def _capable_profiles():
    from repro.gnutella.clients import CLIENT_PROFILES

    return [p for p in CLIENT_PROFILES if p.ultrapeer_capable]


def _default_profiles():
    from repro.gnutella.clients import CLIENT_PROFILES

    return CLIENT_PROFILES
