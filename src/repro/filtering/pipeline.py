"""The Section 3.3 filtering pipeline and Table 2 accounting.

Applies rules 1-3 in sequence to every one-hop session, then computes
the rule 4/5 interarrival eligibility, and reports exactly the rows of
Table 2 so the bench can print paper-vs-measured counts side by side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.events import QueryRecord, SessionRecord

from .rules import (
    rule1_sha1,
    rule2_duplicates,
    rule3_short_sessions,
    rule45_interarrival_marks,
)

__all__ = ["FilterReport", "FilterResult", "apply_filters"]


@dataclass
class FilterReport:
    """Table 2: queries/sessions removed by each rule."""

    initial_queries: int = 0
    initial_sessions: int = 0
    rule1_removed_queries: int = 0
    rule2_removed_queries: int = 0
    rule3_removed_queries: int = 0
    rule3_removed_sessions: int = 0
    final_queries: int = 0
    final_sessions: int = 0
    rule4_removed_queries: int = 0
    rule5_removed_queries: int = 0
    final_interarrival_queries: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "initial_queries": self.initial_queries,
            "initial_sessions": self.initial_sessions,
            "rule1_removed_queries": self.rule1_removed_queries,
            "rule2_removed_queries": self.rule2_removed_queries,
            "rule3_removed_queries": self.rule3_removed_queries,
            "rule3_removed_sessions": self.rule3_removed_sessions,
            "final_queries": self.final_queries,
            "final_sessions": self.final_sessions,
            "rule4_removed_queries": self.rule4_removed_queries,
            "rule5_removed_queries": self.rule5_removed_queries,
            "final_interarrival_queries": self.final_interarrival_queries,
        }


@dataclass
class FilterResult:
    """Output of the full pipeline.

    ``sessions`` carry the rule-1-3 filtered query streams (used for the
    query-count, popularity, and timing-anchor measures); for each
    session, ``interarrival_queries`` holds the further rule-4/5 filtered
    stream whose gaps feed the interarrival measure.
    """

    sessions: List[SessionRecord]
    interarrival_queries: List[Tuple[QueryRecord, ...]]
    report: FilterReport

    def interarrival_times(self) -> List[float]:
        """All interarrival gaps eligible after rules 4-5, across sessions.

        One ``np.diff`` over the flat timestamp column, with the gaps
        spanning session boundaries masked out by segment identity.
        """
        counts = [len(queries) for queries in self.interarrival_queries]
        total = sum(counts)
        if total < 2:
            return []
        times = np.fromiter(
            (q.timestamp for queries in self.interarrival_queries for q in queries),
            dtype=np.float64,
            count=total,
        )
        segment = np.repeat(np.arange(len(counts)), counts)
        gaps = np.diff(times)
        return gaps[segment[1:] == segment[:-1]].tolist()


def apply_filters(sessions: Sequence[SessionRecord]) -> FilterResult:
    """Run rules 1-5 over all one-hop sessions, in the paper's order.

    Rules 1 and 2 are applied per session to the query stream; rule 3
    then discards short sessions along with their remaining queries;
    rules 4 and 5 only mark queries as ineligible for the interarrival
    measure.
    """
    report = FilterReport(
        initial_queries=sum(s.query_count for s in sessions),
        initial_sessions=len(sessions),
    )
    cleaned: List[SessionRecord] = []
    for session in sessions:
        kept1, removed1 = rule1_sha1(session.queries)
        report.rule1_removed_queries += removed1
        kept2, removed2 = rule2_duplicates(kept1)
        report.rule2_removed_queries += removed2
        cleaned.append(session.with_queries(tuple(kept2)))

    surviving, removed_sessions, removed_queries = rule3_short_sessions(cleaned)
    report.rule3_removed_sessions = removed_sessions
    report.rule3_removed_queries = removed_queries
    report.final_sessions = len(surviving)
    report.final_queries = sum(s.query_count for s in surviving)

    interarrival_queries = []
    for session in surviving:
        eligible, rule4, rule5 = rule45_interarrival_marks(session.queries)
        report.rule4_removed_queries += rule4
        report.rule5_removed_queries += rule5
        interarrival_queries.append(tuple(eligible))
    report.final_interarrival_queries = sum(len(q) for q in interarrival_queries)

    return FilterResult(
        sessions=surviving,
        interarrival_queries=interarrival_queries,
        report=report,
    )
