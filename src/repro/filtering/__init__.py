"""Section 3.3 filter rules: separating user behaviour from client software."""

from .columnar import ColumnarFilterResult, apply_filters_columnar
from .pipeline import FilterReport, FilterResult, apply_filters
from .streaming import StreamingFilter, split_for_streaming
from .rules import (
    INTERARRIVAL_EPSILON,
    rule1_sha1,
    rule2_duplicates,
    rule3_short_sessions,
    rule45_interarrival_marks,
)

__all__ = [
    "FilterReport", "FilterResult", "apply_filters",
    "ColumnarFilterResult", "apply_filters_columnar",
    "StreamingFilter", "split_for_streaming",
    "INTERARRIVAL_EPSILON", "rule1_sha1", "rule2_duplicates",
    "rule3_short_sessions", "rule45_interarrival_marks",
]
