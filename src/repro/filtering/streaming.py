"""Single-pass streaming port of the Section 3.3 filter rules.

:class:`StreamingFilter` consumes a time-ordered sequence of
:class:`~repro.measurement.columnar.ColumnarTrace` chunks (typically the
shards of a :class:`~repro.measurement.shards.ShardedTrace`) and applies
rules 1-5 to each, carrying only running totals -- and, when sessions
may be *split* across chunk boundaries, the per-session reassembly
state -- between chunks.  The summed :class:`FilterReport` is
bit-identical to running :func:`apply_filters_columnar` over the whole
trace at once, because every rule is strictly per-session:

* rules 1-3 are per-query/per-session masks and per-session sums;
* rules 4-5 look only at adjacent surviving queries *within* a session.

So filtering complete sessions chunk by chunk changes nothing, and for
split input it suffices to hold a session open until no later chunk can
extend it (its recorded end precedes the chunk boundary), then filter it
whole.  Shards produced by ``TraceSynthesizer.run_sharded`` always
contain complete sessions (a session lives in the shard its *arrival*
falls in), so the default ``split_sessions=False`` path streams each
shard straight through the vectorized filter with zero carry state
beyond the report.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.measurement.columnar import ColumnarTrace

from .columnar import ColumnarFilterResult, apply_filters_columnar
from .pipeline import FilterReport

__all__ = ["StreamingFilter", "split_for_streaming"]

#: Flat query-table column suffixes, in ColumnarTrace field order.
_QUERY_COLS = (
    "timestamp", "keywords", "norm_key", "sha1", "hops", "ttl", "automated", "hits",
)
_PONG_COLS = ("timestamp", "ip", "region", "shared_files", "one_hop")
_HIT_COLS = ("timestamp", "ip", "region", "one_hop")

#: (ip, region_code, start, end, user_agent, ultrapeer, shared_files)
_Meta = Tuple[str, int, float, float, str, bool, int]


class StreamingFilter:
    """Applies rules 1-5 one chunk at a time, summing the Table 2 report.

    ``push`` returns the chunk's :class:`ColumnarFilterResult` (or
    ``None`` while boundary sessions are still being reassembled);
    ``finish`` flushes any held state.  Chunks must arrive in time
    order.  With ``split_sessions=True`` a session whose query stream is
    split across consecutive chunks (same ip/start/end metadata in each
    piece) is stitched back together before the rules run, so rule 2's
    duplicate detection and the rule 4/5 interarrival stencils see the
    complete stream even across a chunk edge.
    """

    def __init__(self, split_sessions: bool = False):
        self.split_sessions = split_sessions
        self.report = FilterReport()
        self._held: Dict[Tuple[str, float, float], List] = {}
        self._pong_buf: List[Tuple[np.ndarray, ...]] = []
        self._hit_buf: List[Tuple[np.ndarray, ...]] = []

    def push(self, chunk: ColumnarTrace) -> Optional[ColumnarFilterResult]:
        if not self.split_sessions:
            result = apply_filters_columnar(chunk)
            self._accumulate(result.report)
            return result
        return self._push_split(chunk)

    def finish(self) -> Optional[ColumnarFilterResult]:
        """Filter whatever reassembly state remains after the last chunk."""
        if not self.split_sessions:
            return None
        entries = list(self._held.values())
        self._held.clear()
        if not entries and not self._buffered_observations():
            return None
        return self._emit(entries, 0.0, 0.0)

    # -- split-session reassembly -------------------------------------------

    def _push_split(self, chunk: ColumnarTrace) -> Optional[ColumnarFilterResult]:
        cut = float(chunk.end_time)
        offsets = chunk.query_offsets
        ips = chunk.session_peer_ip
        starts = chunk.session_start
        ends = chunk.session_end
        complete: List[List] = []
        for i in range(chunk.n_sessions):
            start, end = float(starts[i]), float(ends[i])
            key = (str(ips[i]), start, end)
            lo, hi = int(offsets[i]), int(offsets[i + 1])
            piece = tuple(
                np.asarray(getattr(chunk, "query_" + col)[lo:hi]) for col in _QUERY_COLS
            )
            held = self._held.get(key)
            if held is not None:
                held[1].append(piece)
                continue
            meta: _Meta = (
                key[0], int(chunk.session_region[i]), start, end,
                str(chunk.session_user_agent[i]),
                bool(chunk.session_ultrapeer[i]),
                int(chunk.session_shared_files[i]),
            )
            entry = [meta, [piece]]
            if end <= cut:
                complete.append(entry)
            else:
                self._held[key] = entry
        # A held session whose recorded end precedes this chunk's edge
        # cannot gain queries from any later (time-ordered) chunk.
        for key in [k for k, e in self._held.items() if e[0][3] <= cut]:
            complete.append(self._held.pop(key))
        self._pong_buf.append(
            tuple(np.asarray(getattr(chunk, "pong_" + col)) for col in _PONG_COLS)
        )
        self._hit_buf.append(
            tuple(np.asarray(getattr(chunk, "hit_" + col)) for col in _HIT_COLS)
        )
        if not complete:
            return None
        return self._emit(complete, float(chunk.start_time), cut)

    def _emit(
        self, entries: List[List], start: float, end: float
    ) -> ColumnarFilterResult:
        block = self._build_block(entries, start, end)
        result = apply_filters_columnar(block)
        self._accumulate(result.report)
        return result

    def _buffered_observations(self) -> bool:
        return any(piece[0].size for piece in self._pong_buf) or any(
            piece[0].size for piece in self._hit_buf
        )

    def _build_block(
        self, entries: List[List], start: float, end: float
    ) -> ColumnarTrace:
        fields: Dict[str, np.ndarray] = {}
        if entries:
            metas = [e[0] for e in entries]
            fields["session_peer_ip"] = np.array([m[0] for m in metas], dtype=np.str_)
            fields["session_region"] = np.array([m[1] for m in metas], dtype=np.int8)
            fields["session_start"] = np.array([m[2] for m in metas], dtype=np.float64)
            fields["session_end"] = np.array([m[3] for m in metas], dtype=np.float64)
            fields["session_user_agent"] = np.array([m[4] for m in metas], dtype=np.str_)
            fields["session_ultrapeer"] = np.array([m[5] for m in metas], dtype=np.bool_)
            fields["session_shared_files"] = np.array([m[6] for m in metas], dtype=np.int64)
            counts = [sum(p[0].size for p in e[1]) for e in entries]
            offsets = np.zeros(len(entries) + 1, dtype=np.int64)
            np.cumsum(counts, out=offsets[1:])
            fields["query_offsets"] = offsets
            for j, col in enumerate(_QUERY_COLS):
                fields["query_" + col] = np.concatenate(
                    [p[j] for e in entries for p in e[1]]
                )
        for bufname, prefix, cols in (
            ("_pong_buf", "pong_", _PONG_COLS),
            ("_hit_buf", "hit_", _HIT_COLS),
        ):
            buf = getattr(self, bufname)
            if buf:
                for j, col in enumerate(cols):
                    fields[prefix + col] = np.concatenate([piece[j] for piece in buf])
                buf.clear()
        return ColumnarTrace(start_time=start, end_time=end, **fields)

    def _accumulate(self, report: FilterReport) -> None:
        for name, value in report.as_dict().items():
            setattr(self.report, name, getattr(self.report, name) + value)


def split_for_streaming(
    trace: ColumnarTrace, cuts: Sequence[float]
) -> Iterator[ColumnarTrace]:
    """Slice a trace into time chunks, *splitting* sessions at each cut.

    The adversarial inverse of sharded synthesis: a session whose
    lifetime crosses a cut appears in every overlapping chunk (with its
    full metadata) carrying only the queries whose timestamps fall in
    that chunk's window, and observations are windowed by timestamp.
    Feeding these chunks to ``StreamingFilter(split_sessions=True)``
    must reproduce the unsharded filter output -- the shard-boundary
    property test drives exactly this.
    """
    bounds = [float(trace.start_time), *sorted(float(c) for c in cuts), float(trace.end_time)]
    sess_idx = trace.query_session_index()
    qts = trace.query_timestamp
    n_sessions = trace.n_sessions
    for j in range(len(bounds) - 1):
        lo, hi = bounds[j], bounds[j + 1]
        lo_q = -np.inf if j == 0 else lo
        hi_q = np.inf if j == len(bounds) - 2 else hi
        # Strict ``end > lo``: queries live strictly inside [start, end),
        # so a query in this window always finds its session here too.
        rows = np.flatnonzero((trace.session_start < hi) & (trace.session_end > lo))
        in_rows = np.zeros(n_sessions, dtype=bool)
        in_rows[rows] = True
        qmask = in_rows[sess_idx] & (qts >= lo_q) & (qts < hi_q)
        counts = np.bincount(sess_idx[qmask], minlength=n_sessions)[rows]
        offsets = np.zeros(rows.size + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        pmask = (trace.pong_timestamp >= lo_q) & (trace.pong_timestamp < hi_q)
        hmask = (trace.hit_timestamp >= lo_q) & (trace.hit_timestamp < hi_q)
        yield ColumnarTrace(
            start_time=lo,
            end_time=hi,
            session_peer_ip=trace.session_peer_ip[rows],
            session_region=trace.session_region[rows],
            session_start=trace.session_start[rows],
            session_end=trace.session_end[rows],
            session_user_agent=trace.session_user_agent[rows],
            session_ultrapeer=trace.session_ultrapeer[rows],
            session_shared_files=trace.session_shared_files[rows],
            query_offsets=offsets,
            query_timestamp=qts[qmask],
            query_keywords=trace.query_keywords[qmask],
            query_norm_key=trace.query_norm_key[qmask],
            query_sha1=trace.query_sha1[qmask],
            query_hops=trace.query_hops[qmask],
            query_ttl=trace.query_ttl[qmask],
            query_automated=trace.query_automated[qmask],
            query_hits=trace.query_hits[qmask],
            pong_timestamp=trace.pong_timestamp[pmask],
            pong_ip=trace.pong_ip[pmask],
            pong_region=trace.pong_region[pmask],
            pong_shared_files=trace.pong_shared_files[pmask],
            pong_one_hop=trace.pong_one_hop[pmask],
            hit_timestamp=trace.hit_timestamp[hmask],
            hit_ip=trace.hit_ip[hmask],
            hit_region=trace.hit_region[hmask],
            hit_one_hop=trace.hit_one_hop[hmask],
        )
