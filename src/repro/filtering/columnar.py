"""Vectorized Section 3.3 filtering over a :class:`ColumnarTrace`.

Implements rules 1-5 as flat-array reductions producing *bit-identical*
:class:`~repro.filtering.pipeline.FilterReport` numbers to the
per-session loop in :func:`~repro.filtering.pipeline.apply_filters`
(asserted by ``tests/filtering/test_columnar.py`` on synthesized
traces).  The float arithmetic is the same IEEE-754 sequence the loop
performs — ``t[i+1] - t[i]`` subtractions and epsilon comparisons — so
"identical" holds exactly, not just to rounding.

Rule mapping onto arrays (queries are session-major, so "within a
session" is "adjacent rows with equal session index"):

* **Rule 1** — boolean mask: not SHA1 and non-empty normalized keywords
  (the precomputed ``norm_key`` column is empty exactly when
  ``keywords.strip()`` is).
* **Rule 2** — first occurrence of each ``(session, norm_key)`` pair,
  via factorized keys and ``np.unique(..., return_index=True)``.
* **Rule 3** — session-duration mask; per-session surviving-query
  counts come from ``np.bincount`` over the owning-session index.
* **Rule 4** — both members of every sub-second adjacent pair are
  marked, by or-ing a shifted ``diff(t) < 1s`` mask into both endpoints.
* **Rule 5** — a rule-4 survivor is removed when its two preceding
  *raw* survivor gaps repeat within epsilon; with survivors kept in
  flat order this is a pure stencil over ``t[2:], t[1:-1], t[:-2]``
  guarded by segment equality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.core.events import QueryRecord, SessionRecord
from repro.core.kernels import segment_ids
from repro.measurement.columnar import REGION_ORDER, ColumnarTrace

from .pipeline import FilterReport, FilterResult
from .rules import INTERARRIVAL_EPSILON, MIN_INTERARRIVAL_SECONDS
from repro.core.parameters import MIN_SESSION_SECONDS

__all__ = ["ColumnarFilterResult", "apply_filters_columnar"]


@dataclass
class ColumnarFilterResult:
    """Masks over the original columnar trace, plus the Table 2 report.

    ``query_mask`` marks queries surviving rules 1-3 (false everywhere in
    a rule-3-dropped session); ``eligible_mask`` is the rule-4/5 eligible
    subset feeding the interarrival measure.  Both index the *original*
    flat query table, so any analysis can combine them with other
    columns without re-materializing records.
    """

    trace: ColumnarTrace
    session_mask: np.ndarray    # rule-3 survivors (len n_sessions)
    query_mask: np.ndarray      # rules 1-3 kept (len n_queries)
    eligible_mask: np.ndarray   # rules 4-5 eligible (len n_queries)
    report: FilterReport
    session_index: np.ndarray  # owning session per flat query row

    def interarrival_times(self) -> np.ndarray:
        """All eligible interarrival gaps, across sessions, in flat order.

        Equal (element by element) to
        ``FilterResult.interarrival_times()`` on the loop path.
        """
        ts = self.trace.query_timestamp[self.eligible_mask]
        if ts.size < 2:
            return np.empty(0, dtype=np.float64)
        seg = self.session_index[self.eligible_mask]
        gaps = np.diff(ts)
        return gaps[seg[1:] == seg[:-1]]

    def to_filter_result(self) -> FilterResult:
        """Materialize the record-oriented :class:`FilterResult`.

        Produces value-equal sessions/queries to the loop pipeline; used
        where downstream code still wants dataclasses (and by the parity
        tests).
        """
        trace = self.trace
        surviving_rows = np.flatnonzero(self.session_mask)
        kept_queries = _materialize_queries(trace, np.flatnonzero(self.query_mask))
        eligible_queries = _materialize_queries(trace, np.flatnonzero(self.eligible_mask))

        kept_counts = np.bincount(
            self.session_index[self.query_mask], minlength=trace.n_sessions
        )[surviving_rows]
        eligible_counts = np.bincount(
            self.session_index[self.eligible_mask], minlength=trace.n_sessions
        )[surviving_rows]
        kept_offsets = np.concatenate(([0], np.cumsum(kept_counts))).tolist()
        eligible_offsets = np.concatenate(([0], np.cumsum(eligible_counts))).tolist()

        sessions = [
            SessionRecord(
                ip, REGION_ORDER[code], start, end,
                tuple(kept_queries[kept_offsets[i]:kept_offsets[i + 1]]),
                agent, up, files,
            )
            for i, (ip, code, start, end, agent, up, files) in enumerate(
                zip(
                    trace.session_peer_ip[surviving_rows].tolist(),
                    trace.session_region[surviving_rows].tolist(),
                    trace.session_start[surviving_rows].tolist(),
                    trace.session_end[surviving_rows].tolist(),
                    trace.session_user_agent[surviving_rows].tolist(),
                    trace.session_ultrapeer[surviving_rows].tolist(),
                    trace.session_shared_files[surviving_rows].tolist(),
                )
            )
        ]
        interarrival: List[Tuple[QueryRecord, ...]] = [
            tuple(eligible_queries[eligible_offsets[i]:eligible_offsets[i + 1]])
            for i in range(len(surviving_rows))
        ]
        return FilterResult(
            sessions=sessions,
            interarrival_queries=interarrival,
            report=self.report,
        )


def _materialize_queries(trace: ColumnarTrace, rows: np.ndarray) -> List[QueryRecord]:
    return [
        QueryRecord(*row)
        for row in zip(
            trace.query_timestamp[rows].tolist(),
            trace.query_keywords[rows].tolist(),
            trace.query_sha1[rows].tolist(),
            trace.query_hops[rows].tolist(),
            trace.query_ttl[rows].tolist(),
            trace.query_automated[rows].tolist(),
            trace.query_hits[rows].tolist(),
        )
    ]


def apply_filters_columnar(trace: ColumnarTrace) -> ColumnarFilterResult:
    """Run rules 1-5 over a columnar trace, in the paper's order."""
    n_queries = trace.n_queries
    n_sessions = trace.n_sessions
    sess_idx = segment_ids(np.diff(trace.query_offsets))
    report = FilterReport(initial_queries=n_queries, initial_sessions=n_sessions)

    # Rule 1: SHA1 extension or empty keywords.
    kept1 = ~trace.query_sha1 & (trace.query_norm_key != "")
    report.rule1_removed_queries = int(n_queries - np.count_nonzero(kept1))

    # Rule 2: keep the first occurrence of each (session, keyword set).
    idx1 = np.flatnonzero(kept1)
    kept2 = np.zeros(n_queries, dtype=bool)
    if idx1.size:
        key_codes = np.unique(trace.query_norm_key[idx1], return_inverse=True)[1]
        combined = sess_idx[idx1] * np.int64(key_codes.max() + 1) + key_codes
        # return_index points at the first occurrence; idx1 is ascending,
        # so "first in combined" is "first in query order".
        first_rows = np.unique(combined, return_index=True)[1]
        kept2[idx1[first_rows]] = True
    report.rule2_removed_queries = int(idx1.size - np.count_nonzero(kept2))

    # Rule 3: drop short sessions along with their remaining queries.
    kept2_per_session = np.bincount(sess_idx[kept2], minlength=n_sessions)
    short = (trace.session_end - trace.session_start) < MIN_SESSION_SECONDS
    session_mask = ~short
    report.rule3_removed_sessions = int(np.count_nonzero(short))
    report.rule3_removed_queries = int(kept2_per_session[short].sum())
    report.final_sessions = int(np.count_nonzero(session_mask))
    report.final_queries = int(kept2_per_session[session_mask].sum())

    query_mask = kept2 & session_mask[sess_idx] if n_queries else kept2

    # Rule 4: mark both members of every sub-second adjacent pair.
    idx3 = np.flatnonzero(query_mask)
    ts3 = trace.query_timestamp[idx3]
    seg3 = sess_idx[idx3]
    removed4 = np.zeros(idx3.size, dtype=bool)
    if idx3.size > 1:
        close = (np.diff(ts3) < MIN_INTERARRIVAL_SECONDS) & (seg3[1:] == seg3[:-1])
        removed4[:-1] |= close
        removed4[1:] |= close
    report.rule4_removed_queries = int(np.count_nonzero(removed4))

    # Rule 5: survivor j goes when its two preceding raw survivor gaps
    # repeat within epsilon (metronome re-queries).
    idx4 = idx3[~removed4]
    ts4 = ts3[~removed4]
    seg4 = seg3[~removed4]
    repeated = np.zeros(idx4.size, dtype=bool)
    if idx4.size > 2:
        same_session = (seg4[2:] == seg4[1:-1]) & (seg4[1:-1] == seg4[:-2])
        gap_prev = ts4[2:] - ts4[1:-1]
        gap_prev2 = ts4[1:-1] - ts4[:-2]
        repeated[2:] = same_session & (np.abs(gap_prev - gap_prev2) <= INTERARRIVAL_EPSILON)
    report.rule5_removed_queries = int(np.count_nonzero(repeated))

    eligible_mask = np.zeros(n_queries, dtype=bool)
    eligible_mask[idx4[~repeated]] = True
    report.final_interarrival_queries = int(idx4.size - np.count_nonzero(repeated))

    return ColumnarFilterResult(
        trace=trace,
        session_mask=session_mask,
        query_mask=query_mask,
        eligible_mask=eligible_mask,
        report=report,
        session_index=sess_idx,
    )
