"""File transfer layer: bandwidth classes, download generation, analysis."""

from .analysis import (
    completion_rate_by_class,
    download_size_ccdf,
    throughput_by_class,
    time_between_downloads,
)
from .bandwidth import (
    BANDWIDTH_PROFILES,
    BandwidthClass,
    link_kbps,
    sample_bandwidth_class,
)
from .downloads import DownloadModel, DownloadRecord

__all__ = [
    "completion_rate_by_class", "download_size_ccdf", "throughput_by_class",
    "time_between_downloads",
    "BANDWIDTH_PROFILES", "BandwidthClass", "link_kbps", "sample_bandwidth_class",
    "DownloadModel", "DownloadRecord",
]
