"""Peer bandwidth classes (after Saroiu, Gummadi & Gribble, MMCN'02).

The paper's related work measured "bottleneck bandwidth ... and proposed
that different tasks in a P2P system should be delegated to different
peers depending on their capabilities" -- the observation behind the
ultrapeer/leaf split.  This module models the 2004-era access-link mix so
the transfer layer can compute realistic download durations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

__all__ = ["BandwidthClass", "BANDWIDTH_PROFILES", "sample_bandwidth_class", "link_kbps"]


class BandwidthClass(enum.Enum):
    """Access-link technology classes of the measured peer population."""

    DIALUP = "dialup"
    DSL = "dsl"
    CABLE = "cable"
    T1 = "t1"
    T3 = "t3"


@dataclass(frozen=True)
class BandwidthProfile:
    """Nominal link speeds and population share for one class."""

    down_kbps: float
    up_kbps: float
    share: float
    ultrapeer_capable: bool


#: Saroiu et al. measured roughly: a quarter of Napster/Gnutella peers on
#: dialup-class links, the bulk on asymmetric broadband, and a capable
#: tail on T1+ -- only the latter two tiers make useful ultrapeers.
BANDWIDTH_PROFILES: Dict[BandwidthClass, BandwidthProfile] = {
    BandwidthClass.DIALUP: BandwidthProfile(down_kbps=56.0, up_kbps=33.6, share=0.22, ultrapeer_capable=False),
    BandwidthClass.DSL: BandwidthProfile(down_kbps=768.0, up_kbps=128.0, share=0.32, ultrapeer_capable=False),
    BandwidthClass.CABLE: BandwidthProfile(down_kbps=1500.0, up_kbps=256.0, share=0.30, ultrapeer_capable=True),
    BandwidthClass.T1: BandwidthProfile(down_kbps=1544.0, up_kbps=1544.0, share=0.12, ultrapeer_capable=True),
    BandwidthClass.T3: BandwidthProfile(down_kbps=44736.0, up_kbps=44736.0, share=0.04, ultrapeer_capable=True),
}

_CLASSES = list(BANDWIDTH_PROFILES)
_SHARES = np.array([BANDWIDTH_PROFILES[c].share for c in _CLASSES])
_SHARES = _SHARES / _SHARES.sum()


def sample_bandwidth_class(
    rng: np.random.Generator, ultrapeer: bool = False
) -> BandwidthClass:
    """Draw a bandwidth class; ultrapeers come from the capable tiers.

    "Peers with a high bandwidth Internet connection and high processing
    power run in ultrapeer mode" (Section 3.1).
    """
    if not ultrapeer:
        return _CLASSES[int(rng.choice(len(_CLASSES), p=_SHARES))]
    capable = [c for c in _CLASSES if BANDWIDTH_PROFILES[c].ultrapeer_capable]
    weights = np.array([BANDWIDTH_PROFILES[c].share for c in capable])
    return capable[int(rng.choice(len(capable), p=weights / weights.sum()))]


def link_kbps(cls: BandwidthClass) -> Tuple[float, float]:
    """(download, upload) nominal speeds for a class, in kilobits/second."""
    profile = BANDWIDTH_PROFILES[cls]
    return profile.down_kbps, profile.up_kbps
