"""Download generation: from answered queries to file transfers.

The paper characterizes the *search* half of file sharing; the transfer
half is what the searches exist for.  This module derives a download
event log from a (filtered) trace: a user whose query was answered
initiates a download with some probability, picks a responder, and
transfers a media-sized file across the bottleneck of the two peers'
access links (after Saroiu et al.), possibly aborting mid-way -- giving
the downstream measures related work reports (Gummadi et al.'s download
sizes, Sen & Wang's time between downloads).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.distributions import Lognormal
from repro.core.events import SessionRecord
from repro.core.regions import Region

from .bandwidth import BandwidthClass, link_kbps, sample_bandwidth_class

__all__ = ["DownloadRecord", "DownloadModel"]


@dataclass(frozen=True)
class DownloadRecord:
    """One attempted file transfer."""

    started_at: float
    peer_ip: str
    region: Region
    keywords: str
    size_bytes: int
    duration_seconds: float
    completed: bool
    requester_class: BandwidthClass
    responder_class: BandwidthClass

    @property
    def throughput_kbps(self) -> float:
        if self.duration_seconds <= 0:
            return 0.0
        transferred = self.size_bytes if self.completed else self.size_bytes * 0.5
        return transferred * 8.0 / 1000.0 / self.duration_seconds


class DownloadModel:
    """Derives downloads from a trace's answered queries.

    Parameters
    ----------
    download_prob:
        Probability an answered query leads to a download attempt.
    size_mu, size_sigma:
        Lognormal file size (bytes).  The defaults centre on ~3.7 MB --
        an MP3-era median (Gummadi et al. report most fetches are small
        audio objects with a long video tail).
    abort_prob:
        Probability the transfer aborts halfway (source departs).
    efficiency:
        Fraction of the nominal bottleneck bandwidth actually achieved.
    """

    def __init__(
        self,
        download_prob: float = 0.55,
        size_mu: float = 15.13,   # exp(15.13) ~ 3.7 MB
        size_sigma: float = 1.1,
        abort_prob: float = 0.25,
        efficiency: float = 0.6,
        seed: int = 31,
    ):
        for name, value in (("download_prob", download_prob), ("abort_prob", abort_prob)):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability, got {value}")
        if not 0.0 < efficiency <= 1.0:
            raise ValueError("efficiency must be in (0, 1]")
        self.download_prob = download_prob
        self.size_dist = Lognormal(size_mu, size_sigma)
        self.abort_prob = abort_prob
        self.efficiency = efficiency
        self._rng = np.random.default_rng(seed)

    def generate(self, sessions: Sequence[SessionRecord]) -> List[DownloadRecord]:
        """One pass over the trace: answered queries spawn downloads."""
        rng = self._rng
        downloads: List[DownloadRecord] = []
        for session in sessions:
            requester_class: Optional[BandwidthClass] = None
            for query in session.queries:
                if query.hits <= 0 or query.sha1:
                    continue
                if rng.random() >= self.download_prob:
                    continue
                if requester_class is None:
                    requester_class = sample_bandwidth_class(rng, session.ultrapeer)
                responder_class = sample_bandwidth_class(rng, ultrapeer=rng.random() < 0.4)
                size = int(max(self.size_dist.sample(rng), 10_000))
                down_kbps, _ = link_kbps(requester_class)
                _, up_kbps = link_kbps(responder_class)
                bottleneck = min(down_kbps, up_kbps) * self.efficiency
                full_duration = size * 8.0 / 1000.0 / bottleneck
                completed = rng.random() >= self.abort_prob
                duration = full_duration if completed else full_duration * rng.uniform(0.05, 0.95)
                # The download starts shortly after the results arrive.
                start = query.timestamp + rng.uniform(2.0, 30.0)
                downloads.append(
                    DownloadRecord(
                        started_at=start,
                        peer_ip=session.peer_ip,
                        region=session.region,
                        keywords=query.keywords,
                        size_bytes=size,
                        duration_seconds=float(duration),
                        completed=completed,
                        requester_class=requester_class,
                        responder_class=responder_class,
                    )
                )
        downloads.sort(key=lambda d: d.started_at)
        return downloads
