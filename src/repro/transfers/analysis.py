"""Characterizing the derived download workload.

The related-work measures the download layer supports:

* download size distribution (Gummadi et al., SOSP'03),
* time between downloads per peer (Sen & Wang, IMW'02),
* transfer durations and completion rate by bandwidth class
  (Saroiu et al., MMCN'02).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Sequence

import numpy as np

from repro.core.stats import Ccdf, empirical_ccdf

from .bandwidth import BandwidthClass
from .downloads import DownloadRecord

__all__ = [
    "download_size_ccdf",
    "time_between_downloads",
    "completion_rate_by_class",
    "throughput_by_class",
]


def download_size_ccdf(downloads: Sequence[DownloadRecord]) -> Ccdf:
    """CCDF of attempted download sizes in bytes."""
    if not downloads:
        raise ValueError("no downloads")
    return empirical_ccdf([float(d.size_bytes) for d in downloads])


def time_between_downloads(downloads: Sequence[DownloadRecord]) -> List[float]:
    """Per-peer gaps between successive download starts (Sen & Wang)."""
    per_peer: Dict[str, List[float]] = defaultdict(list)
    for download in downloads:
        per_peer[download.peer_ip].append(download.started_at)
    gaps: List[float] = []
    for times in per_peer.values():
        times.sort()
        gaps.extend(b - a for a, b in zip(times, times[1:]))
    return gaps


def completion_rate_by_class(
    downloads: Sequence[DownloadRecord],
) -> Dict[BandwidthClass, float]:
    """Fraction of completed transfers per requester bandwidth class."""
    totals: Dict[BandwidthClass, List[int]] = defaultdict(list)
    for download in downloads:
        totals[download.requester_class].append(int(download.completed))
    return {cls: float(np.mean(flags)) for cls, flags in totals.items()}


def throughput_by_class(
    downloads: Sequence[DownloadRecord],
) -> Dict[BandwidthClass, float]:
    """Median achieved throughput (kbps) per requester class.

    Dialup requesters should bottleneck near their 56 kbps link while
    T1+ requesters bottleneck on the *responder's* uplink -- the
    asymmetry Saroiu et al. highlight.
    """
    per_class: Dict[BandwidthClass, List[float]] = defaultdict(list)
    for download in downloads:
        if download.completed and download.duration_seconds > 0:
            per_class[download.requester_class].append(download.throughput_kbps)
    return {cls: float(np.median(values)) for cls, values in per_class.items() if values}
