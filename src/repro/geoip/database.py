"""Synthetic GeoIP database (substitute for the MaxMind GeoIP database).

The paper resolves each peer's geographic region from its IP address
using the commercial GeoIP database [10].  We cannot ship that database,
so this module allocates disjoint synthetic IPv4 /8 blocks to each
region and provides the same lookup API the analysis consumes:
IP string -> :class:`~repro.core.regions.Region`.

The allocation loosely mirrors real-world registry geography (ARIN-like
blocks for North America, RIPE-like for Europe, APNIC-like for Asia) so
example IPs look plausible, but any disjoint allocation preserves the
analysis behaviour: the pipeline only ever asks "which region is this
address in?".
"""

from __future__ import annotations

import ipaddress
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.core.regions import Region

__all__ = ["GeoIpDatabase", "IpAllocator"]

#: Decimal strings for every possible octet value, for batch formatting;
#: the dot-suffixed variant halves the string concatenations per batch.
_OCTET_STRINGS = np.array([str(i) for i in range(256)], dtype="U3")
_OCTET_DOT_STRINGS = np.array([f"{i}." for i in range(256)], dtype="U4")

#: First octets assigned to each region.  Disjoint by construction;
#: octets not listed resolve to OTHER.
_REGION_FIRST_OCTETS: Dict[Region, Tuple[int, ...]] = {
    # ARIN-flavoured space.
    Region.NORTH_AMERICA: (12, 24, 63, 64, 65, 66, 67, 68, 69, 70, 71, 72, 73, 74, 75, 76),
    # RIPE-flavoured space.
    Region.EUROPE: (62, 77, 78, 79, 80, 81, 82, 83, 84, 85, 86, 87, 88, 89, 90, 91),
    # APNIC-flavoured space.
    Region.ASIA: (58, 59, 60, 61, 110, 111, 112, 113, 114, 115, 116, 117, 118, 119, 120, 121),
    Region.OTHER: (41, 154, 155, 156, 186, 187, 189, 190, 196, 197, 200, 201),
}


class GeoIpDatabase:
    """IP address -> region lookups over the synthetic allocation."""

    def __init__(self, allocation: Optional[Dict[Region, Tuple[int, ...]]] = None):
        allocation = allocation or _REGION_FIRST_OCTETS
        self._octet_to_region: Dict[int, Region] = {}
        for region, octets in allocation.items():
            for octet in octets:
                if not 1 <= octet <= 223:
                    raise ValueError(f"invalid first octet {octet}")
                if octet in self._octet_to_region:
                    raise ValueError(f"octet {octet} allocated to two regions")
                self._octet_to_region[octet] = region
        self._allocation = {r: tuple(o) for r, o in allocation.items()}

    def lookup(self, ip: str) -> Region:
        """Resolve an IPv4 address string to its region.

        Unallocated space resolves to ``Region.OTHER``, matching the
        paper's "peers ... with unknown origin" bucket.
        """
        addr = ipaddress.ip_address(ip)
        if addr.version != 4:
            raise ValueError(f"only IPv4 is supported, got {ip}")
        first_octet = int(ip.split(".", 1)[0])
        return self._octet_to_region.get(first_octet, Region.OTHER)

    def blocks_for(self, region: Region) -> Tuple[int, ...]:
        """First octets allocated to ``region``."""
        return self._allocation.get(region, ())


class IpAllocator:
    """Deterministic allocator of unique synthetic IPs per region.

    The synthesis layer asks for a fresh address per peer; uniqueness
    matters because the paper counts direct connections by unique IP
    (Section 3.1).
    """

    def __init__(
        self,
        database: Optional[GeoIpDatabase] = None,
        seed: int = 7,
        counter_start: int = 0,
        counter_limit: Optional[int] = None,
    ):
        """``counter_start``/``counter_limit`` carve out a half-open
        per-region counter range ``[counter_start, counter_limit)``:
        parallel trace shards allocate from disjoint ranges so merged
        traces keep globally unique peer IPs."""
        if counter_start < 0:
            raise ValueError(f"counter_start must be >= 0, got {counter_start}")
        if counter_limit is not None and counter_limit <= counter_start:
            raise ValueError("counter_limit must exceed counter_start")
        self.database = database or GeoIpDatabase()
        self._rng = np.random.default_rng(seed)
        self._counter_start = counter_start
        self._counter_limit = counter_limit
        self._counters: Dict[Region, int] = {}

    def allocate(self, region: Region) -> str:
        """Return a fresh unique IPv4 address inside ``region``'s blocks."""
        blocks = self.database.blocks_for(region)
        if not blocks:
            raise ValueError(f"no address blocks allocated to {region}")
        index = self._counters.get(region, self._counter_start)
        if self._counter_limit is not None and index >= self._counter_limit:
            raise RuntimeError(
                f"allocator counter range exhausted for {region}: "
                f"[{self._counter_start}, {self._counter_limit})"
            )
        self._counters[region] = index + 1
        # Spread sequential peers across the region's /8 blocks, walking
        # the remaining three octets as a counter (~16.7M hosts per /8).
        block = blocks[index % len(blocks)]
        host = index // len(blocks)
        if host >= 254 * 254 * 254:
            raise RuntimeError(f"address space for {region} exhausted")
        o2 = 1 + (host // (254 * 254)) % 254
        o3 = 1 + (host // 254) % 254
        o4 = 1 + host % 254
        return f"{block}.{o2}.{o3}.{o4}"

    def allocate_many(self, region: Region, count: int) -> List[str]:
        """Allocate ``count`` unique addresses for ``region``."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        return [self.allocate(region) for _ in range(count)]

    def allocate_array(self, region: Region, count: int) -> np.ndarray:
        """``count`` fresh addresses for ``region`` as a NumPy string array.

        Consumes the same per-region counter as :meth:`allocate` -- the
        ``k``-th address handed out for a region is identical whichever
        API asked for it -- but computes the whole batch with array
        octet arithmetic (the columnar synthesis hot path).
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        blocks = self.database.blocks_for(region)
        if not blocks:
            raise ValueError(f"no address blocks allocated to {region}")
        first = self._counters.get(region, self._counter_start)
        if self._counter_limit is not None and first + count > self._counter_limit:
            raise RuntimeError(
                f"allocator counter range exhausted for {region}: "
                f"[{self._counter_start}, {self._counter_limit})"
            )
        if count == 0:
            return np.empty(0, dtype="U15")
        self._counters[region] = first + count
        index = first + np.arange(count, dtype=np.int64)
        block = np.asarray(blocks, dtype=np.int64)[index % len(blocks)]
        host = index // len(blocks)
        if int(host[-1]) >= 254 * 254 * 254:
            raise RuntimeError(f"address space for {region} exhausted")
        o2 = 1 + (host // (254 * 254)) % 254
        o3 = 1 + (host // 254) % 254
        o4 = 1 + host % 254
        # Octet-to-string by table gather: int->str astype formats every
        # element through the scalar converter, the lookup is a memcpy.
        out = np.char.add(_OCTET_DOT_STRINGS[block], _OCTET_DOT_STRINGS[o2])
        out = np.char.add(out, _OCTET_DOT_STRINGS[o3])
        out = np.char.add(out, _OCTET_STRINGS[o4])
        return out.astype("U15")
