"""Synthetic GeoIP database -- substitute for MaxMind GeoIP (paper ref [10])."""

from .database import GeoIpDatabase, IpAllocator

__all__ = ["GeoIpDatabase", "IpAllocator"]
