"""Passive measurement node, trace schema, and session reconstruction."""

from .columnar import COLUMNAR_SCHEMA_VERSION, ColumnarTrace, normalize_keywords
from .monitor import IDLE_CLOSE_SECONDS, IDLE_PROBE_SECONDS, MeasurementNode, OpenConnection
from .sessions import RawEvent, reconstruct_sessions
from .shards import SHARD_MANIFEST_VERSION, ShardedTrace, ShardInfo, ShardWriter
from .trace import PongObservation, QueryHitObservation, Trace, merge_traces

__all__ = [
    "IDLE_CLOSE_SECONDS", "IDLE_PROBE_SECONDS", "MeasurementNode", "OpenConnection",
    "RawEvent", "reconstruct_sessions",
    "PongObservation", "QueryHitObservation", "Trace", "merge_traces",
    "COLUMNAR_SCHEMA_VERSION", "ColumnarTrace", "normalize_keywords",
    "SHARD_MANIFEST_VERSION", "ShardInfo", "ShardWriter", "ShardedTrace",
]
