"""Trace record schema and persistence.

A :class:`Trace` is everything the measurement node recorded over a run:
the connected one-hop sessions with their query streams, the sampled
PONG/QUERYHIT observations used for the all-peers comparisons (Figures
1-2), and aggregate message counters (Table 1).  Traces round-trip
through JSON-lines files so long syntheses can be archived and re-analysed.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from repro.core.events import QueryRecord, SessionRecord
from repro.core.regions import Region

__all__ = ["PongObservation", "QueryHitObservation", "Trace", "merge_traces"]


@dataclass(frozen=True)
class PongObservation:
    """One sampled PONG: advertises a peer's address and library size."""

    timestamp: float
    ip: str
    region: Region
    shared_files: int
    one_hop: bool


@dataclass(frozen=True)
class QueryHitObservation:
    """One sampled QUERYHIT: carries the responding peer's address."""

    timestamp: float
    ip: str
    region: Region
    one_hop: bool


@dataclass
class Trace:
    """A complete measurement run."""

    start_time: float
    end_time: float
    sessions: List[SessionRecord] = field(default_factory=list)
    pongs: List[PongObservation] = field(default_factory=list)
    queryhits: List[QueryHitObservation] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)

    @property
    def duration_days(self) -> float:
        return (self.end_time - self.start_time) / 86400.0

    @property
    def n_connections(self) -> int:
        return len(self.sessions)

    def hop1_query_count(self) -> int:
        return sum(s.query_count for s in self.sessions)

    def bump(self, counter: str, amount: int = 1) -> None:
        """Increment an aggregate message counter."""
        self.counters[counter] = self.counters.get(counter, 0) + amount

    # -- persistence ------------------------------------------------------------

    def to_jsonl(self, path: Union[str, Path]) -> None:
        """Write the trace as JSON lines: one header, then one record per line."""
        path = Path(path)
        with path.open("w") as fh:
            header = {
                "kind": "header",
                "start_time": self.start_time,
                "end_time": self.end_time,
                "counters": self.counters,
            }
            fh.write(json.dumps(header) + "\n")
            for session in self.sessions:
                fh.write(json.dumps(_session_to_dict(session)) + "\n")
            for pong in self.pongs:
                record = asdict(pong)
                record["kind"] = "pong"
                record["region"] = pong.region.value
                fh.write(json.dumps(record) + "\n")
            for hit in self.queryhits:
                record = asdict(hit)
                record["kind"] = "queryhit"
                record["region"] = hit.region.value
                fh.write(json.dumps(record) + "\n")

    @classmethod
    def from_jsonl(cls, path: Union[str, Path]) -> "Trace":
        """Read a trace previously written by :meth:`to_jsonl`."""
        path = Path(path)
        trace: Optional[Trace] = None
        with path.open() as fh:
            for line in fh:
                record = json.loads(line)
                kind = record.pop("kind")
                if kind == "header":
                    trace = cls(
                        start_time=record["start_time"],
                        end_time=record["end_time"],
                        counters=dict(record["counters"]),
                    )
                elif trace is None:
                    raise ValueError(f"{path}: first line must be the header")
                elif kind == "session":
                    trace.sessions.append(_session_from_dict(record))
                elif kind == "pong":
                    record["region"] = _REGION_BY_VALUE[record["region"]]
                    trace.pongs.append(PongObservation(**record))
                elif kind == "queryhit":
                    record["region"] = _REGION_BY_VALUE[record["region"]]
                    trace.queryhits.append(QueryHitObservation(**record))
                else:
                    raise ValueError(f"{path}: unknown record kind {kind!r}")
        if trace is None:
            raise ValueError(f"{path}: empty trace file")
        return trace


def merge_traces(traces: Iterable[Trace]) -> Trace:
    """Merge partial traces into one, as if one node recorded them all.

    Used by sharded synthesis (each worker covers one time slice of the
    measurement window) and applicable to distributed-capture merges in
    general: sessions are ordered by start time, observation samples by
    timestamp, and counters summed.  Callers are responsible for the
    shards being disjoint (no session recorded twice) -- the synthesis
    sharder guarantees this by partitioning connection *arrivals*, with
    sessions allowed to outlive their shard's window.
    """
    traces = list(traces)
    if not traces:
        raise ValueError("need at least one trace to merge")
    merged = Trace(
        start_time=min(t.start_time for t in traces),
        end_time=max(t.end_time for t in traces),
    )
    for trace in traces:
        merged.sessions.extend(trace.sessions)
        merged.pongs.extend(trace.pongs)
        merged.queryhits.extend(trace.queryhits)
        for name, value in trace.counters.items():
            merged.counters[name] = merged.counters.get(name, 0) + value
    merged.sessions.sort(key=lambda s: (s.start, s.end, s.peer_ip))
    merged.pongs.sort(key=lambda p: (p.timestamp, p.ip))
    merged.queryhits.sort(key=lambda q: (q.timestamp, q.ip))
    return merged


def _session_to_dict(session: SessionRecord) -> Dict:
    return {
        "kind": "session",
        "peer_ip": session.peer_ip,
        "region": session.region.value,
        "start": session.start,
        "end": session.end,
        "user_agent": session.user_agent,
        "ultrapeer": session.ultrapeer,
        "shared_files": session.shared_files,
        "queries": [
            {
                "timestamp": q.timestamp,
                "keywords": q.keywords,
                "sha1": q.sha1,
                "hops": q.hops,
                "ttl": q.ttl,
                "automated": q.automated,
                "hits": q.hits,
            }
            for q in session.queries
        ],
    }


_REGION_BY_VALUE = {r.value: r for r in Region}


def _session_from_dict(record: Dict) -> SessionRecord:
    # Positional construction: this is the warm-cache hot path, and
    # kwargs unpacking costs ~30% extra per record at 60k+ sessions.
    queries = tuple(
        QueryRecord(
            q["timestamp"], q["keywords"], q["sha1"],
            q["hops"], q["ttl"], q["automated"], q["hits"],
        )
        for q in record["queries"]
    )
    return SessionRecord(
        record["peer_ip"], _REGION_BY_VALUE[record["region"]],
        record["start"], record["end"], queries,
        record["user_agent"], record["ultrapeer"], record["shared_files"],
    )
