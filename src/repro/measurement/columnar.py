"""Columnar trace backend: NumPy structured arrays + ``.npz`` persistence.

A :class:`ColumnarTrace` holds the same information as a
:class:`~repro.measurement.trace.Trace`, laid out for array reductions
instead of object traversal:

* one **session table** (one row per one-hop session),
* one flat **query table** in session-major order, indexed by a
  ``query_offsets`` array (session ``i`` owns rows
  ``query_offsets[i]:query_offsets[i + 1]``),
* **pong** and **queryhit** observation tables,
* the aggregate message ``counters`` and the trace window.

The conversion ``Trace ↔ ColumnarTrace`` is lossless: regions round-trip
through a stable code table, strings through NumPy unicode columns, and
floats bit-exactly through float64.  The query table also carries a
derived ``norm_key`` column — the session-duplicate identity of Section
3.2 (``" ".join(sorted(set(keywords.lower().split())))``, equal exactly
when the keyword *sets* are equal) — precomputed once here so the
vectorized rule-2 filter never touches Python string methods on the hot
path.

``save_npz``/``load_npz`` persist every column with :func:`numpy.savez`
(uncompressed, ``allow_pickle=False``): a warm load is a handful of
``mmap``-friendly array reads instead of a per-record JSON parse, which
is what makes the ``.npz`` trace cache entries fast.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Union

import numpy as np

from repro.core.events import QueryRecord, SessionRecord
from repro.core.kernels import load_npz_members, save_npz_payload, segment_ids
from repro.core.regions import Region

from .trace import PongObservation, QueryHitObservation, Trace

__all__ = [
    "COLUMNAR_SCHEMA_VERSION",
    "ColumnarTrace",
    "ColumnarTraceBuilder",
    "normalize_keywords",
    "norm_keys_array",
]

#: Bumped whenever the on-disk ``.npz`` column layout changes.
COLUMNAR_SCHEMA_VERSION = 1

#: Stable region code table: the wire format stores ``int8`` codes, not
#: enum values, so reordering the enum cannot silently corrupt archives.
REGION_ORDER = (Region.NORTH_AMERICA, Region.EUROPE, Region.ASIA, Region.OTHER)
REGION_CODE: Dict[Region, int] = {r: i for i, r in enumerate(REGION_ORDER)}


def normalize_keywords(keywords: str) -> str:
    """The rule-2 query identity, as a canonical string.

    Two keyword strings have equal normalized forms exactly when their
    lowercased keyword *sets* are equal (split() never yields a token
    containing whitespace, so the space-joined sorted set is injective
    over sets).
    """
    return " ".join(sorted(set(keywords.lower().split())))


def norm_keys_array(keywords: np.ndarray) -> np.ndarray:
    """Vectorized :func:`normalize_keywords` over a unicode column.

    Single-token strings (the synthesized catalog) normalize to their
    lowercase form, handled with one ``np.char.lower`` pass; multi-token
    strings fall back to the scalar routine per *unique* string.
    """
    if keywords.size == 0:
        return np.empty(0, dtype="U1")
    lowered = np.char.lower(keywords)
    has_space = np.char.find(lowered, " ") >= 0
    if not has_space.any():
        return lowered
    out = lowered.copy()
    unique, inverse = np.unique(lowered[has_space], return_inverse=True)
    # Normalization never lengthens a string (sorted-set join of its own
    # tokens), so writing back into the same itemsize is safe.
    normed = np.array([normalize_keywords(s) for s in unique.tolist()], dtype=np.str_)
    out[has_space] = normed[inverse]
    return out


def _str_array(values: List[str]) -> np.ndarray:
    """Unicode column; ``<U1`` for the empty case so savez round-trips."""
    if not values:
        return np.empty(0, dtype="U1")
    return np.array(values, dtype=np.str_)


def _empty_str(n: int) -> np.ndarray:
    return np.full(n, "", dtype="U1") if n else np.empty(0, dtype="U1")


@dataclass
class ColumnarTrace:
    """A complete measurement run, as parallel NumPy columns."""

    start_time: float
    end_time: float

    # -- session table (len = n_sessions) ----------------------------------
    session_peer_ip: np.ndarray = field(default_factory=lambda: _str_array([]))
    session_region: np.ndarray = field(default_factory=lambda: np.empty(0, np.int8))
    session_start: np.ndarray = field(default_factory=lambda: np.empty(0, np.float64))
    session_end: np.ndarray = field(default_factory=lambda: np.empty(0, np.float64))
    session_user_agent: np.ndarray = field(default_factory=lambda: _str_array([]))
    session_ultrapeer: np.ndarray = field(default_factory=lambda: np.empty(0, np.bool_))
    session_shared_files: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))

    # -- flat query table (len = n_queries, session-major order) -----------
    #: session ``i`` owns ``query_*[query_offsets[i]:query_offsets[i+1]]``.
    query_offsets: np.ndarray = field(default_factory=lambda: np.zeros(1, np.int64))
    query_timestamp: np.ndarray = field(default_factory=lambda: np.empty(0, np.float64))
    query_keywords: np.ndarray = field(default_factory=lambda: _str_array([]))
    query_norm_key: np.ndarray = field(default_factory=lambda: _str_array([]))
    query_sha1: np.ndarray = field(default_factory=lambda: np.empty(0, np.bool_))
    query_hops: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    query_ttl: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    query_automated: np.ndarray = field(default_factory=lambda: np.empty(0, np.bool_))
    query_hits: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))

    # -- observation tables ------------------------------------------------
    pong_timestamp: np.ndarray = field(default_factory=lambda: np.empty(0, np.float64))
    pong_ip: np.ndarray = field(default_factory=lambda: _str_array([]))
    pong_region: np.ndarray = field(default_factory=lambda: np.empty(0, np.int8))
    pong_shared_files: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    pong_one_hop: np.ndarray = field(default_factory=lambda: np.empty(0, np.bool_))

    hit_timestamp: np.ndarray = field(default_factory=lambda: np.empty(0, np.float64))
    hit_ip: np.ndarray = field(default_factory=lambda: _str_array([]))
    hit_region: np.ndarray = field(default_factory=lambda: np.empty(0, np.int8))
    hit_one_hop: np.ndarray = field(default_factory=lambda: np.empty(0, np.bool_))

    counters: Dict[str, int] = field(default_factory=dict)

    # -- shape -------------------------------------------------------------

    @property
    def n_sessions(self) -> int:
        return int(self.session_start.shape[0])

    @property
    def n_connections(self) -> int:
        """Alias matching :attr:`~repro.measurement.trace.Trace.n_connections`."""
        return self.n_sessions

    @property
    def n_queries(self) -> int:
        return int(self.query_timestamp.shape[0])

    @property
    def duration_days(self) -> float:
        return (self.end_time - self.start_time) / 86400.0

    def query_session_index(self) -> np.ndarray:
        """Owning session row for each flat query row."""
        return segment_ids(np.diff(self.query_offsets))

    # -- conversion --------------------------------------------------------

    @classmethod
    def from_trace(cls, trace: Trace) -> "ColumnarTrace":
        """Columnarize a record-oriented trace (lossless)."""
        peer_ip: List[str] = []
        region: List[int] = []
        start: List[float] = []
        end: List[float] = []
        user_agent: List[str] = []
        ultrapeer: List[bool] = []
        shared: List[int] = []
        offsets = np.zeros(len(trace.sessions) + 1, dtype=np.int64)

        q_ts: List[float] = []
        q_kw: List[str] = []
        q_norm: List[str] = []
        q_sha1: List[bool] = []
        q_hops: List[int] = []
        q_ttl: List[int] = []
        q_auto: List[bool] = []
        q_hits: List[int] = []

        for i, s in enumerate(trace.sessions):
            peer_ip.append(s.peer_ip)
            region.append(REGION_CODE[s.region])
            start.append(s.start)
            end.append(s.end)
            user_agent.append(s.user_agent)
            ultrapeer.append(s.ultrapeer)
            shared.append(s.shared_files)
            offsets[i + 1] = offsets[i] + len(s.queries)
            for q in s.queries:
                q_ts.append(q.timestamp)
                q_kw.append(q.keywords)
                q_norm.append(normalize_keywords(q.keywords))
                q_sha1.append(q.sha1)
                q_hops.append(q.hops)
                q_ttl.append(q.ttl)
                q_auto.append(q.automated)
                q_hits.append(q.hits)

        return cls(
            start_time=trace.start_time,
            end_time=trace.end_time,
            session_peer_ip=_str_array(peer_ip),
            session_region=np.array(region, dtype=np.int8),
            session_start=np.array(start, dtype=np.float64),
            session_end=np.array(end, dtype=np.float64),
            session_user_agent=_str_array(user_agent),
            session_ultrapeer=np.array(ultrapeer, dtype=np.bool_),
            session_shared_files=np.array(shared, dtype=np.int64),
            query_offsets=offsets,
            query_timestamp=np.array(q_ts, dtype=np.float64),
            query_keywords=_str_array(q_kw),
            query_norm_key=_str_array(q_norm),
            query_sha1=np.array(q_sha1, dtype=np.bool_),
            query_hops=np.array(q_hops, dtype=np.int64),
            query_ttl=np.array(q_ttl, dtype=np.int64),
            query_automated=np.array(q_auto, dtype=np.bool_),
            query_hits=np.array(q_hits, dtype=np.int64),
            pong_timestamp=np.array([p.timestamp for p in trace.pongs], dtype=np.float64),
            pong_ip=_str_array([p.ip for p in trace.pongs]),
            pong_region=np.array([REGION_CODE[p.region] for p in trace.pongs], dtype=np.int8),
            pong_shared_files=np.array([p.shared_files for p in trace.pongs], dtype=np.int64),
            pong_one_hop=np.array([p.one_hop for p in trace.pongs], dtype=np.bool_),
            hit_timestamp=np.array([h.timestamp for h in trace.queryhits], dtype=np.float64),
            hit_ip=_str_array([h.ip for h in trace.queryhits]),
            hit_region=np.array([REGION_CODE[h.region] for h in trace.queryhits], dtype=np.int8),
            hit_one_hop=np.array([h.one_hop for h in trace.queryhits], dtype=np.bool_),
            counters=dict(trace.counters),
        )

    def to_trace(self) -> Trace:
        """Materialize the record-oriented trace (lossless inverse).

        Uses ``.tolist()`` bulk conversion to native Python scalars and
        positional dataclass construction — the same trick as the JSONL
        reader, but without a JSON parse in front of it.
        """
        offsets = self.query_offsets.tolist()
        q_cols = list(
            zip(
                self.query_timestamp.tolist(),
                self.query_keywords.tolist(),
                self.query_sha1.tolist(),
                self.query_hops.tolist(),
                self.query_ttl.tolist(),
                self.query_automated.tolist(),
                self.query_hits.tolist(),
            )
        )
        queries = [QueryRecord(*row) for row in q_cols]
        sessions = [
            SessionRecord(
                ip, REGION_ORDER[code], start, end,
                tuple(queries[offsets[i]:offsets[i + 1]]),
                agent, up, files,
            )
            for i, (ip, code, start, end, agent, up, files) in enumerate(
                zip(
                    self.session_peer_ip.tolist(),
                    self.session_region.tolist(),
                    self.session_start.tolist(),
                    self.session_end.tolist(),
                    self.session_user_agent.tolist(),
                    self.session_ultrapeer.tolist(),
                    self.session_shared_files.tolist(),
                )
            )
        ]
        pongs = [
            PongObservation(ts, ip, REGION_ORDER[code], files, one_hop)
            for ts, ip, code, files, one_hop in zip(
                self.pong_timestamp.tolist(),
                self.pong_ip.tolist(),
                self.pong_region.tolist(),
                self.pong_shared_files.tolist(),
                self.pong_one_hop.tolist(),
            )
        ]
        hits = [
            QueryHitObservation(ts, ip, REGION_ORDER[code], one_hop)
            for ts, ip, code, one_hop in zip(
                self.hit_timestamp.tolist(),
                self.hit_ip.tolist(),
                self.hit_region.tolist(),
                self.hit_one_hop.tolist(),
            )
        ]
        return Trace(
            start_time=self.start_time,
            end_time=self.end_time,
            sessions=sessions,
            pongs=pongs,
            queryhits=hits,
            counters=dict(self.counters),
        )

    # -- persistence -------------------------------------------------------

    _ARRAY_FIELDS = (
        "session_peer_ip", "session_region", "session_start", "session_end",
        "session_user_agent", "session_ultrapeer", "session_shared_files",
        "query_offsets", "query_timestamp", "query_keywords", "query_norm_key",
        "query_sha1", "query_hops", "query_ttl", "query_automated", "query_hits",
        "pong_timestamp", "pong_ip", "pong_region", "pong_shared_files",
        "pong_one_hop",
        "hit_timestamp", "hit_ip", "hit_region", "hit_one_hop",
    )

    def save_npz(self, path: Union[str, Path]) -> None:
        """Write every column to an uncompressed ``.npz`` archive."""
        payload = {name: getattr(self, name) for name in self._ARRAY_FIELDS}
        payload["schema_version"] = np.array([COLUMNAR_SCHEMA_VERSION], dtype=np.int64)
        payload["window"] = np.array([self.start_time, self.end_time], dtype=np.float64)
        # Insertion order, not sorted: counters round-trip byte-exactly
        # through to_jsonl either side of an .npz hop.
        payload["counter_names"] = _str_array(list(self.counters))
        payload["counter_values"] = np.array(list(self.counters.values()), dtype=np.int64)
        save_npz_payload(path, payload)

    @classmethod
    def load_npz(cls, path: Union[str, Path], mmap_mode: str = "r") -> "ColumnarTrace":
        """Read an archive written by :meth:`save_npz`.

        By default every column comes back as a read-only ``np.memmap``
        view straight into the archive (``np.savez`` stores members
        uncompressed, so each is a contiguous ``.npy`` byte range inside
        the zip).  Pass ``mmap_mode=None`` to force eager in-memory
        loads, e.g. before deleting the file.
        """
        data = _load_npz_members(path, mmap_mode)
        version = int(data["schema_version"][0])
        if version != COLUMNAR_SCHEMA_VERSION:
            raise ValueError(
                f"{path}: columnar schema v{version}, expected v{COLUMNAR_SCHEMA_VERSION}"
            )
        window = data["window"]
        counters = {
            str(name): int(value)
            for name, value in zip(data["counter_names"], data["counter_values"])
        }
        columns = {name: data[name] for name in cls._ARRAY_FIELDS}
        return cls(
            start_time=float(window[0]),
            end_time=float(window[1]),
            counters=counters,
            **columns,
        )


def _load_npz_members(path: Union[str, Path], mmap_mode) -> Dict[str, np.ndarray]:
    """Kept under the old private name; see
    :func:`repro.core.kernels.load_npz_members` for the mechanics."""
    return load_npz_members(path, mmap_mode)


class ColumnarTraceBuilder:
    """Accumulates per-shard :class:`ColumnarTrace` parts and merges them.

    The columnar counterpart of
    :func:`repro.measurement.trace.merge_traces`, with the same canonical
    ordering -- sessions by ``(start, end, peer_ip)``, observations by
    ``(timestamp, ip)``, counters summed -- so a merged columnar trace
    and a merge of the equivalent record traces agree row for row.  The
    flat query table is permuted in whole session blocks to follow the
    session sort.
    """

    def __init__(self) -> None:
        self._parts: List[ColumnarTrace] = []

    def append(self, part: ColumnarTrace) -> None:
        self._parts.append(part)

    def __len__(self) -> int:
        return len(self._parts)

    def build(self) -> ColumnarTrace:
        from repro.core.kernels import segmented_arange

        parts = self._parts
        if not parts:
            raise ValueError("need at least one columnar trace part to build")

        def cat(name: str) -> np.ndarray:
            # Single-part builds (the per-shard writer path) skip the
            # concatenation copy; every returned column below is a fresh
            # fancy-indexed gather, so the part's arrays are never aliased.
            arrays = [getattr(p, name) for p in parts]
            return arrays[0] if len(arrays) == 1 else np.concatenate(arrays)

        start_time = min(p.start_time for p in parts)
        end_time = max(p.end_time for p in parts)
        counters: Dict[str, int] = {}
        for p in parts:
            for name, value in p.counters.items():
                counters[name] = counters.get(name, 0) + int(value)

        s_ip = cat("session_peer_ip")
        s_start = cat("session_start")
        s_end = cat("session_end")
        order = np.lexsort((s_ip, s_end, s_start))

        # Per-session query block starts/counts in the concatenated
        # (pre-sort) flat table, then a gather that walks each sorted
        # session's block in place.
        counts = np.concatenate([np.diff(p.query_offsets) for p in parts])
        bases = np.cumsum([0] + [p.n_queries for p in parts][:-1])
        starts = np.concatenate(
            [p.query_offsets[:-1] + base for p, base in zip(parts, bases)]
        )
        counts_sorted = counts[order]
        gather = np.repeat(starts[order], counts_sorted) + segmented_arange(counts_sorted)
        offsets = np.zeros(order.size + 1, dtype=np.int64)
        np.cumsum(counts_sorted, out=offsets[1:])

        pong_ts = cat("pong_timestamp")
        pong_ip = cat("pong_ip")
        pong_order = np.lexsort((pong_ip, pong_ts))
        hit_ts = cat("hit_timestamp")
        hit_ip = cat("hit_ip")
        hit_order = np.lexsort((hit_ip, hit_ts))

        return ColumnarTrace(
            start_time=start_time,
            end_time=end_time,
            session_peer_ip=s_ip[order],
            session_region=cat("session_region")[order],
            session_start=s_start[order],
            session_end=s_end[order],
            session_user_agent=cat("session_user_agent")[order],
            session_ultrapeer=cat("session_ultrapeer")[order],
            session_shared_files=cat("session_shared_files")[order],
            query_offsets=offsets,
            query_timestamp=cat("query_timestamp")[gather],
            query_keywords=cat("query_keywords")[gather],
            query_norm_key=cat("query_norm_key")[gather],
            query_sha1=cat("query_sha1")[gather],
            query_hops=cat("query_hops")[gather],
            query_ttl=cat("query_ttl")[gather],
            query_automated=cat("query_automated")[gather],
            query_hits=cat("query_hits")[gather],
            pong_timestamp=pong_ts[pong_order],
            pong_ip=pong_ip[pong_order],
            pong_region=cat("pong_region")[pong_order],
            pong_shared_files=cat("pong_shared_files")[pong_order],
            pong_one_hop=cat("pong_one_hop")[pong_order],
            hit_timestamp=hit_ts[hit_order],
            hit_ip=hit_ip[hit_order],
            hit_region=cat("hit_region")[hit_order],
            hit_one_hop=cat("hit_one_hop")[hit_order],
            counters=counters,
        )
