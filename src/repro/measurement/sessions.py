"""Session reconstruction from a raw event log.

An independent path from raw (timestamped) connection/message events to
:class:`~repro.core.events.SessionRecord` objects.  The monitor builds
sessions incrementally; this module rebuilds them from a flat log, which
gives the test suite a second implementation to cross-check and lets
archived raw logs be (re-)sessionized.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.core.events import QueryRecord, SessionRecord
from repro.core.regions import Region

from .monitor import IDLE_CLOSE_SECONDS, IDLE_PROBE_SECONDS

__all__ = ["RawEvent", "reconstruct_sessions"]


@dataclass(frozen=True)
class RawEvent:
    """One line of a raw measurement log.

    ``kind`` is one of ``connect``, ``query``, ``depart`` (silent) or
    ``bye`` (explicit).  ``connect`` events carry the peer metadata; the
    others reference the connection by ``conn_id``.
    """

    kind: str
    conn_id: int
    timestamp: float
    peer_ip: str = ""
    region: Region = Region.OTHER
    user_agent: str = "unknown"
    ultrapeer: bool = False
    shared_files: int = 0
    keywords: str = ""
    sha1: bool = False
    automated: bool = False


def reconstruct_sessions(events: Iterable[RawEvent], end_time: Optional[float] = None) -> List[SessionRecord]:
    """Rebuild sessions from a raw event log.

    Applies the same end-time semantics as the live monitor: silent
    departures are recorded ``IDLE_PROBE + IDLE_CLOSE`` seconds late;
    BYEs end exactly; connections with no terminating event end at
    ``end_time`` (required in that case).
    """
    opens: Dict[int, RawEvent] = {}
    queries: Dict[int, List[QueryRecord]] = {}
    sessions: List[SessionRecord] = []

    def close(conn_id: int, end: float) -> None:
        opened = opens.pop(conn_id)
        sessions.append(
            SessionRecord(
                peer_ip=opened.peer_ip,
                region=opened.region,
                start=opened.timestamp,
                end=end,
                queries=tuple(queries.pop(conn_id, [])),
                user_agent=opened.user_agent,
                ultrapeer=opened.ultrapeer,
                shared_files=opened.shared_files,
            )
        )

    for event in sorted(events, key=lambda e: (e.timestamp, e.conn_id)):
        if event.kind == "connect":
            if event.conn_id in opens:
                raise ValueError(f"connection {event.conn_id} opened twice")
            opens[event.conn_id] = event
            queries[event.conn_id] = []
        elif event.kind == "query":
            if event.conn_id not in opens:
                raise ValueError(f"query on unopened connection {event.conn_id}")
            queries[event.conn_id].append(
                QueryRecord(
                    timestamp=event.timestamp,
                    keywords=event.keywords,
                    sha1=event.sha1,
                    hops=1,
                    ttl=6,
                    automated=event.automated,
                )
            )
        elif event.kind == "depart":
            last = max(
                [q.timestamp for q in queries.get(event.conn_id, [])]
                + [opens[event.conn_id].timestamp, event.timestamp]
            )
            close(event.conn_id, last + IDLE_PROBE_SECONDS + IDLE_CLOSE_SECONDS)
        elif event.kind == "bye":
            close(event.conn_id, event.timestamp)
        else:
            raise ValueError(f"unknown event kind {event.kind!r}")

    if opens:
        if end_time is None:
            raise ValueError(f"{len(opens)} connections never closed and no end_time given")
        for conn_id in sorted(opens):
            close(conn_id, end_time)
    sessions.sort(key=lambda s: (s.end, s.start))
    return sessions
