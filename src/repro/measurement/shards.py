"""Sharded on-disk trace store: the out-of-core ``ColumnarTrace``.

A :class:`ShardedTrace` is a directory of time-ordered ``.npz`` shards
plus a ``manifest.json``.  Each shard is a complete, canonically sorted
:class:`~repro.measurement.columnar.ColumnarTrace` covering one
half-open time window ``[start, end)``; a session belongs to the shard
its *arrival* falls in (its lifetime may extend past the window), and
background pong/queryhit observations are windowed disjointly, so the
shard windows partition every sort key the columnar builder uses.

That partitioning is what makes :meth:`ShardedTrace.concat` exact: the
builder's ``np.lexsort`` is stable and each shard is already sorted, so
merging the shards reproduces the single-file ``run_columnar()`` output
byte for byte -- same arrays, same tie order, same counters.  The
streaming consumers (``repro.filtering.streaming``,
``repro.analysis.streaming``) never need that concatenation; they visit
one memory-mapped shard at a time via :meth:`iter_shards`, which is what
keeps the 40-day paper scenario inside a laptop-class RSS budget.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from .columnar import COLUMNAR_SCHEMA_VERSION, ColumnarTrace, ColumnarTraceBuilder

__all__ = ["SHARD_MANIFEST_VERSION", "ShardInfo", "ShardWriter", "ShardedTrace"]

#: Bumped whenever the manifest layout or shard file contract changes.
SHARD_MANIFEST_VERSION = 1

MANIFEST_NAME = "manifest.json"


@dataclass(frozen=True)
class ShardInfo:
    """One shard's manifest row: file name, window, and table sizes."""

    file: str
    start: float
    end: float
    n_sessions: int
    n_queries: int
    n_pongs: int
    n_hits: int

    def as_dict(self) -> Dict[str, Union[str, float, int]]:
        return {
            "file": self.file,
            "start": self.start,
            "end": self.end,
            "n_sessions": self.n_sessions,
            "n_queries": self.n_queries,
            "n_pongs": self.n_pongs,
            "n_hits": self.n_hits,
        }


class ShardWriter:
    """Spills per-window trace parts to disk as they are synthesized.

    ``append`` takes a *raw* engine part (unsorted, raw counters),
    canonicalizes it through a single-part
    :class:`~repro.measurement.columnar.ColumnarTraceBuilder` pass, and
    writes it out immediately -- nothing but running totals stays in
    memory.  ``close`` persists the manifest (written last: its presence
    marks the directory complete) and reopens the result.
    """

    def __init__(self, root: Union[str, Path], start_time: float, end_time: float):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.start_time = float(start_time)
        self.end_time = float(end_time)
        self.raw_counters: Dict[str, int] = {}
        self.total_sessions = 0
        self.total_queries = 0
        self.total_observed_hits = 0
        self._shards: List[ShardInfo] = []

    def __len__(self) -> int:
        return len(self._shards)

    def append(self, part: ColumnarTrace) -> ShardInfo:
        builder = ColumnarTraceBuilder()
        builder.append(part)
        shard = builder.build()
        index = len(self._shards)
        name = f"shard-{index:05d}.npz"
        shard.save_npz(self.root / name)
        for key, value in part.counters.items():
            self.raw_counters[key] = self.raw_counters.get(key, 0) + int(value)
        self.total_sessions += shard.n_sessions
        self.total_queries += shard.n_queries
        if shard.n_queries:
            self.total_observed_hits += int(shard.query_hits.sum())
        info = ShardInfo(
            file=name,
            start=shard.start_time,
            end=shard.end_time,
            n_sessions=shard.n_sessions,
            n_queries=shard.n_queries,
            n_pongs=int(shard.pong_timestamp.shape[0]),
            n_hits=int(shard.hit_timestamp.shape[0]),
        )
        self._shards.append(info)
        return info

    def close(self, counters: Dict[str, int]) -> "ShardedTrace":
        """Write the manifest with the *finalized* counter dict."""
        manifest = {
            "manifest_version": SHARD_MANIFEST_VERSION,
            "columnar_schema_version": COLUMNAR_SCHEMA_VERSION,
            "start_time": self.start_time,
            "end_time": self.end_time,
            # Pairs, not an object: JSON objects survive round-trips in
            # insertion order in practice but pairs make it contractual.
            "counters": [[name, int(value)] for name, value in counters.items()],
            "shards": [info.as_dict() for info in self._shards],
        }
        tmp = self.root / (MANIFEST_NAME + ".tmp")
        tmp.write_text(json.dumps(manifest, indent=2) + "\n")
        os.replace(tmp, self.root / MANIFEST_NAME)
        return ShardedTrace.open(self.root)


class ShardedTrace:
    """A manifest-described directory of time-ordered columnar shards."""

    def __init__(
        self,
        root: Path,
        start_time: float,
        end_time: float,
        counters: Dict[str, int],
        shards: List[ShardInfo],
    ):
        self.root = root
        self.start_time = start_time
        self.end_time = end_time
        self.counters = counters
        self.shards = shards

    @classmethod
    def open(cls, root: Union[str, Path]) -> "ShardedTrace":
        root = Path(root)
        manifest_path = root / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text())
        version = int(manifest["manifest_version"])
        if version != SHARD_MANIFEST_VERSION:
            raise ValueError(
                f"{root}: shard manifest v{version}, expected v{SHARD_MANIFEST_VERSION}"
            )
        schema = int(manifest["columnar_schema_version"])
        if schema != COLUMNAR_SCHEMA_VERSION:
            raise ValueError(
                f"{root}: columnar schema v{schema}, expected v{COLUMNAR_SCHEMA_VERSION}"
            )
        shards = [ShardInfo(**row) for row in manifest["shards"]]
        counters = {str(name): int(value) for name, value in manifest["counters"]}
        return cls(
            root=root,
            start_time=float(manifest["start_time"]),
            end_time=float(manifest["end_time"]),
            counters=counters,
            shards=shards,
        )

    # -- shape (Trace/ColumnarTrace-compatible surface) ---------------------

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def n_sessions(self) -> int:
        return sum(info.n_sessions for info in self.shards)

    @property
    def n_connections(self) -> int:
        return self.n_sessions

    @property
    def n_queries(self) -> int:
        return sum(info.n_queries for info in self.shards)

    @property
    def duration_days(self) -> float:
        return (self.end_time - self.start_time) / 86400.0

    def hop1_query_count(self) -> int:
        return self.n_queries

    # -- access --------------------------------------------------------------

    def load_shard(self, index: int, mmap_mode: Optional[str] = "r") -> ColumnarTrace:
        return ColumnarTrace.load_npz(self.root / self.shards[index].file, mmap_mode=mmap_mode)

    def iter_shards(self, mmap_mode: Optional[str] = "r") -> Iterator[ColumnarTrace]:
        """Shards in time order, one memory-mapped trace at a time."""
        for index in range(len(self.shards)):
            yield self.load_shard(index, mmap_mode=mmap_mode)

    def iter_windows(
        self,
        start: Optional[float] = None,
        end: Optional[float] = None,
        mmap_mode: Optional[str] = "r",
    ) -> Iterator[Tuple[ShardInfo, ColumnarTrace]]:
        """Shards whose ``[start, end)`` window intersects the query range."""
        lo = self.start_time if start is None else float(start)
        hi = self.end_time if end is None else float(end)
        for index, info in enumerate(self.shards):
            if info.end > lo and info.start < hi:
                yield info, self.load_shard(index, mmap_mode=mmap_mode)

    def concat(self, mmap_mode: Optional[str] = "r") -> ColumnarTrace:
        """Merge every shard back into one in-memory :class:`ColumnarTrace`.

        Byte-identical to the single-file synthesis output: the shard
        windows partition the builder's primary sort keys and the
        builder's lexsort is stable, so re-sorting the concatenation of
        per-shard sorts reproduces the global sort exactly, tie order
        included.  The window and finalized counters come from the
        manifest, not from the per-shard raw sums.
        """
        builder = ColumnarTraceBuilder()
        for shard in self.iter_shards(mmap_mode=mmap_mode):
            builder.append(shard)
        trace = builder.build()
        trace.start_time = self.start_time
        trace.end_time = self.end_time
        trace.counters = dict(self.counters)
        return trace

    def query_hits_total(self) -> int:
        """Observed one-hop queryhit total, without loading keyword columns."""
        total = 0
        for shard in self.iter_shards():
            if shard.n_queries:
                total += int(np.asarray(shard.query_hits).sum())
        return total
