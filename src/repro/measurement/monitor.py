"""The passive measurement ultrapeer (modified-mutella substitute).

Reproduces the measurement client of Section 3.1-3.2:

* runs in ultrapeer mode with a bounded number of simultaneous
  connection slots (the paper used up to 200);
* records the User-Agent from the connection handshake;
* never generates traffic except keep-alive probing: "when the
  measurement peer detects that a connection is idle for 15 seconds, it
  sends a single PING message ...  if no response is received after
  another 15 seconds, the measurement peer will close the connection" --
  so sessions that end silently are recorded ~30 seconds long;
* attributes every hop-count-1 QUERY to the connected session it arrived
  on, which is possible because a user's client sends each query to all
  of its direct neighbours.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.events import QueryRecord, SessionRecord
from repro.core.regions import Region
from repro.gnutella.clients import MEASUREMENT_USER_AGENT
from repro.gnutella.handshake import HandshakeOffer, negotiate

__all__ = ["MeasurementNode", "OpenConnection"]

#: Seconds of idleness before the monitor sends its probe PING.
IDLE_PROBE_SECONDS = 15.0
#: Seconds after the probe before an unresponsive connection is closed.
IDLE_CLOSE_SECONDS = 15.0


@dataclass
class OpenConnection:
    """Book-keeping for one live one-hop connection."""

    conn_id: int
    peer_ip: str
    region: Region
    user_agent: str
    ultrapeer: bool
    shared_files: int
    opened_at: float
    last_activity: float
    queries: List[QueryRecord] = field(default_factory=list)


class MeasurementNode:
    """Passive ultrapeer that records one-hop peer sessions.

    The driver (see :mod:`repro.synthesis`) feeds it connection opens,
    query arrivals, and departures; the node produces
    :class:`~repro.core.events.SessionRecord` objects with the idle-
    detection end-time semantics of the paper, plus keep-alive PING/PONG
    accounting.
    """

    def __init__(self, max_slots: Optional[int] = 200, record_events: bool = False):
        if max_slots is not None and max_slots < 1:
            raise ValueError(f"max_slots must be >= 1 or None, got {max_slots}")
        self.max_slots = max_slots
        self.user_agent = MEASUREMENT_USER_AGENT
        self._next_id = 0
        self._open: Dict[int, OpenConnection] = {}
        self.sessions: List[SessionRecord] = []
        self.rejected_connections = 0
        self.keepalive_pings_sent = 0
        self.keepalive_pongs_received = 0
        #: Optional raw event log (connect/query/depart/bye), the archive
        #: format the offline sessionizer consumes.
        self.record_events = record_events
        self.raw_events: List = []

    @property
    def open_count(self) -> int:
        return len(self._open)

    # -- connection lifecycle -----------------------------------------------------

    def open_connection(
        self,
        now: float,
        peer_ip: str,
        region: Region,
        user_agent: str,
        ultrapeer: bool = False,
        shared_files: int = 0,
    ) -> Optional[int]:
        """Accept a new one-hop connection; returns its id or None if full.

        The handshake is actually exchanged (via
        :mod:`repro.gnutella.handshake`) so the recorded User-Agent comes
        from the offer text, exactly as the real monitor captured it.
        """
        slots_free = self.max_slots is None or len(self._open) < self.max_slots
        offer = HandshakeOffer(user_agent=user_agent, ultrapeer=ultrapeer)
        response, parsed = negotiate(
            offer.render(), self.user_agent, slots_available=slots_free
        )
        if not response.accepted or parsed is None:
            self.rejected_connections += 1
            return None
        conn_id = self._next_id
        self._next_id += 1
        if self.record_events:
            from .sessions import RawEvent

            self.raw_events.append(RawEvent(
                "connect", conn_id, now, peer_ip=peer_ip, region=region,
                user_agent=parsed.user_agent, ultrapeer=parsed.ultrapeer,
                shared_files=shared_files,
            ))
        self._open[conn_id] = OpenConnection(
            conn_id=conn_id,
            peer_ip=peer_ip,
            region=region,
            user_agent=parsed.user_agent,
            ultrapeer=parsed.ultrapeer,
            shared_files=shared_files,
            opened_at=now,
            last_activity=now,
        )
        return conn_id

    def receive_query(
        self,
        conn_id: int,
        now: float,
        keywords: str,
        sha1: bool = False,
        automated: bool = False,
        hits: int = 0,
    ) -> None:
        """Record a hop-count-1 QUERY arriving on ``conn_id``.

        ``hits`` is the number of QUERYHIT responses later routed back
        for this query (0 when hit accounting is disabled).
        """
        conn = self._require(conn_id)
        if now < conn.opened_at:
            raise ValueError(f"query at {now} precedes connection open {conn.opened_at}")
        self._count_keepalives(conn, now)
        conn.last_activity = now
        if self.record_events:
            from .sessions import RawEvent

            self.raw_events.append(RawEvent(
                "query", conn_id, now, keywords=keywords, sha1=sha1,
                automated=automated,
            ))
        conn.queries.append(
            QueryRecord(timestamp=now, keywords=keywords, sha1=sha1, hops=1,
                        ttl=6, automated=automated, hits=hits)
        )

    def client_departed(self, conn_id: int, now: float) -> SessionRecord:
        """The client silently stopped sending (the common case).

        The monitor notices after the idle probe times out, so the
        recorded end overshoots by ``IDLE_PROBE + IDLE_CLOSE`` seconds.
        One unanswered probe PING is counted.
        """
        conn = self._require(conn_id)
        self._count_keepalives(conn, now)
        self.keepalive_pings_sent += 1  # the final, unanswered probe
        if self.record_events:
            from .sessions import RawEvent

            self.raw_events.append(RawEvent("depart", conn_id, now))
        end = max(now, conn.last_activity) + IDLE_PROBE_SECONDS + IDLE_CLOSE_SECONDS
        return self._close(conn, end)

    def client_bye(self, conn_id: int, now: float) -> SessionRecord:
        """The client sent a BYE; the session ends at the true time."""
        conn = self._require(conn_id)
        self._count_keepalives(conn, now)
        if self.record_events:
            from .sessions import RawEvent

            self.raw_events.append(RawEvent("bye", conn_id, now))
        return self._close(conn, max(now, conn.last_activity))

    def client_closed(self, conn_id: int, now: float) -> SessionRecord:
        """The client closed the TCP connection (FIN/RST).

        Socket-level closes are detected immediately, so the recorded
        end is exact.  Quick system disconnects end this way -- which is
        why the paper can observe that "29% disconnect in less than 10
        seconds" at all.
        """
        conn = self._require(conn_id)
        self._count_keepalives(conn, now)
        return self._close(conn, max(now, conn.last_activity))

    def finalize(self, end_time: float) -> List[SessionRecord]:
        """Close every still-open connection at the end of the run.

        Mirrors the paper's trace boundary: sessions still connected when
        measurement stops are recorded as ending then.  Returns all
        sessions collected over the run, in close order.
        """
        for conn_id in sorted(self._open):
            conn = self._open[conn_id]
            self._count_keepalives(conn, end_time)
            self._close(conn, max(end_time, conn.last_activity))
        return self.sessions

    # -- internals ---------------------------------------------------------------

    def _close(self, conn: OpenConnection, end: float) -> SessionRecord:
        del self._open[conn.conn_id]
        session = SessionRecord(
            peer_ip=conn.peer_ip,
            region=conn.region,
            start=conn.opened_at,
            end=end,
            queries=tuple(conn.queries),
            user_agent=conn.user_agent,
            ultrapeer=conn.ultrapeer,
            shared_files=conn.shared_files,
        )
        self.sessions.append(session)
        return session

    def _count_keepalives(self, conn: OpenConnection, now: float) -> None:
        """Account for probe PINGs (and the peer's PONG replies) during
        an idle stretch: one exchange per ``IDLE_PROBE_SECONDS`` of
        continuous idleness while the peer was still alive."""
        idle = now - conn.last_activity
        if idle <= IDLE_PROBE_SECONDS:
            return
        exchanges = int(math.floor(idle / IDLE_PROBE_SECONDS))
        self.keepalive_pings_sent += exchanges
        self.keepalive_pongs_received += exchanges

    def _require(self, conn_id: int) -> OpenConnection:
        try:
            return self._open[conn_id]
        except KeyError:
            raise KeyError(f"connection {conn_id} is not open") from None
