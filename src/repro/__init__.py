"""repro -- reproduction of Klemm et al., "Characterizing the Query
Behavior in Peer-to-Peer File Sharing Systems" (IMC 2004).

The package is organized bottom-up:

* :mod:`repro.core` -- the paper's contribution: model distributions,
  published parameters, the query popularity model, and the Figure 12
  synthetic workload generator.
* :mod:`repro.geoip` -- synthetic GeoIP database (substitute for MaxMind).
* :mod:`repro.gnutella` -- Gnutella 0.6 protocol substrate: messages,
  routing, peers, client-implementation profiles, overlay simulator.
* :mod:`repro.agents` -- ground-truth user behaviour used to synthesize
  the trace the paper measured.
* :mod:`repro.measurement` -- the passive measurement ultrapeer and trace
  record schema.
* :mod:`repro.synthesis` -- drives agents + clients against the
  measurement node to produce a 40-day style trace at configurable scale.
* :mod:`repro.filtering` -- Section 3.3 filter rules 1-5.
* :mod:`repro.analysis` -- per-figure/table characterizations.
* :mod:`repro.experiments` -- end-to-end experiment drivers.

Quickstart::

    from repro.core import SyntheticWorkloadGenerator
    gen = SyntheticWorkloadGenerator(n_peers=100, seed=1)
    sessions = gen.generate(duration_seconds=3600)
"""

__version__ = "1.0.0"

from .core import Region, SyntheticWorkloadGenerator, WorkloadModel

__all__ = ["Region", "SyntheticWorkloadGenerator", "WorkloadModel", "__version__"]
