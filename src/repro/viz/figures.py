"""Render the paper's figures as SVG from a synthesized trace.

One function per figure builds a :class:`~repro.viz.plot.LinePlot` from
the analysis outputs; :func:`render_all` regenerates the full set into a
directory, axis conventions matching the paper (CCDFs on log-log axes,
time-of-day curves on linear axes, popularity pmf on log-log).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List

import numpy as np

from repro.analysis import (
    drift_counts,
    drift_distribution,
    first_query_ccdf,
    geographic_distribution,
    interarrival_ccdf,
    passive_duration_ccdf_by_period,
    passive_duration_ccdf_by_region,
    passive_fraction_by_hour,
    queries_per_session_ccdf,
    query_load,
    shared_files_distribution,
    time_after_last_ccdf,
)
from repro.analysis.popularity import popularity_pmf
from repro.core.fitting import fit_zipf
from repro.core.popularity import QueryClassId
from repro.core.regions import KeyPeriod, Region
from repro.core.stats import Ccdf
from repro.experiments import ExperimentContext

from .plot import LinePlot

__all__ = ["build_figures", "render_all"]

_MAJOR = (Region.NORTH_AMERICA, Region.EUROPE, Region.ASIA)
_REGION_LABEL = {
    Region.NORTH_AMERICA: "North America",
    Region.EUROPE: "Europe",
    Region.ASIA: "Asia",
}


def _add_ccdf(plot: LinePlot, label: str, ccdf: Ccdf, x_scale: float = 1.0) -> None:
    plot.add(label, [x * x_scale for x in ccdf.x], list(ccdf.fraction))


def _fig1(ctx: ExperimentContext) -> Dict[str, LinePlot]:
    profile = geographic_distribution(ctx.trace)
    out = {}
    for region in _MAJOR:
        plot = LinePlot(
            title=f"Fig. 1 ({_REGION_LABEL[region]}): one-hop vs all peers",
            xlabel="Time of Day at Measurement Peer (h)",
            ylabel="Fraction of Peers",
            y_range=(0.0, 0.9),
        )
        plot.add("All Peers", list(profile.hours), list(profile.all_peers[region]))
        plot.add("1-hop Peers", list(profile.hours), list(profile.one_hop[region]))
        out[f"fig01_{region.short.lower()}"] = plot
    return out


def _fig2(ctx: ExperimentContext) -> Dict[str, LinePlot]:
    profile = shared_files_distribution(ctx.trace)
    plot = LinePlot(
        title="Fig. 2: shared files of one-hop vs all peers",
        xlabel="Number of Shared Files",
        ylabel="Fraction of Peers",
        log_y=True,
    )
    plot.add("All Peers", list(profile.counts), list(profile.all_peers))
    plot.add("1-hop Peers", list(profile.counts), list(profile.one_hop))
    return {"fig02": plot}


def _fig3(ctx: ExperimentContext) -> Dict[str, LinePlot]:
    profiles = query_load(ctx.trace.sessions)
    out = {}
    for region, profile in profiles.items():
        plot = LinePlot(
            title=f"Fig. 3 ({_REGION_LABEL[region]}): query load vs time of day",
            xlabel="Time of Day at Measurement Peer (h)",
            ylabel="# Queries (30 min bins)",
        )
        plot.add("Max", list(profile.bin_hours), list(profile.maximum))
        plot.add("Average", list(profile.bin_hours), list(profile.average))
        plot.add("Min", list(profile.bin_hours), list(profile.minimum))
        out[f"fig03_{region.short.lower()}"] = plot
    return out


def _fig4(ctx: ExperimentContext) -> Dict[str, LinePlot]:
    profiles = passive_fraction_by_hour(ctx.filtered.sessions)
    out = {}
    for region, profile in profiles.items():
        plot = LinePlot(
            title=f"Fig. 4 ({_REGION_LABEL[region]}): fraction of passive peers",
            xlabel="Time of Day at Measurement Peer (h)",
            ylabel="Fraction of Passive Peers",
            y_range=(0.0, 1.0),
        )
        hours = list(profile.bin_hours)
        plot.add("Max", hours, np.nan_to_num(profile.maximum, nan=0.0))
        plot.add("Average", hours, np.nan_to_num(profile.average, nan=0.0))
        plot.add("Min", hours, np.nan_to_num(profile.minimum, nan=0.0))
        out[f"fig04_{region.short.lower()}"] = plot
    return out


def _fig5(ctx: ExperimentContext) -> Dict[str, LinePlot]:
    out = {}
    plot = LinePlot(
        title="Fig. 5(a): passive session duration by region",
        xlabel="Session Duration, x (min)",
        ylabel="Fraction of Sessions with Duration > x",
        log_x=True, log_y=True,
    )
    for region, ccdf in passive_duration_ccdf_by_region(ctx.filtered.sessions).items():
        _add_ccdf(plot, _REGION_LABEL[region], ccdf, x_scale=1 / 60.0)
    out["fig05a"] = plot
    by_period = passive_duration_ccdf_by_period(ctx.filtered.sessions, Region.EUROPE)
    if len(by_period) >= 2:
        plot_c = LinePlot(
            title="Fig. 5(c): passive duration by key period (Europe)",
            xlabel="Session Duration, x (min)",
            ylabel="Fraction of Sessions with Duration > x",
            log_x=True, log_y=True,
        )
        for period, ccdf in by_period.items():
            _add_ccdf(plot_c, f"Start at {period.label}", ccdf, x_scale=1 / 60.0)
        out["fig05c"] = plot_c
    return out


def _fig6(ctx: ExperimentContext) -> Dict[str, LinePlot]:
    plot = LinePlot(
        title="Fig. 6(a): queries per active session",
        xlabel="Number of Queries, x",
        ylabel="Fraction of Sessions with #Queries > x",
        log_x=True, log_y=True,
    )
    for region, ccdf in queries_per_session_ccdf(ctx.views).items():
        _add_ccdf(plot, _REGION_LABEL[region], ccdf)
    return {"fig06a": plot}


def _fig7(ctx: ExperimentContext) -> Dict[str, LinePlot]:
    plot = LinePlot(
        title="Fig. 7(a): time until first query",
        xlabel="Time Until First Query, x (sec)",
        ylabel="Fraction of Sessions with Time > x",
        log_x=True, log_y=True,
    )
    for region, ccdf in first_query_ccdf(ctx.views).items():
        _add_ccdf(plot, _REGION_LABEL[region], ccdf)
    out = {"fig07a": plot}
    by_class = first_query_ccdf(ctx.views, region=Region.NORTH_AMERICA, by_query_class=True)
    if len(by_class) >= 2:
        plot_b = LinePlot(
            title="Fig. 7(b): first query vs session length (NA)",
            xlabel="Time Until First Query, x (sec)",
            ylabel="Fraction of Sessions with Time > x",
            log_x=True, log_y=True,
        )
        for label, ccdf in by_class.items():
            _add_ccdf(plot_b, f"{label} Queries", ccdf)
        out["fig07b"] = plot_b
    return out


def _fig8(ctx: ExperimentContext) -> Dict[str, LinePlot]:
    plot = LinePlot(
        title="Fig. 8(a): query interarrival time",
        xlabel="Interarrival Time, x (sec)",
        ylabel="Fraction of Queries with Interarrival Time > x",
        log_x=True, log_y=True,
    )
    for region, ccdf in interarrival_ccdf(ctx.views).items():
        _add_ccdf(plot, _REGION_LABEL[region], ccdf)
    return {"fig08a": plot}


def _fig9(ctx: ExperimentContext) -> Dict[str, LinePlot]:
    plot = LinePlot(
        title="Fig. 9(a): time after last query",
        xlabel="Time After Last Query, x (sec)",
        ylabel="Fraction of Sessions with Time > x",
        log_x=True, log_y=True,
    )
    for region, ccdf in time_after_last_ccdf(ctx.views).items():
        _add_ccdf(plot, _REGION_LABEL[region], ccdf)
    return {"fig09a": plot}


def _fig10(ctx: ExperimentContext) -> Dict[str, LinePlot]:
    counts = drift_counts(ctx.filtered.sessions, Region.NORTH_AMERICA)
    if len(counts) < 2:
        return {}
    plot = LinePlot(
        title="Fig. 10(a): drift of the top-10 queries (NA)",
        xlabel="Number of Queries, x",
        ylabel="Fraction of Days with > x in Top N on Day n+1",
        y_range=(0.0, 1.0),
    )
    xs = list(range(5))
    for top_n in (100, 20, 10):
        dist = drift_distribution(
            drift_counts(ctx.filtered.sessions, Region.NORTH_AMERICA, top_n=top_n)
        )
        plot.add(f"N={top_n}", xs, list(dist))
    return {"fig10a": plot}


def _fig11(ctx: ExperimentContext) -> Dict[str, LinePlot]:
    out = {}
    for cls, name in ((QueryClassId.NA_ONLY, "na"), (QueryClassId.EU_ONLY, "eu")):
        pmf = popularity_pmf(ctx.filtered.sessions, cls)
        if pmf.size < 5:
            continue
        fit = fit_zipf(pmf)
        ranks = np.arange(1, pmf.size + 1, dtype=float)
        fitted = np.exp(fit.intercept) * ranks**-fit.alpha
        plot = LinePlot(
            title=f"Fig. 11 ({name.upper()}-only queries): per-day popularity",
            xlabel="Query Rank, r",
            ylabel="Frequency of Query r",
            log_x=True, log_y=True,
        )
        plot.add("Measured pmf", list(ranks), list(pmf))
        plot.add(f"Fitted Zipf (alpha={fit.alpha:.3f})", list(ranks), list(fitted))
        out[f"fig11_{name}"] = plot
    return out


def _fig_extensions(ctx: ExperimentContext) -> Dict[str, LinePlot]:
    """Extension figures: hit-count CCDF (X1) and the concurrency curve (X4)."""
    out = {}
    from repro.analysis.availability import concurrency_curve
    from repro.analysis.hits import hits_ccdf

    try:
        ccdf = hits_ccdf(ctx.filtered.sessions)
    except ValueError:
        ccdf = None
    if ccdf is not None and len(ccdf) >= 3:
        plot = LinePlot(
            title="Ext. X1: QUERYHIT responders per user query",
            xlabel="Responders, x",
            ylabel="Fraction of Queries with Hits > x",
            log_y=True,
        )
        plot.add("All user queries", [x + 1.0 for x in ccdf.x], list(ccdf.fraction))
        if plot.series:
            out["ext_x1_hits"] = plot
    times, counts = concurrency_curve(ctx.trace.sessions, step_seconds=900.0)
    plot = LinePlot(
        title="Ext. X4: concurrent one-hop connections",
        xlabel="Trace Time (h)",
        ylabel="Open Connections",
    )
    plot.add("Online peers", [t / 3600.0 for t in times], list(counts))
    if plot.series:
        out["ext_x4_concurrency"] = plot
    return out


_BUILDERS = (_fig1, _fig2, _fig3, _fig4, _fig5, _fig6, _fig7, _fig8, _fig9, _fig10,
             _fig11, _fig_extensions)


def build_figures(ctx: ExperimentContext) -> Dict[str, LinePlot]:
    """Build every renderable figure for a context (name -> plot)."""
    figures: Dict[str, LinePlot] = {}
    for builder in _BUILDERS:
        figures.update(builder(ctx))
    return figures


def render_all(ctx: ExperimentContext, outdir) -> List[Path]:
    """Render every figure into ``outdir``; returns the written paths."""
    outdir = Path(outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    written = []
    for name, plot in sorted(build_figures(ctx).items()):
        path = outdir / f"{name}.svg"
        plot.save(path)
        written.append(path)
    return written
