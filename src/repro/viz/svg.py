"""Minimal dependency-free SVG canvas.

The environment ships no plotting library, so the figure renderer builds
SVG directly.  :class:`SvgCanvas` collects primitives (lines, polylines,
circles, rectangles, text) in user coordinates and serializes a valid
standalone SVG document.
"""

from __future__ import annotations

import html
from typing import List, Optional, Sequence, Tuple

__all__ = ["SvgCanvas"]


def _fmt(value: float) -> str:
    return f"{value:.2f}".rstrip("0").rstrip(".")


class SvgCanvas:
    """An SVG document buffer with pixel-coordinate drawing primitives."""

    def __init__(self, width: int, height: int, background: str = "white"):
        if width <= 0 or height <= 0:
            raise ValueError("canvas dimensions must be positive")
        self.width = int(width)
        self.height = int(height)
        self._elements: List[str] = []
        if background:
            self.rect(0, 0, self.width, self.height, fill=background, stroke="none")

    def line(self, x1: float, y1: float, x2: float, y2: float,
             stroke: str = "black", width: float = 1.0, dash: str = "") -> None:
        dash_attr = f' stroke-dasharray="{dash}"' if dash else ""
        self._elements.append(
            f'<line x1="{_fmt(x1)}" y1="{_fmt(y1)}" x2="{_fmt(x2)}" y2="{_fmt(y2)}" '
            f'stroke="{stroke}" stroke-width="{_fmt(width)}"{dash_attr}/>'
        )

    def polyline(self, points: Sequence[Tuple[float, float]],
                 stroke: str = "black", width: float = 1.5, dash: str = "") -> None:
        if len(points) < 2:
            raise ValueError("polyline needs at least 2 points")
        path = " ".join(f"{_fmt(x)},{_fmt(y)}" for x, y in points)
        dash_attr = f' stroke-dasharray="{dash}"' if dash else ""
        self._elements.append(
            f'<polyline points="{path}" fill="none" stroke="{stroke}" '
            f'stroke-width="{_fmt(width)}"{dash_attr}/>'
        )

    def circle(self, cx: float, cy: float, r: float,
               fill: str = "black", stroke: str = "none") -> None:
        self._elements.append(
            f'<circle cx="{_fmt(cx)}" cy="{_fmt(cy)}" r="{_fmt(r)}" '
            f'fill="{fill}" stroke="{stroke}"/>'
        )

    def rect(self, x: float, y: float, w: float, h: float,
             fill: str = "none", stroke: str = "black", width: float = 1.0) -> None:
        self._elements.append(
            f'<rect x="{_fmt(x)}" y="{_fmt(y)}" width="{_fmt(w)}" height="{_fmt(h)}" '
            f'fill="{fill}" stroke="{stroke}" stroke-width="{_fmt(width)}"/>'
        )

    def text(self, x: float, y: float, content: str, size: int = 12,
             anchor: str = "start", fill: str = "black", rotate: Optional[float] = None) -> None:
        transform = ""
        if rotate is not None:
            transform = f' transform="rotate({_fmt(rotate)} {_fmt(x)} {_fmt(y)})"'
        self._elements.append(
            f'<text x="{_fmt(x)}" y="{_fmt(y)}" font-size="{size}" '
            f'font-family="Helvetica, Arial, sans-serif" text-anchor="{anchor}" '
            f'fill="{fill}"{transform}>{html.escape(content)}</text>'
        )

    def render(self) -> str:
        """The complete SVG document."""
        body = "\n  ".join(self._elements)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}" '
            f'height="{self.height}" viewBox="0 0 {self.width} {self.height}">\n'
            f"  {body}\n</svg>\n"
        )

    def save(self, path) -> None:
        from pathlib import Path

        Path(path).write_text(self.render())
