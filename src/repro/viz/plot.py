"""Line plots in the paper's style (gnuplot-era CCDF and time-series plots)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from .axes import LinearScale, LogScale, Scale, format_tick
from .svg import SvgCanvas

__all__ = ["Series", "LinePlot"]

#: Line colors cycling in the order the paper's figures distinguish series.
PALETTE = ("#c02020", "#2050c0", "#208040", "#a06010", "#703090", "#404040")
DASHES = ("", "6,3", "2,3", "8,3,2,3", "1,2", "10,4")


@dataclass
class Series:
    """One plotted line."""

    label: str
    x: Sequence[float]
    y: Sequence[float]

    def __post_init__(self):
        if len(self.x) != len(self.y):
            raise ValueError(f"series {self.label!r}: x and y lengths differ")
        if len(self.x) < 2:
            raise ValueError(f"series {self.label!r}: need at least 2 points")


@dataclass
class LinePlot:
    """A single-panel line plot with optional log axes and a legend."""

    title: str
    xlabel: str
    ylabel: str
    log_x: bool = False
    log_y: bool = False
    width: int = 520
    height: int = 360
    series: List[Series] = field(default_factory=list)
    x_range: Optional[Tuple[float, float]] = None
    y_range: Optional[Tuple[float, float]] = None

    _MARGIN_LEFT = 64
    _MARGIN_RIGHT = 16
    _MARGIN_TOP = 34
    _MARGIN_BOTTOM = 48

    def add(self, label: str, x: Sequence[float], y: Sequence[float]) -> None:
        """Add a series, dropping non-plottable points on log axes."""
        points = [
            (float(a), float(b))
            for a, b in zip(x, y)
            if (not self.log_x or a > 0) and (not self.log_y or b > 0)
        ]
        if len(points) < 2:
            return  # nothing plottable; skip silently (sparse conditionals)
        self.series.append(Series(label, [p[0] for p in points], [p[1] for p in points]))

    # -- rendering -----------------------------------------------------------------

    def render(self) -> str:
        if not self.series:
            raise ValueError(f"plot {self.title!r} has no series")
        canvas = SvgCanvas(self.width, self.height)
        x_scale, y_scale = self._scales()
        self._draw_frame(canvas, x_scale, y_scale)
        for index, series in enumerate(self.series):
            color = PALETTE[index % len(PALETTE)]
            dash = DASHES[index % len(DASHES)]
            points = [
                (x_scale.transform(x), y_scale.transform(y))
                for x, y in zip(series.x, series.y)
            ]
            canvas.polyline(points, stroke=color, width=1.6, dash=dash)
        self._draw_legend(canvas)
        canvas.text(self.width / 2, 18, self.title, size=13, anchor="middle")
        return canvas.render()

    def save(self, path) -> None:
        from pathlib import Path

        Path(path).write_text(self.render())

    # -- internals ---------------------------------------------------------------------

    def _data_bounds(self) -> Tuple[float, float, float, float]:
        xs = [v for s in self.series for v in s.x]
        ys = [v for s in self.series for v in s.y]
        x_lo, x_hi = (min(xs), max(xs)) if self.x_range is None else self.x_range
        y_lo, y_hi = (min(ys), max(ys)) if self.y_range is None else self.y_range
        if x_hi <= x_lo:
            x_hi = x_lo + (abs(x_lo) or 1.0)
        if y_hi <= y_lo:
            y_hi = y_lo + (abs(y_lo) or 1.0)
        return x_lo, x_hi, y_lo, y_hi

    def _scales(self) -> Tuple[Scale, Scale]:
        x_lo, x_hi, y_lo, y_hi = self._data_bounds()
        px_left = self._MARGIN_LEFT
        px_right = self.width - self._MARGIN_RIGHT
        px_top = self._MARGIN_TOP
        px_bottom = self.height - self._MARGIN_BOTTOM
        x_cls = LogScale if self.log_x else LinearScale
        y_cls = LogScale if self.log_y else LinearScale
        x_scale = x_cls(x_lo, x_hi, px_left, px_right)
        # y pixels grow downward: swap so larger data is higher.
        y_scale = y_cls(y_lo, y_hi, px_bottom, px_top)
        return x_scale, y_scale

    def _draw_frame(self, canvas: SvgCanvas, x_scale: Scale, y_scale: Scale) -> None:
        left, right = self._MARGIN_LEFT, self.width - self._MARGIN_RIGHT
        top, bottom = self._MARGIN_TOP, self.height - self._MARGIN_BOTTOM
        canvas.rect(left, top, right - left, bottom - top, stroke="#404040")
        for tick in x_scale.ticks():
            px = x_scale.transform(tick)
            if not left - 1 <= px <= right + 1:
                continue
            canvas.line(px, bottom, px, bottom + 4, stroke="#404040")
            canvas.line(px, top, px, bottom, stroke="#e0e0e0", width=0.5)
            canvas.text(px, bottom + 17, format_tick(tick), size=10, anchor="middle")
        for tick in y_scale.ticks():
            py = y_scale.transform(tick)
            if not top - 1 <= py <= bottom + 1:
                continue
            canvas.line(left - 4, py, left, py, stroke="#404040")
            canvas.line(left, py, right, py, stroke="#e0e0e0", width=0.5)
            canvas.text(left - 7, py + 3.5, format_tick(tick), size=10, anchor="end")
        canvas.text((left + right) / 2, self.height - 10, self.xlabel, size=11, anchor="middle")
        canvas.text(16, (top + bottom) / 2, self.ylabel, size=11, anchor="middle", rotate=-90.0)

    def _draw_legend(self, canvas: SvgCanvas) -> None:
        x = self._MARGIN_LEFT + 12
        y = self._MARGIN_TOP + 16
        for index, series in enumerate(self.series):
            color = PALETTE[index % len(PALETTE)]
            dash = DASHES[index % len(DASHES)]
            canvas.line(x, y - 4, x + 24, y - 4, stroke=color, width=1.6, dash=dash)
            canvas.text(x + 30, y, series.label, size=10)
            y += 15
