"""Dependency-free SVG rendering of the paper's figures."""

from .axes import LinearScale, LogScale, decade_ticks, format_tick, nice_linear_ticks
from .figures import build_figures, render_all
from .plot import LinePlot, Series
from .svg import SvgCanvas

__all__ = [
    "LinearScale", "LogScale", "decade_ticks", "format_tick", "nice_linear_ticks",
    "build_figures", "render_all",
    "LinePlot", "Series",
    "SvgCanvas",
]
