"""Axis scales and tick generation for the figure renderer."""

from __future__ import annotations

import math
from typing import List, Tuple

__all__ = ["Scale", "LinearScale", "LogScale", "nice_linear_ticks", "decade_ticks"]


class Scale:
    """Maps data values to pixel coordinates on one axis."""

    def __init__(self, data_min: float, data_max: float, pixel_min: float, pixel_max: float):
        if data_max <= data_min:
            raise ValueError(f"need data_max > data_min, got [{data_min}, {data_max}]")
        self.data_min = float(data_min)
        self.data_max = float(data_max)
        self.pixel_min = float(pixel_min)
        self.pixel_max = float(pixel_max)

    def transform(self, value: float) -> float:
        raise NotImplementedError

    def ticks(self) -> List[float]:
        raise NotImplementedError

    def _interp(self, fraction: float) -> float:
        return self.pixel_min + fraction * (self.pixel_max - self.pixel_min)


class LinearScale(Scale):
    """Linear data -> pixel mapping with 1-2-5 ticks."""

    def transform(self, value: float) -> float:
        fraction = (value - self.data_min) / (self.data_max - self.data_min)
        return self._interp(min(max(fraction, -0.05), 1.05))

    def ticks(self) -> List[float]:
        return nice_linear_ticks(self.data_min, self.data_max)


class LogScale(Scale):
    """Logarithmic mapping with decade ticks (the paper's CCDF axes)."""

    def __init__(self, data_min: float, data_max: float, pixel_min: float, pixel_max: float):
        if data_min <= 0:
            raise ValueError(f"log scale needs positive data_min, got {data_min}")
        super().__init__(data_min, data_max, pixel_min, pixel_max)
        self._log_min = math.log10(self.data_min)
        self._log_max = math.log10(self.data_max)

    def transform(self, value: float) -> float:
        value = max(value, self.data_min * 1e-3)
        fraction = (math.log10(value) - self._log_min) / (self._log_max - self._log_min)
        return self._interp(min(max(fraction, -0.05), 1.05))

    def ticks(self) -> List[float]:
        return decade_ticks(self.data_min, self.data_max)


def nice_linear_ticks(low: float, high: float, target: int = 6) -> List[float]:
    """Round tick positions using the 1-2-5 progression."""
    if high <= low:
        raise ValueError("need high > low")
    raw_step = (high - low) / max(target - 1, 1)
    magnitude = 10 ** math.floor(math.log10(raw_step)) if raw_step > 0 else 1.0
    for multiplier in (1.0, 2.0, 5.0, 10.0):
        step = multiplier * magnitude
        if raw_step <= step:
            break
    first = math.ceil(low / step) * step
    ticks = []
    value = first
    while value <= high + 1e-9 * step:
        ticks.append(round(value, 10))
        value += step
    return ticks


def decade_ticks(low: float, high: float) -> List[float]:
    """Powers of ten spanning [low, high]."""
    if low <= 0 or high <= low:
        raise ValueError("need 0 < low < high")
    first = math.ceil(math.log10(low) - 1e-9)
    last = math.floor(math.log10(high) + 1e-9)
    return [10.0**e for e in range(first, last + 1)]


def format_tick(value: float) -> str:
    """Compact tick label (1e-04 style for small magnitudes)."""
    if value == 0:
        return "0"
    if abs(value) >= 10_000 or abs(value) < 0.01:
        return f"{value:.0e}"
    if float(value).is_integer():
        return str(int(value))
    return f"{value:g}"


__all__.append("format_tick")
