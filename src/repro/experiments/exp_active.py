"""Experiments F6-F9: active session characteristics."""

from __future__ import annotations

from repro.core.regions import KeyPeriod, Region

from repro.analysis import (
    first_query_ccdf,
    interarrival_ccdf,
    queries_per_session_ccdf,
    queries_per_session_ccdf_unfiltered,
    time_after_last_ccdf,
)

from .base import ExperimentContext, ExperimentResult

__all__ = ["run_fig6", "run_fig7", "run_fig8", "run_fig9"]

_MAJOR = (Region.NORTH_AMERICA, Region.EUROPE, Region.ASIA)


class _ViewStats:
    """The Figure 6-9 CCDFs over materialized record views.

    Same method surface as the streamed
    :class:`~repro.analysis.streaming.ActiveArrays`, so the experiments
    below dispatch on the context mode once and read CCDFs uniformly.
    """

    def __init__(self, views):
        self._views = views

    def queries_per_session_ccdf(self, region=None):
        return queries_per_session_ccdf(self._views, region=region)

    def queries_per_session_ccdf_unfiltered(self):
        return queries_per_session_ccdf_unfiltered(self._views)

    def first_query_ccdf(self, region=None, by_query_class=False):
        return first_query_ccdf(self._views, region=region, by_query_class=by_query_class)

    def interarrival_ccdf(self, region=None, by_query_class=False):
        return interarrival_ccdf(self._views, region=region, by_query_class=by_query_class)

    def time_after_last_ccdf(self, region=None, by_query_class=False):
        return time_after_last_ccdf(self._views, region=region, by_query_class=by_query_class)


def _active_stats(ctx: ExperimentContext):
    """Streamed active-session arrays, or the record views (identical output)."""
    if ctx.stream:
        return ctx.streaming.active
    return _ViewStats(ctx.views)


def run_fig6(ctx: ExperimentContext) -> ExperimentResult:
    """Figure 6: number of queries per active session.

    Section 4.5 anchors: P[#queries < 5] is 92% Asia / 80% NA / 70% EU.
    """
    result = ExperimentResult("F6", "Queries per active session")
    paper_lt5 = {Region.ASIA: 0.92, Region.NORTH_AMERICA: 0.80, Region.EUROPE: 0.70}
    stats = _active_stats(ctx)
    by_region = stats.queries_per_session_ccdf()
    unfiltered = stats.queries_per_session_ccdf_unfiltered()
    for region in _MAJOR:
        if region not in by_region:
            continue
        result.add(
            region=region.short,
            paper_lt5=paper_lt5[region],
            ours_lt5=1.0 - by_region[region].at(4.5),
            ours_lt5_no_rules45=1.0 - unfiltered[region].at(4.5),
        )
    eu = by_region.get(Region.EUROPE)
    na = by_region.get(Region.NORTH_AMERICA)
    asia = by_region.get(Region.ASIA)
    if eu and na and asia:
        ok = eu.at(4.5) > na.at(4.5) > asia.at(4.5)
        result.note(f"ordering EU > NA > AS on P[#queries >= 5]: {'OK' if ok else 'VIOLATED'}")
    # Panel (b): query counts are roughly insensitive to the start period
    # ("the number of queries per session is roughly insensitive to
    # session start time for 99% of the sessions").
    by_period = stats.queries_per_session_ccdf(region=Region.EUROPE)
    values = [ccdf.at(4.5) for ccdf in by_period.values() if len(ccdf) > 5]
    if len(values) >= 2:
        spread = max(values) - min(values)
        result.note(
            f"EU P[#queries >= 5] spread across key periods: {spread:.3f} "
            f"(paper: roughly insensitive to start time)"
        )
    result.note("rules 4&5 not applied (Fig 6c) shifts counts up, most visibly for Asia")
    return result


def run_fig7(ctx: ExperimentContext) -> ExperimentResult:
    """Figure 7: time until first query.

    Anchors: ~20% of NA/EU sessions (10% Asia) issue the first query
    within 10 s; ~40% within 30 s everywhere; Asia reaches ~90% by 90 s
    while Europe takes until ~1000 s.
    """
    result = ExperimentResult("F7", "Time until first query")
    paper_lt10 = {Region.NORTH_AMERICA: 0.20, Region.EUROPE: 0.20, Region.ASIA: 0.10}
    stats = _active_stats(ctx)
    by_region = stats.first_query_ccdf()
    for region in _MAJOR:
        if region not in by_region:
            continue
        ccdf = by_region[region]
        result.add(
            region=region.short,
            paper_lt10=paper_lt10[region],
            ours_lt10=1.0 - ccdf.at(10),
            paper_lt30=0.40,
            ours_lt30=1.0 - ccdf.at(30),
            ours_lt90=1.0 - ccdf.at(90),
        )
    # Panel (c): time of day.  "in sessions started in the non-peak hours
    # ... the first query is sent 10,000 seconds and more after session
    # start" for ~10% of European sessions.
    by_period = stats.first_query_ccdf(region=Region.EUROPE)
    for period in KeyPeriod:
        if period in by_period and len(by_period[period]) > 5:
            result.add(
                region="EU",
                paper_lt10="",
                ours_lt10=f"period {period.label}",
                paper_lt30="",
                ours_lt30=1.0 - by_period[period].at(30),
                ours_lt90=1.0 - by_period[period].at(90),
            )
    by_class = stats.first_query_ccdf(region=Region.NORTH_AMERICA, by_query_class=True)
    if "<3" in by_class and ">3" in by_class:
        lo = by_class["<3"].quantile_exceeded(0.10)
        hi = by_class[">3"].quantile_exceeded(0.10)
        result.note(
            f"NA 90th percentile of first-query time: <3 queries {lo:.0f}s vs >3 queries "
            f"{hi:.0f}s (paper: 200s vs 2000s -- more queries means later first query)"
        )
    return result


def run_fig8(ctx: ExperimentContext) -> ExperimentResult:
    """Figure 8: query interarrival time.

    Anchor: P[interarrival < 100 s] is 90% EU / 80% Asia / 70% NA.
    """
    result = ExperimentResult("F8", "Query interarrival time")
    paper_lt100 = {Region.EUROPE: 0.90, Region.ASIA: 0.80, Region.NORTH_AMERICA: 0.70}
    stats = _active_stats(ctx)
    by_region = stats.interarrival_ccdf()
    for region in _MAJOR:
        if region not in by_region:
            continue
        result.add(
            region=region.short,
            paper_lt100=paper_lt100[region],
            ours_lt100=1.0 - by_region[region].at(100),
        )
    # Panel (c): "queries issued in peak hours have longer interarrival
    # times than queries issued in non-peak hours" -- 94% < 100 s at
    # 03:00-04:00 vs 85% at 11:00-12:00 for Europe.
    eu_by_period = stats.interarrival_ccdf(region=Region.EUROPE)
    for period in KeyPeriod:
        if period in eu_by_period and len(eu_by_period[period]) > 5:
            result.add(
                region=f"EU {period.label}",
                paper_lt100=0.94 if period is KeyPeriod.H03 else "",
                ours_lt100=1.0 - eu_by_period[period].at(100),
            )
    eu_by_class = stats.interarrival_ccdf(region=Region.EUROPE, by_query_class=True)
    na_by_class = stats.interarrival_ccdf(region=Region.NORTH_AMERICA, by_query_class=True)
    if "=2" in eu_by_class and ">7" in eu_by_class:
        few = 1.0 - eu_by_class["=2"].at(100)
        many = 1.0 - eu_by_class[">7"].at(100)
        result.note(
            f"EU P[gap < 100 s]: 2-query sessions {few:.3f} vs >7-query sessions {many:.3f} "
            f"(paper: many-query EU sessions have *smaller* interarrivals)"
        )
    if "=2" in na_by_class and ">7" in na_by_class:
        few = 1.0 - na_by_class["=2"].at(100)
        many = 1.0 - na_by_class[">7"].at(100)
        result.note(
            f"NA P[gap < 100 s]: 2-query {few:.3f} vs >7-query {many:.3f} "
            f"(paper: no significant correlation for NA)"
        )
    return result


def run_fig9(ctx: ExperimentContext) -> ExperimentResult:
    """Figure 9: time after last query.

    Anchor: P[time after last > 1000 s] ~20% NA/EU, ~10% Asia; positive
    correlation with the number of queries; tail heavier than the
    interarrival tail (paper conclusion 5).
    """
    result = ExperimentResult("F9", "Time after last query")
    paper_gt1000 = {Region.NORTH_AMERICA: 0.20, Region.EUROPE: 0.20, Region.ASIA: 0.10}
    stats = _active_stats(ctx)
    by_region = stats.time_after_last_ccdf()
    for region in _MAJOR:
        if region not in by_region:
            continue
        result.add(
            region=region.short,
            paper_gt1000=paper_gt1000[region],
            ours_gt1000=by_region[region].at(1000),
        )
    # Panel (c): sessions whose *last query* falls in non-peak hours have
    # shorter time-after-last ("below 10,000 seconds for more than 99% of
    # the sessions [ending] between 03:00 and 04:00").
    eu_by_period = stats.time_after_last_ccdf(region=Region.EUROPE)
    for period in KeyPeriod:
        if period in eu_by_period and len(eu_by_period[period]) > 5:
            result.add(
                region=f"EU last query {period.label}",
                paper_gt1000="",
                ours_gt1000=eu_by_period[period].at(1000),
            )
    by_class = stats.time_after_last_ccdf(region=Region.NORTH_AMERICA, by_query_class=True)
    if "1" in by_class and ">7" in by_class:
        single = by_class["1"].at(1000)
        many = by_class[">7"].at(1000)
        result.note(
            f"NA P[after-last > 1000 s]: 1-query {single:.3f} vs >7-query {many:.3f} "
            f"(paper: positive correlation with #queries)"
        )
    inter = stats.interarrival_ccdf().get(Region.NORTH_AMERICA)
    last = by_region.get(Region.NORTH_AMERICA)
    if inter and last:
        result.note(
            f"NA tail heaviness at 1000 s: after-last {last.at(1000):.3f} vs interarrival "
            f"{inter.at(1000):.3f} (paper conclusion 5: after-last tail much heavier)"
        )
    return result
