"""Experiment plumbing: results, formatting, and the shared context.

Every experiment (one per paper table/figure) produces an
:class:`ExperimentResult`: a list of row dicts pairing the paper's value
with the measured one, plus free-form notes.  The benchmarks print these
rows; EXPERIMENTS.md is generated from them.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field, replace
from functools import cached_property
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from repro.analysis import active_sessions, run_streaming
from repro.analysis.active import ActiveSession
from repro.analysis.streaming import StreamingAnalysis
from repro.filtering import ColumnarFilterResult, FilterResult, apply_filters, apply_filters_columnar
from repro.measurement import ColumnarTrace, ShardedTrace, Trace
from repro.synthesis import (
    SynthesisConfig,
    TraceCache,
    TraceSynthesizer,
    load_or_synthesize_columnar,
    load_or_synthesize_sharded,
)

__all__ = ["ExperimentResult", "ExperimentContext", "format_rows"]


@dataclass
class ExperimentResult:
    """Outcome of reproducing one paper artifact."""

    experiment_id: str
    title: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add(self, **row: object) -> None:
        self.rows.append(row)

    def note(self, text: str) -> None:
        self.notes.append(text)

    def render(self) -> str:
        """Human-readable table of the result."""
        lines = [f"== {self.experiment_id}: {self.title} =="]
        lines.append(format_rows(self.rows))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)


def format_rows(rows: List[Dict[str, object]]) -> str:
    """Align row dicts into a fixed-width text table."""
    if not rows:
        return "  (no rows)"
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    rendered = [[_fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered)) for i, col in enumerate(columns)
    ]
    header = "  " + "  ".join(col.ljust(w) for col, w in zip(columns, widths))
    body = [
        "  " + "  ".join(cell.ljust(w) for cell, w in zip(r, widths)) for r in rendered
    ]
    return "\n".join([header] + body)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.3f}"
    return str(value)


class ExperimentContext:
    """Shared synthesized trace and derived views for a batch of experiments.

    Synthesis and filtering run lazily, once, and are reused by every
    experiment -- the same way the paper derives all figures from one
    trace.

    ``jobs`` overrides the config's synthesis worker count; ``cache``
    selects the content-addressed trace cache (True for the default
    location, a :class:`~repro.synthesis.TraceCache` for a specific one,
    False -- the default -- to always synthesize fresh, keeping library
    and test runs hermetic; the CLI opts in).

    ``stream=True`` switches the context to the out-of-core pipeline:
    synthesis spills time-ordered shards to disk (:attr:`shards`), and
    the Table 2 / Figure 1-11 products come from one bounded-memory
    streaming pass (:attr:`streaming`) instead of whole-trace arrays.
    Experiments with a streaming branch read those products directly --
    with results identical to the in-memory path -- while the rest fall
    back transparently (:attr:`columnar` concatenates the shards, and
    :attr:`views` materializes the streamed active arrays).
    ``shard_hours`` sets the shard window width (the config's
    ``shard_days`` drives both sharded synthesis and shard granularity).
    """

    #: Default scale: big enough for stable distributions, small enough
    #: to synthesize in tens of seconds.
    DEFAULT = SynthesisConfig(days=2.0, mean_arrival_rate=0.35, seed=20040315)

    def __init__(
        self,
        config: Optional[SynthesisConfig] = None,
        jobs: Optional[int] = None,
        cache: Union[bool, TraceCache] = False,
        stream: bool = False,
        shard_hours: Optional[float] = None,
    ):
        self.config = config or self.DEFAULT
        if jobs is not None:
            self.config = replace(self.config, jobs=jobs)
        if shard_hours is not None:
            self.config = replace(self.config, shard_days=float(shard_hours) / 24.0)
        self.cache = TraceCache() if cache is True else (cache or None)
        self.stream = bool(stream)

    @cached_property
    def trace(self) -> Trace:
        return self.columnar.to_trace()

    @cached_property
    def columnar(self) -> ColumnarTrace:
        """The trace as columns -- the primary product.

        The columnar synthesis backend emits this directly (no per-event
        Python loop), a warm ``.npz`` cache entry loads it as plain array
        bundles, and the record view (:attr:`trace`) is derived from it
        on demand.
        """
        if self.stream:
            # Streamed contexts still serve whole-trace consumers; the
            # shard windows partition the sort keys, so this is
            # byte-identical to a direct run_columnar().
            return self.shards.concat()
        if self.cache is None:
            return TraceSynthesizer(self.config).run_columnar()
        return load_or_synthesize_columnar(self.config, cache=self.cache)

    @cached_property
    def shards(self) -> ShardedTrace:
        """The trace as time-ordered on-disk shards (stream mode).

        Hermetic (cache-less) contexts synthesize into a private
        temporary directory that lives as long as the context; cached
        contexts synthesize straight into (or open) the shared sharded
        cache entry.
        """
        if self.cache is None:
            self._shard_dir = tempfile.TemporaryDirectory(prefix="repro-p2p-shards-")
            return TraceSynthesizer(self.config).run_sharded(
                Path(self._shard_dir.name) / "trace"
            )
        return load_or_synthesize_sharded(self.config, cache=self.cache)

    @cached_property
    def streaming(self) -> StreamingAnalysis:
        """Single-pass filter + Figure 1-11 reducers over :attr:`shards`."""
        return run_streaming(self.shards)

    @cached_property
    def filtered(self) -> FilterResult:
        return apply_filters(self.trace.sessions)

    @cached_property
    def cfiltered(self) -> ColumnarFilterResult:
        """Vectorized rules 1-5 over the columnar trace (bit-identical
        Table 2 report to :attr:`filtered`)."""
        return apply_filters_columnar(self.columnar)

    @cached_property
    def views(self) -> List[ActiveSession]:
        if self.stream:
            return self.streaming.active.views()
        return active_sessions(self.filtered)
