"""Experiment plumbing: results, formatting, and the shared context.

Every experiment (one per paper table/figure) produces an
:class:`ExperimentResult`: a list of row dicts pairing the paper's value
with the measured one, plus free-form notes.  The benchmarks print these
rows; EXPERIMENTS.md is generated from them.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import cached_property
from typing import Callable, Dict, List, Optional, Union

from repro.analysis import active_sessions
from repro.analysis.active import ActiveSession
from repro.filtering import ColumnarFilterResult, FilterResult, apply_filters, apply_filters_columnar
from repro.measurement import ColumnarTrace, Trace
from repro.synthesis import (
    SynthesisConfig,
    TraceCache,
    TraceSynthesizer,
    load_or_synthesize_columnar,
)

__all__ = ["ExperimentResult", "ExperimentContext", "format_rows"]


@dataclass
class ExperimentResult:
    """Outcome of reproducing one paper artifact."""

    experiment_id: str
    title: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add(self, **row: object) -> None:
        self.rows.append(row)

    def note(self, text: str) -> None:
        self.notes.append(text)

    def render(self) -> str:
        """Human-readable table of the result."""
        lines = [f"== {self.experiment_id}: {self.title} =="]
        lines.append(format_rows(self.rows))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)


def format_rows(rows: List[Dict[str, object]]) -> str:
    """Align row dicts into a fixed-width text table."""
    if not rows:
        return "  (no rows)"
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    rendered = [[_fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered)) for i, col in enumerate(columns)
    ]
    header = "  " + "  ".join(col.ljust(w) for col, w in zip(columns, widths))
    body = [
        "  " + "  ".join(cell.ljust(w) for cell, w in zip(r, widths)) for r in rendered
    ]
    return "\n".join([header] + body)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.3f}"
    return str(value)


class ExperimentContext:
    """Shared synthesized trace and derived views for a batch of experiments.

    Synthesis and filtering run lazily, once, and are reused by every
    experiment -- the same way the paper derives all figures from one
    trace.

    ``jobs`` overrides the config's synthesis worker count; ``cache``
    selects the content-addressed trace cache (True for the default
    location, a :class:`~repro.synthesis.TraceCache` for a specific one,
    False -- the default -- to always synthesize fresh, keeping library
    and test runs hermetic; the CLI opts in).
    """

    #: Default scale: big enough for stable distributions, small enough
    #: to synthesize in tens of seconds.
    DEFAULT = SynthesisConfig(days=2.0, mean_arrival_rate=0.35, seed=20040315)

    def __init__(
        self,
        config: Optional[SynthesisConfig] = None,
        jobs: Optional[int] = None,
        cache: Union[bool, TraceCache] = False,
    ):
        self.config = config or self.DEFAULT
        if jobs is not None:
            self.config = replace(self.config, jobs=jobs)
        self.cache = TraceCache() if cache is True else (cache or None)

    @cached_property
    def trace(self) -> Trace:
        return self.columnar.to_trace()

    @cached_property
    def columnar(self) -> ColumnarTrace:
        """The trace as columns -- the primary product.

        The columnar synthesis backend emits this directly (no per-event
        Python loop), a warm ``.npz`` cache entry loads it as plain array
        bundles, and the record view (:attr:`trace`) is derived from it
        on demand.
        """
        if self.cache is None:
            return TraceSynthesizer(self.config).run_columnar()
        return load_or_synthesize_columnar(self.config, cache=self.cache)

    @cached_property
    def filtered(self) -> FilterResult:
        return apply_filters(self.trace.sessions)

    @cached_property
    def cfiltered(self) -> ColumnarFilterResult:
        """Vectorized rules 1-5 over the columnar trace (bit-identical
        Table 2 report to :attr:`filtered`)."""
        return apply_filters_columnar(self.columnar)

    @cached_property
    def views(self) -> List[ActiveSession]:
        return active_sessions(self.filtered)
