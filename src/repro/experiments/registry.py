"""Registry of all experiments, keyed by the DESIGN.md experiment ids.

``run_many``/``run_all`` can fan experiments out across a process pool
(``jobs``): the trace is synthesized or loaded **once** in the parent,
shared with the workers through a content-addressed cache file (the
fast columnar ``.npz`` format, so each worker's warm load is array
reads, not JSON parsing), and the result list always comes back in
registry order regardless of worker scheduling.
"""

from __future__ import annotations

import shutil
import tempfile
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core import available_cpus
from repro.synthesis import SynthesisConfig, TraceCache

from .base import ExperimentContext, ExperimentResult
from .exp_active import run_fig6, run_fig7, run_fig8, run_fig9
from .exp_correlations import run_correlations
from .exp_fits import (
    run_figA1,
    run_tableA1,
    run_tableA2,
    run_tableA3,
    run_tableA4,
    run_tableA5,
)
from .exp_generator import run_generator_validation
from .exp_geography import run_fig1, run_fig2, run_fig3
from .exp_hits import run_hit_rate
from .exp_passive import run_fig4, run_fig5
from .exp_popularity import run_fig10, run_fig11
from .exp_systems import run_availability, run_caching
from .exp_tables import run_table1, run_table2, run_table3
from .exp_transfers import run_downloads

__all__ = [
    "ALL_EXPERIMENTS",
    "effective_run_jobs",
    "run_all",
    "run_experiment",
    "run_many",
]

ALL_EXPERIMENTS: Dict[str, Callable[[ExperimentContext], ExperimentResult]] = {
    "T1": run_table1,
    "T2": run_table2,
    "T3": run_table3,
    "F1": run_fig1,
    "F2": run_fig2,
    "F3": run_fig3,
    "F4": run_fig4,
    "F5": run_fig5,
    "F6": run_fig6,
    "F7": run_fig7,
    "F8": run_fig8,
    "F9": run_fig9,
    "F10": run_fig10,
    "F11": run_fig11,
    "TA1": run_tableA1,
    "TA2": run_tableA2,
    "TA3": run_tableA3,
    "TA4": run_tableA4,
    "TA5": run_tableA5,
    "FA1": run_figA1,
    "G1": run_generator_validation,
    "X1": run_hit_rate,
    "X2": run_downloads,
    "X3": run_caching,
    "X4": run_availability,
    "C1": run_correlations,
}


def run_experiment(experiment_id: str, ctx: ExperimentContext) -> ExperimentResult:
    """Run one experiment by id against a shared context."""
    try:
        runner = ALL_EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {sorted(ALL_EXPERIMENTS)}"
        ) from None
    return runner(ctx)


def effective_run_jobs(jobs: Optional[int], n_tasks: int) -> int:
    """Worker count a ``jobs=``-parameterized fan-out will actually use.

    Requested workers are capped at the task count and at the CPUs this
    process may run on -- oversubscribing a small host with fork+import
    overhead per worker is strictly slower than running in process.  A
    result of 1 means "stay sequential".
    """
    if jobs is None:
        return 1
    return max(1, min(int(jobs), n_tasks, available_cpus()))


def run_many(
    ids: Sequence[str],
    ctx: ExperimentContext,
    jobs: Optional[int] = None,
) -> List[ExperimentResult]:
    """Run the given experiments against one shared trace.

    ``jobs`` > 1 fans the experiments out across a process pool.  The
    parent synthesizes (or cache-loads) the trace exactly once and
    publishes it as a cache entry; each worker owns a disjoint chunk of
    the experiment list and builds its derived views (filtering, active
    sessions) once for the whole chunk.  Results come back in ``ids``
    order either way.  The effective worker count is
    :func:`effective_run_jobs` -- a request for more workers than CPUs
    (or tasks) falls back to what the host can actually parallelize,
    including fully sequential on a single-CPU host.
    """
    unknown = [i for i in ids if i not in ALL_EXPERIMENTS]
    if unknown:
        raise KeyError(
            f"unknown experiments {unknown!r}; known: {sorted(ALL_EXPERIMENTS)}"
        )
    workers = effective_run_jobs(jobs, len(ids))
    if workers <= 1:
        return [run_experiment(experiment_id, ctx) for experiment_id in ids]
    return _run_parallel(list(ids), ctx, workers)


def run_all(
    ctx: ExperimentContext, jobs: Optional[int] = None
) -> List[ExperimentResult]:
    """Run every experiment against one shared trace (see :func:`run_many`)."""
    return run_many(list(ALL_EXPERIMENTS), ctx, jobs=jobs)


#: Per-worker-process context, built once by :func:`_init_worker`; the
#: trace comes out of the shared cache entry, and the lazily cached
#: derived views (filtering, active sessions) are reused by every
#: experiment the pool hands this process.
_WORKER_CTX: Optional[ExperimentContext] = None


def _init_worker(
    config: SynthesisConfig, cache_root: str, cache_format: str, stream: bool = False
) -> None:
    global _WORKER_CTX
    _WORKER_CTX = ExperimentContext(
        config, cache=TraceCache(cache_root, format=cache_format), stream=stream
    )


def _run_one(experiment_id: str) -> ExperimentResult:
    assert _WORKER_CTX is not None, "worker used before initialization"
    return run_experiment(experiment_id, _WORKER_CTX)


def _run_parallel(
    ids: List[str], ctx: ExperimentContext, jobs: int
) -> List[ExperimentResult]:
    cache = ctx.cache
    tmpdir: Optional[str] = None
    if cache is None:
        # Hermetic contexts get a private throwaway cache directory: the
        # workers still share one trace file, and nothing leaks into the
        # user-visible cache.
        tmpdir = tempfile.mkdtemp(prefix="repro-p2p-run-many-")
        cache = TraceCache(tmpdir)
    try:
        if ctx.stream:
            # Sharded store: workers re-open the shard directory with
            # memory-mapped loads; no full trace is ever resident.
            if cache.load_sharded(ctx.config) is None:
                cache.adopt_sharded(ctx.config, ctx.shards)
        elif not cache.contains(ctx.config):
            # Columnar store: the fast-path arrays go straight to .npz
            # without materializing per-record objects in the parent.
            cache.store_columnar(ctx.config, ctx.columnar)
        # One task per experiment (dynamic balancing: a heavy experiment
        # never gates a whole pre-assigned chunk); map() returns results
        # in submission order, so ordering is deterministic by design.
        with ProcessPoolExecutor(
            max_workers=jobs,
            initializer=_init_worker,
            initargs=(ctx.config, str(cache.root), cache.format, ctx.stream),
        ) as pool:
            return list(pool.map(_run_one, ids))
    finally:
        if tmpdir is not None:
            shutil.rmtree(tmpdir, ignore_errors=True)
