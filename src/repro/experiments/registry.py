"""Registry of all experiments, keyed by the DESIGN.md experiment ids."""

from __future__ import annotations

from typing import Callable, Dict, List

from .base import ExperimentContext, ExperimentResult
from .exp_active import run_fig6, run_fig7, run_fig8, run_fig9
from .exp_correlations import run_correlations
from .exp_fits import (
    run_figA1,
    run_tableA1,
    run_tableA2,
    run_tableA3,
    run_tableA4,
    run_tableA5,
)
from .exp_generator import run_generator_validation
from .exp_geography import run_fig1, run_fig2, run_fig3
from .exp_hits import run_hit_rate
from .exp_passive import run_fig4, run_fig5
from .exp_popularity import run_fig10, run_fig11
from .exp_systems import run_availability, run_caching
from .exp_tables import run_table1, run_table2, run_table3
from .exp_transfers import run_downloads

__all__ = ["ALL_EXPERIMENTS", "run_all", "run_experiment"]

ALL_EXPERIMENTS: Dict[str, Callable[[ExperimentContext], ExperimentResult]] = {
    "T1": run_table1,
    "T2": run_table2,
    "T3": run_table3,
    "F1": run_fig1,
    "F2": run_fig2,
    "F3": run_fig3,
    "F4": run_fig4,
    "F5": run_fig5,
    "F6": run_fig6,
    "F7": run_fig7,
    "F8": run_fig8,
    "F9": run_fig9,
    "F10": run_fig10,
    "F11": run_fig11,
    "TA1": run_tableA1,
    "TA2": run_tableA2,
    "TA3": run_tableA3,
    "TA4": run_tableA4,
    "TA5": run_tableA5,
    "FA1": run_figA1,
    "G1": run_generator_validation,
    "X1": run_hit_rate,
    "X2": run_downloads,
    "X3": run_caching,
    "X4": run_availability,
    "C1": run_correlations,
}


def run_experiment(experiment_id: str, ctx: ExperimentContext) -> ExperimentResult:
    """Run one experiment by id against a shared context."""
    try:
        runner = ALL_EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {sorted(ALL_EXPERIMENTS)}"
        ) from None
    return runner(ctx)


def run_all(ctx: ExperimentContext) -> List[ExperimentResult]:
    """Run every experiment against one shared trace."""
    return [runner(ctx) for runner in ALL_EXPERIMENTS.values()]
