"""Parameter sweeps: sensitivity of the reproduced measures to the
calibrated knobs.

DESIGN.md documents several calibrated parameters (hot-set persistence,
client re-query intervals, quick-disconnect probability).  These sweeps
show how the paper-anchored outputs move as each knob moves -- the
evidence that the chosen values are the ones that reproduce the paper,
not arbitrary:

* :func:`sweep_persistence` -- universe persistence rho vs. the Figure 10
  drift statistic;
* :func:`sweep_requery_interval` -- client re-query interval vs. the
  Table 2 rule-2 removal fraction;
* :func:`sweep_arrival_rate` -- synthesis scale vs. distribution anchors
  (scale invariance).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.analysis import active_sessions, queries_per_session_ccdf
from repro.core.popularity import QueryClassId, QueryUniverse, top_n_overlap
from repro.core.regions import Region
from repro.filtering import apply_filters
from repro.synthesis import SynthesisConfig, TraceSynthesizer

__all__ = ["sweep_persistence", "sweep_requery_interval", "sweep_arrival_rate"]


def sweep_persistence(
    rhos: Sequence[float] = (0.0, 0.3, 0.55, 0.8),
    days: int = 25,
    seed: int = 17,
) -> List[Dict[str, float]]:
    """Drift statistic vs. the hot-set persistence parameter.

    Returns rows of (rho, mean top-10 retention in next-day top-100,
    fraction of days with <= 4 retained).  The paper's Figure 10 anchor
    is ~80% of days at <= 4; rho = 0.55 is the calibrated default.
    """
    rows = []
    for rho in rhos:
        universe = QueryUniverse(seed=seed, persistence=rho)
        overlaps = [
            top_n_overlap(
                universe.daily_ranking(day, QueryClassId.NA_ONLY),
                universe.daily_ranking(day + 1, QueryClassId.NA_ONLY),
                (1, 10), 100,
            )
            for day in range(days)
        ]
        rows.append({
            "rho": rho,
            "mean_retained": float(np.mean(overlaps)),
            "frac_days_le4": float(np.mean([o <= 4 for o in overlaps])),
        })
    return rows


def sweep_requery_interval(
    scale_factors: Sequence[float] = (0.5, 1.0, 2.0),
    days: float = 0.15,
    rate: float = 0.3,
    seed: int = 23,
) -> List[Dict[str, float]]:
    """Rule-2 removal fraction vs. the client re-query interval.

    Scales every profile's ``requery_interval_seconds`` by a factor and
    measures Table 2's rule-2 fraction (paper: ~64% of the post-rule-1
    stream).  Shorter intervals -> more duplicates -> larger fraction.
    """
    import dataclasses

    from repro.agents import PeerPopulation
    from repro.gnutella.clients import CLIENT_PROFILES

    rows = []
    for factor in scale_factors:
        scaled = tuple(
            dataclasses.replace(
                profile,
                requery_interval_seconds=profile.requery_interval_seconds * factor,
            )
            for profile in CLIENT_PROFILES
        )
        config = SynthesisConfig(days=days, mean_arrival_rate=rate, seed=seed)
        population = PeerPopulation(seed=seed + 2, profiles=scaled)
        trace = TraceSynthesizer(config, population=population).run()
        report = apply_filters(trace.sessions).report
        after_rule1 = report.initial_queries - report.rule1_removed_queries
        rows.append({
            "interval_scale": factor,
            "rule2_fraction": report.rule2_removed_queries / max(after_rule1, 1),
        })
    return rows


def sweep_arrival_rate(
    rates: Sequence[float] = (0.15, 0.3, 0.45),
    days: float = 0.5,
    seed: int = 29,
) -> List[Dict[str, float]]:
    """Distribution anchors vs. the synthesis scale (invariance check)."""
    rows = []
    for rate in rates:
        trace = TraceSynthesizer(
            SynthesisConfig(days=days, mean_arrival_rate=rate, seed=seed)
        ).run()
        filtered = apply_filters(trace.sessions)
        views = active_sessions(filtered)
        eu = queries_per_session_ccdf(views).get(Region.EUROPE)
        passive = np.mean([s.is_passive for s in filtered.sessions])
        rows.append({
            "rate": rate,
            "sessions": trace.n_connections,
            "passive_fraction": float(passive),
            "eu_p_ge5_queries": float(eu.at(4.5)) if eu else float("nan"),
        })
    return rows
