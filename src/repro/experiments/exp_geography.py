"""Experiments F1-F3: geographic mix, shared files, and query load."""

from __future__ import annotations

from repro.analysis import (
    geographic_distribution,
    peak_period_table,
    query_load,
    shared_files_distribution,
)
from repro.core.parameters import geographic_mix
from repro.core.regions import KeyPeriod, Region

from .base import ExperimentContext, ExperimentResult

__all__ = ["run_fig1", "run_fig2", "run_fig3"]

_MAJOR = (Region.NORTH_AMERICA, Region.EUROPE, Region.ASIA)


def run_fig1(ctx: ExperimentContext) -> ExperimentResult:
    """Figure 1: one-hop vs. all-peers geographic mix by hour.

    Reports the mix at the paper's three example hours plus the maximum
    one-hop/all-peers divergence (the representativeness check).
    """
    result = ExperimentResult("F1", "Geographic distribution of peers")
    profile = ctx.streaming.geographic if ctx.stream else geographic_distribution(ctx.trace)
    for hour in (0, 3, 12):
        paper_mix = geographic_mix(hour)
        for region in _MAJOR:
            result.add(
                hour=hour,
                region=region.short,
                paper=paper_mix[region],
                ours_one_hop=float(profile.one_hop[region][hour]),
                ours_all=float(profile.all_peers[region][hour]),
            )
    for region in _MAJOR:
        result.note(
            f"max |one-hop - all| divergence {region.short}: "
            f"{profile.max_divergence(region):.3f} (paper: curves nearly coincide)"
        )
    return result


def run_fig2(ctx: ExperimentContext) -> ExperimentResult:
    """Figure 2: shared-files distribution, one-hop vs. all peers."""
    result = ExperimentResult("F2", "Shared files of one-hop vs. all peers")
    profile = ctx.streaming.shared_files if ctx.stream else shared_files_distribution(ctx.trace)
    for count in (0, 1, 10, 50, 100):
        result.add(
            shared_files=count,
            ours_one_hop=float(profile.one_hop[count]),
            ours_all=float(profile.all_peers[count]),
        )
    result.add(
        shared_files="max divergence",
        ours_one_hop=profile.max_divergence(),
        ours_all="",
    )
    result.note(
        "paper reports the two curves roughly coincide on a log axis over 0-100 files; "
        "the divergence row quantifies that for the synthesized trace"
    )
    return result


def run_fig3(ctx: ExperimentContext) -> ExperimentResult:
    """Figure 3: query load per region vs. time of day (30-minute bins).

    Verifies the Section 4.2 period structure: 03:00-04:00 NA peak / EU
    sink, 11:00-12:00 NA sink / EU peak, 13:00-14:00 EU and Asia peak,
    19:00-20:00 joint NA/EU peak.
    """
    result = ExperimentResult("F3", "Query load vs. time of day")
    profiles = ctx.streaming.load if ctx.stream else query_load(ctx.trace.sessions)
    table = peak_period_table(profiles)
    for period in KeyPeriod:
        row = {"period": period.label}
        for region in _MAJOR:
            row[f"ours_{region.short}"] = table[period][region]
        result.add(**row)
    na, eu = Region.NORTH_AMERICA, Region.EUROPE
    checks = [
        ("03:00 NA > 11:00 NA", table[KeyPeriod.H03][na] > table[KeyPeriod.H11][na]),
        ("11:00 EU > 03:00 EU", table[KeyPeriod.H11][eu] > table[KeyPeriod.H03][eu]),
        ("13:00 AS > 03:00 AS", table[KeyPeriod.H13][Region.ASIA] > table[KeyPeriod.H03][Region.ASIA]),
    ]
    for label, ok in checks:
        result.note(f"ordering {label}: {'OK' if ok else 'VIOLATED'}")
    return result
