"""Experiment X2: the derived download workload (extension).

Uses the transfer layer to derive downloads from the filtered trace's
answered queries and reports the measures the related work publishes
for this layer: size distribution, per-peer time between downloads, and
completion/throughput by access-link class.
"""

from __future__ import annotations

import numpy as np

from repro.transfers import (
    DownloadModel,
    completion_rate_by_class,
    download_size_ccdf,
    throughput_by_class,
    time_between_downloads,
)
from repro.transfers.bandwidth import BANDWIDTH_PROFILES, BandwidthClass, link_kbps

from .base import ExperimentContext, ExperimentResult

__all__ = ["run_downloads"]


def run_downloads(ctx: ExperimentContext) -> ExperimentResult:
    result = ExperimentResult("X2", "Derived download workload (extension)")
    model = DownloadModel(seed=ctx.config.seed + 7)
    downloads = model.generate(ctx.filtered.sessions)
    if not downloads:
        result.note("no answered queries at this scale; enlarge the trace")
        return result

    sizes = download_size_ccdf(downloads)
    result.add(
        measure="downloads derived",
        value=len(downloads),
        reference="answered non-SHA1 user queries x download_prob",
    )
    result.add(
        measure="median size (MB)",
        value=float(np.median([d.size_bytes for d in downloads])) / 1e6,
        reference="~3.7 MB (MP3-era median, Gummadi et al.)",
    )
    result.add(
        measure="P[size > 100 MB]",
        value=sizes.at(1e8),
        reference="small video tail",
    )
    gaps = time_between_downloads(downloads)
    if gaps:
        result.add(
            measure="median time between downloads (s)",
            value=float(np.median(gaps)),
            reference="per-peer gaps (Sen & Wang's measure)",
        )
    completion = completion_rate_by_class(downloads)
    for cls, rate in sorted(completion.items(), key=lambda kv: kv[0].value):
        result.add(
            measure=f"completion rate ({cls.value})",
            value=rate,
            reference="abort model is class-independent",
        )
    throughput = throughput_by_class(downloads)
    if BandwidthClass.DIALUP in throughput:
        down, _ = link_kbps(BandwidthClass.DIALUP)
        result.note(
            f"dialup median throughput {throughput[BandwidthClass.DIALUP]:.0f} kbps "
            f"bottlenecks near its own {down:.0f} kbps link"
        )
    if BandwidthClass.T3 in throughput:
        result.note(
            f"T3 median throughput {throughput[BandwidthClass.T3]:.0f} kbps "
            f"bottlenecks on responder uplinks instead (Saroiu et al. asymmetry)"
        )
    return result
