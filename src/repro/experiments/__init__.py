"""End-to-end experiment drivers, one per paper table/figure."""

from .base import ExperimentContext, ExperimentResult, format_rows
from .registry import ALL_EXPERIMENTS, run_all, run_experiment, run_many

__all__ = [
    "ExperimentContext", "ExperimentResult", "format_rows",
    "ALL_EXPERIMENTS", "run_all", "run_experiment", "run_many",
]
