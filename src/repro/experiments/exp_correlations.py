"""Experiment C1: the paper's headline correlation structure.

Introduction: "We also find a significant correlation between session
duration and the number of queries issued during the session, but not
between query interarrival time and number of queries issued."  Section
4.5 adds the Europe-only negative interarrival correlation and the
positive time-after-last correlation (Fig. 9b).
"""

from __future__ import annotations

from repro.analysis.correlations import session_correlations
from repro.core.regions import Region

from .base import ExperimentContext, ExperimentResult

__all__ = ["run_correlations"]


def _correlations(ctx: ExperimentContext, region: Region):
    if ctx.stream:
        return ctx.streaming.active.correlations(region=region)
    return session_correlations(ctx.views, region=region)


def run_correlations(ctx: ExperimentContext) -> ExperimentResult:
    result = ExperimentResult("C1", "Workload correlation structure")
    expectations = {
        ("NA", "duration vs #queries"): "strong positive",
        ("NA", "median interarrival vs #queries"): "none (paper: no significant correlation)",
        ("NA", "time-after-last vs #queries"): "positive (Fig. 9b)",
        ("EU", "duration vs #queries"): "strong positive",
        ("EU", "median interarrival vs #queries"): "negative (Fig. 8b)",
        ("EU", "time-after-last vs #queries"): "positive",
    }
    for region in (Region.NORTH_AMERICA, Region.EUROPE):
        for corr in _correlations(ctx, region):
            result.add(
                region=region.short,
                correlation=corr.name,
                spearman_rho=corr.rho,
                n=corr.n,
                significant=corr.significant,
                paper=expectations.get((region.short, corr.name), ""),
            )
    na = {c.name: c for c in _correlations(ctx, Region.NORTH_AMERICA)}
    duration = na.get("duration vs #queries")
    gaps = na.get("median interarrival vs #queries")
    if duration and gaps:
        ok = duration.significant and abs(duration.rho) > abs(gaps.rho)
        result.note(
            f"headline claim (duration correlates, interarrival much less): "
            f"{'OK' if ok else 'VIOLATED'} "
            f"(rho {duration.rho:.2f} vs {gaps.rho:.2f})"
        )
    return result
