"""Experiments F4-F5: passive peers."""

from __future__ import annotations

from repro.analysis import (
    passive_duration_ccdf_by_period,
    passive_duration_ccdf_by_region,
    passive_fraction_by_hour,
)
from repro.core.regions import KeyPeriod, Region

from .base import ExperimentContext, ExperimentResult

__all__ = ["run_fig4", "run_fig5"]

#: Paper Figure 4 bands per region.
_PAPER_PASSIVE_BANDS = {
    Region.NORTH_AMERICA: (0.80, 0.85),
    Region.EUROPE: (0.75, 0.80),
    Region.ASIA: (0.80, 0.90),
}

#: Paper Section 4.4 anchors: P[duration > x] for passive sessions.
_PAPER_DURATION_ANCHORS = {
    # region: (P[> 2 min], P[> 200 min])
    Region.NORTH_AMERICA: (0.25, 0.06),
    Region.EUROPE: (0.45, 0.10),
    Region.ASIA: (0.15, 0.03),
}


def run_fig4(ctx: ExperimentContext) -> ExperimentResult:
    """Figure 4: fraction of connected peers that are passive."""
    result = ExperimentResult("F4", "Fraction of passive peers")
    profiles = (
        ctx.streaming.passive_fraction
        if ctx.stream
        else passive_fraction_by_hour(ctx.filtered.sessions)
    )
    for region, profile in profiles.items():
        lo, hi = _PAPER_PASSIVE_BANDS[region]
        result.add(
            region=region.short,
            paper_band=f"{lo:.2f}-{hi:.2f}",
            ours_average=profile.overall_average,
            ours_diurnal_swing=profile.diurnal_swing,
        )
    result.note("paper: fraction fluctuates only ~5% over time of day")
    return result


def run_fig5(ctx: ExperimentContext) -> ExperimentResult:
    """Figure 5: passive session duration CCDFs.

    (a) per region with the Section 4.4 anchors; (b)/(c) per key period
    for Europe, checking that early-morning sessions run longer.
    """
    result = ExperimentResult("F5", "Passive session duration")
    streamed = ctx.streaming.passive if ctx.stream else None
    by_region = (
        streamed.by_region() if streamed else passive_duration_ccdf_by_region(ctx.filtered.sessions)
    )
    for region, ccdf in by_region.items():
        paper_2min, paper_200min = _PAPER_DURATION_ANCHORS[region]
        result.add(
            region=region.short,
            paper_gt_2min=paper_2min,
            ours_gt_2min=ccdf.at(120),
            paper_gt_200min=paper_200min,
            ours_gt_200min=ccdf.at(12000),
        )
    # Panels (b)/(c): duration conditioned on the start period.  Paper
    # anchors: for Europe, P[duration > 90 min] is ~0.15 for 03:00 starts
    # vs ~0.07 for 13:00 starts.
    for region, paper_anchor in ((Region.NORTH_AMERICA, None), (Region.EUROPE, (0.15, 0.07))):
        by_period = (
            streamed.by_period(region)
            if streamed
            else passive_duration_ccdf_by_period(ctx.filtered.sessions, region)
        )
        for period in KeyPeriod:
            if period not in by_period:
                continue
            result.add(
                region=region.short,
                period=period.label,
                ours_gt_90min=by_period[period].at(5400),
                n=len(by_period[period]),
            )
        if paper_anchor and KeyPeriod.H03 in by_period and KeyPeriod.H13 in by_period:
            morning = by_period[KeyPeriod.H03].at(5400)
            afternoon = by_period[KeyPeriod.H13].at(5400)
            result.note(
                f"EU single-period anchors: 03:00 {morning:.3f} vs 13:00 "
                f"{afternoon:.3f} (paper {paper_anchor[0]} vs {paper_anchor[1]}; "
                f"single key-period bins are small at reduced scale)"
            )
    # The statistically robust version of the (b)/(c) ordering pools all
    # peak vs non-peak start hours (Table A.1's actual conditioning).
    from repro.core.regions import PEAK_HOURS, is_peak_hour

    for region in (Region.NORTH_AMERICA, Region.EUROPE):
        if streamed:
            import numpy as np

            from repro.measurement.columnar import REGION_CODE

            in_region = streamed.region_code == REGION_CODE[region]
            hour = ((streamed.start % 86400.0) // 3600.0).astype(np.int64)
            peak = np.isin(hour, sorted(PEAK_HOURS[region]))
            peak_durs = streamed.duration[in_region & peak].tolist()
            off_durs = streamed.duration[in_region & ~peak].tolist()
        else:
            peak_durs = [
                s.duration for s in ctx.filtered.sessions
                if s.region is region and s.is_passive and is_peak_hour(region, s.start)
            ]
            off_durs = [
                s.duration for s in ctx.filtered.sessions
                if s.region is region and s.is_passive and not is_peak_hour(region, s.start)
            ]
        if len(peak_durs) > 30 and len(off_durs) > 30:
            from repro.core.stats import empirical_ccdf

            peak_p = empirical_ccdf(peak_durs).at(5400)
            off_p = empirical_ccdf(off_durs).at(5400)
            ok = off_p > peak_p
            result.note(
                f"{region.short} P[duration > 90 min]: non-peak starts {off_p:.3f} vs "
                f"peak starts {peak_p:.3f} (paper: off-peak sessions longer): "
                f"{'OK' if ok else 'VIOLATED'}"
            )
    return result
