"""EXPERIMENTS.md generation: paper-vs-measured for every artifact."""

from __future__ import annotations

from pathlib import Path
from typing import Union

from .base import ExperimentContext
from .registry import ALL_EXPERIMENTS

__all__ = ["write_experiments_md"]

_HEADER = """\
# EXPERIMENTS -- paper vs. measured

Reproduction record for Klemm et al., *Characterizing the Query Behavior
in Peer-to-Peer File Sharing Systems* (IMC 2004).  Every table and figure
in the paper's evaluation is regenerated from a synthesized trace (see
DESIGN.md for the substitution argument); this file records the paper's
values next to ours.

**Reading guide.**  Absolute counts scale with the synthesis size (the
paper measured 4.36M connections over 40 days; the default run here is
{days:g} days at {rate:g} connections/second = {connections} connections),
so comparisons use scale-free quantities: fractions, per-connection
ratios, distribution anchors (e.g. "P[session > 2 min]"), fitted
parameters, and orderings.  The reproduction target is *shape*: who is
larger, by roughly what factor, and where the crossovers fall.

**Known paper-internal inconsistencies** (kept visible rather than tuned
away):

* Table 2's final user-query count (173,195 over 1.31M surviving
  sessions, i.e. ~0.66 queries per active session) is inconsistent with
  Table A.2's queries-per-session model (mean ~2.4) and with the ~20%
  active fraction of Figure 4.  Our synthesis follows the distributional
  tables, so our `final/initial` query fraction lands near 0.22 rather
  than 0.10 -- every per-rule removal fraction still matches.
* Figure 7(b)'s "90% of <3-query sessions issue the first query before
  200 s" cannot hold under Table A.3's own tail model (lognormal
  mu=5.091, sigma=2.905 above 45 s); we follow Table A.3, so our 90th
  percentile is in the thousands of seconds.

Regenerate this file with::

    python -m repro.experiments.report

"""


def write_experiments_md(
    path: Union[str, Path] = "EXPERIMENTS.md",
    ctx: ExperimentContext = None,
) -> Path:
    """Run every experiment and write the paper-vs-measured record."""
    ctx = ctx or ExperimentContext()
    path = Path(path)
    trace = ctx.trace
    parts = [
        _HEADER.format(
            days=ctx.config.days,
            rate=ctx.config.mean_arrival_rate,
            connections=trace.n_connections,
        )
    ]
    for experiment_id, runner in ALL_EXPERIMENTS.items():
        result = runner(ctx)
        parts.append(f"## {experiment_id}: {result.title}\n")
        parts.append("```")
        from .base import format_rows

        parts.append(format_rows(result.rows))
        parts.append("```")
        for note in result.notes:
            parts.append(f"* {note}")
        parts.append("")
    path.write_text("\n".join(parts))
    return path


if __name__ == "__main__":  # pragma: no cover
    out = write_experiments_md()
    print(f"wrote {out}")
