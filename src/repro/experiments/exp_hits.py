"""Experiment X1: query hit-rate characterization (paper's future work).

The paper closes with: "Future work includes characterizing the query
hit rate of the peers, including the correlation of hit rate with other
measures."  This experiment carries out that program on the synthesized
trace: overall hit rate, responder-count tail, regional split, the
popularity/hit-rate correlation, and the user-vs-automated contrast.

There are no published values to compare against; the rows record the
extension's findings with the qualitative expectations stated inline.
"""

from __future__ import annotations

from repro.analysis.hits import (
    hit_rate_by_popularity_decile,
    hit_rate_by_region,
    hit_rate_summary,
    hits_ccdf,
)

from .base import ExperimentContext, ExperimentResult

__all__ = ["run_hit_rate"]


def run_hit_rate(ctx: ExperimentContext) -> ExperimentResult:
    result = ExperimentResult("X1", "Query hit rate (extension: paper's future work)")
    sessions = ctx.filtered.sessions

    overall = hit_rate_summary(sessions)
    result.add(
        measure="all user queries",
        n=overall.n_queries,
        hit_rate=overall.hit_rate,
        mean_hits=overall.mean_hits,
        mean_hits_answered=overall.mean_hits_answered,
    )
    # SHA1 source searches only exist pre-filtering; measure on raw trace.
    raw_sha1 = hit_rate_summary(ctx.trace.sessions, sha1=True)
    raw_user = hit_rate_summary(ctx.trace.sessions, sha1=False)
    result.add(
        measure="raw keyword queries", n=raw_user.n_queries,
        hit_rate=raw_user.hit_rate, mean_hits=raw_user.mean_hits,
        mean_hits_answered=raw_user.mean_hits_answered,
    )
    result.add(
        measure="raw SHA1 source searches", n=raw_sha1.n_queries,
        hit_rate=raw_sha1.hit_rate, mean_hits=raw_sha1.mean_hits,
        mean_hits_answered=raw_sha1.mean_hits_answered,
    )
    for region, summary in hit_rate_by_region(sessions).items():
        result.add(
            measure=f"queries from {region.short}", n=summary.n_queries,
            hit_rate=summary.hit_rate, mean_hits=summary.mean_hits,
            mean_hits_answered=summary.mean_hits_answered,
        )

    deciles = hit_rate_by_popularity_decile(sessions)
    if len(deciles) >= 2:
        top = deciles[0]
        bottom = deciles[-1]
        result.note(
            f"popularity correlation: decile 1 hit rate {top[1]:.3f} vs decile "
            f"{bottom[0]} hit rate {bottom[1]:.3f} (expected: popular queries hit more)"
        )
    ccdf = hits_ccdf(sessions)
    result.note(
        f"responder tail: P[hits > 5] = {ccdf.at(5):.3f}, P[hits > 20] = {ccdf.at(20):.3f}"
    )
    result.note(
        "SHA1 source searches mostly miss -- which is exactly why clients "
        "re-send them, the behaviour filter rule 1 removes"
    )
    return result
