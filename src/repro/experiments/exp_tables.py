"""Experiments T1-T3: Tables 1, 2, and 3."""

from __future__ import annotations

from repro.analysis import query_class_sizes, table1_comparison, table2_comparison
from repro.core.parameters import QUERY_CLASS_SIZES

from .base import ExperimentContext, ExperimentResult

__all__ = ["run_table1", "run_table2", "run_table3"]


def run_table1(ctx: ExperimentContext) -> ExperimentResult:
    """Table 1: overall trace characteristics.

    Absolute counts scale with the synthesis size, so the comparison is
    per-connection ratios (message mix), which are scale-free.
    """
    result = ExperimentResult("T1", "Overall trace characteristics")
    # table1 only reads counters/connection/query totals, which the
    # sharded manifest carries -- no shard is loaded in stream mode.
    trace = ctx.shards if ctx.stream else ctx.trace
    for row, values in table1_comparison(trace).items():
        result.add(
            measure=row,
            paper=values["paper"],
            ours=values["ours"],
            paper_per_conn=values["paper_per_connection"],
            ours_per_conn=values["ours_per_connection"],
        )
    result.note(
        f"synthesized {ctx.config.days:g} days at {ctx.config.mean_arrival_rate:g} conn/s "
        f"vs. the paper's 40 days at ~1.26 conn/s; compare the per-connection columns"
    )
    result.note(
        "our hop-1 queries per connection exceed the paper's 0.40 because the "
        "synthesis follows Table A.2's queries-per-session model, which is "
        "internally inconsistent with Table 1/2's low query totals (see the "
        "reading guide); background message ratios are anchored to Table 1"
    )
    return result


def run_table2(ctx: ExperimentContext) -> ExperimentResult:
    """Table 2: queries and sessions removed by each filter rule."""
    result = ExperimentResult("T2", "Filtered queries (rules 1-5)")
    report = ctx.streaming.report if ctx.stream else ctx.filtered.report
    for row, values in table2_comparison(report).items():
        result.add(
            measure=row,
            paper=values["paper"],
            ours=values["ours"],
            paper_frac=values["paper_fraction"],
            ours_frac=values["ours_fraction"],
        )
    result.note("fractions are relative to the initial query/session counts")
    return result


def run_table3(ctx: ExperimentContext) -> ExperimentResult:
    """Table 3: query class sizes for 1- and 2-day periods.

    The 4-day row needs a trace of at least 4 days; it is included
    automatically when the context is big enough.
    """
    result = ExperimentResult("T3", "Query class sizes")
    sessions = ctx.streaming.daily if ctx.stream else ctx.filtered.sessions
    available_days = int(ctx.config.days)
    for period in (1, 2, 4):
        if period > available_days:
            result.note(f"{period}-day period skipped: trace spans only {available_days} day(s)")
            continue
        ours = query_class_sizes(sessions, period)
        paper = QUERY_CLASS_SIZES[period]
        for name in ("na_only", "eu_only", "as_only", "na_eu", "na_as", "eu_as", "all_three"):
            result.add(
                period_days=period,
                query_class=name,
                paper=getattr(paper, name),
                ours=getattr(ours, name),
            )
    result.note(
        "paper counts come from ~43k user queries/day; ours scale with the "
        "synthesis rate -- orderings (NA~EU >> AS >> intersections) are the target"
    )
    return result
