"""Experiments F10-F11: query popularity drift and per-day Zipf fits."""

from __future__ import annotations

from repro.analysis import drift_counts, drift_distribution, fit_class_popularity
from repro.core.parameters import ZIPF_ALPHA
from repro.core.popularity import QueryClassId
from repro.core.regions import Region

from .base import ExperimentContext, ExperimentResult

__all__ = ["run_fig10", "run_fig11"]


def run_fig10(ctx: ExperimentContext) -> ExperimentResult:
    """Figure 10: drift in query popularity (North American peers).

    For each consecutive day pair, how many of day n's top 10 / 11-20 /
    21-100 queries appear in day n+1's top N?  Paper: for ~80% of days at
    most 4 of the top 10 are in the next day's top 100.
    """
    result = ExperimentResult("F10", "Hot-set drift")
    sessions = ctx.streaming.daily if ctx.stream else ctx.filtered.sessions
    ranges = (("top10", (1, 10)), ("rank11-20", (11, 20)), ("rank21-100", (21, 100)))
    any_pairs = False
    for label, rank_range in ranges:
        for top_n in (10, 20, 100):
            counts = drift_counts(
                sessions, Region.NORTH_AMERICA, rank_range=rank_range, top_n=top_n
            )
            if not counts:
                continue
            any_pairs = True
            dist = drift_distribution(counts)
            result.add(
                source="trace",
                day_n_ranks=label,
                next_day_top=top_n,
                mean_retained=sum(counts) / len(counts),
                frac_days_gt4=float(dist[4]),
            )
    if not any_pairs:
        result.note(
            "trace shorter than 2 days: no consecutive day pairs; reporting the "
            "ground-truth universe drift instead"
        )
    # Ground-truth drift from the content model, always available and
    # exactly what the trace drift converges to with more days.
    from repro.core.popularity import QueryClassId, QueryUniverse, top_n_overlap

    universe = QueryUniverse(seed=ctx.config.seed + 1)
    for label, rank_range in ranges:
        overlaps = [
            top_n_overlap(
                universe.daily_ranking(d, QueryClassId.NA_ONLY),
                universe.daily_ranking(d + 1, QueryClassId.NA_ONLY),
                rank_range, 100,
            )
            for d in range(20)
        ]
        dist = drift_distribution(overlaps)
        result.add(
            source="ground truth",
            day_n_ranks=label,
            next_day_top=100,
            mean_retained=sum(overlaps) / len(overlaps),
            frac_days_gt4=float(dist[4]),
        )
    result.note("paper anchor: P[>4 of top10 in next-day top100] ~ 0.2")
    return result


def run_fig11(ctx: ExperimentContext) -> ExperimentResult:
    """Figure 11: per-day query popularity Zipf fits.

    Paper fits: alpha = 0.386 for NA-only queries, 0.223 for EU-only;
    the NA/EU intersection has a flattened-head body (0.453, ranks 1-45)
    and a steep tail (4.67, ranks 46-100).
    """
    result = ExperimentResult("F11", "Per-day query popularity")
    sessions = ctx.streaming.daily if ctx.stream else ctx.filtered.sessions
    for cls, paper_alpha in (
        (QueryClassId.NA_ONLY, ZIPF_ALPHA["na_only"]),
        (QueryClassId.EU_ONLY, ZIPF_ALPHA["eu_only"]),
    ):
        fit = fit_class_popularity(sessions, cls)
        result.add(
            query_class=cls.value,
            paper_alpha=paper_alpha,
            ours_alpha=fit.fit.alpha,
            loglog_rmse=fit.fit.rmse,
            ranks_fit=fit.fit.n_ranks,
        )
    try:
        inter = fit_class_popularity(
            sessions, QueryClassId.NA_EU, split_rank=20, min_day_queries=10
        )
        result.add(
            query_class="na_eu (body)",
            paper_alpha=ZIPF_ALPHA["na_eu_body"],
            ours_alpha=inter.fit.alpha,
            loglog_rmse=inter.fit.rmse,
            ranks_fit=inter.fit.n_ranks,
        )
        if inter.tail_fit is not None:
            result.add(
                query_class="na_eu (tail)",
                paper_alpha=ZIPF_ALPHA["na_eu_tail"],
                ours_alpha=inter.tail_fit.alpha,
                loglog_rmse=inter.tail_fit.rmse,
                ranks_fit=inter.tail_fit.n_ranks,
            )
    except ValueError as exc:
        result.note(f"intersection class too small at this scale: {exc}")
    na = fit_class_popularity(sessions, QueryClassId.NA_ONLY)
    eu = fit_class_popularity(sessions, QueryClassId.EU_ONLY)
    result.note(
        f"ordering alpha(NA) > alpha(EU): "
        f"{'OK' if na.fit.alpha > eu.fit.alpha else 'VIOLATED'}"
    )
    result.note(
        "paper: both alphas are much smaller than pre-filtering studies' "
        "(~1.0) because automated re-queries were removed"
    )
    return result
