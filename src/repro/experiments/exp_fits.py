"""Experiments TA1-TA5 and FA1: refitting the Appendix model tables.

Each experiment extracts the conditional sample the paper fit (North
American peers, split by peak/non-peak and query-count class), fits the
same model family with :mod:`repro.core.fitting`, and reports fitted
parameters next to the published ones, plus the KS distance as the
goodness-of-fit the paper shows graphically in Figure A.1.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.analysis.active import ActiveSession
from repro.core.events import SessionRecord
from repro.core.fitting import (
    fit_lognormal,
    fit_lognormal_discrete,
    fit_spliced,
    ks_distance,
)
from repro.core.parameters import (
    INTERARRIVAL_BOUNDARY,
    PASSIVE_BODY_BOUNDARY,
    first_query_class,
    last_query_class,
)
from repro.core.regions import Region, is_peak_hour

from .base import ExperimentContext, ExperimentResult

__all__ = ["run_tableA1", "run_tableA2", "run_tableA3", "run_tableA4", "run_tableA5", "run_figA1"]

_NA = Region.NORTH_AMERICA

#: Published Table A.1 parameters (sigma, mu) for (peak, part).
_PAPER_A1 = {
    (True, "body"): (2.502, 2.108),
    (True, "tail"): (2.749, 6.397),
    (False, "body"): (2.383, 2.201),
    (False, "tail"): (2.848, 6.817),
}

_PAPER_A2 = {
    Region.NORTH_AMERICA: (1.360, -0.0673),
    Region.EUROPE: (1.306, 0.520),
    Region.ASIA: (1.618, -1.029),
}

#: Table A.4 (sigma, mu) lognormal body and Pareto alpha per peak flag.
_PAPER_A4 = {
    True: {"body": (1.625, 3.353), "pareto_alpha": 0.9041},
    False: {"body": (1.410, 2.933), "pareto_alpha": 1.143},
}

#: Table A.5 lognormal (sigma, mu) for (peak, class).
_PAPER_A5 = {
    (True, "1"): (2.361, 4.879),
    (True, "2-7"): (2.259, 5.686),
    (True, ">7"): (2.145, 6.107),
    (False, "1"): (2.162, 4.760),
    (False, "2-7"): (2.156, 5.672),
    (False, ">7"): (2.286, 6.036),
}


def _discrete_ccdf_error(fit, counts) -> float:
    """Max |model CCDF - empirical CCDF| over integer anchors 1..max."""
    import numpy as np

    arr = np.asarray(counts, dtype=float)
    errs = []
    for k in range(1, int(arr.max()) + 1):
        emp = float((arr > k).mean())
        errs.append(abs(float(fit.ccdf(float(k))) - emp))
    return max(errs) if errs else 0.0


def _passive_durations(sessions: Sequence[SessionRecord], peak: bool) -> List[float]:
    return [
        s.duration
        for s in sessions
        if s.region is _NA and s.is_passive and is_peak_hour(_NA, s.start) == peak
    ]


def _na_views(views: Sequence[ActiveSession], peak: bool) -> List[ActiveSession]:
    return [v for v in views if v.region is _NA and is_peak_hour(_NA, v.start) == peak]


def run_tableA1(ctx: ExperimentContext) -> ExperimentResult:
    """Table A.1: bimodal lognormal fit of passive session duration (NA)."""
    result = ExperimentResult("TA1", "Passive session duration model (NA)")
    for peak in (True, False):
        durations = _passive_durations(ctx.filtered.sessions, peak)
        if len(durations) < 20:
            result.note(f"peak={peak}: only {len(durations)} sessions; skipped")
            continue
        fit = fit_spliced(durations, boundary=PASSIVE_BODY_BOUNDARY,
                          body_family="lognormal", tail_family="lognormal",
                          truncation_aware=True, body_low=64.0)
        body = fit.distribution.body.base
        tail = fit.distribution.tail.base
        for part, dist in (("body", body), ("tail", tail)):
            sigma, mu = _PAPER_A1[peak, part]
            result.add(
                period="peak" if peak else "non-peak",
                part=part,
                paper_sigma=sigma, ours_sigma=dist.sigma,
                paper_mu=mu, ours_mu=dist.mu,
            )
        result.add(
            period="peak" if peak else "non-peak", part="body weight",
            paper_sigma=0.75 if peak else 0.55, ours_sigma=fit.body_weight,
            paper_mu="", ours_mu="",
        )
        result.note(f"peak={peak}: KS distance of spliced fit {fit.ks:.3f} on n={len(durations)}")
    result.note(
        "body (mu, sigma) are weakly identifiable from the narrow 64-120s window "
        "(a likelihood ridge); the tail parameters and body weight are the "
        "comparable quantities"
    )
    return result


def run_tableA2(ctx: ExperimentContext) -> ExperimentResult:
    """Table A.2: lognormal fit of queries per active session, per region."""
    result = ExperimentResult("TA2", "Active session length model")
    for region in (_NA, Region.EUROPE, Region.ASIA):
        counts = [float(v.n_queries) for v in ctx.views if v.region is region]
        if len(counts) < 20:
            result.note(f"{region.short}: only {len(counts)} sessions; skipped")
            continue
        fit = fit_lognormal_discrete(counts)
        sigma, mu = _PAPER_A2[region]
        result.add(
            region=region.short,
            paper_sigma=sigma, ours_sigma=fit.sigma,
            paper_mu=mu, ours_mu=fit.mu,
            ccdf_err=_discrete_ccdf_error(fit, counts),
        )
    result.note(
        "observed counts are ceil(X); fits use probit regression on the integer "
        "CCDF anchors, and ccdf_err is the max |model - empirical| over those anchors"
    )
    return result


def run_tableA3(ctx: ExperimentContext) -> ExperimentResult:
    """Table A.3: Weibull-body/lognormal-tail fit of time until first query."""
    result = ExperimentResult("TA3", "Time until first query model (NA)")
    for peak in (True, False):
        boundary = 45.0 if peak else 120.0
        views = _na_views(ctx.views, peak)
        for label in ("<3", "=3", ">3"):
            sample = [
                max(v.time_until_first, 1e-3)
                for v in views
                if first_query_class(v.n_queries) == label
            ]
            if len(sample) < 30:
                result.note(f"peak={peak} class={label}: n={len(sample)}; skipped")
                continue
            try:
                fit = fit_spliced(sample, boundary=boundary,
                                  body_family="weibull", tail_family="lognormal",
                                  truncation_aware=True)
            except ValueError as exc:
                result.note(f"peak={peak} class={label}: {exc}")
                continue
            body = fit.distribution.body.base
            tail = fit.distribution.tail.base
            result.add(
                period="peak" if peak else "non-peak",
                n_queries=label,
                ours_weibull_alpha=body.alpha,
                ours_weibull_lam=body.lam,
                ours_tail_sigma=tail.sigma,
                ours_tail_mu=tail.mu,
                ks=fit.ks,
            )
    result.note("paper peak body (<3 queries): Weibull alpha=1.477 lam=0.005252; tail LN sigma=2.905 mu=5.091")
    result.note("shape targets: body alpha near 1, tail mu 5-7.2, tail sigma 2-3.4")
    return result


def run_tableA4(ctx: ExperimentContext) -> ExperimentResult:
    """Table A.4: lognormal-body/Pareto-tail fit of interarrival time (NA)."""
    result = ExperimentResult("TA4", "Query interarrival model (NA)")
    for peak in (True, False):
        gaps = [g for v in _na_views(ctx.views, peak) for g in v.interarrivals]
        if len(gaps) < 30:
            result.note(f"peak={peak}: only {len(gaps)} gaps; skipped")
            continue
        fit = fit_spliced(gaps, boundary=INTERARRIVAL_BOUNDARY,
                          body_family="lognormal", tail_family="pareto",
                          truncation_aware=True)
        body = fit.distribution.body.base
        tail = fit.distribution.tail.base
        paper = _PAPER_A4[peak]
        result.add(
            period="peak" if peak else "non-peak",
            paper_body_sigma=paper["body"][0], ours_body_sigma=body.sigma,
            paper_body_mu=paper["body"][1], ours_body_mu=body.mu,
            paper_pareto_alpha=paper["pareto_alpha"], ours_pareto_alpha=tail.alpha,
            ks=fit.ks,
        )
    return result


def run_tableA5(ctx: ExperimentContext) -> ExperimentResult:
    """Table A.5: lognormal fit of time after last query (NA)."""
    result = ExperimentResult("TA5", "Time after last query model (NA)")
    for peak in (True, False):
        views = _na_views(ctx.views, peak)
        for label in ("1", "2-7", ">7"):
            sample = [
                max(v.time_after_last, 1e-3)
                for v in views
                if last_query_class(v.n_queries) == label
            ]
            if len(sample) < 30:
                result.note(f"peak={peak} class={label}: n={len(sample)}; skipped")
                continue
            fit = fit_lognormal(sample)
            sigma, mu = _PAPER_A5[peak, label]
            result.add(
                period="peak" if peak else "non-peak",
                n_queries=label,
                paper_sigma=sigma, ours_sigma=fit.sigma,
                paper_mu=mu, ours_mu=fit.mu,
                ks=ks_distance(fit, sample),
            )
    return result


def run_figA1(ctx: ExperimentContext) -> ExperimentResult:
    """Figure A.1: goodness of fit of the three example models.

    The paper shows measured-vs-model CCDF plots; here the KS distances
    quantify the same agreement for (a) queries per session, (b) time
    until first query (<3 queries, peak), and (c) interarrival (peak).
    """
    result = ExperimentResult("FA1", "Example fitted distributions (NA)")
    counts = [float(v.n_queries) for v in ctx.views if v.region is _NA]
    if len(counts) >= 30:
        fit = fit_lognormal_discrete(counts)
        result.add(panel="(a) queries/session", model="lognormal (discrete)",
                   ks=_discrete_ccdf_error(fit, counts), n=len(counts))
    peak_views = _na_views(ctx.views, True)
    first = [max(v.time_until_first, 1e-3) for v in peak_views if first_query_class(v.n_queries) == "<3"]
    if len(first) >= 30:
        fit = fit_spliced(first, boundary=45.0, body_family="weibull",
                          tail_family="lognormal", truncation_aware=True)
        result.add(panel="(b) first query", model="weibull+lognormal", ks=fit.ks, n=len(first))
    gaps = [g for v in peak_views for g in v.interarrivals]
    if len(gaps) >= 30:
        fit = fit_spliced(gaps, boundary=INTERARRIVAL_BOUNDARY,
                          body_family="lognormal", tail_family="pareto",
                          truncation_aware=True)
        result.add(panel="(c) interarrival", model="lognormal+pareto", ks=fit.ks, n=len(gaps))
    result.note("paper shows visually tight fits; KS < 0.1 is the equivalent quantitative bar")
    return result
