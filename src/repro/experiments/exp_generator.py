"""Experiment G1: closed-loop validation of the Figure 12 generator.

Generates a synthetic workload directly from the paper model (no client
noise, no measurement, no filtering) and checks that the generated
sessions reproduce the model's own anchors -- the paper's stated purpose
for the whole characterization ("constructing representative synthetic
workloads").  A second phase refits the model families to the generated
data and confirms the parameters round-trip.
"""

from __future__ import annotations

import numpy as np

from repro.core import Region, SyntheticWorkloadGenerator
from repro.core.fitting import fit_lognormal_discrete
from repro.core.parameters import _PASSIVE_FRACTION  # noqa: F401  (band reference)

from .base import ExperimentContext, ExperimentResult

__all__ = ["run_generator_validation"]

_MAJOR = (Region.NORTH_AMERICA, Region.EUROPE, Region.ASIA)


def run_generator_validation(ctx: ExperimentContext) -> ExperimentResult:
    """G1: the Fig. 12 generator reproduces its input distributions."""
    result = ExperimentResult("G1", "Synthetic workload generator (closed loop)")
    generator = SyntheticWorkloadGenerator(n_peers=300, seed=ctx.config.seed)
    sessions = generator.generate(duration_seconds=86400.0)
    result.note(f"generated {len(sessions)} sessions from 300 steady-state peers over 1 day")

    passive = [s for s in sessions if s.passive]
    result.add(
        measure="passive fraction (all regions)",
        paper="0.75-0.90",
        ours=len(passive) / len(sessions),
    )
    for region in _MAJOR:
        counts = [s.query_count for s in sessions if not s.passive and s.region is region]
        if len(counts) < 30:
            continue
        fit = fit_lognormal_discrete([float(c) for c in counts])
        result.add(
            measure=f"queries/session mu ({region.short})",
            paper={"NA": -0.0673, "EU": 0.520, "AS": -1.029}[region.short],
            ours=fit.mu,
        )
    # Interarrival anchor: EU < 100 s should be ~90%.
    eu_gaps = []
    for s in sessions:
        if s.passive or s.region is not Region.EUROPE:
            continue
        offs = [q.offset for q in s.queries]
        eu_gaps.extend(b - a for a, b in zip(offs, offs[1:]))
    if eu_gaps:
        result.add(
            measure="EU P[interarrival < 100s]",
            paper=0.90,
            ours=float(np.mean(np.array(eu_gaps) < 100)),
        )
    # Query classes: ~97% of a region's queries come from its own class.
    na_queries = [q for s in sessions if s.region is Region.NORTH_AMERICA for q in s.queries]
    if na_queries:
        own = sum(1 for q in na_queries if q.query_class == "na_only")
        result.add(
            measure="NA queries in own class",
            paper=0.97,
            ours=own / len(na_queries),
        )
    # Steady state: sessions run back to back per slot.
    by_start = sorted(sessions, key=lambda s: s.start)
    result.note(
        f"generation is steady-state: first/last session starts at "
        f"{by_start[0].start:.0f}s / {by_start[-1].start:.0f}s"
    )
    # Two independent seeds of the same generator must produce the same
    # distributions -- a max-CCDF-gap check on the core measures.
    from repro.core.validation import compare_models

    other = SyntheticWorkloadGenerator(n_peers=300, seed=ctx.config.seed + 17)
    sessions_b = other.generate(duration_seconds=86400.0)

    def _durations(batch):
        return [s.duration for s in batch if s.passive]

    def _counts(batch):
        return [float(s.query_count) for s in batch if not s.passive]

    verdicts = compare_models(
        {
            "passive duration": (_durations(sessions), _durations(sessions_b)),
            "queries/session": (_counts(sessions), _counts(sessions_b)),
        },
        tolerance=0.06,
    )
    for verdict in verdicts:
        result.note(f"seed-stability {verdict}")
    return result
