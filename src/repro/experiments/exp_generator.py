"""Experiment G1: closed-loop validation of the Figure 12 generator.

Generates a synthetic workload directly from the paper model (no client
noise, no measurement, no filtering) and checks that the generated
sessions reproduce the model's own anchors -- the paper's stated purpose
for the whole characterization ("constructing representative synthetic
workloads").  A second phase refits the model families to the generated
data and confirms the parameters round-trip.

The experiment consumes the generator's native
:class:`~repro.core.generator_columnar.ColumnarWorkload` arrays; no
per-session Python objects are ever materialized.
"""

from __future__ import annotations

import numpy as np

from repro.core import Region, SyntheticWorkloadGenerator
from repro.core.fitting import fit_lognormal_discrete
from repro.core.generator_columnar import WORKLOAD_REGION_CODE
from repro.core.parameters import _PASSIVE_FRACTION  # noqa: F401  (band reference)
from repro.core.popularity import CLASS_ORDER, QueryClassId

from .base import ExperimentContext, ExperimentResult

__all__ = ["run_generator_validation"]

_MAJOR = (Region.NORTH_AMERICA, Region.EUROPE, Region.ASIA)


def _session_gaps(workload, session_mask: np.ndarray) -> np.ndarray:
    """Interarrival gaps within each selected session, one flat array."""
    if workload.n_queries == 0:
        return np.empty(0, dtype=np.float64)
    same_session = np.diff(workload.query_session) == 0
    selected = session_mask[workload.query_session[1:]]
    keep = same_session & selected
    return np.diff(workload.query_offset)[keep]


def run_generator_validation(ctx: ExperimentContext) -> ExperimentResult:
    """G1: the Fig. 12 generator reproduces its input distributions."""
    result = ExperimentResult("G1", "Synthetic workload generator (closed loop)")
    generator = SyntheticWorkloadGenerator(n_peers=300, seed=ctx.config.seed)
    workload = generator.generate_columnar(duration_seconds=86400.0)
    n = workload.n_sessions
    result.note(f"generated {n} sessions from 300 steady-state peers over 1 day")

    passive = workload.session_passive
    result.add(
        measure="passive fraction (all regions)",
        paper="0.75-0.90",
        ours=float(passive.mean()),
    )
    counts = workload.query_counts()
    for region in _MAJOR:
        mask = ~passive & (workload.session_region == WORKLOAD_REGION_CODE[region])
        region_counts = counts[mask]
        if region_counts.size < 30:
            continue
        fit = fit_lognormal_discrete(region_counts.astype(float))
        result.add(
            measure=f"queries/session mu ({region.short})",
            paper={"NA": -0.0673, "EU": 0.520, "AS": -1.029}[region.short],
            ours=fit.mu,
        )
    # Interarrival anchor: EU < 100 s should be ~90%.
    eu_active = ~passive & (
        workload.session_region == WORKLOAD_REGION_CODE[Region.EUROPE]
    )
    eu_gaps = _session_gaps(workload, eu_active)
    if eu_gaps.size:
        result.add(
            measure="EU P[interarrival < 100s]",
            paper=0.90,
            ours=float(np.mean(eu_gaps < 100)),
        )
    # Query classes: ~97% of a region's queries come from its own class.
    na_mask = (
        workload.session_region[workload.query_session]
        == WORKLOAD_REGION_CODE[Region.NORTH_AMERICA]
    )
    if na_mask.any():
        own_code = CLASS_ORDER.index(QueryClassId.NA_ONLY)
        result.add(
            measure="NA queries in own class",
            paper=0.97,
            ours=float((workload.query_class[na_mask] == own_code).mean()),
        )
    # Steady state: sessions run back to back per slot.
    result.note(
        f"generation is steady-state: first/last session starts at "
        f"{workload.session_start[0]:.0f}s / {workload.session_start[-1]:.0f}s"
    )
    # Two independent seeds of the same generator must produce the same
    # distributions -- a max-CCDF-gap check on the core measures.
    from repro.core.validation import compare_models

    other = SyntheticWorkloadGenerator(n_peers=300, seed=ctx.config.seed + 17)
    workload_b = other.generate_columnar(duration_seconds=86400.0)
    counts_b = workload_b.query_counts()

    verdicts = compare_models(
        {
            "passive duration": (
                workload.session_duration[passive],
                workload_b.session_duration[workload_b.session_passive],
            ),
            "queries/session": (
                counts[~passive].astype(float),
                counts_b[~workload_b.session_passive].astype(float),
            ),
        },
        tolerance=0.06,
    )
    for verdict in verdicts:
        result.note(f"seed-stability {verdict}")
    return result
