"""Experiments X3-X4: systems implications (caching and churn).

X3 quantifies the paper's closing claim about result caching; X4
characterizes peer availability and churn (the Bhagwan et al. measures
the paper cites as related work).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.availability import (
    aggregate_availability,
    churn_by_hour,
    concurrency_curve,
)
from repro.analysis.caching import cache_hit_rates

from .base import ExperimentContext, ExperimentResult

__all__ = ["run_caching", "run_availability"]


def run_caching(ctx: ExperimentContext) -> ExperimentResult:
    """X3: result-cache effectiveness, raw vs. user query streams.

    Paper: "caching of responses will be more effective in systems that
    use aggressive automated re-query features than in systems that only
    issue queries on the users action."
    """
    result = ExperimentResult("X3", "Result caching vs. automated re-queries")
    rows = cache_hit_rates(ctx.trace.sessions, ctx.filtered.sessions)
    for row in rows:
        result.add(
            cache_capacity=row["capacity"],
            raw_stream_hit_rate=row["raw_hit_rate"],
            user_stream_hit_rate=row["user_hit_rate"],
            ratio=(row["raw_hit_rate"] / row["user_hit_rate"]
                   if row["user_hit_rate"] > 0 else float("inf")),
        )
    biggest = rows[-1]
    ok = biggest["raw_hit_rate"] > 2 * biggest["user_hit_rate"]
    result.note(
        f"caching claim (raw stream caches far better than user stream): "
        f"{'OK' if ok else 'VIOLATED'}"
    )
    result.note(
        "Sripanidkulchai's 3.7x traffic-reduction result was measured on an "
        "unfiltered stream; the user-only hit rate shows the true headroom"
    )
    return result


def run_availability(ctx: ExperimentContext) -> ExperimentResult:
    """X4: peer availability and churn (Bhagwan et al.'s measures)."""
    result = ExperimentResult("X4", "Peer availability and churn (extension)")
    sessions = ctx.trace.sessions
    churn = churn_by_hour(sessions, end_time=ctx.trace.end_time)
    result.add(
        measure="peak arrival hour (measurement-node time)",
        value=churn.peak_arrival_hour,
        reference="evenings of the dominant (NA) population",
    )
    result.add(
        measure="arrivals/departures balance",
        value=churn.churn_balance,
        reference="~1.0 in steady state",
    )
    times, counts = concurrency_curve(sessions)
    result.add(
        measure="mean concurrent connections",
        value=float(np.mean(counts)),
        reference="the paper's node held up to 200",
    )
    result.add(
        measure="peak concurrent connections",
        value=float(np.max(counts)),
        reference="",
    )
    span = ctx.trace.end_time - ctx.trace.start_time
    result.add(
        measure="mean per-connection availability",
        value=aggregate_availability(sessions, span),
        reference="well under 10% over day scales (Bhagwan et al.)",
    )
    swing = (np.max(churn.arrivals) - np.min(churn.arrivals)) / max(np.mean(churn.arrivals), 1e-9)
    result.note(f"diurnal arrival swing (peak-trough)/mean = {swing:.2f}")
    return result
