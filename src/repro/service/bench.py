"""Service throughput/latency measurement behind ``BENCH_service.json``.

The evaluation idiom the related measurement literature uses for
long-running collectors, applied to this repo's own service:

* **strong scaling** -- one fixed stream, a growing subscriber cohort:
  aggregate delivered events/s and end-to-end latency percentiles vs
  client count (fan-out cost at fixed offered load);
* **weak scaling** -- offered load grows with the server's generator
  worker count (peers scale with workers): sustained events/s vs
  workers (does more hardware buy a proportionally heavier stream);
* **reproducibility** -- the deterministic frame concatenation received
  by a subscriber must be byte-identical across runs and across worker
  counts, the service-layer restatement of the PR 5 jobs-invariance
  contract.

Server and subscribers share one event loop and one process here: the
numbers are a local fan-out measurement (loopback TCP, real framing,
real decode), directly comparable across commits like the other five
BENCH files.  This module is a timing entry point (DET201
per-path-allow in pyproject).
"""

from __future__ import annotations

import asyncio
from typing import Optional, Sequence

from repro.core.runtime import available_cpus, host_block, peak_rss_mb

from .client import collect_stream
from .framing import FRAME_STAMP
from .loadtest import LoadtestConfig, run_loadtest
from .server import ServerConfig, WorkloadStreamServer
from .stream import StreamConfig

__all__ = ["measure_service", "run_cohort", "stream_bytes"]


async def _serve_and_run(server: WorkloadStreamServer, coro):
    """Run one broadcast concurrently with its subscriber cohort."""
    await server.start()
    assert server.port is not None
    serve_task = asyncio.ensure_future(server.serve())
    try:
        result = await coro(server.port)
    finally:
        await serve_task
    return result, server.stats


def run_cohort(
    stream: StreamConfig,
    clients: int,
    rate_events_per_s: Optional[float] = None,
    buffer_frames: int = 32,
    stamps: bool = True,
) -> dict:
    """One broadcast to ``clients`` subscribers; the loadtest report."""

    async def _run() -> dict:
        server = WorkloadStreamServer(
            stream,
            ServerConfig(
                start_clients=clients,
                buffer_frames=buffer_frames,
                rate_events_per_s=rate_events_per_s,
                stamps=stamps,
            ),
        )

        async def _cohort(port: int) -> dict:
            return await run_loadtest(
                LoadtestConfig(host="127.0.0.1", port=port, clients=clients)
            )

        report, stats = await _serve_and_run(server, _cohort)
        report["server"] = stats.snapshot()
        return report

    return asyncio.run(_run())


def stream_bytes(stream: StreamConfig, buffer_frames: int = 32) -> bytes:
    """The deterministic frame concatenation one subscriber receives."""

    async def _run() -> bytes:
        server = WorkloadStreamServer(
            stream, ServerConfig(start_clients=1, buffer_frames=buffer_frames)
        )

        async def _one(port: int):
            return await collect_stream("127.0.0.1", port)

        receipt, _ = await _serve_and_run(server, _one)
        return receipt.deterministic_bytes(exclude_kinds=(FRAME_STAMP,))

    return asyncio.run(_run())


def measure_service(
    clients: Sequence[int] = (1, 2, 4, 8),
    workers: Sequence[int] = (1, 2),
    n_peers: int = 2000,
    window_seconds: float = 900.0,
    batch_sessions: int = 2048,
    n_frames: int = 48,
    seed: int = 404,
    repro_frames: int = 8,
) -> dict:
    """The full service measurement: scaling curves + contracts.

    Returns a report dict in the shared BENCH schema: a ``host`` block
    (kernels backend + lint ruleset stamped by
    :func:`~repro.core.runtime.host_block`), ``strong_scaling`` /
    ``weak_scaling`` curves, the reproducibility flags, and the
    headline ``sustained`` entry (the best aggregate throughput at the
    largest cohort).
    """
    stream = StreamConfig(
        n_peers=n_peers,
        seed=seed,
        window_seconds=window_seconds,
        batch_sessions=batch_sessions,
        n_frames=n_frames,
    )
    report: dict = {
        "scale": {
            "n_peers": n_peers,
            "window_seconds": window_seconds,
            "batch_sessions": batch_sessions,
            "n_frames": n_frames,
            "seed": seed,
            "clients": list(clients),
            "workers": list(workers),
            "effective_workers": [min(w, available_cpus()) for w in workers],
        },
        "host": host_block(),
        "strong_scaling": {},
        "weak_scaling": {},
    }

    # Strong scaling: fixed offered load, growing cohort.
    for n_clients in clients:
        run = run_cohort(stream, n_clients)
        report["strong_scaling"][f"clients_{n_clients}"] = {
            "clients": n_clients,
            "events_total": run["events_total"],
            "seconds": run["seconds"],
            "events_per_second": run["events_per_second"],
            "mib_per_second": run["mib_per_second"],
            "latency": run["latency"],
            "complete_clients": run["complete_clients"],
            "backpressure_waits": run["server"]["backpressure_waits"],
        }

    # Weak scaling: offered load grows with the generator worker pool.
    for n_workers in workers:
        weak_stream = StreamConfig(
            n_peers=n_peers * n_workers,
            seed=seed,
            window_seconds=window_seconds,
            batch_sessions=batch_sessions,
            n_frames=n_frames,
            jobs=n_workers,
        )
        run = run_cohort(weak_stream, clients=4)
        report["weak_scaling"][f"workers_{n_workers}"] = {
            "workers": n_workers,
            "n_peers": n_peers * n_workers,
            "events_total": run["events_total"],
            "seconds": run["seconds"],
            "events_per_second": run["events_per_second"],
            "mib_per_second": run["mib_per_second"],
            "latency": run["latency"],
        }

    # Reproducibility: byte-identical stream across runs and workers.
    repro_stream = StreamConfig(
        n_peers=n_peers,
        seed=seed,
        window_seconds=window_seconds,
        batch_sessions=batch_sessions,
        n_frames=repro_frames,
    )
    first = stream_bytes(repro_stream)
    report["stream_bytes"] = len(first)
    report["rerun_identical"] = stream_bytes(repro_stream) == first
    pooled = StreamConfig(
        n_peers=n_peers,
        seed=seed,
        window_seconds=window_seconds,
        batch_sessions=batch_sessions,
        n_frames=repro_frames,
        jobs=2,
    )
    report["workers_identical"] = stream_bytes(pooled) == first

    largest = max(clients)
    headline = report["strong_scaling"][f"clients_{largest}"]
    report["sustained"] = {
        "clients": largest,
        "events_per_second": headline["events_per_second"],
        "latency": headline["latency"],
    }
    report["host"]["peak_rss_mb"] = round(peak_rss_mb(), 1)
    return report
