"""Token-bucket rate control for the event stream.

Pure arithmetic over an *injected* clock and sleep -- the server wires
in ``time.monotonic`` / ``asyncio.sleep``, tests wire in a fake pair --
so this module stays deterministic under the repo's wall-clock lint
discipline (DET201 grants cover the timing entry points, not the
controller itself).
"""

from __future__ import annotations

from typing import Awaitable, Callable

__all__ = ["TokenBucket"]


class TokenBucket:
    """Classic token bucket metering *events* (sessions + queries).

    ``rate`` tokens accrue per clock second up to ``burst`` capacity.
    :meth:`acquire` lets a request larger than the capacity run a
    deficit (tokens go negative) rather than wait forever, so one
    oversized wave batch delays the next batches instead of deadlocking
    the stream; the long-run rate still converges to ``rate``.
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float],
        sleep: Callable[[float], Awaitable[None]],
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if burst <= 0:
            raise ValueError(f"burst must be positive, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._sleep = sleep
        self._tokens = float(burst)
        self._updated = float(clock())

    @property
    def tokens(self) -> float:
        """Current balance (refilled lazily on :meth:`acquire`)."""
        return self._tokens

    def _refill(self) -> None:
        now = float(self._clock())
        if now > self._updated:
            self._tokens = min(
                self.burst, self._tokens + (now - self._updated) * self.rate
            )
        self._updated = now

    async def acquire(self, n_events: int) -> float:
        """Block until ``n_events`` tokens are spendable; returns wait seconds."""
        if n_events <= 0:
            return 0.0
        needed = min(float(n_events), self.burst)
        # Relative tolerance: accumulated float error in the refill
        # arithmetic can leave the balance a few ulp short of ``needed``,
        # which would otherwise demand a sleep too small to advance the
        # clock at all -- an infinite spin under a deterministic clock.
        slack = 1e-9 * needed
        waited = 0.0
        while True:
            self._refill()
            if self._tokens >= needed - slack:
                self._tokens -= float(n_events)
                return waited
            delay = (needed - self._tokens) / self.rate
            waited += delay
            await self._sleep(delay)
