"""The load-test client: N concurrent subscribers, measured.

Each subscriber reads the broadcast, decodes every data frame down to
its column arrays (so the measured path includes real deserialization
work, not just byte shoveling), counts delivered events, and -- when
the server interleaves STAMP probes -- records end-to-end frame latency
as ``decode-complete monotonic time - server send stamp``.  STAMP and
subscriber clocks compare cleanly because ``time.monotonic_ns`` is the
system-wide CLOCK_MONOTONIC on the platforms CI runs on and the server
is on the same host in every supported deployment of this harness.

This module is a timing entry point: it carries the scoped DET201
per-path-allow in pyproject.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from .client import read_frames
from .framing import (
    FRAME_DATA,
    FRAME_END,
    FRAME_HELLO,
    FRAME_JSONL,
    FRAME_STAMP,
    HEADER_SIZE,
    decode_json,
    decode_stamp,
)
from .stream import decode_batch

__all__ = ["LoadtestConfig", "run_loadtest", "run_loadtest_sync"]


@dataclass(frozen=True)
class LoadtestConfig:
    host: str = "127.0.0.1"
    port: int = 0
    clients: int = 4
    connect_timeout: float = 10.0

    def __post_init__(self) -> None:
        if self.clients < 1:
            raise ValueError("clients must be >= 1")


def _count_jsonl_events(payload: bytes) -> Dict[str, int]:
    sessions = queries = 0
    for line in payload.decode().splitlines():
        record = json.loads(line)
        sessions += 1
        queries += len(record["queries"])
    return {"sessions": sessions, "queries": queries}


async def _subscriber(config: LoadtestConfig, index: int) -> dict:
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(config.host, config.port),
        timeout=config.connect_timeout,
    )
    sessions = queries = frames = bytes_received = 0
    latencies_ns: List[int] = []
    manifest: Optional[dict] = None
    summary: Optional[dict] = None
    pending_stamp: Optional[int] = None
    started_ns = time.monotonic_ns()
    try:
        async for kind, payload in read_frames(reader):
            bytes_received += HEADER_SIZE + len(payload)
            if kind == FRAME_STAMP:
                _, pending_stamp = decode_stamp(payload)
            elif kind == FRAME_DATA:
                batch = decode_batch(payload)
                sessions += batch.n_sessions
                queries += batch.n_queries
                frames += 1
                if pending_stamp is not None:
                    latencies_ns.append(time.monotonic_ns() - pending_stamp)
                    pending_stamp = None
            elif kind == FRAME_JSONL:
                counts = _count_jsonl_events(payload)
                sessions += counts["sessions"]
                queries += counts["queries"]
                frames += 1
                if pending_stamp is not None:
                    latencies_ns.append(time.monotonic_ns() - pending_stamp)
                    pending_stamp = None
            elif kind == FRAME_HELLO:
                manifest = decode_json(payload)
            elif kind == FRAME_END:
                summary = decode_json(payload)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    finished_ns = time.monotonic_ns()
    return {
        "client": index,
        "sessions": sessions,
        "queries": queries,
        "events": sessions + queries,
        "frames": frames,
        "bytes": bytes_received,
        "seconds": (finished_ns - started_ns) / 1e9,
        "started_ns": started_ns,
        "finished_ns": finished_ns,
        "latencies_ns": latencies_ns,
        "manifest": manifest,
        "summary": summary,
        "complete": summary is not None,
    }


def _percentiles_ms(latencies_ns: List[int]) -> Dict[str, float]:
    if not latencies_ns:
        return {}
    values = np.asarray(latencies_ns, dtype=np.float64) / 1e6
    return {
        "p50_ms": round(float(np.percentile(values, 50)), 3),
        "p95_ms": round(float(np.percentile(values, 95)), 3),
        "p99_ms": round(float(np.percentile(values, 99)), 3),
        "max_ms": round(float(values.max()), 3),
        "samples": int(values.size),
    }


async def run_loadtest(config: LoadtestConfig) -> dict:
    """Drive ``config.clients`` concurrent subscribers; aggregate the stats.

    Aggregate throughput counts every event delivered to every client
    over the cohort's wall-clock span (first connect to last END) --
    the "serve N clients at once" number, not a per-client mean.
    """
    results = await asyncio.gather(
        *(_subscriber(config, i) for i in range(config.clients))
    )
    span_ns = max(r["finished_ns"] for r in results) - min(
        r["started_ns"] for r in results
    )
    span_s = max(span_ns / 1e9, 1e-9)
    events_total = sum(r["events"] for r in results)
    bytes_total = sum(r["bytes"] for r in results)
    all_latencies: List[int] = []
    for r in results:
        all_latencies.extend(r.pop("latencies_ns"))
    report = {
        "clients": config.clients,
        "complete_clients": sum(1 for r in results if r["complete"]),
        "events_total": events_total,
        "frames_total": sum(r["frames"] for r in results),
        "bytes_total": bytes_total,
        "seconds": round(span_s, 4),
        "events_per_second": round(events_total / span_s, 1),
        "mib_per_second": round(bytes_total / span_s / (1024 * 1024), 2),
        "latency": _percentiles_ms(all_latencies),
        "per_client": [
            {k: v for k, v in r.items() if k not in ("manifest", "summary")}
            for r in results
        ],
        "manifest": results[0]["manifest"],
    }
    return report


def run_loadtest_sync(config: LoadtestConfig) -> dict:
    """Blocking wrapper for the CLI."""
    return asyncio.run(run_loadtest(config))
