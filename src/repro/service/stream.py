"""The deterministic frame source: Fig. 12 waves sliced into wire frames.

Pure (no sockets, no wall clock): a :class:`WorkloadFrameSource` is an
iterator of pre-encoded frames whose byte sequence is a function of the
:class:`StreamConfig` alone.  Successive *windows* of the steady-state
workload are generated with the columnar engine -- window ``w`` covers
``[w * window_seconds, (w+1) * window_seconds)`` with its own derived
seed -- so the stream is unbounded in time but bounded in memory (one
window of sessions resident at a time).  Each window is sliced into
batches of ``batch_sessions`` sessions and every batch is serialized
exactly once; the server fans the same immutable bytes out to every
subscriber.

Reproducibility contract
------------------------

``generate_columnar_workload`` is byte-identical for any ``jobs`` value
(the PR 5 invariant), the per-window seeds depend only on
``(seed, window)``, and the framing codec is deterministic -- so the
concatenation of HELLO + DATA... + END frames is byte-identical across
runs *and* across server worker counts for a fixed config.  ``jobs``
is deliberately absent from the HELLO manifest for the same reason.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator, Optional, Tuple

import numpy as np

from repro.core.generator_columnar import ColumnarWorkload, generate_columnar_workload
from repro.core.model import WorkloadModel
from repro.core.popularity import QueryUniverse
from repro.core.workload_io import session_record

from .framing import FRAME_DATA, FRAME_END, FRAME_HELLO, FRAME_JSONL, encode_columns, encode_frame, encode_json_frame

__all__ = [
    "MANIFEST_FORMAT",
    "StreamConfig",
    "WorkloadFrameSource",
    "batch_events",
    "decode_batch",
    "encode_batch",
    "window_seed",
]

#: Manifest tag so clients fail loudly on foreign streams.
MANIFEST_FORMAT = "repro-service-stream-v1"


@dataclass(frozen=True)
class StreamConfig:
    """Everything that defines the stream's bytes (and only that).

    ``jobs`` sizes the generator's worker pool and is excluded from the
    identity: output is byte-identical for any value.
    """

    n_peers: int = 200
    seed: int = 42
    window_seconds: float = 3600.0
    batch_sessions: int = 1024
    n_frames: int = 64
    codec: str = "columnar"  # "columnar" (binary) or "jsonl" (debug/compat)
    jobs: int = 1

    def __post_init__(self) -> None:
        if self.n_peers < 1:
            raise ValueError(f"n_peers must be >= 1, got {self.n_peers}")
        if self.window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        if self.batch_sessions < 1:
            raise ValueError("batch_sessions must be >= 1")
        if self.n_frames < 1:
            raise ValueError("n_frames must be >= 1")
        if self.codec not in ("columnar", "jsonl"):
            raise ValueError(f"codec must be 'columnar' or 'jsonl', got {self.codec!r}")
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")

    def manifest(self) -> dict:
        """The HELLO payload: the stream identity, canonically ordered."""
        return {
            "format": MANIFEST_FORMAT,
            "codec": self.codec,
            "n_peers": self.n_peers,
            "seed": self.seed,
            "window_seconds": self.window_seconds,
            "batch_sessions": self.batch_sessions,
            "n_frames": self.n_frames,
        }


def window_seed(seed: int, window: int) -> int:
    """The derived integer seed for stream window ``window``.

    ``SeedSequence([seed, window])`` keys the window into the root
    seed's stream without any arithmetic collisions between nearby
    seeds; the first generated word is the integer seed the columnar
    generator re-expands into its own shard spawn layout.
    """
    return int(np.random.SeedSequence([int(seed), int(window)]).generate_state(1)[0])


def batch_events(batch: ColumnarWorkload) -> int:
    """Events a batch delivers: one connect per session plus its queries."""
    return batch.n_sessions + batch.n_queries


def encode_batch(batch: ColumnarWorkload) -> bytes:
    """One DATA frame: the batch's columns, serialized once.

    ``query_session`` is batch-local (the stream layer re-bases it when
    slicing), so a subscriber can reconstruct each batch independently.
    """
    columns = {name: getattr(batch, name) for name in ColumnarWorkload.ARRAY_FIELDS}
    return encode_frame(FRAME_DATA, encode_columns(columns))


def decode_batch(payload: bytes) -> ColumnarWorkload:
    """Rebuild the batch from a DATA payload (zero-copy array views)."""
    from .framing import decode_columns

    columns = decode_columns(payload)
    missing = [n for n in ColumnarWorkload.ARRAY_FIELDS if n not in columns]
    if missing:
        raise ValueError(f"data frame missing columns {missing}")
    return ColumnarWorkload(
        **{name: columns[name] for name in ColumnarWorkload.ARRAY_FIELDS}
    ).validate()


def _encode_jsonl_batch(batch: ColumnarWorkload) -> bytes:
    """The debug/compat codec: one JSON session record per line."""
    import json

    lines = [
        json.dumps(session_record(session), sort_keys=True)
        for session in batch.iter_sessions()
    ]
    return encode_frame(FRAME_JSONL, ("\n".join(lines) + "\n").encode() if lines else b"")


def _slice_batch(
    workload: ColumnarWorkload, query_index: np.ndarray, lo: int, hi: int
) -> ColumnarWorkload:
    """Sessions ``[lo, hi)`` as a standalone batch with re-based queries."""
    q_lo, q_hi = int(query_index[lo]), int(query_index[hi])
    return ColumnarWorkload(
        session_region=workload.session_region[lo:hi],
        session_start=workload.session_start[lo:hi],
        session_duration=workload.session_duration[lo:hi],
        session_passive=workload.session_passive[lo:hi],
        query_session=workload.query_session[q_lo:q_hi] - lo,
        query_offset=workload.query_offset[q_lo:q_hi],
        query_rank=workload.query_rank[q_lo:q_hi],
        query_class=workload.query_class[q_lo:q_hi],
        query_keywords=workload.query_keywords[q_lo:q_hi],
    )


class WorkloadFrameSource:
    """Iterate the stream's frames: HELLO, ``n_frames`` DATA, END.

    Yields ``(frame_bytes, n_events)`` pairs -- control frames carry
    zero events.  The source is restartable: each call to
    :meth:`frames` replays the identical byte sequence.
    """

    def __init__(
        self,
        config: StreamConfig,
        model: Optional[WorkloadModel] = None,
        universe: Optional[QueryUniverse] = None,
    ) -> None:
        self.config = config
        self.model = model or WorkloadModel.paper()
        self._universe = universe

    def _fresh_universe(self) -> QueryUniverse:
        # The universe memoizes per-day rankings as they are drawn; a
        # fresh instance per replay keeps draw order (hence bytes)
        # independent of how often the source was iterated before.
        return QueryUniverse() if self._universe is None else self._universe

    def _batches(self) -> Iterator[ColumnarWorkload]:
        config = self.config
        universe = self._fresh_universe()
        window = 0
        while True:
            workload = generate_columnar_workload(
                self.model,
                universe,
                n_peers=config.n_peers,
                seed=window_seed(config.seed, window),
                duration_seconds=config.window_seconds,
                start_time=window * config.window_seconds,
                jobs=config.jobs,
            )
            query_index = workload.query_index()
            for lo in range(0, workload.n_sessions, config.batch_sessions):
                hi = min(lo + config.batch_sessions, workload.n_sessions)
                yield _slice_batch(workload, query_index, lo, hi)
            window += 1

    def frames(self) -> Iterator[Tuple[bytes, int]]:
        """The full frame sequence, each frame encoded exactly once."""
        config = self.config
        yield encode_json_frame(FRAME_HELLO, config.manifest()), 0
        encode = encode_batch if config.codec == "columnar" else _encode_jsonl_batch
        sessions = queries = 0
        batches = self._batches()
        for _ in range(config.n_frames):
            batch = next(batches)
            sessions += batch.n_sessions
            queries += batch.n_queries
            yield encode(batch), batch_events(batch)
        summary = {
            "frames": config.n_frames,
            "sessions": sessions,
            "queries": queries,
            "events": sessions + queries,
        }
        yield encode_json_frame(FRAME_END, summary), 0
