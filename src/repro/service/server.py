"""The asyncio event-stream server: one producer, N subscribers.

Architecture::

    WorkloadFrameSource ──► producer ──► per-client bounded queues ──► writers
        (frames encoded          │                │
         exactly once)     token bucket      StreamWriter.drain()
                           (rate limit)      (TCP flow control)

* **Serialize once, write many**: the producer pulls pre-encoded frame
  bytes from the source and puts the *same immutable bytes object* on
  every subscriber's queue; writers hand it to the transport untouched.
* **Backpressure, not buffering**: each subscriber's queue holds at
  most ``buffer_frames`` frames.  A full queue blocks the producer --
  generation *pauses* until the slowest subscriber drains (MEM501
  discipline: bounded growth, stated budget).  Writers couple the queue
  to TCP flow control through ``drain()``, so a stalled peer stops its
  writer, fills its queue, and pauses the stream; it can never grow
  server memory past ``clients x buffer_frames`` frames.
* **Isolation**: a subscriber that disconnects (or errors) is closed
  and skipped; the producer and every other stream continue.

Timing (the token bucket's clock, STAMP probes) legitimately reads the
host clock; this module carries the scoped DET201 per-path-allow in
pyproject rather than inline noqa.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import List, Optional, Set

from .framing import encode_stamp_frame
from .rate import TokenBucket
from .stream import StreamConfig, WorkloadFrameSource

__all__ = ["ServerConfig", "ServerStats", "WorkloadStreamServer"]


@dataclass(frozen=True)
class ServerConfig:
    """Server knobs on top of the stream identity.

    Nothing here may change the stream's bytes: ``rate_events_per_s``
    shapes timing only, ``buffer_frames`` bounds memory, and ``stamps``
    interleaves the explicitly-nondeterministic latency probes.
    """

    host: str = "127.0.0.1"
    port: int = 0  #: 0 = ephemeral; the bound port is on the server object
    buffer_frames: int = 16
    start_clients: int = 1  #: subscribers to wait for before streaming
    rate_events_per_s: Optional[float] = None  #: None = as fast as possible
    burst_events: Optional[float] = None  #: default: one second of rate
    stamps: bool = False  #: interleave STAMP latency probes
    sndbuf: Optional[int] = None  #: socket send-buffer override (tests)

    def __post_init__(self) -> None:
        if self.buffer_frames < 1:
            raise ValueError("buffer_frames must be >= 1")
        if self.start_clients < 1:
            raise ValueError("start_clients must be >= 1")
        if self.rate_events_per_s is not None and self.rate_events_per_s <= 0:
            raise ValueError("rate_events_per_s must be positive")


@dataclass
class ServerStats:
    """Producer-side accounting; the backpressure tests read these."""

    frames_produced: int = 0
    events_produced: int = 0
    bytes_produced: int = 0
    clients_accepted: int = 0
    clients_completed: int = 0
    clients_dropped: int = 0
    backpressure_waits: int = 0  #: producer met a full subscriber queue
    rate_wait_seconds: float = 0.0
    buffered_frames_peak: int = 0

    def snapshot(self) -> dict:
        return dict(self.__dict__)


class _Subscriber:
    """One client's bounded frame queue plus its closed flag."""

    __slots__ = ("queue", "closed", "name")

    def __init__(self, buffer_frames: int, name: str) -> None:
        self.queue: asyncio.Queue = asyncio.Queue(buffer_frames)
        self.closed = False
        self.name = name

    def close(self) -> None:
        """Mark closed and free any blocked producer ``put``.

        Draining after setting ``closed`` releases at most one pending
        producer put into a queue nobody will read; the producer checks
        ``closed`` before every subsequent put.
        """
        self.closed = True
        while not self.queue.empty():
            self.queue.get_nowait()


class WorkloadStreamServer:
    """Broadcast one workload stream to every subscriber, then exit.

    Usage::

        server = WorkloadStreamServer(StreamConfig(...), ServerConfig(...))
        await server.start()          # binds; server.port is real
        await server.serve()          # streams, flushes, closes
    """

    def __init__(
        self,
        stream: StreamConfig,
        config: Optional[ServerConfig] = None,
        source: Optional[WorkloadFrameSource] = None,
    ) -> None:
        self.stream = stream
        self.config = config or ServerConfig()
        self.source = source or WorkloadFrameSource(stream)
        self.stats = ServerStats()
        self.port: Optional[int] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._subscribers: List[_Subscriber] = []
        self._writers: Set[asyncio.Task] = set()
        self._started = asyncio.Event()
        self._done = asyncio.Event()

    # -- connection handling ------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peer = writer.get_extra_info("peername")
        if self.config.sndbuf is not None:
            sock = writer.get_extra_info("socket")
            if sock is not None:
                import socket as _socket

                sock.setsockopt(
                    _socket.SOL_SOCKET, _socket.SO_SNDBUF, self.config.sndbuf
                )
            transport = writer.transport
            transport.set_write_buffer_limits(high=self.config.sndbuf)
        if self._done.is_set():
            # The broadcast already finished; late joiners get a clean close.
            writer.close()
            return
        subscriber = _Subscriber(self.config.buffer_frames, name=str(peer))
        self._subscribers.append(subscriber)
        self.stats.clients_accepted += 1
        if len(self._subscribers) >= self.config.start_clients:
            self._started.set()
        task = asyncio.current_task()
        assert task is not None
        self._writers.add(task)
        try:
            await self._write_loop(subscriber, writer)
            self.stats.clients_completed += 1
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            self.stats.clients_dropped += 1
        finally:
            subscriber.close()
            self._writers.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _write_loop(
        self, subscriber: _Subscriber, writer: asyncio.StreamWriter
    ) -> None:
        while True:
            frame = await subscriber.queue.get()
            if frame is None:
                await writer.drain()
                return
            writer.write(frame)
            # drain() is the backpressure coupling: a stalled peer blocks
            # here, the queue fills, and the producer pauses generation.
            await writer.drain()

    # -- producing ----------------------------------------------------------

    def _bucket(self) -> Optional[TokenBucket]:
        rate = self.config.rate_events_per_s
        if rate is None:
            return None
        burst = self.config.burst_events or rate
        return TokenBucket(rate, burst, clock=time.monotonic, sleep=asyncio.sleep)

    async def _broadcast(self, frame: bytes) -> None:
        for subscriber in list(self._subscribers):
            if subscriber.closed:
                continue
            if subscriber.queue.full():
                self.stats.backpressure_waits += 1
            await subscriber.queue.put(frame)
        buffered = sum(s.queue.qsize() for s in self._subscribers if not s.closed)
        if buffered > self.stats.buffered_frames_peak:
            self.stats.buffered_frames_peak = buffered

    async def _produce(self) -> None:
        await self._started.wait()
        bucket = self._bucket()
        sequence = 0
        for frame, n_events in self.source.frames():
            if not any(not s.closed for s in self._subscribers):
                break  # every subscriber left; stop generating
            if bucket is not None and n_events:
                self.stats.rate_wait_seconds += await bucket.acquire(n_events)
            if self.config.stamps and n_events:
                await self._broadcast(
                    encode_stamp_frame(sequence, time.monotonic_ns())
                )
            await self._broadcast(frame)
            sequence += 1
            self.stats.frames_produced += 1
            self.stats.events_produced += n_events
            self.stats.bytes_produced += len(frame)
        self._done.set()
        for subscriber in list(self._subscribers):
            if not subscriber.closed:
                await subscriber.queue.put(None)

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting subscribers (does not stream yet)."""
        self._server = await asyncio.start_server(
            self._handle_client, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve(self) -> ServerStats:
        """Run one full broadcast, flush every writer, close the socket."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        try:
            await self._produce()
            if self._writers:
                await asyncio.gather(*self._writers, return_exceptions=True)
        finally:
            self._done.set()
            self._server.close()
            await self._server.wait_closed()
        return self.stats

    async def aclose(self) -> None:
        """Abort an in-flight broadcast (tests; Ctrl-C paths)."""
        self._done.set()
        for subscriber in self._subscribers:
            subscriber.close()
        for task in list(self._writers):
            task.cancel()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
