"""Wire framing for the workload stream: length-prefixed binary frames.

Every frame is a fixed 16-byte header followed by a payload::

    magic    4s   b"RPSF"
    version  u8   1
    kind     u8   frame kind (FRAME_* below)
    reserved u16  0
    length   u64  payload byte count (little-endian, like the rest)

Data frames carry a *columnar* payload: named NumPy arrays serialized
as ``(name, dtype descr, shape, raw C-order bytes)`` records -- no
per-event Python dicts, no zip container (``.npz`` members embed a
modification timestamp, which would break the byte-reproducibility
contract), and decoding is ``np.frombuffer`` views into the received
buffer, so a subscriber pays no per-event cost either.  Control frames
(HELLO/END) carry canonical JSON (sorted keys); STAMP frames carry a
``(sequence, monotonic send nanoseconds)`` pair for latency measurement
and are the only nondeterministic frame kind -- they are opt-in and
excluded from the reproducibility contract (docs/SERVICE.md).

A JSON-lines data codec (``FRAME_JSONL``) is kept as a debug/compat
option; the fast path never builds per-event Python objects.
"""

from __future__ import annotations

import json
import struct
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

__all__ = [
    "MAGIC", "VERSION", "HEADER_SIZE",
    "FRAME_HELLO", "FRAME_DATA", "FRAME_JSONL", "FRAME_STAMP", "FRAME_END",
    "frame_header", "parse_header", "encode_frame",
    "encode_columns", "decode_columns",
    "encode_json_frame", "decode_json",
    "encode_stamp_frame", "decode_stamp",
    "FrameDecoder",
]

MAGIC = b"RPSF"
VERSION = 1

_HEADER = struct.Struct("<4sBBHQ")
HEADER_SIZE = _HEADER.size  # 16

FRAME_HELLO = 1  #: stream manifest (canonical JSON)
FRAME_DATA = 2   #: columnar wave batch (binary columns)
FRAME_JSONL = 3  #: debug/compat wave batch (JSON lines)
FRAME_STAMP = 4  #: (seq, monotonic ns) latency probe -- nondeterministic
FRAME_END = 5    #: stream summary (canonical JSON), closes the stream

_KINDS = (FRAME_HELLO, FRAME_DATA, FRAME_JSONL, FRAME_STAMP, FRAME_END)

_STAMP = struct.Struct("<QQ")
_COLUMN_COUNT = struct.Struct("<I")
_U16 = struct.Struct("<H")
_U64 = struct.Struct("<Q")


def frame_header(kind: int, payload_length: int) -> bytes:
    """The 16-byte header for a ``kind`` frame of ``payload_length`` bytes."""
    if kind not in _KINDS:
        raise ValueError(f"unknown frame kind {kind}")
    return _HEADER.pack(MAGIC, VERSION, kind, 0, payload_length)


def parse_header(header: bytes) -> Tuple[int, int]:
    """``(kind, payload_length)`` from a header; raises on foreign bytes."""
    if len(header) != HEADER_SIZE:
        raise ValueError(f"frame header must be {HEADER_SIZE} bytes, got {len(header)}")
    magic, version, kind, reserved, length = _HEADER.unpack(header)
    if magic != MAGIC:
        raise ValueError(f"bad frame magic {magic!r}")
    if version != VERSION:
        raise ValueError(f"unsupported frame version {version}")
    if kind not in _KINDS:
        raise ValueError(f"unknown frame kind {kind}")
    if reserved != 0:
        raise ValueError(f"reserved header bits set ({reserved})")
    return kind, length


def encode_frame(kind: int, payload: bytes) -> bytes:
    """One wire frame: header + payload, as a single immutable buffer."""
    return frame_header(kind, len(payload)) + payload


# ---------------------------------------------------------------------------
# Columnar payload codec
# ---------------------------------------------------------------------------


def encode_columns(columns: Dict[str, np.ndarray]) -> bytes:
    """Serialize named arrays into one deterministic binary payload.

    Column order follows dict insertion order and is part of the bytes;
    callers keep it fixed (the stream layer always emits
    ``ColumnarWorkload.ARRAY_FIELDS`` order).
    """
    parts: List[bytes] = [_COLUMN_COUNT.pack(len(columns))]
    for name, array in columns.items():
        array = np.ascontiguousarray(array)
        if array.dtype.hasobject:
            raise ValueError(f"column {name!r} has object dtype")
        name_b = name.encode("ascii")
        descr = np.lib.format.dtype_to_descr(array.dtype).encode("ascii")
        parts.append(_U16.pack(len(name_b)))
        parts.append(name_b)
        parts.append(_U16.pack(len(descr)))
        parts.append(descr)
        parts.append(_U16.pack(array.ndim))
        for dim in array.shape:
            parts.append(_U64.pack(dim))
        data = array.tobytes()
        parts.append(_U64.pack(len(data)))
        parts.append(data)
    return b"".join(parts)


def decode_columns(payload: bytes) -> Dict[str, np.ndarray]:
    """Decode :func:`encode_columns` output into read-only array views.

    Arrays are ``np.frombuffer`` views over ``payload`` -- zero copies,
    valid as long as the payload buffer is alive.
    """
    view = memoryview(payload)
    (count,) = _COLUMN_COUNT.unpack_from(view, 0)
    offset = _COLUMN_COUNT.size
    columns: Dict[str, np.ndarray] = {}
    for _ in range(count):
        (name_len,) = _U16.unpack_from(view, offset)
        offset += _U16.size
        name = bytes(view[offset:offset + name_len]).decode("ascii")
        offset += name_len
        (descr_len,) = _U16.unpack_from(view, offset)
        offset += _U16.size
        descr = bytes(view[offset:offset + descr_len]).decode("ascii")
        offset += descr_len
        (ndim,) = _U16.unpack_from(view, offset)
        offset += _U16.size
        shape = []
        for _ in range(ndim):
            (dim,) = _U64.unpack_from(view, offset)
            shape.append(dim)
            offset += _U64.size
        (nbytes,) = _U64.unpack_from(view, offset)
        offset += _U64.size
        dtype = np.dtype(descr)
        expected = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        if nbytes != expected:
            raise ValueError(
                f"column {name!r}: {nbytes} payload bytes for shape "
                f"{tuple(shape)} of {descr} (expected {expected})"
            )
        if offset + nbytes > len(view):
            raise ValueError(f"column {name!r}: truncated payload")
        columns[name] = np.frombuffer(
            view[offset:offset + nbytes], dtype=dtype
        ).reshape(shape)
        offset += nbytes
    if offset != len(view):
        raise ValueError(f"{len(view) - offset} trailing bytes after last column")
    return columns


# ---------------------------------------------------------------------------
# Control and probe payloads
# ---------------------------------------------------------------------------


def encode_json_frame(kind: int, obj: dict) -> bytes:
    """A control frame carrying canonical (sorted-keys) JSON."""
    payload = json.dumps(obj, sort_keys=True, separators=(",", ":")).encode()
    return encode_frame(kind, payload)


def decode_json(payload: bytes) -> dict:
    """The JSON object of a HELLO/END payload."""
    return json.loads(payload.decode())


def encode_stamp_frame(sequence: int, send_ns: int) -> bytes:
    """A latency probe announcing the next data frame's send time."""
    return encode_frame(FRAME_STAMP, _STAMP.pack(sequence, send_ns))


def decode_stamp(payload: bytes) -> Tuple[int, int]:
    """``(sequence, send_ns)`` from a STAMP payload."""
    return _STAMP.unpack(payload)


class FrameDecoder:
    """Incremental frame reassembly over an arbitrary byte-chunk feed.

    The asyncio client reads exact header/payload spans directly; this
    decoder serves consumers that only see raw chunks (tests, recorded
    streams, non-asyncio transports)::

        decoder = FrameDecoder()
        for chunk in chunks:
            for kind, payload in decoder.feed(chunk):
                ...
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._pending: Optional[Tuple[int, int]] = None

    def feed(self, chunk: bytes) -> Iterator[Tuple[int, bytes]]:
        self._buffer.extend(chunk)
        while True:
            if self._pending is None:
                if len(self._buffer) < HEADER_SIZE:
                    return
                self._pending = parse_header(bytes(self._buffer[:HEADER_SIZE]))
                del self._buffer[:HEADER_SIZE]
            kind, length = self._pending
            if len(self._buffer) < length:
                return
            payload = bytes(self._buffer[:length])
            del self._buffer[:length]
            self._pending = None
            yield kind, payload

    @property
    def buffered_bytes(self) -> int:
        """Bytes held waiting for the rest of a frame."""
        return len(self._buffer)
