"""repro.service: workload-as-a-service streaming layer.

The ROADMAP's "heavy traffic from millions of users" story made
concrete: a long-running asyncio server (:mod:`.server`) wraps the
columnar Fig. 12 generator and pushes the query/session event stream to
subscribed clients over length-prefix-framed TCP (:mod:`.framing`),
with token-bucket rate control (:mod:`.rate`), bounded per-client
buffering, and generation paused -- never unbounded growth -- when the
slowest subscriber falls behind.  The hot path is columnar end to end:
every wave batch is serialized once (:mod:`.stream`) and the same
immutable bytes are fanned out to every subscriber; clients decode
straight back into NumPy views with no per-event Python objects
(:mod:`.client`).  :mod:`.loadtest` drives N concurrent subscribers and
:mod:`.bench` runs the strong/weak-scaling harness behind
``BENCH_service.json``.

See ``docs/SERVICE.md`` for the protocol, the backpressure semantics,
and the reproducibility contract.
"""

from __future__ import annotations

from .framing import (
    FRAME_DATA,
    FRAME_END,
    FRAME_HELLO,
    FRAME_JSONL,
    FRAME_STAMP,
    FrameDecoder,
    decode_columns,
    decode_json,
    decode_stamp,
    encode_columns,
    encode_frame,
    encode_json_frame,
    encode_stamp_frame,
    frame_header,
    parse_header,
)
from .rate import TokenBucket
from .stream import (
    StreamConfig,
    WorkloadFrameSource,
    batch_events,
    decode_batch,
    encode_batch,
    window_seed,
)
from .server import ServerConfig, ServerStats, WorkloadStreamServer
from .client import StreamReceipt, collect_stream, read_frames
from .loadtest import LoadtestConfig, run_loadtest, run_loadtest_sync

__all__ = [
    # framing
    "FRAME_DATA", "FRAME_END", "FRAME_HELLO", "FRAME_JSONL", "FRAME_STAMP",
    "FrameDecoder", "decode_columns", "decode_json", "decode_stamp",
    "encode_columns", "encode_frame", "encode_json_frame",
    "encode_stamp_frame", "frame_header", "parse_header",
    # rate
    "TokenBucket",
    # stream
    "StreamConfig", "WorkloadFrameSource", "batch_events", "decode_batch",
    "encode_batch", "window_seed",
    # server
    "ServerConfig", "ServerStats", "WorkloadStreamServer",
    # client
    "StreamReceipt", "collect_stream", "read_frames",
    # loadtest
    "LoadtestConfig", "run_loadtest", "run_loadtest_sync",
]
