"""Subscriber side: read frames off the wire as zero-copy column views.

Pure transport + decode -- no wall clock, no statistics.  The loadtest
layers timing on top; tests use :func:`collect_stream` to capture a
whole broadcast (frames *and* raw bytes, for the byte-reproducibility
contract).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import AsyncIterator, List, Optional, Tuple

from .framing import FRAME_END, HEADER_SIZE, parse_header

__all__ = ["StreamReceipt", "read_frames", "collect_stream"]


async def read_frames(
    reader: asyncio.StreamReader,
) -> AsyncIterator[Tuple[int, bytes]]:
    """Yield ``(kind, payload)`` until the END frame or EOF.

    Reads exact header/payload spans (no copy-and-rescan buffering);
    the END frame is yielded and then iteration stops.
    """
    while True:
        try:
            header = await reader.readexactly(HEADER_SIZE)
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return  # clean EOF on a frame boundary
            raise ValueError(
                f"stream ended mid-header ({len(exc.partial)} bytes)"
            ) from exc
        kind, length = parse_header(header)
        payload = await reader.readexactly(length)
        yield kind, payload
        if kind == FRAME_END:
            return


@dataclass
class StreamReceipt:
    """Everything one subscriber received, in arrival order."""

    frames: List[Tuple[int, bytes]] = field(default_factory=list)
    raw: bytes = b""

    def kinds(self) -> List[int]:
        return [kind for kind, _ in self.frames]

    def deterministic_bytes(self, exclude_kinds: Tuple[int, ...] = ()) -> bytes:
        """Concatenated frame bytes, optionally dropping probe kinds.

        With STAMP frames excluded, this is the quantity the
        reproducibility contract promises is byte-identical across runs
        and worker counts (docs/SERVICE.md).
        """
        from .framing import encode_frame

        return b"".join(
            encode_frame(kind, payload)
            for kind, payload in self.frames
            if kind not in exclude_kinds
        )


async def collect_stream(
    host: str, port: int, limit: Optional[int] = None
) -> StreamReceipt:
    """Subscribe and capture the broadcast until END/EOF (or ``limit`` frames)."""
    reader, writer = await asyncio.open_connection(host, port)
    receipt = StreamReceipt()
    try:
        async for kind, payload in read_frames(reader):
            receipt.frames.append((kind, payload))
            if limit is not None and len(receipt.frames) >= limit:
                break
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    receipt.raw = receipt.deterministic_bytes()
    return receipt
