"""Worker-function safety rules (PAR4xx).

Shard and experiment fan-out run module-level functions in a process
pool (``pool.map(_synthesize_shard_task, ...)``).  Under the ``fork``
start method a worker inherits a *copy* of module state, so mutating a
module-level global inside a worker silently diverges from the parent
(and from spawn-method platforms); inherited open file handles share
one file offset across processes.  These rules find the pool-target
functions in a module and check their bodies.

Worker detection is module-local and syntactic: a function is a worker
if its *name* is passed as the callable to ``submit``/``map``/
``imap``/``imap_unordered``/``starmap``/``apply``/``apply_async`` or
as the ``target=`` of a ``Process``/``Thread`` constructor.  Pool
``initializer=`` functions are deliberately *not* workers: priming
per-process state there (the ``_WORKER_CTX`` pattern) is the
sanctioned alternative to closure capture.
"""

from __future__ import annotations

import ast
from typing import Dict, Set

from .framework import LintRule, register

__all__ = ["WorkerGlobalStatement", "WorkerMutableGlobal", "WorkerOpenHandle"]

_POOL_METHODS = {"submit", "map", "imap", "imap_unordered", "starmap",
                 "apply", "apply_async"}
_TARGET_CONSTRUCTORS = {"Process", "Thread"}

#: Constructor names whose results are mutable containers.
_MUTABLE_CONSTRUCTORS = {"list", "dict", "set", "bytearray", "deque",
                         "defaultdict", "OrderedDict", "Counter"}


def _is_mutable_literal(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set,
                         ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else \
            func.attr if isinstance(func, ast.Attribute) else None
        return name in _MUTABLE_CONSTRUCTORS
    return False


def _is_open_call(node: ast.AST) -> bool:
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "open")


class _ModuleScan:
    """Module-level bindings and pool-target function names."""

    def __init__(self, tree: ast.Module):
        self.functions: Dict[str, ast.FunctionDef] = {}
        self.mutable_globals: Set[str] = set()
        self.open_handles: Set[str] = set()
        self.worker_names: Set[str] = set()
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions[stmt.name] = stmt
            elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                value = stmt.value
                targets = stmt.targets if isinstance(stmt, ast.Assign) \
                    else [stmt.target]
                names = [t.id for t in targets if isinstance(t, ast.Name)]
                if value is not None and _is_mutable_literal(value):
                    self.mutable_globals.update(names)
                if value is not None and _is_open_call(value):
                    self.open_handles.update(names)
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                self._scan_dispatch(node)

    def _scan_dispatch(self, call: ast.Call) -> None:
        func = call.func
        if isinstance(func, ast.Attribute) and func.attr in _POOL_METHODS:
            if call.args and isinstance(call.args[0], ast.Name):
                self.worker_names.add(call.args[0].id)
        name = func.id if isinstance(func, ast.Name) else \
            func.attr if isinstance(func, ast.Attribute) else None
        if name in _TARGET_CONSTRUCTORS:
            for keyword in call.keywords:
                if keyword.arg == "target" and isinstance(keyword.value, ast.Name):
                    self.worker_names.add(keyword.value.id)


def _locally_bound(fn: ast.FunctionDef) -> Set[str]:
    """Names the function binds itself (params, assignments, loops, withs)."""
    bound: Set[str] = set()
    args = fn.args
    for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
        bound.add(arg.arg)
    if args.vararg:
        bound.add(args.vararg.arg)
    if args.kwarg:
        bound.add(args.kwarg.arg)
    for node in ast.walk(fn):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            bound.add(node.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)) and node is not fn:
            bound.add(node.name)
    return bound


class _WorkerRule(LintRule):
    """Shared driver: locate workers once, dispatch to ``check_worker``."""

    def run(self):
        scan = _ModuleScan(self.ctx.tree)
        for name in sorted(scan.worker_names):
            fn = scan.functions.get(name)
            if fn is not None:
                self.check_worker(fn, scan)
        return self.findings

    def check_worker(self, fn: ast.FunctionDef, scan: _ModuleScan) -> None:
        raise NotImplementedError


@register
class WorkerGlobalStatement(_WorkerRule):
    """``global`` inside a pool-target function."""

    code = "PAR401"
    name = "worker-global-stmt"
    rationale = (
        "a worker's module state is a per-process copy: rebinding a global "
        "in a worker takes effect only in that fork, so results depend on "
        "which worker ran what. Pass state in and return results out."
    )

    def check_worker(self, fn: ast.FunctionDef, scan: _ModuleScan) -> None:
        for node in ast.walk(fn):
            if isinstance(node, ast.Global):
                names = ", ".join(node.names)
                self.report(node, f"worker {fn.name}() declares global "
                                  f"{names}; workers must not rebind module "
                                  "state (pass it as a parameter)")


@register
class WorkerMutableGlobal(_WorkerRule):
    """Pool-target function touching a module-level mutable container."""

    code = "PAR402"
    name = "worker-mutable-global"
    rationale = (
        "a module-level list/dict/set read or mutated in a worker is a "
        "different object in every process: forked copies go stale and "
        "mutations are lost, so output depends on worker scheduling."
    )

    def check_worker(self, fn: ast.FunctionDef, scan: _ModuleScan) -> None:
        shadowed = _locally_bound(fn)
        reported: Set[str] = set()
        for node in ast.walk(fn):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load) \
                    and node.id in scan.mutable_globals \
                    and node.id not in shadowed and node.id not in reported:
                reported.add(node.id)
                self.report(node, f"worker {fn.name}() uses module-level "
                                  f"mutable {node.id}; each pool process has "
                                  "its own copy -- pass it as a parameter")


@register
class WorkerOpenHandle(_WorkerRule):
    """Pool-target function using a module-level open file handle."""

    code = "PAR403"
    name = "worker-open-handle"
    rationale = (
        "an open file handle inherited across fork shares one descriptor "
        "and offset between processes: concurrent reads/writes interleave "
        "nondeterministically. Open files inside the worker instead."
    )

    def check_worker(self, fn: ast.FunctionDef, scan: _ModuleScan) -> None:
        shadowed = _locally_bound(fn)
        reported: Set[str] = set()
        for node in ast.walk(fn):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load) \
                    and node.id in scan.open_handles \
                    and node.id not in shadowed and node.id not in reported:
                reported.add(node.id)
                self.report(node, f"worker {fn.name}() captures open file "
                                  f"handle {node.id}; open the file inside "
                                  "the worker to get a private offset")
