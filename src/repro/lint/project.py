"""Project-wide summary index and call graph for the dataflow rules.

Layer 1 of the analyzer: one pass over every file in the lint run
builds a :class:`ModuleSummary` per module -- which functions it
defines, which accept or return RNG objects (``Generator`` /
``SeedSequence``), which call into ``repro.core.kernels``, which
callables it hands to pool dispatch -- and a :class:`ProjectIndex`
links the summaries into a call graph.  The index answers the one
cross-file question the intraprocedural rules cannot: *does this
function run inside a pool worker?*  A function is a worker when its
name is dispatched to a pool anywhere in the project (``pool.map``,
``kernels.pool_map``, ``Process(target=...)``) or is reachable from a
dispatched function through project-internal calls.

Summaries are cached on file mtimes at module level, so repeated lint
runs in one process (the test suite, a watch loop) re-parse only files
that changed.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

__all__ = ["FunctionSummary", "ModuleSummary", "ProjectIndex",
           "POOL_DISPATCH_METHODS", "KERNEL_POOL_FUNCS"]

#: Executor/pool methods whose first argument is a dispatched callable.
POOL_DISPATCH_METHODS = frozenset(
    {"submit", "map", "imap", "imap_unordered", "starmap", "apply",
     "apply_async"})

#: Kernel-layer fan-out entry points (callable is the first argument).
KERNEL_POOL_FUNCS = frozenset({"pool_map", "pool_map_windowed"})

_PROCESS_CONSTRUCTORS = frozenset({"Process", "Thread"})

#: Annotation leaf names marking a parameter/return as an RNG object.
_RNG_ANNOTATIONS = frozenset({"Generator", "SeedSequence", "BitGenerator"})

#: Parameter-name heuristics for untyped RNG parameters (repo idiom).
_RNG_PARAM_NAMES = frozenset({"rng", "rngs", "seed_seq", "seed_sequence",
                              "generator"})


@dataclass(frozen=True)
class FunctionSummary:
    """What one function looks like from the outside."""

    qualname: str
    lineno: int
    rng_params: Tuple[str, ...] = ()
    returns_rng: bool = False
    calls: Tuple[str, ...] = ()          # local or dotted callee names
    kernel_calls: Tuple[str, ...] = ()   # repro.core.kernels entry points
    dispatches: Tuple[str, ...] = ()     # callables handed to pool dispatch


@dataclass(frozen=True)
class ModuleSummary:
    """Per-file index entry; everything the cross-file layer needs."""

    path: str                        # display (root-relative posix) path
    module: str                      # dotted module name ('' if unknown)
    functions: Tuple[FunctionSummary, ...] = ()
    dispatches: Tuple[str, ...] = ()  # module-level pool-dispatched names
    imports: Tuple[Tuple[str, str], ...] = ()  # local name -> dotted target

    def function(self, qualname: str) -> Optional[FunctionSummary]:
        for fn in self.functions:
            if fn.qualname == qualname:
                return fn
        return None


#: abs path -> (mtime, ModuleSummary); the per-process mtime cache.
_SUMMARY_CACHE: Dict[str, Tuple[float, ModuleSummary]] = {}


def _module_name(rel_path: str) -> str:
    parts = rel_path.replace("\\", "/").split("/")
    if parts and parts[0] in ("src", "lib"):
        parts = parts[1:]
    if not parts or not parts[-1].endswith(".py"):
        return ""
    parts[-1] = parts[-1][:-3]
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _import_map(tree: ast.Module) -> Dict[str, str]:
    imports: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                imports[alias.asname or alias.name.split(".", 1)[0]] = alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module is None:
                continue
            for alias in node.names:
                if alias.name != "*":
                    local = alias.asname or alias.name
                    imports[local] = f"{node.module}.{alias.name}"
    return imports


def _annotation_is_rng(annotation: Optional[ast.expr]) -> bool:
    if annotation is None:
        return False
    for node in ast.walk(annotation):
        if isinstance(node, ast.Name) and node.id in _RNG_ANNOTATIONS:
            return True
        if isinstance(node, ast.Attribute) and node.attr in _RNG_ANNOTATIONS:
            return True
        if isinstance(node, ast.Constant) and isinstance(node.value, str) \
                and any(mark in node.value for mark in _RNG_ANNOTATIONS):
            return True
    return False


def _callee_name(func: ast.expr) -> Optional[str]:
    """Dotted name of a call target as written (no import resolution)."""
    parts: List[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _dispatched_callable(call: ast.Call,
                         imports: Dict[str, str]) -> Optional[str]:
    """Name of the callable this call hands to a pool, if any."""
    func = call.func
    leaf = func.attr if isinstance(func, ast.Attribute) else \
        func.id if isinstance(func, ast.Name) else None
    if leaf in POOL_DISPATCH_METHODS or leaf in KERNEL_POOL_FUNCS:
        if call.args and isinstance(call.args[0], ast.Name):
            return call.args[0].id
    if leaf in _PROCESS_CONSTRUCTORS:
        for kw in call.keywords:
            if kw.arg == "target" and isinstance(kw.value, ast.Name):
                return kw.value.id
    return None


def _summarize_function(fn, qualname: str,
                        imports: Dict[str, str]) -> FunctionSummary:
    rng_params = []
    args = fn.args
    for arg in (*getattr(args, "posonlyargs", ()), *args.args, *args.kwonlyargs):
        if _annotation_is_rng(arg.annotation) or arg.arg in _RNG_PARAM_NAMES:
            rng_params.append(arg.arg)
    returns_rng = _annotation_is_rng(fn.returns)

    calls: Set[str] = set()
    kernel_calls: Set[str] = set()
    dispatches: Set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Call):
            written = _callee_name(node.func)
            if written is not None:
                root, _, rest = written.partition(".")
                resolved = imports.get(root)
                dotted = f"{resolved}.{rest}" if resolved and rest else \
                    resolved if resolved else written
                calls.add(dotted)
                if "repro.core.kernels" in dotted or (
                        resolved is None
                        and written.split(".")[-1] in KERNEL_POOL_FUNCS):
                    kernel_calls.add(dotted)
            target = _dispatched_callable(node, imports)
            if target is not None:
                dispatches.add(target)
        elif isinstance(node, ast.Return) and node.value is not None:
            value = node.value
            if isinstance(value, ast.Call):
                written = _callee_name(value.func)
                if written and written.split(".")[-1] in ("default_rng",
                                                          "Generator"):
                    returns_rng = True
    return FunctionSummary(
        qualname=qualname,
        lineno=fn.lineno,
        rng_params=tuple(rng_params),
        returns_rng=returns_rng,
        calls=tuple(sorted(calls)),
        kernel_calls=tuple(sorted(kernel_calls)),
        dispatches=tuple(sorted(dispatches)),
    )


def summarize_module(tree: ast.Module, rel_path: str) -> ModuleSummary:
    """Build one module's summary from its parsed tree."""
    imports = _import_map(tree)
    functions: List[FunctionSummary] = []

    def walk_functions(body, prefix: str) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{stmt.name}"
                functions.append(_summarize_function(stmt, qualname, imports))
                walk_functions(stmt.body, f"{qualname}.")
            elif isinstance(stmt, ast.ClassDef):
                walk_functions(stmt.body, f"{prefix}{stmt.name}.")

    walk_functions(tree.body, "")

    dispatches: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            target = _dispatched_callable(node, imports)
            if target is not None:
                dispatches.add(target)
    return ModuleSummary(
        path=rel_path.replace("\\", "/"),
        module=_module_name(rel_path),
        functions=tuple(functions),
        dispatches=tuple(sorted(dispatches)),
        imports=tuple(sorted(imports.items())),
    )


class ProjectIndex:
    """Summaries for every file in a lint run, linked into a call graph."""

    def __init__(self, summaries: Sequence[ModuleSummary]):
        self.summaries: Dict[str, ModuleSummary] = {
            s.path: s for s in summaries
        }
        self._by_module: Dict[str, ModuleSummary] = {
            s.module: s for s in summaries if s.module
        }
        self._workers: Set[Tuple[str, str]] = set()
        self._link()

    # -- construction --------------------------------------------------------

    @classmethod
    def build(cls, files: Sequence[Tuple[Path, str]]) -> "ProjectIndex":
        """Index ``(absolute path, display path)`` pairs, mtime-cached."""
        summaries: List[ModuleSummary] = []
        for abs_path, rel in files:
            key = str(abs_path)
            try:
                mtime = Path(abs_path).stat().st_mtime
            except OSError:
                continue
            cached = _SUMMARY_CACHE.get(key)
            if cached is not None and cached[0] == mtime \
                    and cached[1].path == rel.replace("\\", "/"):
                summaries.append(cached[1])
                continue
            try:
                source = Path(abs_path).read_text(encoding="utf-8",
                                                  errors="replace")
                tree = ast.parse(source, filename=str(abs_path))
            except (OSError, SyntaxError):
                continue
            summary = summarize_module(tree, rel)
            _SUMMARY_CACHE[key] = (mtime, summary)
            summaries.append(summary)
        return cls(summaries)

    def _resolve(self, summary: ModuleSummary,
                 callee: str) -> Optional[Tuple[str, str]]:
        """(path, qualname) of a callee named from ``summary``'s module."""
        if "." not in callee:
            if any(fn.qualname == callee for fn in summary.functions):
                return (summary.path, callee)
            imports = dict(summary.imports)
            dotted = imports.get(callee)
            if dotted is None:
                return None
            callee = dotted
        # Longest dotted prefix that names a project module wins.
        parts = callee.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:cut])
            target = self._by_module.get(module)
            if target is not None:
                qualname = ".".join(parts[cut:])
                if target.function(qualname) is not None:
                    return (target.path, qualname)
                return None
        return None

    def _link(self) -> None:
        roots: Set[Tuple[str, str]] = set()
        for summary in self.summaries.values():
            dispatched = set(summary.dispatches)
            for fn in summary.functions:
                dispatched.update(fn.dispatches)
            for name in dispatched:
                resolved = self._resolve(summary, name)
                if resolved is not None:
                    roots.add(resolved)
        # Transitive closure over project-internal calls.
        frontier = list(roots)
        workers = set(roots)
        while frontier:
            path, qualname = frontier.pop()
            summary = self.summaries.get(path)
            fn = summary.function(qualname) if summary else None
            if fn is None:
                continue
            for callee in fn.calls:
                resolved = self._resolve(summary, callee)
                if resolved is not None and resolved not in workers:
                    workers.add(resolved)
                    frontier.append(resolved)
        self._workers = workers

    # -- queries -------------------------------------------------------------

    def is_worker(self, path: str, qualname: str) -> bool:
        """Does this function run inside a pool worker (transitively)?"""
        return (path.replace("\\", "/"), qualname) in self._workers

    def worker_functions(self) -> List[Tuple[str, str]]:
        return sorted(self._workers)

    def module_for(self, path: str) -> Optional[ModuleSummary]:
        return self.summaries.get(path.replace("\\", "/"))

    def rng_returning_functions(self) -> List[Tuple[str, str]]:
        """(path, qualname) of functions whose result is an RNG object."""
        out = []
        for summary in self.summaries.values():
            for fn in summary.functions:
                if fn.returns_rng:
                    out.append((summary.path, fn.qualname))
        return sorted(out)
