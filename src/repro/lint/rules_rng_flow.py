"""RNG stream-provenance rules (RNG7xx) -- the dataflow rule family.

The syntactic DET1xx rules prove every generator is *seeded*; these
rules prove the seeded streams are *used* the way the sharding
contract assumes.  Trace identity rests on a spawn layout: one
``SeedSequence`` per run, one spawned child per shard, one
``Generator`` per child, and a shard's draw sequence depending only on
its own stream.  All three rules run on the def-use chains from
:mod:`.cfg`:

* ``RNG701`` -- one spawned stream consumed by two derivations that
  can both execute in a run.  Two generators built from the same child
  produce *identical* draws: "independent" shards silently correlate.
* ``RNG702`` -- a generator captured by a closure/lambda handed to
  pool dispatch.  Fork ships a copy of the generator's state to every
  worker (identical streams), and parent draws after the capture
  diverge from what the workers saw.
* ``RNG703`` -- inside a pool-worker function (per the project call
  graph, or module-local dispatch when no index is available), a
  branch whose condition derives from one stream's draws gating draws
  from a *different* stream.  The second stream's cursor then depends
  on the first stream's values, so shard merges stop being
  jobs-invariant.  Same-stream rejection loops are sanctioned: they
  replay identically from the stream itself.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from .cfg import Definition, FunctionDataflow, free_loads
from .framework import FileContext, LintRule, register
from .project import (
    KERNEL_POOL_FUNCS,
    POOL_DISPATCH_METHODS,
    summarize_module,
)

__all__ = ["SpawnedStreamReuse", "RngCapturedByPoolClosure",
           "CrossStreamDataDependentDraw"]

#: Generator attributes that are not draws (no stream advance).
_NON_DRAW_ATTRS = frozenset({"spawn", "bit_generator", "state"})

#: Parameter names treated as RNG objects when unannotated (repo idiom).
_RNG_PARAM_NAMES = frozenset({"rng", "rngs", "seed_seq", "seed_sequence",
                              "generator"})

_RNG_ANNOTATIONS = frozenset({"Generator", "SeedSequence", "BitGenerator"})


def _is_spawn_call(node: ast.AST, ctx: FileContext) -> bool:
    """``x.spawn(...)`` / ``spawn_shard_streams(...)`` / qualified forms."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr == "spawn":
        return True
    qualified = ctx.qualified(func)
    if qualified and qualified.rsplit(".", 1)[-1] == "spawn_shard_streams":
        return True
    return isinstance(func, ast.Name) and func.id == "spawn_shard_streams"


def _all_def_names(df: FunctionDataflow) -> List[str]:
    names: Set[str] = set()
    for event in df.cfg.events:
        for definition in event.defs:
            names.add(definition.name)
    return sorted(names)


def _annotation_is_rng(annotation: Optional[ast.expr]) -> bool:
    if annotation is None:
        return False
    return any(
        (isinstance(node, ast.Name) and node.id in _RNG_ANNOTATIONS)
        or (isinstance(node, ast.Attribute) and node.attr in _RNG_ANNOTATIONS)
        for node in ast.walk(annotation)
    )


def _definition_is_rng(definition: Definition, ctx: FileContext) -> bool:
    if definition.is_param:
        node = definition.node
        annotation = getattr(node, "annotation", None)
        return _annotation_is_rng(annotation) or \
            definition.name in _RNG_PARAM_NAMES
    value = definition.value
    if value is None:
        return False
    if definition.is_loop_target:
        # for rng in rngs / for stream in ss.spawn(n)
        return _is_spawn_call(value, ctx)
    if isinstance(value, ast.Call):
        qualified = ctx.qualified(value.func)
        if qualified in ("numpy.random.default_rng", "numpy.random.Generator"):
            return True
        if isinstance(value.func, ast.Name) and \
                value.func.id in ("default_rng", "Generator"):
            return True
        if ctx.project is not None:
            # Cross-file: a call to a function the summary index knows
            # returns an RNG object binds an RNG here too.
            leaf = qualified.rsplit(".", 1)[-1] if qualified else None
            for path, qualname in ctx.project.rng_returning_functions():
                if leaf == qualname or (
                        isinstance(value.func, ast.Name)
                        and value.func.id == qualname
                        and path == ctx.path.replace("\\", "/")):
                    return True
    return False


def _draw_calls_on(fn: ast.AST, names: Set[str]) -> List[ast.Call]:
    """Calls that advance a generator bound to one of ``names``."""
    draws = []
    for node in ast.walk(fn):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            receiver = node.func.value
            if isinstance(receiver, ast.Name) and receiver.id in names \
                    and node.func.attr not in _NON_DRAW_ATTRS:
                draws.append(node)
    return draws


@register
class SpawnedStreamReuse(LintRule):
    """One spawned SeedSequence child consumed on two co-firing paths."""

    code = "RNG701"
    name = "spawned-stream-reuse"
    rationale = (
        "a SeedSequence child defines exactly one shard's entropy; two "
        "generators derived from the same child replay identical draws, so "
        "shards that claim independence are byte-for-byte correlated. Spawn "
        "one child per consumer."
    )

    def run(self):
        for _, fn in self.ctx.functions():
            self._check_function(fn)
        return self.findings

    def _check_function(self, fn) -> None:
        # Cheap pre-scan: no spawn in the function, no CFG to build.
        if not any(
            (isinstance(node, ast.Attribute) and node.attr == "spawn")
            or (isinstance(node, ast.Name) and
                node.id == "spawn_shard_streams")
            for node in ast.walk(fn)
        ):
            return
        df = self.ctx.dataflow(fn)
        for name in _all_def_names(df):
            for definition in df.definitions_of(name):
                self._check_definition(df, definition)

    def _check_definition(self, df: FunctionDataflow,
                          definition: Definition) -> None:
        value = definition.value
        if value is None:
            return
        if definition.is_loop_target and _is_spawn_call(value, self.ctx):
            # `for child in ss.spawn(n)`: the loop variable is one
            # stream; >1 consuming use per iteration is reuse.
            self._flag_reused_scalar(df, definition)
        elif isinstance(value, ast.Subscript) and \
                _is_spawn_call(value.value, self.ctx):
            self._flag_reused_scalar(df, definition)
        elif _is_spawn_call(value, self.ctx):
            self._flag_reused_index(df, definition)

    def _consuming_uses(self, df: FunctionDataflow,
                        definition: Definition) -> List[ast.Name]:
        """Uses passed to a call or drawn from (stream-consuming uses)."""
        consumed_ids: Set[int] = set()
        for node in ast.walk(df.fn):
            if isinstance(node, ast.Call):
                for arg in node.args:
                    if isinstance(arg, ast.Name):
                        consumed_ids.add(id(arg))
                for kw in node.keywords:
                    if isinstance(kw.value, ast.Name):
                        consumed_ids.add(id(kw.value))
                if isinstance(node.func, ast.Attribute) and \
                        isinstance(node.func.value, ast.Name) and \
                        node.func.attr not in ("spawn",):
                    consumed_ids.add(id(node.func.value))
        return [use for use in df.uses_of(definition)
                if id(use) in consumed_ids]

    def _flag_reused_scalar(self, df: FunctionDataflow,
                            definition: Definition) -> None:
        uses = self._consuming_uses(df, definition)
        for i in range(len(uses)):
            for j in range(i + 1, len(uses)):
                if df.can_cofire(definition, uses[i], uses[j]):
                    later = max(uses[i], uses[j], key=lambda u: (
                        getattr(u, "lineno", 0), getattr(u, "col_offset", 0)))
                    self.report(later, f"spawned stream {definition.name!r} "
                                       "is consumed more than once on one "
                                       "path; derive each generator from its "
                                       "own spawn() child")
                    return

    def _flag_reused_index(self, df: FunctionDataflow,
                           definition: Definition) -> None:
        """``streams = ss.spawn(n)`` then ``streams[0]`` consumed twice."""
        by_index: Dict[object, List[ast.Name]] = {}
        subscript_of: Dict[int, ast.Subscript] = {}
        for node in ast.walk(df.fn):
            if isinstance(node, ast.Subscript) and \
                    isinstance(node.value, ast.Name):
                subscript_of[id(node.value)] = node
        consumed: Set[int] = set()
        for node in ast.walk(df.fn):
            if isinstance(node, ast.Call):
                for arg in (*node.args, *(kw.value for kw in node.keywords)):
                    if isinstance(arg, ast.Subscript):
                        consumed.add(id(arg))
        for use in df.uses_of(definition):
            sub = subscript_of.get(id(use))
            if sub is None or id(sub) not in consumed:
                continue
            index = sub.slice
            if isinstance(index, ast.Constant):
                by_index.setdefault(index.value, []).append(use)
        for index, uses in sorted(by_index.items(), key=lambda kv: str(kv[0])):
            for i in range(len(uses)):
                for j in range(i + 1, len(uses)):
                    if df.can_cofire(definition, uses[i], uses[j]):
                        later = max(uses[i], uses[j], key=lambda u: (
                            getattr(u, "lineno", 0),
                            getattr(u, "col_offset", 0)))
                        self.report(later,
                                    f"{definition.name}[{index!r}] consumes "
                                    "the same spawned stream twice; each "
                                    "shard path needs its own child")
                        return


@register
class RngCapturedByPoolClosure(LintRule):
    """A Generator captured by a closure/lambda handed to pool dispatch."""

    code = "RNG702"
    name = "rng-captured-by-pool-closure"
    rationale = (
        "fork copies a captured generator's state into every worker, so all "
        "workers draw the same 'random' sequence and parent draws after the "
        "capture diverge from what workers replay. Spawn per-task streams "
        "and pass seeds as task arguments instead."
    )

    def run(self):
        for _, fn in self.ctx.functions():
            self._check_function(fn)
        return self.findings

    def _check_function(self, fn) -> None:
        # Cheap pre-scan: the rule needs a dispatch call AND a closure.
        leaves = set()
        has_closure = False
        for node in ast.walk(fn):
            if isinstance(node, ast.Call):
                func = node.func
                leaf = func.attr if isinstance(func, ast.Attribute) else \
                    func.id if isinstance(func, ast.Name) else None
                if leaf is not None:
                    leaves.add(leaf)
            elif isinstance(node, (ast.Lambda, ast.FunctionDef,
                                   ast.AsyncFunctionDef)) and node is not fn:
                has_closure = True
        if not has_closure or not (leaves & (POOL_DISPATCH_METHODS
                                             | KERNEL_POOL_FUNCS
                                             | {"Process", "Thread"})):
            return
        df = self.ctx.dataflow(fn)
        rng_names = {name for name in _all_def_names(df)
                     if any(_definition_is_rng(d, self.ctx)
                            for d in df.definitions_of(name))}
        if not rng_names:
            return
        nested: Dict[str, ast.AST] = {
            stmt.name: stmt for stmt in ast.walk(fn)
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            and stmt is not fn
        }
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            target = self._dispatch_target(node)
            if target is None:
                continue
            if isinstance(target, ast.Lambda):
                self._check_closure_loads(node, target,
                                          _lambda_free_loads(target),
                                          rng_names, df)
            elif isinstance(target, ast.Name) and target.id in nested:
                self._check_closure_loads(node, nested[target.id],
                                          free_loads(nested[target.id]),
                                          rng_names, df)

    def _dispatch_target(self, call: ast.Call) -> Optional[ast.expr]:
        func = call.func
        leaf = func.attr if isinstance(func, ast.Attribute) else \
            func.id if isinstance(func, ast.Name) else None
        if leaf in POOL_DISPATCH_METHODS or leaf in KERNEL_POOL_FUNCS:
            if call.args:
                return call.args[0]
        if leaf in ("Process", "Thread"):
            for kw in call.keywords:
                if kw.arg == "target":
                    return kw.value
        return None

    def _check_closure_loads(self, dispatch: ast.Call, closure: ast.AST,
                             loads: List[ast.Name], rng_names: Set[str],
                             df: FunctionDataflow) -> None:
        for load in loads:
            if load.id in rng_names:
                self.report(dispatch,
                            f"closure submitted to the pool captures "
                            f"generator {load.id!r}; every forked worker "
                            "inherits the same stream state -- pass spawned "
                            "seeds as task arguments")
                return


def _lambda_free_loads(lam: ast.Lambda) -> List[ast.Name]:
    args = lam.args
    bound = {a.arg for a in (*getattr(args, "posonlyargs", ()), *args.args,
                             *args.kwonlyargs)}
    for arg in (args.vararg, args.kwarg):
        if arg is not None:
            bound.add(arg.arg)
    return [node for node in ast.walk(lam.body)
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load)
            and node.id not in bound]


@register
class CrossStreamDataDependentDraw(LintRule):
    """In a pool worker, stream B's draws gated by stream A's values."""

    code = "RNG703"
    name = "cross-stream-data-dependent-draw"
    rationale = (
        "when a branch condition derives from one stream's draws and the "
        "branch body draws from another stream, the second stream's cursor "
        "depends on the first stream's values: replaying shards in a "
        "different worker layout re-aligns the draws and the merge stops "
        "being jobs-invariant. Same-stream rejection loops are fine -- they "
        "replay identically from the stream itself."
    )

    def run(self):
        worker_qualnames = self._worker_qualnames()
        for qualname, fn in self.ctx.functions():
            if qualname in worker_qualnames:
                self._check_worker(fn)
        return self.findings

    def _worker_qualnames(self) -> Set[str]:
        """Functions in this file that run inside pool workers."""
        path = self.ctx.path.replace("\\", "/")
        if self.ctx.project is not None:
            return {qualname for p, qualname
                    in self.ctx.project.worker_functions() if p == path}
        # No cross-file index (single-file check_source): fall back to
        # module-local dispatch sites, without transitive closure.
        summary = summarize_module(self.ctx.tree, self.ctx.path)
        dispatched: Set[str] = set(summary.dispatches)
        for fn in summary.functions:
            dispatched.update(fn.dispatches)
        return {fn.qualname for fn in summary.functions
                if fn.qualname in dispatched
                or fn.qualname.split(".")[-1] in dispatched}

    def _check_worker(self, fn) -> None:
        df = self.ctx.dataflow(fn)
        rng_names = sorted({
            name for name in _all_def_names(df)
            if any(_definition_is_rng(d, self.ctx)
                   for d in df.definitions_of(name))
        })
        if len(rng_names) < 2:
            return  # cross-stream interleave needs two streams

        def draws_on(name: str):
            def is_seed(expr: ast.expr) -> bool:
                return (isinstance(expr, ast.Call)
                        and isinstance(expr.func, ast.Attribute)
                        and isinstance(expr.func.value, ast.Name)
                        and expr.func.value.id == name
                        and expr.func.attr not in _NON_DRAW_ATTRS)
            return is_seed

        branches = [node for node in ast.walk(fn)
                    if isinstance(node, (ast.If, ast.While))]
        for source in rng_names:
            is_seed = draws_on(source)
            tainted = df.tainted_loads(is_seed)
            for branch in branches:
                if not df.expr_is_tainted(branch.test, tainted, is_seed):
                    continue
                others = {n for n in rng_names if n != source}
                body = list(branch.body) + list(getattr(branch, "orelse", []))
                for stmt in body:
                    for draw in _draw_calls_on(stmt, others):
                        self.report(draw,
                                    f"draw from {draw.func.value.id!r} is "
                                    f"gated by values drawn from {source!r}; "
                                    "cross-stream data-dependent draws break "
                                    "jobs-invariant shard replay (derive the "
                                    "branch from config, or draw from the "
                                    "same stream)")
                        return