"""Hash-order and filesystem-order hazard rules (DET3xx).

String hashing is salted per process (PYTHONHASHSEED), so iterating a
``set`` yields a different order in every run -- and in every pool
worker.  Any set iteration that feeds trace, cache, or report output
therefore needs an explicit ``sorted(...)``.  The same applies to
directory listings: ``os.listdir``/``Path.glob`` order is whatever the
filesystem returns.

Detection is syntactic and conservative: only expressions that are
*provably* sets (literals, ``set()``/``frozenset()`` calls, set
comprehensions, set-operator results) or direct listing calls are
flagged, so a ``for x in some_iterable`` over a set-typed variable
passes.  The rules catch the pattern at the moment it is written, not
every possible aliasing of it.
"""

from __future__ import annotations

import ast
from typing import Set

from .framework import LintRule, register

__all__ = ["SetIteration", "UnsortedDirListing"]

#: Methods returning a new set when called on one.
_SET_METHODS = {"union", "intersection", "difference", "symmetric_difference"}

#: Builtins whose result depends on iteration order of their argument.
_ORDER_SENSITIVE_BUILTINS = {"list", "tuple", "enumerate", "iter", "next"}

_DIR_LISTING_CALLS = {"os.listdir", "os.scandir", "glob.glob", "glob.iglob"}
_DIR_LISTING_METHODS = {"glob", "rglob", "iterdir"}


def _is_set_expr(node: ast.AST) -> bool:
    """True for expressions that statically evaluate to a set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return True
        if isinstance(func, ast.Attribute) and func.attr in _SET_METHODS \
                and _is_set_expr(func.value):
            return True
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


@register
class SetIteration(LintRule):
    """Iterating a set expression without ``sorted(...)``."""

    code = "DET301"
    name = "set-iteration"
    rationale = (
        "set order follows the per-process string hash salt: the same data "
        "iterates differently in every run and every pool worker, so any "
        "set feeding output must go through sorted(...) first."
    )

    _MESSAGE = ("iteration over a set is hash-order-dependent; wrap it in "
                "sorted(...) (or justify with noqa if order provably "
                "cannot reach output)")

    def visit_For(self, node: ast.For) -> None:
        if _is_set_expr(node.iter):
            self.report(node.iter, self._MESSAGE)
        self.generic_visit(node)

    def _check_comprehension(self, node) -> None:
        for comp in node.generators:
            if _is_set_expr(comp.iter):
                self.report(comp.iter, self._MESSAGE)
        self.generic_visit(node)

    visit_ListComp = _check_comprehension
    visit_SetComp = _check_comprehension
    visit_DictComp = _check_comprehension
    visit_GeneratorExp = _check_comprehension

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        # list(set(...)), enumerate(set(...)), iter(set(...)): the result
        # inherits hash order.  Order-insensitive reducers (sum, max, any)
        # are deliberately not flagged.
        if isinstance(func, ast.Name) and func.id in _ORDER_SENSITIVE_BUILTINS:
            if node.args and _is_set_expr(node.args[0]):
                self.report(node.args[0], self._MESSAGE)
        # ", ".join(set(...)) serializes in hash order.
        if isinstance(func, ast.Attribute) and func.attr == "join" \
                and node.args and _is_set_expr(node.args[0]):
            self.report(node.args[0], self._MESSAGE)
        self.generic_visit(node)


@register
class UnsortedDirListing(LintRule):
    """Directory listings consumed without ``sorted(...)``."""

    code = "DET302"
    name = "unsorted-dir-listing"
    rationale = (
        "os.listdir/Path.glob return entries in filesystem order, which "
        "varies across hosts and over time; cache scans and report inputs "
        "must sort listings before use."
    )

    def __init__(self, ctx):
        super().__init__(ctx)
        self._sorted_args: Set[int] = set()

    def _is_listing_call(self, node: ast.Call) -> bool:
        qualified = self.ctx.qualified(node.func)
        if qualified in _DIR_LISTING_CALLS:
            return True
        return (isinstance(node.func, ast.Attribute)
                and node.func.attr in _DIR_LISTING_METHODS
                and qualified is None)  # method on a Path-like object

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name) and func.id == "sorted" and node.args:
            # A listing passed directly to sorted(...) is the sanctioned form.
            self._sorted_args.add(id(node.args[0]))
        if self._is_listing_call(node) and id(node) not in self._sorted_args:
            label = self.ctx.qualified(func) or f"*.{func.attr}(...)"
            self.report(node, f"{label} returns entries in filesystem "
                              "order; wrap the listing in sorted(...)")
        self.generic_visit(node)
