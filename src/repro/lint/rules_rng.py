"""RNG discipline rules (DET1xx).

Reproducible synthesis means every random draw is traceable to the
config seed: shard streams are spawned from one ``SeedSequence``
(synthesizer PR 1) and RNG objects are threaded down as parameters.
An unseeded generator, a legacy ``np.random.*`` module-state call, or
the process-global ``random`` stdlib each break byte-reproducibility
and -- because module state is copied on fork -- can hand every pool
worker an identical stream, silently correlating "independent" shards.
"""

from __future__ import annotations

import ast

from .framework import LintRule, register

__all__ = ["UnseededDefaultRng", "LegacyNumpyRandom", "StdlibRandom"]

#: numpy.random attributes that are part of the reproducible new-style
#: API; everything else on the module is legacy global/ad-hoc state.
_SANCTIONED_NP_RANDOM = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
}


def _has_seed(call: ast.Call) -> bool:
    """True when the default_rng()/Generator call pins its entropy."""
    if call.keywords:
        return True
    if not call.args:
        return False
    first = call.args[0]
    return not (isinstance(first, ast.Constant) and first.value is None)


@register
class UnseededDefaultRng(LintRule):
    """``np.random.default_rng()`` with no seed draws OS entropy."""

    code = "DET101"
    name = "unseeded-default-rng"
    rationale = (
        "default_rng() without a seed pulls OS entropy, so two runs of the "
        "same (config, seed) diverge; seed it or thread an rng parameter."
    )

    def visit_Call(self, node: ast.Call) -> None:
        if self.ctx.qualified(node.func) == "numpy.random.default_rng" \
                and not _has_seed(node):
            self.report(node, "np.random.default_rng() without a seed; pass a "
                              "seed/SeedSequence or accept an rng parameter")
        self.generic_visit(node)


@register
class LegacyNumpyRandom(LintRule):
    """Legacy ``np.random.*`` module-state API (rand, seed, choice...)."""

    code = "DET102"
    name = "legacy-np-random"
    rationale = (
        "np.random module functions share one hidden global RandomState: "
        "call order anywhere in the process changes every draw, and forked "
        "workers inherit identical state. Use a threaded np.random.Generator."
    )

    def visit_Call(self, node: ast.Call) -> None:
        qualified = self.ctx.qualified(node.func)
        if qualified and qualified.startswith("numpy.random."):
            leaf = qualified.rsplit(".", 1)[1]
            if leaf not in _SANCTIONED_NP_RANDOM:
                self.report(node, f"legacy np.random.{leaf}() uses hidden "
                                  "global state; use a threaded "
                                  "np.random.Generator instead")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "numpy.random" and not node.level:
            for alias in node.names:
                if alias.name != "*" and alias.name not in _SANCTIONED_NP_RANDOM:
                    self.report(node, f"importing legacy numpy.random."
                                      f"{alias.name}; use the Generator API")
        self.generic_visit(node)


@register
class StdlibRandom(LintRule):
    """The ``random`` stdlib module is banned outright in repro code."""

    code = "DET103"
    name = "stdlib-random"
    rationale = (
        "random.* is one process-global Mersenne Twister: any library call "
        "that touches it perturbs every later draw, and its state cannot be "
        "sharded with SeedSequence streams. Use numpy Generators."
    )

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "random" or alias.name.startswith("random."):
                self.report(node, "stdlib random is process-global and "
                                  "unshardable; use a seeded numpy Generator")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random" and not node.level:
            self.report(node, "stdlib random is process-global and "
                              "unshardable; use a seeded numpy Generator")
        self.generic_visit(node)
