"""Lint configuration: pyproject section, per-path allowances, baseline.

Repo policy lives in ``[tool.repro-lint]`` in ``pyproject.toml``::

    [tool.repro-lint]
    select = []                      # empty = every registered rule
    ignore = []
    exclude = ["tests/lint/fixtures/*"]
    baseline = "lint-baseline.json"

    [tool.repro-lint.per-path-allow]
    "src/repro/cli.py" = ["DET201"]  # wall clock ok in entry points

``per-path-allow`` grants codes to paths matched by ``fnmatch`` glob
patterns (posix-style relative paths) -- the sanctioned mechanism for
"this module is an entry point, wall-clock reads are its job".  The
baseline file instead records *debt*: per (path, code) budgets of
findings tolerated until someone fixes them.  This repo commits an
empty baseline so CI starts strict.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from fnmatch import fnmatch
from pathlib import Path
from typing import Dict, Mapping, Optional, Sequence, Tuple, Union

try:  # Python 3.11+
    import tomllib
except ImportError:  # pragma: no cover - exercised only on 3.9/3.10
    tomllib = None  # type: ignore[assignment]

__all__ = [
    "LintConfig",
    "find_project_root",
    "load_config",
    "load_baseline",
    "BaselineBudget",
]

PYPROJECT_SECTION = "repro-lint"

#: (path, code) -> remaining tolerated findings.
BaselineBudget = Dict[Tuple[str, str], int]


@dataclass(frozen=True)
class LintConfig:
    """Effective rule-set selection and suppression policy for a run."""

    select: Tuple[str, ...] = ()
    ignore: Tuple[str, ...] = ()
    exclude: Tuple[str, ...] = ()
    per_path_allow: Tuple[Tuple[str, Tuple[str, ...]], ...] = ()
    baseline: Optional[str] = "lint-baseline.json"

    def enabled(self, code: str) -> bool:
        """Select/ignore entries match whole codes or prefixes.

        ``RNG7`` selects every RNG7xx rule; ``DET`` the whole DET
        family.  ``ignore`` wins over ``select`` when both match, so
        ``select=["RNG7"], ignore=["RNG703"]`` runs RNG701/702 only.
        """
        if self.select and not _matches(code, self.select):
            return False
        return not _matches(code, self.ignore)

    def excluded(self, rel_path: str) -> bool:
        path = _posix(rel_path)
        return any(fnmatch(path, pattern) for pattern in self.exclude)

    def allowed_codes(self, rel_path: str) -> Tuple[str, ...]:
        """Codes granted to ``rel_path`` by per-path allowances."""
        path = _posix(rel_path)
        granted = []
        for pattern, codes in self.per_path_allow:
            if fnmatch(path, pattern):
                granted.extend(codes)
        return tuple(sorted(set(granted)))

    def with_overrides(
        self,
        select: Optional[Sequence[str]] = None,
        ignore: Optional[Sequence[str]] = None,
        baseline: Optional[str] = None,
    ) -> "LintConfig":
        """CLI-flag overrides layered on the pyproject configuration."""
        updated = self
        if select is not None:
            updated = replace(updated, select=tuple(select))
        if ignore is not None:
            updated = replace(updated, ignore=tuple(ignore))
        if baseline is not None:
            updated = replace(updated, baseline=baseline)
        return updated


def find_project_root(start: Union[str, Path, None] = None) -> Path:
    """Nearest ancestor directory containing ``pyproject.toml``.

    Falls back to ``start`` itself when no marker is found, so the
    linter still runs on loose files outside a project.
    """
    here = Path(start or Path.cwd()).resolve()
    if here.is_file():
        here = here.parent
    for candidate in (here, *here.parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return here


def load_config(root: Union[str, Path]) -> LintConfig:
    """The ``[tool.repro-lint]`` section of ``root``'s pyproject.toml.

    Missing file, missing section, or a Python without ``tomllib`` all
    yield the default config rather than failing the run.
    """
    pyproject = Path(root) / "pyproject.toml"
    if tomllib is None or not pyproject.is_file():
        return LintConfig()
    try:
        data = tomllib.loads(pyproject.read_text(encoding="utf-8"))
    except (OSError, tomllib.TOMLDecodeError):
        return LintConfig()
    section = data.get("tool", {}).get(PYPROJECT_SECTION, {})
    if not isinstance(section, Mapping):
        return LintConfig()
    allow = section.get("per-path-allow", {})
    per_path = tuple(sorted(
        (str(pattern), tuple(sorted(str(c).upper() for c in codes)))
        for pattern, codes in allow.items()
    )) if isinstance(allow, Mapping) else ()
    return LintConfig(
        select=_codes(section.get("select")),
        ignore=_codes(section.get("ignore")),
        exclude=tuple(str(p) for p in section.get("exclude", ())),
        per_path_allow=per_path,
        baseline=section.get("baseline", "lint-baseline.json") or None,
    )


def load_baseline(path: Union[str, Path]) -> BaselineBudget:
    """Baseline entries as a (path, code) -> count budget.

    The file format is ``{"version": 1, "entries": [{"path": ...,
    "code": ..., "count": N}, ...]}``; a missing file is an empty
    budget (strict), a malformed one raises so CI notices.
    """
    path = Path(path)
    if not path.is_file():
        return {}
    data = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(data, dict) or "entries" not in data:
        raise ValueError(f"malformed baseline file {path}: expected "
                         "an object with an 'entries' list")
    budget: BaselineBudget = {}
    for entry in data["entries"]:
        key = (_posix(str(entry["path"])), str(entry["code"]).upper())
        budget[key] = budget.get(key, 0) + int(entry.get("count", 1))
    return budget


def _matches(code: str, entries: Sequence[str]) -> bool:
    """True when any entry equals ``code`` or is a prefix of it."""
    return any(code == entry or code.startswith(entry) for entry in entries)


def _codes(value) -> Tuple[str, ...]:
    if not value:
        return ()
    return tuple(sorted({str(c).upper() for c in value}))


def _posix(path: str) -> str:
    return path.replace("\\", "/")
