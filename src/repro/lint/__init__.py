"""repro.lint: AST-based determinism and parallel-safety linter.

The repo's load-bearing claims -- byte-reproducible synthesis for a
fixed (config, seed, shard layout), worker-count invariance, and
event-vs-columnar equivalence -- are invariants a single unseeded RNG
or hash-order-dependent loop silently breaks.  This package makes them
machine-checkable: a rule-registry framework (:mod:`.framework`) plus a
battery of determinism/parallel-safety rules (:mod:`.rules_rng`,
:mod:`.rules_wallclock`, :mod:`.rules_hashorder`, :mod:`.rules_worker`)
run over the tree by :mod:`.runner` and exposed as ``repro-p2p lint``.

Findings are suppressed three ways, in decreasing order of preference:

* fix the code;
* an inline ``# repro: noqa[CODE] -- justification`` comment;
* a baseline entry (``lint-baseline.json``) granting a (path, code)
  budget -- the escape hatch for legacy debt, kept empty in this repo.
"""

from __future__ import annotations

from .config import LintConfig, find_project_root, load_baseline, load_config
from .findings import Finding, Severity
from .framework import (
    FileContext,
    LintRule,
    all_rules,
    check_file,
    check_source,
    register,
    rule_for,
)
from .runner import (
    RULESET_VERSION,
    LintReport,
    format_json,
    format_text,
    iter_python_files,
    run_lint,
    write_baseline_file,
)

# Importing the rule modules registers every built-in rule.
from . import rules_rng  # noqa: F401  (import for side effect)
from . import rules_wallclock  # noqa: F401
from . import rules_hashorder  # noqa: F401
from . import rules_worker  # noqa: F401
from . import rules_memory  # noqa: F401
from . import rules_kernels  # noqa: F401

__all__ = [
    "Finding",
    "Severity",
    "LintRule",
    "LintConfig",
    "LintReport",
    "FileContext",
    "RULESET_VERSION",
    "all_rules",
    "rule_for",
    "register",
    "check_source",
    "check_file",
    "run_lint",
    "iter_python_files",
    "format_text",
    "format_json",
    "find_project_root",
    "load_config",
    "load_baseline",
    "write_baseline_file",
]
