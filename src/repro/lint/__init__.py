"""repro.lint: AST-based determinism and parallel-safety linter.

The repo's load-bearing claims -- byte-reproducible synthesis for a
fixed (config, seed, shard layout), worker-count invariance, and
event-vs-columnar equivalence -- are invariants a single unseeded RNG
or hash-order-dependent loop silently breaks.  This package makes them
machine-checkable with a two-layer analyzer: layer 1 is a project-wide
summary index and call graph (:mod:`.project`) built once per run and
cached on file mtimes; layer 2 is an intraprocedural dataflow framework
(:mod:`.cfg`: CFGs, reaching definitions, def-use chains) that the
per-file rules query through :class:`~.framework.FileContext`.  The
syntactic rule families (:mod:`.rules_rng`, :mod:`.rules_wallclock`,
:mod:`.rules_hashorder`, :mod:`.rules_worker`, :mod:`.rules_memory`,
:mod:`.rules_kernels`) need neither layer; the dataflow families
(:mod:`.rules_rng_flow` RNG7xx stream provenance, :mod:`.rules_dtype`
DTY8xx dtype/reduction-order contracts) use both; the suppression audit
(:mod:`.rules_suppression` NOQ901) runs as a post-pass over the
finished file.  Everything is run by :mod:`.runner` and exposed as
``repro-p2p lint``.

Findings are suppressed three ways, in decreasing order of preference:

* fix the code;
* an inline ``# repro: noqa[CODE] -- justification`` comment;
* a baseline entry (``lint-baseline.json``) granting a (path, code)
  budget -- the escape hatch for legacy debt, kept empty in this repo.
"""

from __future__ import annotations

from .config import LintConfig, find_project_root, load_baseline, load_config
from .findings import Finding, Severity
from .framework import (
    FileContext,
    LintRule,
    all_rules,
    check_file,
    check_source,
    register,
    rule_for,
)
from .project import ModuleSummary, ProjectIndex, summarize_module
from .runner import (
    RULESET_VERSION,
    LintReport,
    format_json,
    format_sarif,
    format_text,
    iter_python_files,
    run_lint,
    write_baseline_file,
)

# Importing the rule modules registers every built-in rule.
from . import rules_rng  # noqa: F401  (import for side effect)
from . import rules_wallclock  # noqa: F401
from . import rules_hashorder  # noqa: F401
from . import rules_worker  # noqa: F401
from . import rules_memory  # noqa: F401
from . import rules_kernels  # noqa: F401
from . import rules_rng_flow  # noqa: F401
from . import rules_dtype  # noqa: F401
from . import rules_suppression  # noqa: F401

__all__ = [
    "Finding",
    "Severity",
    "LintRule",
    "LintConfig",
    "LintReport",
    "FileContext",
    "RULESET_VERSION",
    "all_rules",
    "rule_for",
    "register",
    "check_source",
    "check_file",
    "run_lint",
    "iter_python_files",
    "format_text",
    "format_json",
    "format_sarif",
    "ModuleSummary",
    "ProjectIndex",
    "summarize_module",
    "find_project_root",
    "load_config",
    "load_baseline",
    "write_baseline_file",
]
