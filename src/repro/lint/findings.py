"""Finding record emitted by lint rules.

``Finding`` orders by (path, line, col, code): every consumer that
sorts findings -- the text formatter, the JSON output, the baseline
writer -- gets the same deterministic order, so CI diffs are stable
(the linter dogfoods its own hash-order rule).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Severity(str, enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings fail the lint run; ``WARNING`` findings are
    reported but do not affect the exit status.
    """

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location.

    Field order matters: dataclass ordering compares fields in
    declaration order, giving the canonical (path, line, col, code)
    sort used everywhere findings are emitted.
    """

    path: str
    line: int
    col: int
    code: str
    message: str
    severity: Severity = Severity.ERROR

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_json(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
            "severity": self.severity.value,
        }
