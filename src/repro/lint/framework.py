"""Rule-registry framework: visitor base class, registration, noqa.

A rule is an :class:`ast.NodeVisitor` subclass with a unique ``code``
(``DETnnn`` / ``PARnnn``), a human-readable ``name``, a ``rationale``
explaining which reproducibility claim it protects, and a severity.
Rules are registered with the :func:`register` decorator and run once
per file by :func:`check_source` against a shared :class:`FileContext`
that pre-resolves imports so rules can match fully qualified call names
(``numpy.random.default_rng``, ``time.time``) regardless of aliasing.

Suppression: a ``# repro: noqa[CODE1,CODE2]`` comment on the flagged
line silences those codes there; a bare ``# repro: noqa`` silences all
codes on the line.  Write the justification after the bracket, e.g.
``# repro: noqa[DET203] -- wire GUIDs need uniqueness, not replay``.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Type, Union

from .findings import Finding, Severity

__all__ = [
    "LintRule",
    "FileContext",
    "register",
    "all_rules",
    "rule_for",
    "check_source",
    "check_file",
    "SYNTAX_ERROR_CODE",
]

#: Pseudo-code reported when a target file does not parse.
SYNTAX_ERROR_CODE = "LNT001"

_CODE_RE = re.compile(r"^[A-Z]{3}\d{3}$")
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[([A-Za-z0-9_,\s]+)\])?")

_REGISTRY: Dict[str, Type["LintRule"]] = {}


def register(cls: Type["LintRule"]) -> Type["LintRule"]:
    """Class decorator adding a rule to the global registry."""
    code = getattr(cls, "code", "")
    if not _CODE_RE.match(code):
        raise ValueError(f"rule code {code!r} must match AAAnnn (e.g. DET101)")
    if code in _REGISTRY and _REGISTRY[code] is not cls:
        raise ValueError(f"duplicate rule code {code}: "
                         f"{_REGISTRY[code].__name__} vs {cls.__name__}")
    if not getattr(cls, "name", ""):
        raise ValueError(f"rule {code} needs a short kebab-case name")
    _REGISTRY[code] = cls
    return cls


def all_rules() -> List[Type["LintRule"]]:
    """Every registered rule, sorted by code (deterministic output order)."""
    return [cls for _, cls in sorted(_REGISTRY.items())]


def rule_for(code: str) -> Type["LintRule"]:
    return _REGISTRY[code]


class FileContext:
    """Per-file state shared by every rule: source, tree, import map."""

    def __init__(self, path: str, source: str, tree: ast.Module):
        self.path = path
        self.source = source
        self.tree = tree
        self.imports = _import_map(tree)
        self.noqa = _noqa_map(source)

    def qualified(self, node: ast.AST) -> Optional[str]:
        """Fully qualified dotted name for a Name/Attribute chain.

        Resolution is import-anchored: ``np.random.default_rng`` maps to
        ``numpy.random.default_rng`` only because ``np`` was imported as
        ``numpy``.  Chains rooted in local variables or attributes
        (``self.random.choice``) resolve to ``None`` rather than guess.
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.imports.get(node.id)
        if root is None:
            return None
        parts.append(root)
        return ".".join(reversed(parts))

    def suppressed(self, line: int, code: str) -> bool:
        codes = self.noqa.get(line)
        if codes is None:
            return False
        return not codes or code in codes  # empty set == blanket noqa


class LintRule(ast.NodeVisitor):
    """Base class for lint rules.

    Subclasses set ``code``, ``name``, ``rationale`` (and optionally
    ``severity``), then override visitor methods and call
    :meth:`report` on violations.  One instance is created per file.
    """

    code: str = ""
    name: str = ""
    rationale: str = ""
    severity: Severity = Severity.ERROR

    def __init__(self, ctx: FileContext):
        self.ctx = ctx
        self.findings: List[Finding] = []

    def run(self) -> List[Finding]:
        self.visit(self.ctx.tree)
        return self.findings

    def report(self, node: ast.AST, message: str) -> None:
        self.findings.append(Finding(
            path=self.ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=self.code,
            message=message,
            severity=self.severity,
        ))


def check_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Sequence[Type[LintRule]]] = None,
) -> List[Finding]:
    """Run ``rules`` (default: all registered) over one source string.

    Returns findings sorted by (path, line, col, code) with noqa'd
    lines already filtered out.  A file that fails to parse yields a
    single ``LNT001`` finding instead of raising.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding(
            path=path,
            line=exc.lineno or 1,
            col=(exc.offset or 0) + 1,
            code=SYNTAX_ERROR_CODE,
            message=f"syntax error: {exc.msg}",
        )]
    ctx = FileContext(path, source, tree)
    findings: List[Finding] = []
    for cls in (rules if rules is not None else all_rules()):
        findings.extend(cls(ctx).run())
    return sorted(
        f for f in findings if not ctx.suppressed(f.line, f.code)
    )


def check_file(
    path: Union[str, Path],
    display_path: Optional[str] = None,
    rules: Optional[Sequence[Type[LintRule]]] = None,
) -> List[Finding]:
    """Lint one file on disk; ``display_path`` overrides the reported path."""
    text = Path(path).read_text(encoding="utf-8", errors="replace")
    return check_source(text, display_path or str(path), rules=rules)


def _import_map(tree: ast.Module) -> Dict[str, str]:
    """Local name -> fully qualified module/attribute for every import."""
    imports: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    # `import a.b as c` binds `c` -> a.b
                    imports[alias.asname] = alias.name
                else:
                    # `import a.b` binds only the root name `a`
                    root = alias.name.split(".", 1)[0]
                    imports[root] = root
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module is None:
                continue  # relative imports stay package-local
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                imports[local] = f"{node.module}.{alias.name}"
    return imports


def _noqa_map(source: str) -> Dict[int, Set[str]]:
    """Line -> suppressed codes (empty set == all codes) from comments."""
    suppressions: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _NOQA_RE.search(line)
        if not match:
            continue
        codes = match.group(1)
        if codes is None:
            suppressions[lineno] = set()
        else:
            suppressions[lineno] = {
                c.strip().upper() for c in codes.split(",") if c.strip()
            }
    return suppressions
