"""Rule-registry framework: visitor base class, registration, noqa.

A rule is an :class:`ast.NodeVisitor` subclass with a unique ``code``
(``DETnnn`` / ``PARnnn``), a human-readable ``name``, a ``rationale``
explaining which reproducibility claim it protects, and a severity.
Rules are registered with the :func:`register` decorator and run once
per file by :func:`check_source` against a shared :class:`FileContext`
that pre-resolves imports so rules can match fully qualified call names
(``numpy.random.default_rng``, ``time.time``) regardless of aliasing.

The context also exposes the two analyzer layers the dataflow rule
families build on: :meth:`FileContext.dataflow` lazily constructs (and
memoizes) the per-function CFG/def-use analysis from :mod:`.cfg`, and
``ctx.project`` carries the cross-file :class:`~.project.ProjectIndex`
when the runner provides one (direct ``check_source`` calls analyze a
single file and leave it ``None``; rules degrade to module-local
reasoning).

Suppression: a ``# repro: noqa[CODE1,CODE2]`` comment on the flagged
line silences those codes there; a bare ``# repro: noqa`` silences all
codes on the line.  Write the justification after the bracket, e.g.
``# repro: noqa[DET203] -- wire GUIDs need uniqueness, not replay``.
Suppressions are themselves audited: a rule class may set
``is_post_pass = True`` and implement ``post_run`` to inspect the
finished run (the NOQ901 unused-suppression rule), so a noqa that
suppresses nothing is a finding, not silent dead weight.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple, Type, Union

from .findings import Finding, Severity

__all__ = [
    "LintRule",
    "FileContext",
    "register",
    "all_rules",
    "rule_for",
    "check_source",
    "check_file",
    "SYNTAX_ERROR_CODE",
]

#: Pseudo-code reported when a target file does not parse.
SYNTAX_ERROR_CODE = "LNT001"

_CODE_RE = re.compile(r"^[A-Z]{3}\d{3}$")
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[([A-Za-z0-9_,\s]+)\])?")

_REGISTRY: Dict[str, Type["LintRule"]] = {}


def register(cls: Type["LintRule"]) -> Type["LintRule"]:
    """Class decorator adding a rule to the global registry."""
    code = getattr(cls, "code", "")
    if not _CODE_RE.match(code):
        raise ValueError(f"rule code {code!r} must match AAAnnn (e.g. DET101)")
    if code in _REGISTRY and _REGISTRY[code] is not cls:
        raise ValueError(f"duplicate rule code {code}: "
                         f"{_REGISTRY[code].__name__} vs {cls.__name__}")
    if not getattr(cls, "name", ""):
        raise ValueError(f"rule {code} needs a short kebab-case name")
    _REGISTRY[code] = cls
    return cls


def all_rules() -> List[Type["LintRule"]]:
    """Every registered rule, sorted by code (deterministic output order)."""
    return [cls for _, cls in sorted(_REGISTRY.items())]


def rule_for(code: str) -> Type["LintRule"]:
    return _REGISTRY[code]


class FileContext:
    """Per-file state shared by every rule: source, tree, import map,
    lazily built per-function dataflow, and the optional project index."""

    def __init__(self, path: str, source: str, tree: ast.Module,
                 project=None):
        self.path = path
        self.source = source
        self.tree = tree
        self.imports = _import_map(tree)
        self.noqa = _noqa_map(source)
        self.project = project
        self._dataflow: Dict[int, object] = {}
        self._qualnames: Optional[Dict[int, str]] = None
        self._functions: Optional[List[Tuple[str, ast.AST]]] = None

    def dataflow(self, fn):
        """Memoized :class:`~.cfg.FunctionDataflow` for one function node."""
        cached = self._dataflow.get(id(fn))
        if cached is None:
            from .cfg import FunctionDataflow
            cached = FunctionDataflow(fn)
            self._dataflow[id(fn)] = cached
        return cached

    def functions(self):
        """Every (qualname, FunctionDef) in the file, outer first.

        Memoized: several dataflow rules iterate this per file and the
        tree walk is a measurable share of a strict run.
        """
        if self._functions is None:
            self._ensure_qualnames()
            out = []
            for node in ast.walk(self.tree):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    out.append((self._qualnames.get(id(node), node.name),
                                node))
            self._functions = out
        return self._functions

    def qualname(self, fn) -> str:
        self._ensure_qualnames()
        return self._qualnames.get(id(fn), getattr(fn, "name", "<lambda>"))

    def _ensure_qualnames(self) -> None:
        if self._qualnames is not None:
            return
        names: Dict[int, str] = {}

        def walk(body, prefix: str) -> None:
            for stmt in body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qualname = f"{prefix}{stmt.name}"
                    names[id(stmt)] = qualname
                    walk(stmt.body, f"{qualname}.")
                elif isinstance(stmt, ast.ClassDef):
                    walk(stmt.body, f"{prefix}{stmt.name}.")

        walk(self.tree.body, "")
        self._qualnames = names

    def qualified(self, node: ast.AST) -> Optional[str]:
        """Fully qualified dotted name for a Name/Attribute chain.

        Resolution is import-anchored: ``np.random.default_rng`` maps to
        ``numpy.random.default_rng`` only because ``np`` was imported as
        ``numpy``.  Chains rooted in local variables or attributes
        (``self.random.choice``) resolve to ``None`` rather than guess.
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.imports.get(node.id)
        if root is None:
            return None
        parts.append(root)
        return ".".join(reversed(parts))

    def suppressed(self, line: int, code: str) -> bool:
        codes = self.noqa.get(line)
        if codes is None:
            return False
        return not codes or code in codes  # empty set == blanket noqa


class LintRule(ast.NodeVisitor):
    """Base class for lint rules.

    Subclasses set ``code``, ``name``, ``rationale`` (and optionally
    ``severity``), then override visitor methods and call
    :meth:`report` on violations.  One instance is created per file.
    """

    code: str = ""
    name: str = ""
    rationale: str = ""
    severity: Severity = Severity.ERROR
    #: Post-pass rules skip the visitor phase; ``post_run`` is called
    #: after noqa filtering with the full run outcome instead.
    is_post_pass: bool = False

    def __init__(self, ctx: FileContext):
        self.ctx = ctx
        self.findings: List[Finding] = []

    def run(self) -> List[Finding]:
        self.visit(self.ctx.tree)
        return self.findings

    def report(self, node: ast.AST, message: str) -> None:
        self.findings.append(Finding(
            path=self.ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=self.code,
            message=message,
            severity=self.severity,
        ))

    def post_run(self, kept: List[Finding], suppressed: List[Finding],
                 ran_codes: Set[str]) -> List[Finding]:
        """Hook for ``is_post_pass`` rules; the visitor phase is done.

        ``kept``/``suppressed`` partition the visitor findings by the
        noqa filter; ``ran_codes`` is the set of visitor rule codes in
        this run (a suppression of a code that did not run cannot be
        judged unused).
        """
        return []


def check_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Sequence[Type[LintRule]]] = None,
    project=None,
) -> List[Finding]:
    """Run ``rules`` (default: all registered) over one source string.

    Returns findings sorted by (path, line, col, code) with noqa'd
    lines already filtered out.  A file that fails to parse yields a
    single ``LNT001`` finding instead of raising.  ``project`` threads
    the cross-file index into every rule's :class:`FileContext`.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding(
            path=path,
            line=exc.lineno or 1,
            col=(exc.offset or 0) + 1,
            code=SYNTAX_ERROR_CODE,
            message=f"syntax error: {exc.msg}",
        )]
    ctx = FileContext(path, source, tree, project=project)
    running = list(rules if rules is not None else all_rules())
    visitor_rules = [cls for cls in running if not cls.is_post_pass]
    post_rules = [cls for cls in running if cls.is_post_pass]

    findings: List[Finding] = []
    for cls in visitor_rules:
        findings.extend(cls(ctx).run())
    kept = [f for f in findings if not ctx.suppressed(f.line, f.code)]
    suppressed = [f for f in findings if ctx.suppressed(f.line, f.code)]

    ran_codes = {cls.code for cls in visitor_rules}
    for cls in post_rules:
        kept.extend(cls(ctx).post_run(list(kept), suppressed, ran_codes))
    return sorted(kept)


def check_file(
    path: Union[str, Path],
    display_path: Optional[str] = None,
    rules: Optional[Sequence[Type[LintRule]]] = None,
    project=None,
) -> List[Finding]:
    """Lint one file on disk; ``display_path`` overrides the reported path."""
    text = Path(path).read_text(encoding="utf-8", errors="replace")
    return check_source(text, display_path or str(path), rules=rules,
                        project=project)


def _import_map(tree: ast.Module) -> Dict[str, str]:
    """Local name -> fully qualified module/attribute for every import."""
    imports: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    # `import a.b as c` binds `c` -> a.b
                    imports[alias.asname] = alias.name
                else:
                    # `import a.b` binds only the root name `a`
                    root = alias.name.split(".", 1)[0]
                    imports[root] = root
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module is None:
                continue  # relative imports stay package-local
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                imports[local] = f"{node.module}.{alias.name}"
    return imports


def _noqa_map(source: str) -> Dict[int, Set[str]]:
    """Line -> suppressed codes (empty set == all codes) from comments.

    Only actual ``#`` comment tokens count: a docstring *describing*
    the noqa syntax is documentation, not a suppression (and must not
    trip the NOQ901 unused-suppression audit).  Tokenization failures
    fall back to a plain line scan so a half-edited file still honors
    its suppressions.
    """
    suppressions: Dict[int, Set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [(tok.start[0], tok.string) for tok in tokens
                    if tok.type == tokenize.COMMENT]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        comments = list(enumerate(source.splitlines(), start=1))
    for lineno, text in comments:
        match = _NOQA_RE.search(text)
        if not match:
            continue
        codes = match.group(1)
        if codes is None:
            suppressions[lineno] = set()
        else:
            suppressions[lineno] = {
                c.strip().upper() for c in codes.split(",") if c.strip()
            }
    return suppressions
