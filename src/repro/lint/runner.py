"""Lint runner: file discovery, policy application, text/JSON output.

The pipeline per file is: registered rules -> inline ``noqa`` filter
(in :func:`~repro.lint.framework.check_source`) -> select/ignore ->
per-path allowances -> baseline budget.  Everything downstream of the
rules is pure policy, so a finding's journey from AST node to CI
failure is auditable.

Output ordering is deterministic end to end: files are discovered in
sorted order, findings sort by (path, line, col, code), and the JSON
report serializes with sorted keys and records ``ruleset_version`` so
archived CI artifacts state exactly which rule battery they enforced.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .config import BaselineBudget, LintConfig, load_baseline
from .findings import Finding, Severity
from .framework import all_rules, check_file

__all__ = [
    "RULESET_VERSION",
    "LintReport",
    "iter_python_files",
    "run_lint",
    "format_text",
    "format_json",
    "write_baseline_file",
]

#: Bump when rules are added/removed or their semantics change; recorded
#: in every JSON report and in bench artifacts so an archived run states
#: what was enforced at the time.
RULESET_VERSION = "1.3"


@dataclass
class LintReport:
    """Outcome of one lint run, after all suppression layers."""

    findings: List[Finding]
    files_scanned: int
    suppressed_by_allow: int = 0
    suppressed_by_baseline: int = 0
    stale_baseline: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def exit_code(self) -> int:
        return 1 if self.errors else 0


def iter_python_files(
    paths: Sequence[Union[str, Path]],
    root: Path,
    config: LintConfig,
) -> List[Tuple[Path, str]]:
    """(absolute path, display relpath) for every lintable file.

    Directories are walked recursively; listings are sorted and config
    ``exclude`` patterns are applied to root-relative posix paths.
    """
    selected: Dict[str, Path] = {}
    for raw in paths:
        path = Path(raw)
        if not path.is_absolute():
            path = root / path
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            candidates = [path]
        else:
            candidates = []
        for candidate in candidates:
            rel = _display_path(candidate, root)
            if not config.excluded(rel):
                selected[rel] = candidate
    return [(selected[rel], rel) for rel in sorted(selected)]


def run_lint(
    paths: Sequence[Union[str, Path]],
    root: Union[str, Path],
    config: Optional[LintConfig] = None,
    baseline: Optional[BaselineBudget] = None,
) -> LintReport:
    """Lint ``paths`` under project ``root`` with full policy applied.

    ``baseline=None`` loads the config's baseline file; pass ``{}`` to
    force a strict run.
    """
    root = Path(root).resolve()
    config = config or LintConfig()
    if baseline is None:
        baseline = load_baseline(root / config.baseline) if config.baseline else {}
    budget = dict(baseline)

    rules = [cls for cls in all_rules() if config.enabled(cls.code)]
    findings: List[Finding] = []
    allowed = 0
    baselined = 0
    files = iter_python_files(paths, root, config)
    for path, rel in files:
        for finding in check_file(path, display_path=rel, rules=rules):
            if finding.code in config.allowed_codes(rel):
                allowed += 1
                continue
            key = (rel, finding.code)
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                baselined += 1
                continue
            findings.append(finding)
    stale = sorted(key for key, remaining in budget.items() if remaining > 0)
    return LintReport(
        findings=sorted(findings),
        files_scanned=len(files),
        suppressed_by_allow=allowed,
        suppressed_by_baseline=baselined,
        stale_baseline=stale,
    )


def format_text(report: LintReport) -> str:
    """Human-readable findings plus a one-line summary."""
    lines = [finding.render() for finding in report.findings]
    summary = (f"{len(report.findings)} finding(s) in "
               f"{report.files_scanned} file(s)")
    extras = []
    if report.suppressed_by_allow:
        extras.append(f"{report.suppressed_by_allow} allowed by per-path config")
    if report.suppressed_by_baseline:
        extras.append(f"{report.suppressed_by_baseline} baselined")
    if extras:
        summary += f" ({', '.join(extras)})"
    lines.append(summary)
    for path, code in report.stale_baseline:
        lines.append(f"note: stale baseline entry {path}: {code} "
                     "(no longer triggered; remove it)")
    return "\n".join(lines)


def format_json(report: LintReport) -> str:
    """Machine-readable report; stable ordering for CI diffs."""
    payload = {
        "ruleset_version": RULESET_VERSION,
        "rules": {cls.code: cls.name for cls in all_rules()},
        "files_scanned": report.files_scanned,
        "findings": [f.to_json() for f in report.findings],
        "suppressed": {
            "per_path_allow": report.suppressed_by_allow,
            "baseline": report.suppressed_by_baseline,
        },
        "stale_baseline": [
            {"path": path, "code": code} for path, code in report.stale_baseline
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def write_baseline_file(report: LintReport, path: Union[str, Path]) -> Path:
    """Persist the report's findings as a (path, code, count) baseline.

    Entries are aggregated and sorted so regenerating the baseline on
    an unchanged tree is a no-op diff.
    """
    counts: Dict[Tuple[str, str], int] = {}
    for finding in report.findings:
        key = (finding.path, finding.code)
        counts[key] = counts.get(key, 0) + 1
    payload = {
        "version": 1,
        "ruleset_version": RULESET_VERSION,
        "entries": [
            {"path": path_, "code": code, "count": count}
            for (path_, code), count in sorted(counts.items())
        ],
    }
    out = Path(path)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                   encoding="utf-8")
    return out


def _display_path(path: Path, root: Path) -> str:
    try:
        rel = path.resolve().relative_to(root)
    except ValueError:
        rel = path
    return rel.as_posix()
