"""Lint runner: file discovery, policy application, report output.

The pipeline per run is: discover files -> build the cross-file
:class:`~.project.ProjectIndex` (layer 1, mtime-cached) -> per file,
registered rules with the index threaded through -> inline ``noqa``
filter (in :func:`~repro.lint.framework.check_source`) ->
select/ignore -> per-path allowances -> baseline budget.  Everything
downstream of the rules is pure policy, so a finding's journey from
AST node to CI failure is auditable.

Output ordering is deterministic end to end: path arguments resolve
against the *invocation directory* and deduplicate on the resolved
file (``lint src src/repro`` reports each finding once), files are
discovered in sorted order, findings sort by (path, line, col, code),
and the JSON/SARIF reports serialize with sorted keys and record
``ruleset_version`` so archived CI artifacts state exactly which rule
battery they enforced.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .config import BaselineBudget, LintConfig, load_baseline
from .findings import Finding, Severity
from .framework import all_rules, check_file
from .project import ProjectIndex
from .sarif import format_sarif as _format_sarif

__all__ = [
    "RULESET_VERSION",
    "LintReport",
    "iter_python_files",
    "run_lint",
    "format_text",
    "format_json",
    "format_sarif",
    "write_baseline_file",
]

#: Bump when rules are added/removed or their semantics change; recorded
#: in every JSON report and in bench artifacts so an archived run states
#: what was enforced at the time.  2.0: the dataflow analyzer -- RNG7xx
#: stream provenance, DTY8xx dtype/reduction-order contracts, NOQ901
#: suppression audit, project call graph.
RULESET_VERSION = "2.1"


@dataclass
class LintReport:
    """Outcome of one lint run, after all suppression layers."""

    findings: List[Finding]
    files_scanned: int
    suppressed_by_allow: int = 0
    suppressed_by_baseline: int = 0
    stale_baseline: List[Tuple[str, str]] = field(default_factory=list)
    #: Stale entries whose path no longer exists under the project root
    #: -- the file was deleted or renamed with its debt left behind.
    stale_missing_files: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def exit_code(self) -> int:
        return 1 if self.errors else 0


def iter_python_files(
    paths: Sequence[Union[str, Path]],
    root: Path,
    config: LintConfig,
    cwd: Union[str, Path, None] = None,
) -> List[Tuple[Path, str]]:
    """(absolute path, display relpath) for every lintable file.

    Relative path arguments resolve against ``cwd`` (the invocation
    directory, defaulting to the process cwd) when they exist there,
    falling back to ``root`` -- so ``lint repro`` works from ``src/``
    and ``lint src`` keeps working from the repo root.  Directories
    are walked recursively; overlapping arguments (``src src/repro``)
    deduplicate on the *resolved* file, so each file is linted once
    under one deterministic root-relative display path.  Config
    ``exclude`` patterns apply to the display path.
    """
    base = Path(cwd).resolve() if cwd is not None else Path.cwd()
    selected: Dict[str, Path] = {}
    for raw in paths:
        path = Path(raw)
        if not path.is_absolute():
            in_cwd = (base / path)
            path = in_cwd if in_cwd.exists() else (root / path)
        path = path.resolve()
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            candidates = [path]
        else:
            candidates = []
        for candidate in candidates:
            rel = _display_path(candidate, root)
            if not config.excluded(rel):
                selected[rel] = candidate
    return [(selected[rel], rel) for rel in sorted(selected)]


def run_lint(
    paths: Sequence[Union[str, Path]],
    root: Union[str, Path],
    config: Optional[LintConfig] = None,
    baseline: Optional[BaselineBudget] = None,
    cwd: Union[str, Path, None] = None,
) -> LintReport:
    """Lint ``paths`` under project ``root`` with full policy applied.

    ``baseline=None`` loads the config's baseline file; pass ``{}`` to
    force a strict run.  ``cwd`` is the invocation directory relative
    path arguments resolve against (defaults to the process cwd).
    """
    root = Path(root).resolve()
    config = config or LintConfig()
    if baseline is None:
        baseline = load_baseline(root / config.baseline) if config.baseline else {}
    budget = dict(baseline)

    rules = [cls for cls in all_rules() if config.enabled(cls.code)]
    findings: List[Finding] = []
    allowed = 0
    baselined = 0
    files = iter_python_files(paths, root, config, cwd=cwd)
    project = ProjectIndex.build(files)
    for path, rel in files:
        for finding in check_file(path, display_path=rel, rules=rules,
                                  project=project):
            if finding.code in config.allowed_codes(rel):
                allowed += 1
                continue
            key = (rel, finding.code)
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                baselined += 1
                continue
            findings.append(finding)
    stale = sorted(key for key, remaining in budget.items() if remaining > 0)
    missing = [(path_, code) for path_, code in stale
               if not (root / path_).exists()]
    return LintReport(
        findings=sorted(findings),
        files_scanned=len(files),
        suppressed_by_allow=allowed,
        suppressed_by_baseline=baselined,
        stale_baseline=stale,
        stale_missing_files=missing,
    )


def format_text(report: LintReport) -> str:
    """Human-readable findings plus a one-line summary."""
    lines = [finding.render() for finding in report.findings]
    summary = (f"{len(report.findings)} finding(s) in "
               f"{report.files_scanned} file(s)")
    extras = []
    if report.suppressed_by_allow:
        extras.append(f"{report.suppressed_by_allow} allowed by per-path config")
    if report.suppressed_by_baseline:
        extras.append(f"{report.suppressed_by_baseline} baselined")
    if extras:
        summary += f" ({', '.join(extras)})"
    lines.append(summary)
    missing = set(report.stale_missing_files)
    for path, code in report.stale_baseline:
        if (path, code) in missing:
            lines.append(f"note: stale baseline entry {path}: {code} "
                         "(file no longer exists; remove the entry)")
        else:
            lines.append(f"note: stale baseline entry {path}: {code} "
                         "(no longer triggered; remove it)")
    return "\n".join(lines)


def format_json(report: LintReport) -> str:
    """Machine-readable report; stable ordering for CI diffs."""
    payload = {
        "ruleset_version": RULESET_VERSION,
        "rules": {cls.code: cls.name for cls in all_rules()},
        "files_scanned": report.files_scanned,
        "findings": [f.to_json() for f in report.findings],
        "suppressed": {
            "per_path_allow": report.suppressed_by_allow,
            "baseline": report.suppressed_by_baseline,
        },
        "stale_baseline": [
            {"path": path, "code": code,
             "file_exists": (path, code) not in set(report.stale_missing_files)}
            for path, code in report.stale_baseline
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def format_sarif(report: LintReport) -> str:
    """SARIF 2.1.0 log for code-scanning upload; see :mod:`.sarif`."""
    return _format_sarif(report, RULESET_VERSION)


def write_baseline_file(report: LintReport, path: Union[str, Path]) -> Path:
    """Persist the report's findings as a (path, code, count) baseline.

    Entries are aggregated and sorted so regenerating the baseline on
    an unchanged tree is a no-op diff.
    """
    counts: Dict[Tuple[str, str], int] = {}
    for finding in report.findings:
        key = (finding.path, finding.code)
        counts[key] = counts.get(key, 0) + 1
    payload = {
        "version": 1,
        "ruleset_version": RULESET_VERSION,
        "entries": [
            {"path": path_, "code": code, "count": count}
            for (path_, code), count in sorted(counts.items())
        ],
    }
    out = Path(path)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                   encoding="utf-8")
    return out


def _display_path(path: Path, root: Path) -> str:
    try:
        rel = path.resolve().relative_to(root)
    except ValueError:
        rel = path
    return rel.as_posix()
