"""SARIF 2.1.0 output for CI code-scanning upload.

One ``run`` per report, one ``rule`` descriptor per registered rule
(code, kebab-case name, rationale as the full description), one
``result`` per finding.  Ordering is deterministic -- rules sorted by
code, results in the report's (path, line, col, code) order -- and the
serializer uses sorted keys, so archived SARIF artifacts diff cleanly
across CI runs exactly like the JSON report.

Only SARIF output knows this schema; the text and JSON formats are
byte-stable against pre-SARIF releases.
"""

from __future__ import annotations

import json

from .findings import Severity

__all__ = ["format_sarif", "SARIF_VERSION", "SARIF_SCHEMA"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")

#: Finding severity -> SARIF result level.
_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
}


def format_sarif(report, ruleset_version: str) -> str:
    """Serialize a :class:`~.runner.LintReport` as a SARIF 2.1.0 log."""
    from .framework import all_rules

    rules = sorted(all_rules(), key=lambda cls: cls.code)
    rule_index = {cls.code: i for i, cls in enumerate(rules)}
    descriptors = [
        {
            "id": cls.code,
            "name": cls.name,
            "shortDescription": {"text": cls.name.replace("-", " ")},
            "fullDescription": {"text": cls.rationale},
            "defaultConfiguration": {
                "level": _LEVELS.get(cls.severity, "warning"),
            },
        }
        for cls in rules
    ]
    results = [
        {
            "ruleId": finding.code,
            "ruleIndex": rule_index.get(finding.code, -1),
            "level": _LEVELS.get(finding.severity, "warning"),
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path.replace("\\", "/"),
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.col,
                    },
                },
            }],
        }
        for finding in report.findings
    ]
    log = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-lint",
                    "informationUri":
                        "https://example.invalid/repro-p2p/docs/LINT.md",
                    "version": ruleset_version,
                    "rules": descriptors,
                },
            },
            "columnKind": "unicodeCodePoints",
            "originalUriBaseIds": {"SRCROOT": {"uri": "file:///./"}},
            "results": results,
        }],
    }
    return json.dumps(log, indent=2, sort_keys=True)