"""Dtype/reduction-order contract rules (DTY8xx).

The equivalence batteries prove backends byte-identical *given* that
every reduction runs at a pinned dtype and every ordering step is
stable.  These rules make the two preconditions machine-checked, using
the :mod:`.dtypes` inference over def-use chains:

* ``DTY801`` -- one variable whose reaching definitions pin
  *different* dtypes on different branches.  The downstream reduction
  then accumulates at float32 on one path and float64 on the other,
  and "same config, same bytes" quietly becomes "same config, same
  bytes on the branch we happened to test".
* ``DTY802`` -- ``sum``/``cumsum`` (and nan-variants) over a provably
  floating array without an explicit ``dtype=``/``out=`` in an engine
  module.  NumPy's accumulator default depends on the input dtype and
  platform; pinning ``dtype=`` is the contract the batteries test.
* ``DTY803`` -- ``argsort``/``sort`` without ``kind="stable"`` in an
  engine module.  Introsort's tie order is an implementation detail;
  any merge path fed by a non-stable sort can reorder equal keys
  between numpy builds.

DTY801 runs everywhere (branch-divergent dtype is a bug wherever it
lives); DTY802/DTY803 are scoped to the kernel-backed engine modules
(:data:`~.rules_kernels.ENGINE_PATHS`) where reduction order is part
of the byte-identity claim -- plotting code summing a histogram is not
a hot path.
"""

from __future__ import annotations

import ast
from typing import Optional, Set, Tuple

from .dtypes import argument_dtype, infer_dtype, is_float_dtype
from .framework import LintRule, register
from .rules_kernels import ENGINE_PATHS

__all__ = ["BranchDivergentDtype", "ImplicitAccumulatorDtype",
           "UnstableSortInMergePath"]

#: Reductions whose accumulator dtype must be pinned in engine code.
_ACCUMULATING_REDUCERS = frozenset({"sum", "nansum", "cumsum", "nancumsum"})

#: kind= values that are stable sorts.
_STABLE_KINDS = frozenset({"stable", "mergesort"})


def _in_engine_module(path: str) -> bool:
    posix = path.replace("\\", "/")
    return any(fragment in posix for fragment in ENGINE_PATHS)


def _call_leaf(call: ast.Call) -> Optional[str]:
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _has_kw(call: ast.Call, *names: str) -> bool:
    return any(kw.arg in names for kw in call.keywords)


@register
class BranchDivergentDtype(LintRule):
    """A variable's reaching definitions pin different dtypes per branch."""

    code = "DTY801"
    name = "branch-divergent-dtype"
    rationale = (
        "when one branch binds float32 and the other float64, every "
        "reduction downstream accumulates at a precision chosen by the "
        "branch taken, and byte-identity across configs silently breaks. "
        "Widen (or pin dtype=) on both branches."
    )

    def run(self):
        for _, fn in self.ctx.functions():
            self._check_function(fn)
        return self.findings

    def _check_function(self, fn) -> None:
        if not self._worth_analyzing(fn):
            return
        df = self.ctx.dataflow(fn)
        flagged: Set[str] = set()
        for load in df.loads():
            if load.id in flagged:
                continue
            reaching = df.reaching(load)
            if len(reaching) < 2:
                continue
            dtypes: Set[str] = set()
            decidable = True
            for definition in reaching:
                value = definition.value
                # Only array-producing calls make a credible dtype claim;
                # scalar constants (`total = 0`) and loop targets are the
                # classic accumulator idiom, not a divergence.
                if definition.is_param or definition.is_loop_target or \
                        not isinstance(value, ast.Call):
                    decidable = False
                    break
                inferred = infer_dtype(value, df)
                if inferred is None:
                    decidable = False
                    break
                dtypes.add(inferred)
            if decidable and len(dtypes) > 1:
                flagged.add(load.id)
                self.report(load, f"{load.id!r} reaches this use with "
                                  f"dtype {' vs '.join(sorted(dtypes))} "
                                  "depending on the branch taken; pin one "
                                  "dtype on every definition")

    @staticmethod
    def _worth_analyzing(fn) -> bool:
        """Cheap pre-scan: divergence needs one name Call-assigned twice.

        Skipping the CFG build for the (vast) majority of functions
        that cannot trip the rule keeps the strict run in budget.
        """
        call_assigned: Set[str] = set()
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign) and \
                    isinstance(node.value, ast.Call):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        if target.id in call_assigned:
                            return True
                        call_assigned.add(target.id)
            elif isinstance(node, ast.AnnAssign) and \
                    isinstance(node.value, ast.Call) and \
                    isinstance(node.target, ast.Name):
                if node.target.id in call_assigned:
                    return True
                call_assigned.add(node.target.id)
        return False


@register
class ImplicitAccumulatorDtype(LintRule):
    """Float sum/cumsum without dtype=/out= in an engine module."""

    code = "DTY802"
    name = "implicit-accumulator-dtype"
    rationale = (
        "numpy chooses the accumulator dtype from the input dtype and "
        "platform; a float reduction without dtype= is a byte-identity "
        "contract left to the build. Engine reductions pin dtype= "
        "explicitly so the equivalence batteries test the precision that "
        "actually ships."
    )

    def visit_Call(self, node: ast.Call) -> None:
        if _in_engine_module(self.ctx.path):
            leaf = _call_leaf(node)
            if leaf in _ACCUMULATING_REDUCERS and \
                    not _has_kw(node, "dtype", "out"):
                df = self._enclosing_dataflow(node)
                if is_float_dtype(argument_dtype(node, df)):
                    self.report(node, f"float {leaf}() without dtype= in an "
                                      "engine module; pin the accumulator "
                                      "(e.g. dtype=np.float64) so reduction "
                                      "precision is part of the contract, "
                                      "not the build")
        self.generic_visit(node)

    def _enclosing_dataflow(self, node: ast.AST):
        enclosing = getattr(self, "_enclosing", None)
        if enclosing is None:
            # One pass: nested functions appear after their parents in
            # functions(), so later writes leave the innermost owner.
            enclosing = {}
            for _, fn in self.ctx.functions():
                for descendant in ast.walk(fn):
                    enclosing[id(descendant)] = fn
            self._enclosing = enclosing
        fn = enclosing.get(id(node))
        return self.ctx.dataflow(fn) if fn is not None else None


@register
class UnstableSortInMergePath(LintRule):
    """argsort/sort without kind="stable" in an engine module."""

    code = "DTY803"
    name = "unstable-sort-in-merge-path"
    rationale = (
        "introsort's tie order is an implementation detail of the numpy "
        "build; engine merge paths that feed equal keys through a "
        "non-stable sort can reorder rows between platforms. "
        'kind="stable" costs one keyword and makes tie order part of the '
        "contract."
    )

    def visit_Call(self, node: ast.Call) -> None:
        if _in_engine_module(self.ctx.path):
            leaf = _call_leaf(node)
            # argsort in any spelling; plain sort only as numpy.sort
            # (list.sort is timsort -- already stable; lexsort too).
            sortish = leaf == "argsort" or (
                leaf == "sort"
                and self.ctx.qualified(node.func) == "numpy.sort")
            if sortish:
                kind = self._kind_kw(node)
                if kind is None:
                    self.report(node, f"{leaf}() without kind=\"stable\" in "
                                      "an engine module; non-stable tie "
                                      "order varies across numpy builds")
                elif kind not in _STABLE_KINDS:
                    self.report(node, f"{leaf}(kind={kind!r}) is not a "
                                      "stable sort; engine merge paths "
                                      "need kind=\"stable\"")
        self.generic_visit(node)

    def _kind_kw(self, call: ast.Call) -> Optional[str]:
        for kw in call.keywords:
            if kw.arg == "kind":
                if isinstance(kw.value, ast.Constant) and \
                        isinstance(kw.value.value, str):
                    return kw.value.value
                return "stable"  # non-literal kind=: trust it
        return None