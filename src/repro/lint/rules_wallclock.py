"""Wall-clock and ambient-entropy rules (DET2xx).

Trace synthesis models its own clock (simulated seconds from the
config's start); reading the host's clock or entropy pool anywhere in
the measurement pipeline makes output depend on *when* or *where* the
run happened.  Entry points that legitimately time things -- the CLI,
the bench harnesses -- are granted these codes via the pyproject
``per-path-allow`` table rather than inline noqa, so the grant is
visible in one place.
"""

from __future__ import annotations

import ast

from .framework import LintRule, register

__all__ = ["WallClockCall", "DatetimeNow", "UuidEntropy"]

_TIME_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
}

_DATETIME_CALLS = {
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

_UUID_CALLS = {
    "uuid.uuid1",  # embeds MAC address + wall clock
    "uuid.uuid4",  # OS entropy
}


@register
class WallClockCall(LintRule):
    """``time.time()`` and friends outside entry points."""

    code = "DET201"
    name = "wall-clock-call"
    rationale = (
        "host clock reads make results depend on when the run happened; "
        "simulation code must use the trace's own clock. Timing harnesses "
        "(cli/bench) are granted this code in pyproject per-path-allow."
    )

    def visit_Call(self, node: ast.Call) -> None:
        qualified = self.ctx.qualified(node.func)
        if qualified in _TIME_CALLS:
            self.report(node, f"{qualified}() reads the host clock; use the "
                              "simulated clock (or move timing to a "
                              "cli/bench entry point)")
        self.generic_visit(node)


@register
class DatetimeNow(LintRule):
    """``datetime.now()`` / ``date.today()`` in reproducible code."""

    code = "DET202"
    name = "datetime-now"
    rationale = (
        "datetime.now()/today() bake the run's date into output, breaking "
        "byte-identical re-runs; derive timestamps from the config instead."
    )

    def visit_Call(self, node: ast.Call) -> None:
        qualified = self.ctx.qualified(node.func)
        if qualified in _DATETIME_CALLS:
            self.report(node, f"{qualified}() reads the host calendar; "
                              "derive timestamps from the trace config")
        self.generic_visit(node)


@register
class UuidEntropy(LintRule):
    """``uuid4()``/``uuid1()`` draw ambient entropy/host identity."""

    code = "DET203"
    name = "uuid-entropy"
    rationale = (
        "uuid4 draws OS entropy and uuid1 embeds host MAC + clock: ids in "
        "traces/caches/reports then differ across identical runs. Derive "
        "ids from a seeded rng (e.g. rng.bytes(16))."
    )

    def visit_Call(self, node: ast.Call) -> None:
        qualified = self.ctx.qualified(node.func)
        if qualified in _UUID_CALLS:
            self.report(node, f"{qualified}() is nondeterministic; derive "
                              "ids from a seeded rng (rng.bytes(16))")
        self.generic_visit(node)
