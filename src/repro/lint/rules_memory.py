"""Out-of-core memory-discipline rules (MEM5xx).

The streaming pipeline's claim -- the full 40-day paper trace in
bounded memory -- survives only while shard loads stay memory-mapped
and the streaming modules never materialize a whole-trace column as a
Python list.  Both regressions are silent: the code stays correct and
just quietly climbs back to whole-trace RSS.  This rule makes the
discipline machine-checkable.

Two patterns, one code:

* ``numpy.load`` without an **explicit** ``mmap_mode`` keyword,
  anywhere in the tree.  The memory-mapped read is the default
  everyone should state; passing ``mmap_mode=None`` is the visible
  opt-in to an eager read (e.g. to hold arrays past a file's
  lifetime).
* ``.tolist()`` or ``list(name)`` materialization inside the streaming
  modules themselves (``repro/filtering/streaming``,
  ``repro/analysis/streaming``, ``repro/measurement/shards``), where a
  full-column Python list defeats the bounded-memory contract.
  Deliberate materializers (e.g. the record-view opt-out) carry an
  inline ``# repro: noqa[MEM501] -- justification``.
"""

from __future__ import annotations

import ast

from .framework import LintRule, register

__all__ = ["UnboundedMaterialization"]

#: Path fragments identifying the bounded-memory modules; matched
#: against the posix form of the reported path.
STREAMING_PATHS = (
    "repro/filtering/streaming",
    "repro/analysis/streaming",
    "repro/measurement/shards",
    "repro/core/kernels/npz",
)


@register
class UnboundedMaterialization(LintRule):
    """Eager ``numpy.load`` / full-column list materialization."""

    code = "MEM501"
    name = "unbounded-materialization"
    rationale = (
        "the out-of-core pipeline's RSS budget holds only while .npz reads "
        "stay memory-mapped and streaming modules never expand a "
        "whole-trace column into a Python list; state mmap_mode explicitly "
        "(mmap_mode=None is the visible eager opt-in) and justify "
        "materializers with an inline noqa."
    )

    def _in_streaming_module(self) -> bool:
        path = self.ctx.path.replace("\\", "/")
        return any(fragment in path for fragment in STREAMING_PATHS)

    def visit_Call(self, node: ast.Call) -> None:
        qualified = self.ctx.qualified(node.func)
        if qualified == "numpy.load":
            if not any(kw.arg == "mmap_mode" for kw in node.keywords):
                self.report(node, "numpy.load() without an explicit mmap_mode "
                                  "reads the whole archive eagerly; pass "
                                  "mmap_mode='r' (or mmap_mode=None to opt "
                                  "into an eager read visibly)")
        elif self._in_streaming_module():
            if (
                isinstance(node.func, ast.Name)
                and node.func.id == "list"
                and len(node.args) == 1
                and not node.keywords
                and isinstance(node.args[0], (ast.Name, ast.Attribute))
            ):
                self.report(node, "list(...) materializes a full column in a "
                                  "bounded-memory module; reduce with array "
                                  "ops or justify with noqa[MEM501]")
            elif isinstance(node.func, ast.Attribute) and node.func.attr == "tolist":
                self.report(node, ".tolist() materializes a full column in a "
                                  "bounded-memory module; reduce with array "
                                  "ops or justify with noqa[MEM501]")
        self.generic_visit(node)
