"""Local dtype inference for the DTY8xx contract rules.

A tiny abstract interpreter over one function's def-use chains: given
an expression, return the numpy dtype name it evaluates to when that
can be decided syntactically plus one hop of dataflow, else ``None``.
The lattice is deliberately shallow -- ``float32``/``float64``/
``int64``/``bool``/unknown -- because the rules built on it only ask
two questions: "is this array provably floating" (implicit-accumulator
rule) and "do two reaching definitions pin *different* dtypes"
(branch-divergence rule).  Unknown never fires a rule, so imprecision
costs recall, not false positives.

Sources of dtype facts:

* explicit ``dtype=`` keywords (``np.zeros(n, dtype=np.float32)``),
* numpy constructor defaults (``zeros``/``ones``/``empty`` are
  float64),
* Generator draw methods (``rng.random`` is float64, ``rng.integers``
  int64) and this repo's distribution protocol (``.sample(rng, ...)``
  returns float64),
* ``.astype(X)`` casts,
* propagation through shape-preserving wrappers (``np.clip``,
  ``np.atleast_1d``, subscripts, ``np.concatenate``), arithmetic
  (float dominates int), and Name loads via reaching definitions.
"""

from __future__ import annotations

import ast
from typing import Dict, Optional, Set

from .cfg import FunctionDataflow

__all__ = ["infer_dtype", "is_float_dtype", "parse_dtype_expr"]

#: numpy dtype aliases -> canonical names.
_DTYPE_NAMES = {
    "float": "float64", "float16": "float16", "float32": "float32",
    "float64": "float64", "double": "float64", "single": "float32",
    "half": "float16", "longdouble": "float128", "float128": "float128",
    "int": "int64", "int8": "int8", "int16": "int16", "int32": "int32",
    "int64": "int64", "intp": "int64", "uint8": "uint8", "uint16": "uint16",
    "uint32": "uint32", "uint64": "uint64", "bool": "bool", "bool_": "bool",
}

#: numpy array constructors defaulting to float64 without a dtype kw.
_FLOAT_DEFAULT_CTORS = {"zeros", "ones", "empty", "linspace", "geomspace",
                        "logspace"}

#: Generator methods returning float64 samples (new-style numpy API).
_FLOAT_DRAWS = {
    "random", "uniform", "normal", "standard_normal", "exponential",
    "standard_exponential", "lognormal", "pareto", "weibull", "gamma",
    "standard_gamma", "beta", "chisquare", "rayleigh", "triangular",
    "laplace", "logistic", "gumbel", "vonmises", "wald", "dirichlet",
    "standard_cauchy", "standard_t", "f", "noncentral_chisquare",
    "noncentral_f", "power", "sample",
}

_INT_DRAWS = {"integers", "poisson", "binomial", "geometric", "multinomial",
              "negative_binomial", "hypergeometric", "zipf", "logseries"}

#: Shape-preserving wrappers: result dtype == first argument's dtype.
_PASSTHROUGH = {"clip", "atleast_1d", "atleast_2d", "ascontiguousarray",
                "minimum", "maximum", "abs", "absolute", "copy", "ravel",
                "reshape", "sort", "flip", "roll", "squeeze", "where"}

#: Reductions preserving the input dtype unless dtype= overrides.
_DTYPE_KEEPING_REDUCERS = {"cumsum", "nancumsum", "sum", "nansum", "prod",
                           "nanprod", "cumprod", "diff"}

_INT_RESULTS = {"argsort", "searchsorted", "bincount", "arange", "argmax",
                "argmin", "count_nonzero", "digitize", "nonzero",
                "segmented_arange", "segment_ids"}


def is_float_dtype(name: Optional[str]) -> bool:
    return bool(name) and name.startswith("float")


def parse_dtype_expr(expr: ast.expr) -> Optional[str]:
    """Canonical dtype name from a ``dtype=`` argument expression."""
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        return _DTYPE_NAMES.get(expr.value)
    if isinstance(expr, ast.Constant) and expr.value is None:
        return None
    if isinstance(expr, ast.Attribute):
        return _DTYPE_NAMES.get(expr.attr)
    if isinstance(expr, ast.Name):
        return _DTYPE_NAMES.get(expr.id)
    if isinstance(expr, ast.Call):  # np.dtype('float32')
        if expr.args:
            return parse_dtype_expr(expr.args[0])
    return None


def _join(a: Optional[str], b: Optional[str]) -> Optional[str]:
    """Binary-op result dtype: float beats int, wider float beats narrow."""
    if a is None or b is None:
        return None
    if a == b:
        return a
    order = {"bool": 0, "int64": 1, "float16": 2, "float32": 3,
             "float64": 4, "float128": 5}
    fa, fb = order.get(a), order.get(b)
    if fa is None or fb is None:
        return None
    winner = a if fa >= fb else b
    # int op int of different widths etc. -- canonicalized already.
    if is_float_dtype(a) != is_float_dtype(b):
        return winner if is_float_dtype(winner) else None
    return winner


def _call_leaf(call: ast.Call) -> Optional[str]:
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _dtype_kw(call: ast.Call) -> Optional[ast.expr]:
    for kw in call.keywords:
        if kw.arg == "dtype":
            return kw.value
    return None


def infer_dtype(expr: ast.expr, df: Optional[FunctionDataflow] = None,
                _seen: Optional[Set[int]] = None) -> Optional[str]:
    """Dtype name of ``expr`` or None when undecidable.

    ``df`` enables Name resolution through reaching definitions; all
    reaching definitions must agree, otherwise the answer is None (the
    branch-divergence rule inspects the per-definition answers itself).
    """
    seen = _seen if _seen is not None else set()
    if id(expr) in seen:
        return None
    seen.add(id(expr))

    if isinstance(expr, ast.Constant):
        if isinstance(expr.value, bool):
            return "bool"
        if isinstance(expr.value, float):
            return "float64"
        if isinstance(expr.value, int):
            return "int64"
        return None
    if isinstance(expr, ast.Name):
        if df is None:
            return None
        answers = set()
        for definition in df.reaching(expr):
            answers.add(_definition_dtype(definition, df, seen))
        if len(answers) == 1:
            return answers.pop()
        return None
    if isinstance(expr, ast.BinOp):
        return _join(infer_dtype(expr.left, df, seen),
                     infer_dtype(expr.right, df, seen))
    if isinstance(expr, ast.UnaryOp):
        return infer_dtype(expr.operand, df, seen)
    if isinstance(expr, ast.Subscript):
        return infer_dtype(expr.value, df, seen)
    if isinstance(expr, (ast.List, ast.Tuple)):
        result: Optional[str] = None
        for elt in expr.elts:
            elt_dtype = infer_dtype(elt, df, seen)
            if elt_dtype is None:
                return None
            result = elt_dtype if result is None else _join(result, elt_dtype)
        return result
    if isinstance(expr, ast.Compare):
        return "bool"
    if isinstance(expr, ast.IfExp):
        a = infer_dtype(expr.body, df, seen)
        b = infer_dtype(expr.orelse, df, seen)
        return a if a == b else None
    if isinstance(expr, ast.Call):
        return _call_dtype(expr, df, seen)
    return None


def _definition_dtype(definition, df: FunctionDataflow,
                      seen: Set[int]) -> Optional[str]:
    if definition.value is None:
        return None
    if definition.is_loop_target:
        # for x in <iterable>: element dtype == array dtype.
        return infer_dtype(definition.value, df, seen)
    return infer_dtype(definition.value, df, seen)


def _call_dtype(call: ast.Call, df: Optional[FunctionDataflow],
                seen: Set[int]) -> Optional[str]:
    leaf = _call_leaf(call)
    if leaf is None:
        return None
    explicit = _dtype_kw(call)
    if explicit is not None:
        parsed = parse_dtype_expr(explicit)
        if parsed is not None:
            return parsed
        # dtype= present but unparseable: trust it is deliberate.
        return None

    if leaf == "astype" and call.args:
        return parse_dtype_expr(call.args[0])
    if leaf in _FLOAT_DEFAULT_CTORS:
        return "float64"
    if leaf in ("array", "asarray", "full", "concatenate", "stack",
                "hstack", "vstack"):
        if call.args:
            return infer_dtype(call.args[0], df, seen)
        return None
    if leaf in _FLOAT_DRAWS:
        return "float64"
    if leaf in _INT_DRAWS or leaf in _INT_RESULTS:
        return "int64"
    if leaf in _PASSTHROUGH and call.args:
        return infer_dtype(call.args[0], df, seen)
    if leaf in _DTYPE_KEEPING_REDUCERS:
        # arr.cumsum(...) reduces the receiver; np.cumsum(arr) reduces
        # arg 0 (the receiver `np` resolves to no dtype and falls through).
        if isinstance(call.func, ast.Attribute):
            receiver_dtype = infer_dtype(call.func.value, df, seen)
            if receiver_dtype is not None:
                return receiver_dtype
        if call.args:
            return infer_dtype(call.args[0], df, seen)
    return None


def argument_dtype(call: ast.Call, df: Optional[FunctionDataflow]) -> Optional[str]:
    """Dtype of the array a reduction reduces: method receiver or arg 0."""
    if isinstance(call.func, ast.Attribute):
        receiver_dtype = infer_dtype(call.func.value, df)
        if receiver_dtype is not None:
            return receiver_dtype
    if call.args:
        return infer_dtype(call.args[0], df)
    return None
