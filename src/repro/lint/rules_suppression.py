"""Suppression-audit rule (NOQ9xx).

``# repro: noqa[CODE]`` comments are load-bearing documentation: each
one asserts "this line violates CODE for a reason we stand behind".
When the underlying code changes and the violation disappears, the
stale comment keeps asserting an exception that no longer exists --
and silently pre-authorizes a future regression on that line.

``NOQ901`` runs as a post-pass (``is_post_pass``): after the visitor
rules finish and the noqa filter has partitioned findings into kept
and suppressed, it walks the file's noqa map and flags every
suppression that suppressed nothing.  A coded suppression is judged
only for codes whose rules actually ran in this invocation (a
``--select DET1`` run cannot call a ``KER601`` suppression unused);
bare ``noqa`` comments are judged only when every registered visitor
rule ran.  Unknown codes in the bracket are always flagged -- they
never suppress anything under any selection.
"""

from __future__ import annotations

from typing import List, Set

from .findings import Finding, Severity
from .framework import LintRule, register, all_rules

__all__ = ["UnusedSuppression"]


@register
class UnusedSuppression(LintRule):
    """A ``# repro: noqa`` comment that suppresses no finding."""

    code = "NOQ901"
    name = "unused-suppression"
    severity = Severity.WARNING
    is_post_pass = True
    rationale = (
        "a noqa that suppresses nothing documents an exception that no "
        "longer exists and pre-authorizes the next real violation on that "
        "line; delete it or narrow its codes to what the line still needs"
    )

    def post_run(self, kept: List[Finding], suppressed: List[Finding],
                 ran_codes: Set[str]) -> List[Finding]:
        known_codes = {cls.code for cls in all_rules() if not cls.is_post_pass}
        all_ran = known_codes <= ran_codes
        suppressed_by_line: dict = {}
        for finding in suppressed:
            suppressed_by_line.setdefault(finding.line, set()).add(
                finding.code)

        for line, codes in sorted(self.ctx.noqa.items()):
            hit = suppressed_by_line.get(line, set())
            if not codes:
                # Bare noqa: only judgeable when every visitor rule ran.
                if all_ran and not hit:
                    self._flag(line, "blanket '# repro: noqa' suppresses "
                                     "nothing on this line; delete it")
                continue
            if self.code in codes:
                continue  # noqa[NOQ901] opts a line out of the audit
            unused = sorted(
                code for code in codes
                if code not in hit
                and (code not in known_codes or code in ran_codes)
            )
            if unused:
                self._flag(line, "noqa[" + ",".join(unused) + "] suppresses "
                           "nothing on this line; delete the comment or "
                           "drop the unused codes")
        return self.findings

    def _flag(self, line: int, message: str) -> None:
        self.findings.append(Finding(
            path=self.ctx.path,
            line=line,
            col=1,
            code=self.code,
            message=message,
            severity=self.severity,
        ))