"""Intraprocedural dataflow: CFG, reaching definitions, def-use chains.

The syntactic rules ask "does this expression appear"; the dataflow
rules ask "can this value reach that use".  This module answers the
second kind of question for one function body at a time:

* :func:`build_cfg` lowers the body to basic blocks of *events* --
  simple statements, branch tests, loop headers -- with successor
  edges.  Compound statements contribute only their header expression
  as an event; their bodies become blocks of their own.
* :class:`FunctionDataflow` runs a standard reaching-definitions
  worklist over the blocks and materializes def-use chains: for every
  ``Name`` load it knows which definitions (assignments, loop targets,
  parameters, ``with`` bindings) can flow there, and for every
  definition which loads consume it.
* :meth:`FunctionDataflow.can_cofire` answers the path question the
  RNG provenance rules need: can two uses of one definition both
  execute in a single run of the function (i.e. neither is killed
  before the other on every connecting path)?  Uses on mutually
  exclusive branches cannot; a use re-reached only through a
  redefinition cannot.
* :meth:`FunctionDataflow.tainted_loads` is a forward taint pass over
  the chains: seed definitions are chosen by predicate and taint flows
  through assignments, so "does this branch condition depend on a
  drawn value" is one membership test.

The analysis is deliberately flow-sensitive but path-insensitive and
intraprocedural: cheap enough to run on every function of every file
within the lint wall-time budget, precise enough that the rules built
on it keep false positives near zero.
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = ["Definition", "Event", "Block", "CFG", "build_cfg", "FunctionDataflow"]

#: Statement types copied into a block verbatim (one event each).
_SIMPLE_STMTS = (
    ast.Assign, ast.AugAssign, ast.AnnAssign, ast.Expr, ast.Return,
    ast.Raise, ast.Assert, ast.Pass, ast.Import, ast.ImportFrom,
    ast.Global, ast.Nonlocal, ast.Delete,
)


class Definition:
    """One binding of ``name``: an assignment, parameter, loop target...

    ``value`` is the bound expression when one can be named (the RHS of
    a single-target assignment, the iterable of a ``for`` via
    ``is_loop_target``), else ``None`` (tuple unpacking, parameters).
    """

    __slots__ = ("name", "event", "node", "value", "is_loop_target", "is_param")

    def __init__(self, name: str, event: "Event", node: ast.AST,
                 value: Optional[ast.expr] = None,
                 is_loop_target: bool = False, is_param: bool = False):
        self.name = name
        self.event = event
        self.node = node
        self.value = value
        self.is_loop_target = is_loop_target
        self.is_param = is_param

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Definition({self.name!r}@{getattr(self.node, 'lineno', '?')})"


class Event:
    """One atomic step: a simple statement or a compound-stmt header."""

    __slots__ = ("node", "defs", "use_exprs", "index", "block")

    def __init__(self, node: ast.AST):
        self.node = node
        self.defs: List[Definition] = []
        self.use_exprs: List[ast.expr] = []
        self.index = -1          # global order, assigned by build_cfg
        self.block = -1


class Block:
    __slots__ = ("id", "events", "succ")

    def __init__(self, block_id: int):
        self.id = block_id
        self.events: List[Event] = []
        self.succ: List[int] = []


class CFG:
    def __init__(self) -> None:
        self.blocks: List[Block] = []
        self.events: List[Event] = []

    def new_block(self) -> Block:
        block = Block(len(self.blocks))
        self.blocks.append(block)
        return block

    def add_event(self, block: Block, event: Event) -> Event:
        event.index = len(self.events)
        event.block = block.id
        self.events.append(event)
        block.events.append(event)
        return event


def _target_names(target: ast.expr) -> List[Tuple[str, ast.AST]]:
    """Plain names bound by an assignment/loop target (nested unpacks)."""
    if isinstance(target, ast.Name):
        return [(target.id, target)]
    if isinstance(target, (ast.Tuple, ast.List)):
        names: List[Tuple[str, ast.AST]] = []
        for elt in target.elts:
            names.extend(_target_names(elt))
        return names
    if isinstance(target, ast.Starred):
        return _target_names(target.value)
    return []  # attribute/subscript stores don't bind a local


def _event_for_stmt(stmt: ast.stmt) -> Event:
    event = Event(stmt)
    if isinstance(stmt, ast.Assign):
        single = len(stmt.targets) == 1 and isinstance(stmt.targets[0], ast.Name)
        for target in stmt.targets:
            for name, node in _target_names(target):
                event.defs.append(Definition(
                    name, event, node, value=stmt.value if single else None))
            if isinstance(target, (ast.Attribute, ast.Subscript)):
                event.use_exprs.append(target)
        event.use_exprs.append(stmt.value)
    elif isinstance(stmt, ast.AugAssign):
        if isinstance(stmt.target, ast.Name):
            event.defs.append(Definition(stmt.target.id, event, stmt.target,
                                         value=None))
            # x += y reads the old x.
            event.use_exprs.append(ast.copy_location(
                ast.Name(id=stmt.target.id, ctx=ast.Load()), stmt.target))
        else:
            event.use_exprs.append(stmt.target)
        event.use_exprs.append(stmt.value)
    elif isinstance(stmt, ast.AnnAssign):
        if stmt.value is not None:
            if isinstance(stmt.target, ast.Name):
                event.defs.append(Definition(stmt.target.id, event,
                                             stmt.target, value=stmt.value))
            event.use_exprs.append(stmt.value)
    elif isinstance(stmt, (ast.Expr, ast.Return)):
        if stmt.value is not None:
            event.use_exprs.append(stmt.value)
    elif isinstance(stmt, ast.Raise):
        event.use_exprs.extend(e for e in (stmt.exc, stmt.cause) if e)
    elif isinstance(stmt, ast.Assert):
        event.use_exprs.append(stmt.test)
        if stmt.msg:
            event.use_exprs.append(stmt.msg)
    elif isinstance(stmt, ast.Delete):
        event.use_exprs.extend(stmt.targets)
    elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
        for alias in stmt.names:
            local = alias.asname or alias.name.split(".", 1)[0]
            if local != "*":
                event.defs.append(Definition(local, event, stmt, value=None))
    return event


class _Builder:
    def __init__(self) -> None:
        self.cfg = CFG()
        self.current = self.cfg.new_block()          # block 0 = entry
        self.loop_stack: List[Tuple[Block, Block]] = []  # (header, after)
        self.terminated = False

    def _goto(self, block: Block) -> None:
        self.current = block
        self.terminated = False

    def _edge(self, frm: Block, to: Block) -> None:
        if to.id not in frm.succ:
            frm.succ.append(to.id)

    def _header_event(self, node: ast.AST,
                      use_exprs: Sequence[ast.expr],
                      defs: Sequence[Definition] = ()) -> Event:
        event = Event(node)
        event.use_exprs.extend(use_exprs)
        event.defs.extend(defs)
        return self.cfg.add_event(self.current, event)

    def emit(self, stmts: Iterable[ast.stmt]) -> None:
        for stmt in stmts:
            if self.terminated:
                # Unreachable code still gets events (rules may report
                # on it) in a block with no predecessors.
                self._goto(self.cfg.new_block())
            if isinstance(stmt, _SIMPLE_STMTS):
                self.cfg.add_event(self.current, _event_for_stmt(stmt))
                if isinstance(stmt, (ast.Return, ast.Raise)):
                    self.terminated = True
            elif isinstance(stmt, ast.If):
                self._emit_if(stmt)
            elif isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
                self._emit_loop(stmt)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                self._emit_with(stmt)
            elif isinstance(stmt, ast.Try):
                self._emit_try(stmt)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                   ast.ClassDef)):
                self._emit_nested_def(stmt)
            elif isinstance(stmt, ast.Break):
                if self.loop_stack:
                    self._edge(self.current, self.loop_stack[-1][1])
                self.terminated = True
            elif isinstance(stmt, ast.Continue):
                if self.loop_stack:
                    self._edge(self.current, self.loop_stack[-1][0])
                self.terminated = True
            else:
                # match statements and anything new: treat each case
                # body as an alternative branch off the subject.
                self._emit_opaque(stmt)

    def _emit_if(self, stmt: ast.If) -> None:
        self._header_event(stmt, [stmt.test])
        before = self.current
        after = self.cfg.new_block()

        body = self.cfg.new_block()
        self._edge(before, body)
        self._goto(body)
        self.emit(stmt.body)
        if not self.terminated:
            self._edge(self.current, after)

        if stmt.orelse:
            orelse = self.cfg.new_block()
            self._edge(before, orelse)
            self._goto(orelse)
            self.emit(stmt.orelse)
            if not self.terminated:
                self._edge(self.current, after)
        else:
            self._edge(before, after)
        self._goto(after)

    def _emit_loop(self, stmt) -> None:
        header = self.cfg.new_block()
        self._edge(self.current, header)
        self._goto(header)
        if isinstance(stmt, ast.While):
            self._header_event(stmt, [stmt.test])
        else:
            defs = []
            event = Event(stmt)
            for name, node in _target_names(stmt.target):
                defs.append(Definition(name, event, node, value=stmt.iter,
                                       is_loop_target=True))
            event.defs.extend(defs)
            event.use_exprs.append(stmt.iter)
            self.cfg.add_event(header, event)
        after = self.cfg.new_block()
        self._edge(header, after)

        body = self.cfg.new_block()
        self._edge(header, body)
        self.loop_stack.append((header, after))
        self._goto(body)
        self.emit(stmt.body)
        if not self.terminated:
            self._edge(self.current, header)
        self.loop_stack.pop()

        if stmt.orelse:
            self._goto(after)
            self.emit(stmt.orelse)
        else:
            self._goto(after)

    def _emit_with(self, stmt) -> None:
        event = Event(stmt)
        for item in stmt.items:
            event.use_exprs.append(item.context_expr)
            if item.optional_vars is not None:
                for name, node in _target_names(item.optional_vars):
                    event.defs.append(Definition(name, event, node,
                                                 value=item.context_expr))
        self.cfg.add_event(self.current, event)
        self.emit(stmt.body)

    def _emit_try(self, stmt: ast.Try) -> None:
        # Coarse model: the body runs, then either falls through or any
        # handler runs; finally runs on the join.  Precise exception
        # edges are overkill for determinism linting.
        before = self.current
        body = self.cfg.new_block()
        self._edge(before, body)
        self._goto(body)
        self.emit(stmt.body)
        body_end = None if self.terminated else self.current

        after = self.cfg.new_block()
        if body_end is not None:
            self._edge(body_end, after)
        for handler in stmt.handlers:
            block = self.cfg.new_block()
            # The handler can fire from anywhere in the body: edge from
            # the body entry (defs before the try still reach it).
            self._edge(before, block)
            self._edge(body, block)
            self._goto(block)
            if handler.name:
                event = Event(handler)
                event.defs.append(Definition(handler.name, event, handler))
                self.cfg.add_event(block, event)
            self.emit(handler.body)
            if not self.terminated:
                self._edge(self.current, after)
        if stmt.orelse and body_end is not None:
            self._goto(body_end)
            self.emit(stmt.orelse)
            if not self.terminated:
                self._edge(self.current, after)
        self._goto(after)
        if stmt.finalbody:
            self.emit(stmt.finalbody)

    def _emit_nested_def(self, stmt) -> None:
        event = Event(stmt)
        event.defs.append(Definition(stmt.name, event, stmt, value=None))
        # The nested body's free variables are uses at the definition
        # point: that is when a closure captures the enclosing binding.
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            event.use_exprs.extend(stmt.args.defaults)
            event.use_exprs.extend(d for d in stmt.args.kw_defaults if d)
        event.use_exprs.extend(getattr(stmt, "decorator_list", []))
        self.cfg.add_event(self.current, event)

    def _emit_opaque(self, stmt: ast.stmt) -> None:
        event = Event(stmt)
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
                event.defs.append(Definition(node.id, event, node))
        for field in ("subject", "test", "value"):
            child = getattr(stmt, field, None)
            if isinstance(child, ast.expr):
                event.use_exprs.append(child)
        self.cfg.add_event(self.current, event)


def build_cfg(fn) -> CFG:
    """CFG for one ``FunctionDef``/``AsyncFunctionDef``/``Lambda`` body."""
    builder = _Builder()
    entry_event = Event(fn)
    args = fn.args
    for arg in (*getattr(args, "posonlyargs", ()), *args.args, *args.kwonlyargs):
        entry_event.defs.append(Definition(arg.arg, entry_event, arg,
                                           is_param=True))
    for arg in (args.vararg, args.kwarg):
        if arg is not None:
            entry_event.defs.append(Definition(arg.arg, entry_event, arg,
                                               is_param=True))
    builder.cfg.add_event(builder.current, entry_event)
    body = fn.body if isinstance(fn.body, list) else [ast.Expr(fn.body)]
    builder.emit(body)
    return builder.cfg


def _collect_loads(expr: ast.expr, out: List[ast.Name],
                   shadowed: Optional[Set[str]] = None) -> None:
    """Name loads in ``expr``, honoring lambda/comprehension shadowing."""
    shadowed = shadowed or set()
    if isinstance(expr, ast.Name):
        if isinstance(expr.ctx, ast.Load) and expr.id not in shadowed:
            out.append(expr)
        return
    if isinstance(expr, ast.Lambda):
        args = expr.args
        inner = shadowed | {
            a.arg for a in (*getattr(args, "posonlyargs", ()), *args.args,
                            *args.kwonlyargs)
        }
        for arg in (args.vararg, args.kwarg):
            if arg is not None:
                inner = inner | {arg.arg}
        for default in (*args.defaults, *(d for d in args.kw_defaults if d)):
            _collect_loads(default, out, shadowed)
        _collect_loads(expr.body, out, inner)
        return
    if isinstance(expr, (ast.ListComp, ast.SetComp, ast.DictComp,
                         ast.GeneratorExp)):
        inner = set(shadowed)
        for comp in expr.generators:
            _collect_loads(comp.iter, out, inner)
            for name, _ in _target_names(comp.target):
                inner.add(name)
            for cond in comp.ifs:
                _collect_loads(cond, out, inner)
        if isinstance(expr, ast.DictComp):
            _collect_loads(expr.key, out, inner)
            _collect_loads(expr.value, out, inner)
        else:
            _collect_loads(expr.elt, out, inner)
        return
    if isinstance(expr, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return  # handled via free variables elsewhere
    for child in ast.iter_child_nodes(expr):
        if isinstance(child, ast.expr):
            _collect_loads(child, out, shadowed)
        elif isinstance(child, (ast.comprehension, ast.keyword,
                                ast.FormattedValue)):
            for sub in ast.iter_child_nodes(child):
                if isinstance(sub, ast.expr):
                    _collect_loads(sub, out, shadowed)


def free_loads(fn) -> List[ast.Name]:
    """Name loads inside a nested function that it does not bind itself."""
    bound: Set[str] = set()
    args = fn.args
    for arg in (*getattr(args, "posonlyargs", ()), *args.args, *args.kwonlyargs,
                args.vararg, args.kwarg):
        if arg is not None:
            bound.add(arg.arg)
    for node in ast.walk(fn):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            bound.add(node.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)) and node is not fn:
            bound.add(node.name)
    loads: List[ast.Name] = []
    body = fn.body if isinstance(fn.body, list) else [ast.Expr(fn.body)]
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load) \
                    and node.id not in bound:
                loads.append(node)
    return loads


class FunctionDataflow:
    """Reaching definitions and def-use chains for one function body."""

    def __init__(self, fn):
        self.fn = fn
        self.cfg = build_cfg(fn)
        self._defs_by_name: Dict[str, List[Definition]] = {}
        for event in self.cfg.events:
            for definition in event.defs:
                self._defs_by_name.setdefault(definition.name, []).append(definition)
        self._use_map: Dict[int, Tuple[ast.Name, Set[Definition]]] = {}
        self._du: Dict[int, List[ast.Name]] = {}  # id(Definition) -> uses
        self._solve()

    # -- reaching definitions ------------------------------------------------

    def _solve(self) -> None:
        blocks = self.cfg.blocks
        n = len(blocks)
        gen: List[Set[Definition]] = [set() for _ in range(n)]
        kill_names: List[Set[str]] = [set() for _ in range(n)]
        for block in blocks:
            for event in block.events:
                for definition in event.defs:
                    gen[block.id] = {
                        d for d in gen[block.id] if d.name != definition.name
                    }
                    gen[block.id].add(definition)
                    kill_names[block.id].add(definition.name)
        preds: List[List[int]] = [[] for _ in range(n)]
        for block in blocks:
            for succ in block.succ:
                preds[succ].append(block.id)

        in_sets: List[Set[Definition]] = [set() for _ in range(n)]
        out_sets: List[Set[Definition]] = [set() for _ in range(n)]
        work = list(range(n))
        while work:
            bid = work.pop(0)
            new_in: Set[Definition] = set()
            for pred in preds[bid]:
                new_in |= out_sets[pred]
            new_out = {d for d in new_in if d.name not in kill_names[bid]}
            new_out |= gen[bid]
            in_sets[bid] = new_in
            if new_out != out_sets[bid]:
                out_sets[bid] = new_out
                for succ in blocks[bid].succ:
                    if succ not in work:
                        work.append(succ)

        # Walk each block to bind uses to the defs live at that point.
        for block in blocks:
            live: Dict[str, Set[Definition]] = {}
            for definition in in_sets[block.id]:
                live.setdefault(definition.name, set()).add(definition)
            for event in block.events:
                loads: List[ast.Name] = []
                for expr in event.use_exprs:
                    _collect_loads(expr, loads)
                if isinstance(event.node, (ast.FunctionDef,
                                           ast.AsyncFunctionDef)):
                    loads.extend(free_loads(event.node))
                for load in loads:
                    reaching = frozenset(live.get(load.id, set()))
                    self._use_map[id(load)] = (load, set(reaching))
                    for definition in reaching:
                        self._du.setdefault(id(definition), []).append(load)
                for definition in event.defs:
                    live[definition.name] = {definition}

    # -- public API ----------------------------------------------------------

    def definitions_of(self, name: str) -> List[Definition]:
        return list(self._defs_by_name.get(name, ()))

    def reaching(self, load: ast.Name) -> Set[Definition]:
        entry = self._use_map.get(id(load))
        return set(entry[1]) if entry else set()

    def uses_of(self, definition: Definition) -> List[ast.Name]:
        return list(self._du.get(id(definition), ()))

    def loads(self) -> List[ast.Name]:
        """Every resolved Name load, in event order."""
        return [load for load, _ in self._use_map.values()]

    def can_cofire(self, definition: Definition, use_a: ast.Name,
                   use_b: ast.Name) -> bool:
        """Can both uses consume the *same* activation of ``definition``?

        True when a CFG path runs from one use to the other without
        crossing a redefinition of the name.  Uses on mutually
        exclusive branches, or re-reached only through a loop that
        rebinds the name, return False.
        """
        pos = {}
        for block in self.cfg.blocks:
            for idx, event in enumerate(block.events):
                for expr in event.use_exprs:
                    loads: List[ast.Name] = []
                    _collect_loads(expr, loads)
                    for load in loads:
                        if load is use_a or load is use_b:
                            pos[id(load)] = (block.id, idx)
                if isinstance(event.node, (ast.FunctionDef,
                                           ast.AsyncFunctionDef)):
                    for load in free_loads(event.node):
                        if load is use_a or load is use_b:
                            pos[id(load)] = (block.id, idx)
        if id(use_a) not in pos or id(use_b) not in pos:
            return False
        return (self._reaches(pos[id(use_a)], pos[id(use_b)], definition.name)
                or self._reaches(pos[id(use_b)], pos[id(use_a)],
                                 definition.name))

    def _reaches(self, start: Tuple[int, int], goal: Tuple[int, int],
                 name: str) -> bool:
        """Path from just after ``start`` to ``goal`` avoiding defs of name."""
        start_block, start_idx = start
        goal_block, goal_idx = goal

        def kills(event: Event) -> bool:
            return any(d.name == name for d in event.defs)

        # Same block, forward: scan events between the two.
        if start_block == goal_block and start_idx <= goal_idx:
            events = self.cfg.blocks[start_block].events
            if not any(kills(e) for e in events[start_idx + 1:goal_idx + 1]):
                return True
        # BFS over blocks; a block is traversable if no def of name
        # inside the traversed span.
        seen = set()
        frontier = []
        events = self.cfg.blocks[start_block].events
        if not any(kills(e) for e in events[start_idx + 1:]):
            frontier = list(self.cfg.blocks[start_block].succ)
        while frontier:
            bid = frontier.pop(0)
            if bid in seen:
                continue
            seen.add(bid)
            events = self.cfg.blocks[bid].events
            if bid == goal_block:
                if not any(kills(e) for e in events[:goal_idx + 1]):
                    return True
                # fall through: maybe reachable again around a loop --
                # but any such path crosses this kill; stop here.
            if any(kills(e) for e in events):
                continue
            frontier.extend(self.cfg.blocks[bid].succ)
        return False

    def tainted_loads(self,
                      is_seed: Callable[[ast.expr], bool]) -> Set[int]:
        """ids of Name loads whose value derives from a seed expression.

        Taint starts at definitions whose bound value satisfies
        ``is_seed`` (checked on the value expression and every call
        inside it) and propagates through assignments until fixpoint.
        """
        def expr_seeds(expr: Optional[ast.expr]) -> bool:
            if expr is None:
                return False
            return any(isinstance(node, ast.expr) and is_seed(node)
                       for node in ast.walk(expr))

        tainted_defs: Set[int] = set()
        for defs in self._defs_by_name.values():
            for definition in defs:
                if expr_seeds(definition.value):
                    tainted_defs.add(id(definition))

        changed = True
        while changed:
            changed = False
            for defs in self._defs_by_name.values():
                for definition in defs:
                    if id(definition) in tainted_defs or definition.value is None:
                        continue
                    loads: List[ast.Name] = []
                    _collect_loads(definition.value, loads)
                    for load in loads:
                        if any(id(d) in tainted_defs
                               for d in self.reaching(load)):
                            tainted_defs.add(id(definition))
                            changed = True
                            break

        tainted_uses: Set[int] = set()
        for load, reaching in self._use_map.values():
            if any(id(d) in tainted_defs for d in reaching):
                tainted_uses.add(id(load))
        return tainted_uses

    def expr_is_tainted(self, expr: ast.expr, tainted_uses: Set[int],
                        is_seed: Callable[[ast.expr], bool]) -> bool:
        """Does ``expr`` read a tainted variable or contain a seed call?"""
        if any(isinstance(node, ast.expr) and is_seed(node)
               for node in ast.walk(expr)):
            return True
        loads: List[ast.Name] = []
        _collect_loads(expr, loads)
        return any(id(load) in tainted_uses for load in loads)
