"""Kernel-layer discipline rules (KER6xx).

The columnar engines (synthesis shard engine, generator wave engine,
filtering/measurement column path, batched overlay engine) draw
categorical samples, plan shards, and fan work out to process pools
exclusively through ``repro.core.kernels``.  That single-funnel discipline is what makes
the kernel layer's guarantees portable: one equivalence battery proves
every backend byte-identical, one optimization pass (categorical
cutpoint tables, fused offset assembly) speeds up all three engines,
and one module owns the shard-stream spawning that defines trace
identity.  A raw ``np.searchsorted`` draw or ad-hoc
``ProcessPoolExecutor`` reintroduced inside an engine silently forks
the idiom back out of the funnel -- correct today, unmaintained and
unaccelerated tomorrow.  This rule keeps the funnel machine-checkable.

Flagged inside the engine modules (and only there):

* ``numpy.searchsorted(...)`` calls (and ``.searchsorted`` method
  calls) -- inverse-CDF draws belong behind
  ``repro.core.kernels.CategoricalTable`` / ``searchsorted_left``;
* ``numpy.random.SeedSequence(...)`` -- shard stream spawning belongs
  behind ``repro.core.kernels.spawn_shard_streams``;
* ``concurrent.futures.ProcessPoolExecutor(...)`` -- worker fan-out
  belongs behind ``repro.core.kernels.pool_map`` /
  ``pool_map_windowed``.

The kernels package itself is exempt (it *implements* the idioms), as
is everything outside the engine modules: analysis code comparing CDFs
with ``searchsorted`` is statistics, not a sampling hot path.
Deliberate exceptions carry ``# repro: noqa[KER601] -- justification``.
"""

from __future__ import annotations

import ast

from .framework import LintRule, register

__all__ = ["RawKernelIdiom", "DeprecatedShimImport"]

#: Path fragments identifying the kernel-backed engine modules; matched
#: against the posix form of the reported path.
ENGINE_PATHS = (
    "repro/synthesis/columnar_engine",
    "repro/synthesis/synthesizer",
    "repro/core/generator_columnar",
    "repro/measurement/columnar",
    "repro/measurement/shards",
    "repro/filtering/columnar",
    "repro/filtering/streaming",
    "repro/agents/user_model",
    "repro/gnutella/columnar_overlay",
    "repro/gnutella/topology",
    "repro/gnutella/qrp",
)

#: Fully qualified callables that must stay behind the kernel layer.
_FUNNELED_CALLS = {
    "numpy.searchsorted": (
        "raw searchsorted draw in a kernel-backed engine; use "
        "repro.core.kernels.CategoricalTable/searchsorted_left so every "
        "backend sees one sampling idiom"
    ),
    "numpy.random.SeedSequence": (
        "ad-hoc SeedSequence in a kernel-backed engine; shard streams "
        "come from repro.core.kernels.spawn_shard_streams, which owns "
        "the spawn layout that defines trace identity"
    ),
    "concurrent.futures.ProcessPoolExecutor": (
        "ad-hoc process pool in a kernel-backed engine; fan out through "
        "repro.core.kernels.pool_map/pool_map_windowed so worker policy "
        "stays in one place"
    ),
}


@register
class RawKernelIdiom(LintRule):
    """Raw draw/shard/pool idiom bypassing ``repro.core.kernels``."""

    code = "KER601"
    name = "raw-kernel-idiom"
    rationale = (
        "the engines' backend-portability and one-pass-optimizes-all "
        "claims hold only while categorical draws, shard-stream "
        "spawning, and pool fan-out go through repro.core.kernels; a "
        "raw idiom inside an engine forks the hot path back out of the "
        "funnel where no equivalence battery covers it"
    )

    def _in_engine_module(self) -> bool:
        path = self.ctx.path.replace("\\", "/")
        return any(fragment in path for fragment in ENGINE_PATHS)

    def visit_Call(self, node: ast.Call) -> None:
        if self._in_engine_module():
            qualified = self.ctx.qualified(node.func)
            message = _FUNNELED_CALLS.get(qualified)
            if message is not None:
                self.report(node, message)
            elif (
                qualified is None
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "searchsorted"
            ):
                # cum.searchsorted(u) method form -- same idiom, not
                # import-anchored, so match on the attribute name.
                self.report(node, _FUNNELED_CALLS["numpy.searchsorted"])
        self.generic_visit(node)


#: Modules that were deleted after a deprecation window; importing them
#: anywhere is an error, so the shim cannot quietly come back.
_REMOVED_MODULES = {
    "repro.core.arrays": (
        "repro.core.arrays was a deprecated re-export shim, removed; "
        "import segmented_arange/segmented_cumsum from repro.core.kernels"
    ),
}


@register
class DeprecatedShimImport(LintRule):
    """Import of a removed compatibility shim (``repro.core.arrays``)."""

    code = "KER602"
    name = "deprecated-shim-import"
    rationale = (
        "removed compatibility shims must stay removed: an import of "
        "repro.core.arrays would only work by resurrecting the shim "
        "module, forking the kernel funnel back into two entry points"
    )

    def _check(self, node: ast.AST, module: str) -> None:
        message = _REMOVED_MODULES.get(module)
        if message is not None:
            self.report(node, message)

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._check(node, alias.name)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and node.level == 0:
            self._check(node, node.module)
            # ``from repro.core import arrays`` names the shim too.
            for alias in node.names:
                self._check(node, f"{node.module}.{alias.name}")
        self.generic_visit(node)
