"""Gnutella 0.6 connection handshake.

A connecting client sends ``GNUTELLA CONNECT/0.6`` with capability
headers; the accepting peer answers ``GNUTELLA/0.6 200 OK`` with its own
headers, and the client confirms.  The paper's measurement methodology
records the ``User-Agent`` header exchanged here to attribute query
anomalies to specific client implementations (Section 3.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

__all__ = ["HandshakeError", "HandshakeOffer", "HandshakeResponse", "negotiate", "parse_headers"]

_CONNECT_LINE = "GNUTELLA CONNECT/0.6"
_OK_LINE = "GNUTELLA/0.6 200 OK"
_REJECT_LINE = "GNUTELLA/0.6 503 Service Unavailable"


class HandshakeError(ValueError):
    """Raised when a handshake exchange is malformed or rejected."""


@dataclass(frozen=True)
class HandshakeOffer:
    """The connecting side's opening message."""

    user_agent: str
    ultrapeer: bool = False
    headers: Dict[str, str] = field(default_factory=dict)

    def render(self) -> str:
        """The on-the-wire text of the offer."""
        lines = [_CONNECT_LINE, f"User-Agent: {self.user_agent}",
                 f"X-Ultrapeer: {'True' if self.ultrapeer else 'False'}"]
        lines.extend(f"{k}: {v}" for k, v in sorted(self.headers.items()))
        return "\r\n".join(lines) + "\r\n\r\n"


@dataclass(frozen=True)
class HandshakeResponse:
    """The accepting side's decision."""

    accepted: bool
    user_agent: str
    ultrapeer: bool = True
    headers: Dict[str, str] = field(default_factory=dict)

    def render(self) -> str:
        status = _OK_LINE if self.accepted else _REJECT_LINE
        lines = [status, f"User-Agent: {self.user_agent}",
                 f"X-Ultrapeer: {'True' if self.ultrapeer else 'False'}"]
        lines.extend(f"{k}: {v}" for k, v in sorted(self.headers.items()))
        return "\r\n".join(lines) + "\r\n\r\n"


def parse_headers(text: str) -> Tuple[str, Dict[str, str]]:
    """Parse a handshake block into (status line, header dict).

    Header names are case-insensitive per the specification; they are
    normalized to title case.
    """
    block = text.split("\r\n\r\n", 1)[0]
    lines = block.split("\r\n")
    if not lines or not lines[0]:
        raise HandshakeError("empty handshake block")
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        if ":" not in line:
            raise HandshakeError(f"malformed header line {line!r}")
        name, value = line.split(":", 1)
        headers[name.strip().title()] = value.strip()
    return lines[0], headers


def negotiate(
    offer_text: str,
    acceptor_user_agent: str,
    acceptor_is_ultrapeer: bool = True,
    accept_leaves: bool = True,
    slots_available: bool = True,
) -> Tuple[HandshakeResponse, Optional[HandshakeOffer]]:
    """Run the accepting side of the 0.6 handshake.

    Returns the response to send plus the parsed offer (None when the
    offer was rejected before parsing completed).  The measurement node
    always accepts while it has free connection slots; the recorded
    offer's ``user_agent`` feeds the Section 3.3 filtering.
    """
    try:
        status, headers = parse_headers(offer_text)
    except HandshakeError:
        return HandshakeResponse(False, acceptor_user_agent, acceptor_is_ultrapeer), None
    if status != _CONNECT_LINE:
        return HandshakeResponse(False, acceptor_user_agent, acceptor_is_ultrapeer), None
    offer = HandshakeOffer(
        user_agent=headers.get("User-Agent", "unknown"),
        ultrapeer=headers.get("X-Ultrapeer", "False").lower() == "true",
        headers={k: v for k, v in headers.items() if k not in ("User-Agent", "X-Ultrapeer")},
    )
    if not slots_available:
        return HandshakeResponse(False, acceptor_user_agent, acceptor_is_ultrapeer), offer
    if not offer.ultrapeer and not accept_leaves:
        return HandshakeResponse(False, acceptor_user_agent, acceptor_is_ultrapeer), offer
    return HandshakeResponse(True, acceptor_user_agent, acceptor_is_ultrapeer), offer
