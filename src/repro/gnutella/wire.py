"""Incremental message-stream parsing.

TCP delivers the Gnutella message stream in arbitrary chunks; a real
client must buffer partial messages across reads.  :class:`MessageStream`
is that reassembly layer: feed it byte chunks, iterate complete messages.
Malformed framing raises immediately (a real client would drop the
connection), but a merely *incomplete* message just waits for more bytes.
"""

from __future__ import annotations

from typing import Iterator, List

from .messages import Message, MessageError, decode

__all__ = ["MessageStream"]

_HEADER_SIZE = 23
_MAX_PAYLOAD = 64 * 1024  # sanity bound; era clients dropped larger frames


class MessageStream:
    """Buffered decoder for a Gnutella TCP byte stream."""

    def __init__(self, max_payload: int = _MAX_PAYLOAD):
        if max_payload < 1:
            raise ValueError("max_payload must be >= 1")
        self.max_payload = max_payload
        self._buffer = bytearray()
        self.messages_decoded = 0
        self.bytes_consumed = 0

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered but not yet forming a complete message."""
        return len(self._buffer)

    def feed(self, chunk: bytes) -> List[Message]:
        """Append a chunk; return every message completed by it.

        Raises :class:`~repro.gnutella.messages.MessageError` on an
        oversized payload length or a malformed complete message.
        """
        self._buffer.extend(chunk)
        out: List[Message] = []
        while True:
            message = self._try_decode_one()
            if message is None:
                return out
            out.append(message)

    def _try_decode_one(self):
        if len(self._buffer) < _HEADER_SIZE:
            return None
        length = int.from_bytes(self._buffer[19:23], "little")
        if length > self.max_payload:
            raise MessageError(
                f"payload length {length} exceeds the {self.max_payload} byte bound"
            )
        total = _HEADER_SIZE + length
        if len(self._buffer) < total:
            return None
        frame = bytes(self._buffer[:total])
        message, rest = decode(frame)
        assert not rest
        del self._buffer[:total]
        self.messages_decoded += 1
        self.bytes_consumed += total
        return message

    def drain(self) -> Iterator[Message]:
        """Iterate any already-complete buffered messages."""
        while True:
            message = self._try_decode_one()
            if message is None:
                return
            yield message
