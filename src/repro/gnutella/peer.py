"""Gnutella peer node: forwarding rules of Section 3.1.

A :class:`PeerNode` implements the protocol behaviour the paper
describes: QUERY flooding with TTL/hops handling and duplicate
suppression via the GUID routing table, QUERYHIT reverse-path routing,
PING/PONG connectivity maintenance, and the ultrapeer/leaf distinction
("a QUERY message is forwarded to all ultrapeer nodes, but is only
forwarded to the leaf nodes that have a high probability of responding").
"""

from __future__ import annotations

import dataclasses
import enum
import zlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from .messages import (
    DEFAULT_TTL,
    Bye,
    Message,
    Ping,
    Pong,
    Query,
    QueryHit,
    new_guid,
)
from .pongcache import PongCache
from .qrp import QueryRouteTable
from .routing import RoutingTable

__all__ = ["PeerMode", "PeerNode", "Action"]


class PeerMode(enum.Enum):
    """Peers with high bandwidth/CPU run as ultrapeers; others as leaves."""

    ULTRAPEER = "ultrapeer"
    LEAF = "leaf"


#: An outgoing message directed at a neighbour: (neighbour id, message).
Action = Tuple[str, Message]


@dataclass
class PeerNode:
    """One Gnutella node participating in the overlay.

    ``library`` is the set of normalized query strings this peer can
    answer (its shared files, keyed by searchable title keywords).  The
    node is transport-agnostic: ``handle`` and ``originate_query`` return
    the list of (neighbour, message) sends the caller must deliver.
    """

    node_id: str
    ip: str
    mode: PeerMode = PeerMode.LEAF
    library: Set[str] = field(default_factory=set)
    max_connections: int = 200
    guid_prefix: bytes = b""
    #: GUID/sampling stream; defaults to a stream derived from the node
    #: id, so a rebuilt overlay issues byte-identical GUID sequences.
    rng: Optional[np.random.Generator] = None

    def __post_init__(self):
        node_seed = zlib.crc32(self.node_id.encode("utf-8"))
        if self.rng is None:
            self.rng = np.random.default_rng(node_seed)
        self.routing = RoutingTable()
        self.neighbours: Dict[str, PeerMode] = {}
        #: QRP tables received from leaf neighbours (ultrapeers only).
        self.leaf_tables: Dict[str, QueryRouteTable] = {}
        #: Recently seen PONGs, used to answer PINGs without flooding.
        self.pong_cache = PongCache(seed=node_seed)
        self._own_queries: Set[bytes] = set()
        self.stats = {
            "queries_forwarded": 0,
            "queries_dropped_dup": 0,
            "queries_dropped_ttl": 0,
            "hits_generated": 0,
            "hits_forwarded": 0,
            "hits_received": 0,
            "pongs_sent": 0,
        }

    # -- connection management ------------------------------------------------

    @property
    def is_ultrapeer(self) -> bool:
        return self.mode is PeerMode.ULTRAPEER

    def can_accept(self) -> bool:
        return len(self.neighbours) < self.max_connections

    def add_neighbour(self, node_id: str, mode: PeerMode) -> None:
        """Register a completed connection to a neighbour."""
        if node_id == self.node_id:
            raise ValueError("a peer cannot connect to itself")
        if not self.can_accept():
            raise ValueError(f"{self.node_id} has no free connection slots")
        self.neighbours[node_id] = mode

    def remove_neighbour(self, node_id: str) -> None:
        self.neighbours.pop(node_id, None)
        self.leaf_tables.pop(node_id, None)

    def install_leaf_table(self, leaf_id: str, table: QueryRouteTable) -> None:
        """Store a leaf neighbour's QRP table (Section 3.1 forwarding)."""
        if leaf_id not in self.neighbours:
            raise ValueError(f"{leaf_id} is not a neighbour of {self.node_id}")
        if self.neighbours[leaf_id] is not PeerMode.LEAF:
            raise ValueError(f"{leaf_id} is not a leaf")
        self.leaf_tables[leaf_id] = table

    def build_qrp_table(self, log_size: int = 12) -> QueryRouteTable:
        """This peer's own QRP table over its shared library."""
        table = QueryRouteTable(log_size)
        table.add_library(self.library)
        return table

    # -- message origination ---------------------------------------------------

    def originate_query(self, keywords: str, now: float, ttl: int = DEFAULT_TTL) -> Tuple[Query, List[Action]]:
        """Create a user query and the sends to every neighbour.

        "Each QUERY message generated at a client is sent to each of its
        directly connected peers" -- so a one-hop observer sees every
        user query with hops == 1 after the first forward.
        """
        query = Query(guid=new_guid(self.rng), ttl=ttl, hops=0, keywords=keywords)
        self._own_queries.add(query.guid)
        self.routing.record(query.guid, self.node_id, now)
        sent = query.hop()  # TTL-1 / hops+1 as transmitted on the wire
        return query, [(n, sent) for n in self.neighbours]

    def make_ping(self, ttl: int = 1) -> Ping:
        """A connectivity-check PING (the monitor uses TTL 1 probes)."""
        return Ping(guid=new_guid(self.rng), ttl=ttl, hops=0)

    # -- message handling --------------------------------------------------------

    def handle(self, message: Message, from_id: str, now: float) -> List[Action]:
        """Process an incoming message; return the resulting sends."""
        if from_id not in self.neighbours:
            return []  # stale delivery after disconnect
        if isinstance(message, Query):
            return self._handle_query(message, from_id, now)
        if isinstance(message, QueryHit):
            return self._handle_queryhit(message, from_id, now)
        if isinstance(message, Ping):
            return self._handle_ping(message, from_id, now)
        if isinstance(message, Pong):
            self.pong_cache.add(message, now)
            return []
        if isinstance(message, Bye):
            return []  # informational; consumed by the caller/monitor
        raise TypeError(f"unhandled message type {type(message).__name__}")

    def _handle_query(self, query: Query, from_id: str, now: float) -> List[Action]:
        if not self.routing.record(query.guid, from_id, now):
            self.stats["queries_dropped_dup"] += 1
            return []
        actions: List[Action] = []
        # Answer from the local library first: the hit travels the
        # reverse path, whose first hop is the neighbour we got it from.
        if self._matches(query):
            hit = QueryHit(
                guid=query.guid,
                ttl=max(query.hops + 1, 1),
                hops=0,
                ip=self.ip,
                n_hits=1,
                responder_guid=new_guid(self.rng),
            )
            self.stats["hits_generated"] += 1
            actions.append((from_id, hit.hop()))
        if not query.forwardable:
            self.stats["queries_dropped_ttl"] += 1
            return actions
        # Leaves never forward; ultrapeers forward to all ultrapeers and
        # only to promising leaves.
        if self.is_ultrapeer:
            forwarded = query.hop()
            for neighbour, mode in self.neighbours.items():
                if neighbour == from_id:
                    continue
                if mode is PeerMode.ULTRAPEER or self._leaf_promising(neighbour, query):
                    actions.append((neighbour, forwarded))
                    self.stats["queries_forwarded"] += 1
        return actions

    def _handle_queryhit(self, hit: QueryHit, from_id: str, now: float) -> List[Action]:
        if hit.guid in self._own_queries:
            self.stats["hits_received"] += 1
            return []
        back = self.routing.reverse_route(hit.guid, now)
        if back is None or back == self.node_id or back not in self.neighbours:
            return []  # route expired or neighbour gone: drop silently
        if not hit.forwardable:
            return []
        self.stats["hits_forwarded"] += 1
        return [(back, hit.hop())]

    def _handle_ping(self, ping: Ping, from_id: str, now: float = 0.0) -> List[Action]:
        """Answer with our own PONG plus a few cached ones (pong caching):
        the asker learns about distant peers without a PING flood."""
        pong = Pong(
            guid=ping.guid,  # PONGs answer on the PING's GUID
            ttl=max(ping.hops + 1, 1),
            hops=0,
            ip=self.ip,
            shared_files=len(self.library),
            shared_kb=len(self.library) * 4096,
        )
        self.stats["pongs_sent"] += 1
        actions: List[Action] = [(from_id, pong.hop())]
        for cached in self.pong_cache.sample(3, now):
            relayed = dataclasses.replace(cached, guid=ping.guid,
                                          ttl=max(ping.hops + 1, 1), hops=0)
            self.stats["pongs_sent"] += 1
            actions.append((from_id, relayed.hop()))
        return actions

    # -- matching ------------------------------------------------------------------

    def _matches(self, query: Query) -> bool:
        """Local library match: identical keyword set (Section 3.2)."""
        if query.has_sha1:
            return False  # source searches are answered only by downloaders
        return query.keywords.lower() in self.library

    def _leaf_promising(self, neighbour: str, query: Query) -> bool:
        """QRP leaf selection: forward only when the leaf's query-routing
        table says every keyword might be present.

        A test hook (``leaf_hint``) can override the decision; without a
        table or hint the leaf is spared, matching the spec's intent.
        """
        hint = getattr(self, "leaf_hint", None)
        if hint is not None:
            return hint(neighbour, query)
        table = self.leaf_tables.get(neighbour)
        if table is None:
            return False
        return table.might_match(query.keywords)
