"""Benchmark + acceptance harness for the batched overlay engine.

:func:`measure_overlay` is the measurement core shared by the CI
overlay gate and ``benchmarks/bench_overlay.py`` (which emits the
committed ``BENCH_overlay.json``).  One run produces every acceptance
signal for :mod:`repro.gnutella.columnar_overlay` in a single report:

* **equivalence** -- the full backend battery (per-query messages,
  hits, reach sets with depths, the monitor's hop-1 stream, the
  reconstructed sessions, keepalive totals) between ``backend="event"``
  and ``backend="columnar"`` on a shared workload, plus byte-identity
  of the columnar engine across worker counts;
* **speedup** -- overlay messages per wall-clock second, columnar over
  event, at the largest event-feasible population;
* **scale** -- a columnar-only run at a population the event engine
  cannot touch, with the peak RSS held against the same laptop-class
  budget as the paper-scale streaming gate.

Wall-clock timing lives here (this module carries the bench per-path
lint allowance) so the engine itself never reads the host clock.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Optional

from repro.analysis.paper_scale import DEFAULT_RSS_BUDGET_MB
from repro.core import SyntheticWorkloadGenerator
from repro.core.generator_columnar import ColumnarWorkload
from repro.core.runtime import host_block, peak_rss_mb

from .columnar_overlay import (
    OverlayConfig,
    OverlayRunResult,
    compare_runs,
    simulate_workload,
)

__all__ = ["measure_overlay", "overlay_workload"]


def overlay_workload(
    n_peers: int, duration_seconds: float, seed: int = 11
) -> ColumnarWorkload:
    """The Fig. 12 workload both backends replay (columnar generator)."""
    generator = SyntheticWorkloadGenerator(n_peers=n_peers, seed=seed)
    return generator.generate_columnar(duration_seconds)


def _timed_run(
    workload: ColumnarWorkload,
    run_seconds: float,
    config: OverlayConfig,
    backend: str,
    jobs: int = 1,
    record_reach: bool = False,
) -> OverlayRunResult:
    t0 = time.perf_counter()
    result = simulate_workload(
        workload,
        run_seconds,
        config=config,
        backend=backend,
        jobs=jobs,
        record_reach=record_reach,
    )
    result.elapsed_seconds = time.perf_counter() - t0
    return result


def _run_block(result: OverlayRunResult) -> Dict[str, Any]:
    return {
        "backend": result.backend,
        "peers_simulated": result.peers_simulated,
        "n_rounds": result.n_rounds,
        "n_queries": result.n_queries,
        "messages_total": result.messages_total,
        "query_hits_total": int(result.query_hits.sum()),
        "keepalive_pings": result.keepalive_pings,
        "seconds": round(result.elapsed_seconds, 4),
        "messages_per_second": round(result.messages_per_second, 1),
    }


def measure_overlay(
    event_peers: int = 600,
    event_run_seconds: float = 1800.0,
    scale_peers: int = 10_000,
    scale_run_seconds: float = 3600.0,
    jobs: int = 1,
    seed: int = 11,
    config: Optional[OverlayConfig] = None,
    rss_budget_mb: float = DEFAULT_RSS_BUDGET_MB,
) -> Dict[str, Any]:
    """Measure the overlay engine; returns the ``BENCH_overlay`` report.

    The small (event-feasible) workload is replayed three times -- event
    reference, columnar, columnar at a different worker count -- and
    every observable is compared.  ``record_reach=True`` on the timed
    comparison runs makes the battery cover per-node reach depths; the
    extra bookkeeping burdens only the columnar side, so the reported
    speedup is conservative.  The scale run then sizes the columnar
    engine alone at ``scale_peers`` steady-state peers.
    """
    config = config or OverlayConfig()
    report: Dict[str, Any] = {
        "scale": {
            "event_peers": event_peers,
            "event_run_seconds": event_run_seconds,
            "scale_peers": scale_peers,
            "scale_run_seconds": scale_run_seconds,
            "jobs": jobs,
            "seed": seed,
            "delta_seconds": config.delta_seconds,
            "ttl": config.ttl,
        },
        "host": host_block(),
        "runs": {},
    }

    small = overlay_workload(event_peers, event_run_seconds, seed=seed)
    event = _timed_run(
        small, event_run_seconds, config, "event", record_reach=True
    )
    columnar = _timed_run(
        small, event_run_seconds, config, "columnar", jobs=1, record_reach=True
    )
    sharded = simulate_workload(
        small,
        event_run_seconds,
        config=config,
        backend="columnar",
        jobs=max(2, jobs),
        record_reach=True,
    )
    checks = compare_runs(columnar, event)
    battery_ok = checks.pop("ok")
    jobs_checks = compare_runs(columnar, sharded)
    jobs_identical = jobs_checks.pop("ok")
    report["runs"]["event_small"] = _run_block(event)
    report["runs"]["columnar_small"] = _run_block(columnar)
    report["equivalence"] = {
        "checks": checks,
        "jobs_checks": jobs_checks,
        "jobs_identical": jobs_identical,
        "all_identical": battery_ok and jobs_identical,
    }
    report["speedup"] = {
        "messages_per_second_event": round(event.messages_per_second, 1),
        "messages_per_second_columnar": round(columnar.messages_per_second, 1),
        "speedup": round(
            columnar.messages_per_second / max(event.messages_per_second, 1e-9),
            2,
        ),
    }

    big = overlay_workload(scale_peers, scale_run_seconds, seed=seed)
    at_scale = _timed_run(big, scale_run_seconds, config, "columnar", jobs=jobs)
    report["runs"]["columnar_scale"] = _run_block(at_scale)

    peak = round(peak_rss_mb(), 1)
    report["host"]["peak_rss_mb"] = peak
    report["budget"] = {
        "peak_rss_mb": peak,
        "rss_budget_mb": rss_budget_mb,
        "within_budget": bool(peak <= rss_budget_mb),
    }
    return report
