"""Live overlay measurement: the monitor inside a real message-passing overlay.

The trace synthesizer (:mod:`repro.synthesis`) feeds the measurement node
directly, which scales to 40-day traces but abstracts the overlay away.
This module closes that gap: a :class:`LiveOverlayMeasurement` runs the
measurement ultrapeer as a node in the event-driven overlay, with
churning peers that connect to it, originate their (client-expanded)
query streams as real QUERY messages, flood through the network with
TTL/hops semantics, and disconnect.  For populations past what the
per-message event loop can carry (50k+ peers with churn), the batched
array engine in :mod:`repro.gnutella.columnar_overlay` computes the
same floods and monitor observables -- held identical to this
machinery by its equivalence battery -- at a 20x+ message-throughput
speedup (70x measured in ``BENCH_overlay.json``).

It validates the paper's central measurement claims mechanically:

* every user query of a directly connected peer arrives at the monitor
  with hop count exactly 1 ("the measurement node will receive every
  QUERY message from a directly connected peer");
* queries from more distant peers arrive with hops >= 2 and are excluded
  from session attribution (the Table 1 hop-1 row);
* sessions reconstructed by the monitor match the ground-truth
  connect/disconnect times up to the idle-detection overshoot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.agents import PeerPopulation, UserBehavior
from repro.core.events import SessionRecord
from repro.core.regions import Region, hour_of_day
from repro.measurement import MeasurementNode

from .clients import expand_user_session
from .messages import Message, Query
from .overlay import OverlayNetwork
from .peer import PeerMode, PeerNode
from .simulator import EventScheduler

__all__ = ["LiveOverlayMeasurement", "LiveRunStats"]

MONITOR_ID = "monitor"


@dataclass
class LiveRunStats:
    """Aggregate observations from one live run."""

    peers_connected: int = 0
    user_queries_planned: int = 0
    stream_queries_sent: int = 0
    hop1_queries_observed: int = 0
    relayed_queries_observed: int = 0
    hop_histogram: Dict[int, int] = field(default_factory=dict)

    def observe_hops(self, hops: int) -> None:
        self.hop_histogram[hops] = self.hop_histogram.get(hops, 0) + 1


class LiveOverlayMeasurement:
    """Small-scale, full-fidelity measurement-in-the-overlay run.

    Parameters mirror the synthesizer at miniature scale; every message
    is an actual :class:`~repro.gnutella.messages.Message` routed through
    :class:`~repro.gnutella.peer.PeerNode` forwarding logic.
    """

    def __init__(
        self,
        n_backbone_ultrapeers: int = 20,
        n_backbone_leaves: int = 40,
        seed: int = 404,
        monitor_slots: int = 200,
    ):
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        self.overlay = OverlayNetwork(
            n_ultrapeers=n_backbone_ultrapeers,
            n_leaves=n_backbone_leaves,
            seed=seed + 1,
        )
        self.scheduler = self.overlay.scheduler
        self.monitor = MeasurementNode(max_slots=monitor_slots)
        self.population = PeerPopulation(seed=seed + 2)
        self.behavior = UserBehavior(seed=seed + 3)
        self.stats = LiveRunStats()
        self._run_end = float("inf")
        # The monitor participates as a real ultrapeer node.
        self._monitor_node = PeerNode(
            node_id=MONITOR_ID, ip="129.217.1.1", mode=PeerMode.ULTRAPEER,
            max_connections=monitor_slots + len(self.overlay.nodes),
        )
        self.overlay.nodes[MONITOR_ID] = self._monitor_node
        self.overlay.region_of[MONITOR_ID] = Region.EUROPE
        backbone = [i for i, n in self.overlay.nodes.items()
                    if n.is_ultrapeer and i != MONITOR_ID][:6]
        for other in backbone:
            self.overlay.connect(MONITOR_ID, other)
        self._conn_ids: Dict[str, int] = {}
        self._next_peer = 0

    # -- churn -------------------------------------------------------------------

    def run(self, duration_seconds: float, mean_arrival_gap: float = 30.0) -> List[SessionRecord]:
        """Run churn for ``duration_seconds``; return the monitor's sessions.

        Peers arrive with exponential gaps, connect to the monitor (plus
        one backbone ultrapeer so floods propagate), emit their expanded
        query stream, and leave silently.
        """
        if duration_seconds <= 0:
            raise ValueError("duration_seconds must be positive")
        self._run_end = float(duration_seconds)
        t = float(self.rng.exponential(mean_arrival_gap))
        while t < duration_seconds:
            self.scheduler.schedule(t, lambda t=t: self._peer_arrives(t))
            t += float(self.rng.exponential(mean_arrival_gap))
        self.scheduler.run_until(duration_seconds)
        return self.monitor.finalize(self.scheduler.now)

    def _peer_arrives(self, now: float) -> None:
        identity = self.population.spawn(hour_of_day(now))
        node_id = f"peer{self._next_peer:05d}"
        self._next_peer += 1
        node = PeerNode(
            node_id=node_id, ip=identity.ip,
            mode=PeerMode.ULTRAPEER if identity.ultrapeer else PeerMode.LEAF,
            max_connections=8,
        )
        self.overlay.nodes[node_id] = node
        self.overlay.region_of[node_id] = identity.region
        conn_id = self.monitor.open_connection(
            now, peer_ip=identity.ip, region=identity.region,
            user_agent=identity.profile.user_agent,
            ultrapeer=identity.ultrapeer, shared_files=identity.shared_files,
        )
        if conn_id is None:
            del self.overlay.nodes[node_id]
            return
        self.stats.peers_connected += 1
        self._conn_ids[node_id] = conn_id
        self.overlay.connect(node_id, MONITOR_ID)
        backbone = [i for i, n in self.overlay.nodes.items()
                    if n.is_ultrapeer and i not in (MONITOR_ID, node_id)]
        self.overlay.connect(node_id, backbone[int(self.rng.integers(len(backbone)))])

        plan = self.behavior.plan_session(identity.region, now)
        duration = min(max(plan.duration, 70.0), 3600.0)  # keep live runs short
        self.stats.user_queries_planned += len(plan.queries)
        stream = expand_user_session(
            plan.queries, duration, identity.profile, self.rng,
            pre_connect_queries=plan.pre_connect_queries,
        )
        # Emissions stop half a second before teardown: a message needs
        # the (<= 200 ms) link latency to reach the monitor before the
        # TCP connection goes away, as in real client shutdown order.
        for item in stream:
            offset = min(item.offset, duration - 0.5)
            self.scheduler.schedule(
                now + offset,
                lambda node_id=node_id, item=item: self._peer_queries(node_id, item),
            )
        self.scheduler.schedule(now + duration, lambda node_id=node_id: self._peer_departs(node_id))

    def _peer_queries(self, node_id: str, item) -> None:
        node = self.overlay.nodes.get(node_id)
        if node is None:
            return
        # Emissions in the run's final half-second cannot be delivered
        # before measurement stops (trace-boundary truncation).
        if self.scheduler.now > self._run_end - 0.5:
            return
        self.stats.stream_queries_sent += 1
        query, actions = node.originate_query(item.keywords, now=self.scheduler.now)
        self._deliver_all(node_id, actions)

    def _peer_departs(self, node_id: str) -> None:
        node = self.overlay.nodes.pop(node_id, None)
        if node is None:
            return
        for neighbour in list(node.neighbours):
            if neighbour in self.overlay.nodes:
                self.overlay.nodes[neighbour].remove_neighbour(node_id)
        conn_id = self._conn_ids.pop(node_id, None)
        if conn_id is not None:
            self.monitor.client_departed(conn_id, self.scheduler.now)

    # -- message plumbing -----------------------------------------------------------

    def _deliver_all(self, sender: str, actions: List[Tuple[str, Message]]) -> None:
        for dest, message in actions:
            delay = self.overlay._latency()
            self.scheduler.schedule_after(
                delay,
                lambda dest=dest, message=message, sender=sender: self._deliver(
                    dest, message, sender
                ),
            )

    def _deliver(self, dest: str, message: Message, sender: str) -> None:
        target = self.overlay.nodes.get(dest)
        if target is None or sender not in target.neighbours:
            return
        if dest == MONITOR_ID and isinstance(message, Query):
            self.stats.observe_hops(message.hops)
            if message.hops == 1 and sender in self._conn_ids:
                self.stats.hop1_queries_observed += 1
                self.monitor.receive_query(
                    self._conn_ids[sender], self.scheduler.now,
                    keywords=message.keywords, sha1=message.has_sha1,
                )
            else:
                self.stats.relayed_queries_observed += 1
        follow_up = target.handle(message, sender, self.scheduler.now)
        self._deliver_all(dest, follow_up)
