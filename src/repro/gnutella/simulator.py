"""A small discrete-event scheduler for the overlay simulator.

Deliberately minimal: a time-ordered heap of callbacks with stable
FIFO ordering for simultaneous events.  The overlay uses it to deliver
messages with per-link latency; the synthesis layer uses it to sequence
session arrivals, query emissions, and idle-detection timers.

Heap entries are pure ``(time, seq)`` keys -- the callback itself lives
in a side table and is never compared.  Equal-timestamp events therefore
order strictly by scheduling sequence, which the ``backend="event"`` /
``backend="columnar"`` overlay equivalence battery depends on: with
per-link latency zeroed, a flood's delivery order must be a function of
scheduling order alone, not of whatever ``heapq`` would make of
comparing two closures.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Dict, List, Optional, Tuple

__all__ = ["EventScheduler"]


class EventScheduler:
    """Priority queue of timestamped callbacks.

    Events scheduled for the same instant run in scheduling order.
    Callbacks may schedule further events.  ``run_until`` drives the
    clock; the clock never moves backwards.
    """

    def __init__(self, start_time: float = 0.0):
        self.now = float(start_time)
        #: Deterministic (time, seq) keys only; callbacks never enter
        #: the heap, so nothing ever falls back to comparing them.
        self._heap: List[Tuple[float, int]] = []
        self._counter = itertools.count()
        self._callbacks: Dict[int, Callable[[], None]] = {}

    def __len__(self) -> int:
        """Pending (non-cancelled) events."""
        return len(self._callbacks)

    def schedule(self, when: float, callback: Callable[[], None]) -> int:
        """Schedule ``callback`` at absolute time ``when``; returns an id."""
        if when < self.now:
            raise ValueError(f"cannot schedule in the past: {when} < {self.now}")
        event_id = next(self._counter)
        self._callbacks[event_id] = callback
        heapq.heappush(self._heap, (when, event_id))
        return event_id

    def schedule_after(self, delay: float, callback: Callable[[], None]) -> int:
        """Schedule ``callback`` after ``delay`` seconds."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.schedule(self.now + delay, callback)

    def cancel(self, event_id: int) -> None:
        """Cancel a pending event (lazily; no-op if already fired)."""
        self._callbacks.pop(event_id, None)

    def _prune_cancelled(self) -> None:
        """Drop cancelled entries from the head so peeks see live events."""
        while self._heap and self._heap[0][1] not in self._callbacks:
            heapq.heappop(self._heap)

    def step(self) -> bool:
        """Run the next event; return False when the queue is empty."""
        self._prune_cancelled()
        if not self._heap:
            return False
        when, event_id = heapq.heappop(self._heap)
        callback = self._callbacks.pop(event_id)
        self.now = when
        callback()
        return True

    def run_until(self, end_time: float, max_events: Optional[int] = None) -> int:
        """Run events with time <= ``end_time``; return how many ran."""
        count = 0
        while True:
            self._prune_cancelled()
            if not self._heap or self._heap[0][0] > end_time:
                break
            if not self.step():
                break
            count += 1
            if max_events is not None and count >= max_events:
                break
        self._prune_cancelled()
        if not self._heap or self._heap[0][0] > end_time:
            self.now = max(self.now, end_time)
        return count

    def run(self, max_events: int = 1_000_000) -> int:
        """Drain the queue (bounded by ``max_events``); return how many ran."""
        count = 0
        while count < max_events and self.step():
            count += 1
        return count
