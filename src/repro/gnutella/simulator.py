"""A small discrete-event scheduler for the overlay simulator.

Deliberately minimal: a time-ordered heap of callbacks with stable
FIFO ordering for simultaneous events.  The overlay uses it to deliver
messages with per-link latency; the synthesis layer uses it to sequence
session arrivals, query emissions, and idle-detection timers.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

__all__ = ["EventScheduler"]


class EventScheduler:
    """Priority queue of timestamped callbacks.

    Events scheduled for the same instant run in scheduling order.
    Callbacks may schedule further events.  ``run_until`` drives the
    clock; the clock never moves backwards.
    """

    def __init__(self, start_time: float = 0.0):
        self.now = float(start_time)
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()
        self._cancelled: set = set()

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(self, when: float, callback: Callable[[], None]) -> int:
        """Schedule ``callback`` at absolute time ``when``; returns an id."""
        if when < self.now:
            raise ValueError(f"cannot schedule in the past: {when} < {self.now}")
        event_id = next(self._counter)
        heapq.heappush(self._heap, (when, event_id, callback))
        return event_id

    def schedule_after(self, delay: float, callback: Callable[[], None]) -> int:
        """Schedule ``callback`` after ``delay`` seconds."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.schedule(self.now + delay, callback)

    def cancel(self, event_id: int) -> None:
        """Cancel a pending event (lazily; no-op if already fired)."""
        self._cancelled.add(event_id)

    def step(self) -> bool:
        """Run the next event; return False when the queue is empty."""
        while self._heap:
            when, event_id, callback = heapq.heappop(self._heap)
            if event_id in self._cancelled:
                self._cancelled.discard(event_id)
                continue
            self.now = when
            callback()
            return True
        return False

    def run_until(self, end_time: float, max_events: Optional[int] = None) -> int:
        """Run events with time <= ``end_time``; return how many ran."""
        count = 0
        while self._heap:
            when, event_id, _ = self._heap[0]
            if when > end_time:
                break
            if not self.step():
                break
            count += 1
            if max_events is not None and count >= max_events:
                break
        self.now = max(self.now, end_time) if not self._heap or self._heap[0][0] > end_time else self.now
        return count

    def run(self, max_events: int = 1_000_000) -> int:
        """Drain the queue (bounded by ``max_events``); return how many ran."""
        count = 0
        while count < max_events and self.step():
            count += 1
        return count
