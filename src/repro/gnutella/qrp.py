"""Query Routing Protocol (QRP) tables.

Section 3.1: "A QUERY message is forwarded to all ultrapeer nodes, but is
only forwarded to the leaf nodes that have a high probability of
responding."  Real Gnutella implements this with QRP: each leaf hashes
the keywords of its shared files into a fixed-size bit table and sends it
to its ultrapeers; an ultrapeer forwards a query to a leaf only when
*every* query keyword hashes to a set bit.

This is the classic LimeWire QRP design: a table of ``2**log_size`` slots
with the Gnutella keyword hash (a multiplicative hash over lowercased
keyword bytes).  False positives are possible (hash collisions); false
negatives are not, which is the property the tests pin down.
"""

from __future__ import annotations

from typing import Iterable, List, Set

__all__ = ["keyword_hash", "QueryRouteTable"]

#: LimeWire's default QRP table: 2**16 slots.
DEFAULT_LOG_SIZE = 16

#: The QRP multiplicative constant (golden-ratio hash, per the QRP spec).
_A = 0x4F1BBCDC


def keyword_hash(keyword: str, bits: int) -> int:
    """The Gnutella QRP hash of one keyword into ``bits`` bits.

    Multiplicative hashing over the little-endian packing of the
    lowercased keyword bytes, as specified by the QRP proposal.
    """
    if not 1 <= bits <= 32:
        raise ValueError(f"bits must be in 1..32, got {bits}")
    total = 0
    for index, byte in enumerate(keyword.lower().encode("utf-8")):
        total ^= (byte & 0xFF) << ((index & 3) * 8)
    product = (total * _A) & 0xFFFFFFFF
    return product >> (32 - bits)


def _keywords(text: str) -> List[str]:
    return [w for w in text.lower().split() if w]


class QueryRouteTable:
    """A leaf's keyword presence table, as held by its ultrapeer.

    ``add_file`` hashes every keyword of a shared file's name;
    ``might_match`` implements the forwarding predicate: all query
    keywords must hit set slots.
    """

    def __init__(self, log_size: int = DEFAULT_LOG_SIZE):
        if not 4 <= log_size <= 24:
            raise ValueError(f"log_size must be in 4..24, got {log_size}")
        self.log_size = log_size
        self.size = 1 << log_size
        self._slots: Set[int] = set()

    def __len__(self) -> int:
        return len(self._slots)

    @property
    def fill_ratio(self) -> float:
        """Fraction of slots set (dense tables forward almost anything)."""
        return len(self._slots) / self.size

    def add_file(self, name: str) -> None:
        """Hash a shared file's keywords into the table."""
        for keyword in _keywords(name):
            self._slots.add(keyword_hash(keyword, self.log_size))

    def add_library(self, names: Iterable[str]) -> None:
        for name in names:
            self.add_file(name)

    def might_match(self, query_keywords: str) -> bool:
        """Whether a query could be answered by this leaf.

        True requires every keyword slot set; empty queries never match
        (the spec forbids forwarding empty queries to leaves).
        """
        words = _keywords(query_keywords)
        if not words:
            return False
        return all(keyword_hash(w, self.log_size) in self._slots for w in words)

    def merge(self, other: "QueryRouteTable") -> "QueryRouteTable":
        """The union table (ultrapeers aggregate leaf tables upstream)."""
        if other.log_size != self.log_size:
            raise ValueError("cannot merge tables of different sizes")
        merged = QueryRouteTable(self.log_size)
        merged._slots = self._slots | other._slots
        return merged
