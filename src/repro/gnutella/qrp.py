"""Query Routing Protocol (QRP) tables.

Section 3.1: "A QUERY message is forwarded to all ultrapeer nodes, but is
only forwarded to the leaf nodes that have a high probability of
responding."  Real Gnutella implements this with QRP: each leaf hashes
the keywords of its shared files into a fixed-size bit table and sends it
to its ultrapeers; an ultrapeer forwards a query to a leaf only when
*every* query keyword hashes to a set bit.

This is the classic LimeWire QRP design: a table of ``2**log_size`` slots
with the Gnutella keyword hash (a multiplicative hash over lowercased
keyword bytes).  False positives are possible (hash collisions); false
negatives are not, which is the property the tests pin down.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Set, Tuple

import numpy as np

from repro.core.kernels import segment_ids, segmented_arange

__all__ = [
    "keyword_hash",
    "keyword_hashes",
    "text_hash_table",
    "QueryRouteTable",
    "PackedQRPTables",
]

#: LimeWire's default QRP table: 2**16 slots.
DEFAULT_LOG_SIZE = 16

#: The QRP multiplicative constant (golden-ratio hash, per the QRP spec).
_A = 0x4F1BBCDC


def keyword_hash(keyword: str, bits: int) -> int:
    """The Gnutella QRP hash of one keyword into ``bits`` bits.

    Multiplicative hashing over the little-endian packing of the
    lowercased keyword bytes, as specified by the QRP proposal.
    """
    if not 1 <= bits <= 32:
        raise ValueError(f"bits must be in 1..32, got {bits}")
    total = 0
    for index, byte in enumerate(keyword.lower().encode("utf-8")):
        total ^= (byte & 0xFF) << ((index & 3) * 8)
    product = (total * _A) & 0xFFFFFFFF
    return product >> (32 - bits)


def _keywords(text: str) -> List[str]:
    return [w for w in text.lower().split() if w]


class QueryRouteTable:
    """A leaf's keyword presence table, as held by its ultrapeer.

    ``add_file`` hashes every keyword of a shared file's name;
    ``might_match`` implements the forwarding predicate: all query
    keywords must hit set slots.
    """

    def __init__(self, log_size: int = DEFAULT_LOG_SIZE):
        if not 4 <= log_size <= 24:
            raise ValueError(f"log_size must be in 4..24, got {log_size}")
        self.log_size = log_size
        self.size = 1 << log_size
        self._slots: Set[int] = set()

    def __len__(self) -> int:
        return len(self._slots)

    @property
    def fill_ratio(self) -> float:
        """Fraction of slots set (dense tables forward almost anything)."""
        return len(self._slots) / self.size

    def add_file(self, name: str) -> None:
        """Hash a shared file's keywords into the table."""
        for keyword in _keywords(name):
            self._slots.add(keyword_hash(keyword, self.log_size))

    def add_library(self, names: Iterable[str]) -> None:
        for name in names:
            self.add_file(name)

    def might_match(self, query_keywords: str) -> bool:
        """Whether a query could be answered by this leaf.

        True requires every keyword slot set; empty queries never match
        (the spec forbids forwarding empty queries to leaves).
        """
        words = _keywords(query_keywords)
        if not words:
            return False
        return all(keyword_hash(w, self.log_size) in self._slots for w in words)

    def merge(self, other: "QueryRouteTable") -> "QueryRouteTable":
        """The union table (ultrapeers aggregate leaf tables upstream)."""
        if other.log_size != self.log_size:
            raise ValueError("cannot merge tables of different sizes")
        merged = QueryRouteTable(self.log_size)
        merged._slots = self._slots | other._slots
        return merged


# ---------------------------------------------------------------------------
# Batched forms (the columnar overlay engine's leaf-forwarding filter)
# ---------------------------------------------------------------------------


def keyword_hashes(words: Sequence[str], bits: int) -> np.ndarray:
    """Vectorized :func:`keyword_hash` over a batch of keywords.

    Bit-exact with the scalar form: the little-endian XOR fold runs as
    one segmented pass over the concatenated utf-8 bytes, then one
    32-bit multiplicative hash over the folded words.  Empty keywords
    are rejected (the scalar tokenizer never produces them).
    """
    if not 1 <= bits <= 32:
        raise ValueError(f"bits must be in 1..32, got {bits}")
    if len(words) == 0:
        return np.zeros(0, dtype=np.int64)
    encoded = [w.lower().encode("utf-8") for w in words]
    counts = np.asarray([len(e) for e in encoded], dtype=np.int64)
    if (counts == 0).any():
        raise ValueError("cannot hash an empty keyword")
    data = np.frombuffer(b"".join(encoded), dtype=np.uint8).astype(np.uint32)
    pos = segmented_arange(counts)
    shifted = data << ((pos & 3) * np.uint32(8)).astype(np.uint32)
    starts = np.concatenate([[0], np.cumsum(counts)[:-1]])
    totals = np.bitwise_xor.reduceat(shifted, starts)
    product = (totals.astype(np.uint64) * np.uint64(_A)) & np.uint64(0xFFFFFFFF)
    return (product >> np.uint64(32 - bits)).astype(np.int64)


def text_hash_table(texts: Sequence[str], bits: int) -> Tuple[np.ndarray, np.ndarray]:
    """Per-text sorted unique keyword-hash sets, as a flat CSR pair.

    Returns ``(hashes, counts)``: text ``i`` owns the next ``counts[i]``
    entries of ``hashes``.  A text with no keywords gets an empty
    segment, preserving the scalar contract that empty queries never
    match.  This is the shared tokenize+hash step for both table builds
    (library side) and query lookups (forwarding side).
    """
    words: List[str] = []
    word_text = []
    for i, text in enumerate(texts):
        for w in _keywords(text):
            words.append(w)
            word_text.append(i)
    n = len(texts)
    if not words:
        return np.zeros(0, dtype=np.int64), np.zeros(n, dtype=np.int64)
    hashes = keyword_hashes(words, bits)
    # Dedupe per text with one sort over packed (text, hash) keys.
    size = np.int64(1) << np.int64(bits)
    keys = np.unique(np.asarray(word_text, dtype=np.int64) * size + hashes)
    counts = np.bincount(keys // size, minlength=n).astype(np.int64)
    return (keys % size).astype(np.int64), counts


class PackedQRPTables:
    """A stack of QRP bit tables as one packed uint64 matrix.

    Row ``r`` is one leaf's presence table (``2**log_size`` bits packed
    64 per word); the batched overlay engine keeps one row per node and
    answers "would ultrapeer forward query q to leaf r?" for whole
    (row, query) batches with bitwise-AND array ops instead of per-leaf
    Python set probes.  Bit-for-bit equivalent to
    :class:`QueryRouteTable` -- the parity tests hold the two forms to
    identical ``might_match`` decisions on shared libraries.
    """

    def __init__(self, n_rows: int, log_size: int = 12):
        if not 4 <= log_size <= 24:
            raise ValueError(f"log_size must be in 4..24, got {log_size}")
        if n_rows < 0:
            raise ValueError(f"n_rows must be >= 0, got {n_rows}")
        self.log_size = log_size
        self.size = 1 << log_size
        self.words = (self.size + 63) // 64
        self.bits = np.zeros((n_rows, self.words), dtype=np.uint64)

    @property
    def n_rows(self) -> int:
        return int(self.bits.shape[0])

    def set_bits(self, rows: np.ndarray, hashes: np.ndarray) -> None:
        """Set slot ``hashes[i]`` in table row ``rows[i]`` (batch add_file)."""
        rows = np.asarray(rows, dtype=np.int64)
        hashes = np.asarray(hashes, dtype=np.int64)
        np.bitwise_or.at(
            self.bits,
            (rows, hashes >> 6),
            np.uint64(1) << (hashes & 63).astype(np.uint64),
        )

    def add_libraries(self, rows: np.ndarray, names: Sequence[str]) -> None:
        """Hash file name ``names[i]`` into row ``rows[i]``, in batch."""
        hashes, counts = text_hash_table(names, self.log_size)
        self.set_bits(np.repeat(np.asarray(rows, dtype=np.int64), counts), hashes)

    def contains(self, rows: np.ndarray, hashes: np.ndarray) -> np.ndarray:
        """Whether slot ``hashes[i]`` is set in row ``rows[i]``."""
        rows = np.asarray(rows, dtype=np.int64)
        hashes = np.asarray(hashes, dtype=np.int64)
        word = self.bits[rows, hashes >> 6]
        return (word >> (hashes & 63).astype(np.uint64)) & np.uint64(1) != 0

    def might_match(
        self, rows: np.ndarray, hashes: np.ndarray, counts: np.ndarray
    ) -> np.ndarray:
        """Batched forwarding predicate over (row, query-hash-set) pairs.

        ``rows[i]`` is probed with the ``counts[i]`` hashes of query
        ``i`` (the :func:`text_hash_table` layout); True requires every
        hash present and at least one keyword, exactly like
        :meth:`QueryRouteTable.might_match`.
        """
        rows = np.asarray(rows, dtype=np.int64)
        counts = np.asarray(counts, dtype=np.int64)
        hit = self.contains(np.repeat(rows, counts), hashes)
        misses = np.bincount(
            segment_ids(counts), weights=~hit, minlength=rows.size
        )
        return (misses == 0) & (counts > 0)

    def to_scalar(self, row: int) -> QueryRouteTable:
        """The equivalent :class:`QueryRouteTable` for one row (tests)."""
        table = QueryRouteTable(self.log_size)
        slots = np.nonzero(
            (self.bits[row][:, None] >> np.arange(64, dtype=np.uint64)) & np.uint64(1)
        )
        table._slots = set((slots[0] * 64 + slots[1]).tolist())
        return table
