"""CSR array representation of the ultrapeer/leaf overlay topology.

The scalar overlay (:class:`~repro.gnutella.overlay.OverlayNetwork`)
holds one :class:`~repro.gnutella.peer.PeerNode` object per peer with a
``neighbours`` dict each -- perfect for protocol fidelity, hopeless past
a few thousand nodes.  :class:`CSRTopology` keeps the same undirected
graph as flat arrays: per-node mode/active flags plus one sorted array
of packed directed edge keys (``src * capacity + dst``), from which the
compressed-sparse-row adjacency (``indptr``/``indices``) is rebuilt
lazily after churn.  Connect/disconnect are *batch* operations -- one
sorted-set merge or difference over the whole round's churn, on
:mod:`repro.core.kernels` set-membership primitives -- which is what
lets the delta-stepped engine in
:mod:`repro.gnutella.columnar_overlay` run 50k+ peers with churn.

Both edge directions are stored, so a node's neighbour list is one
contiguous CSR slice and the symmetry invariant is machine-checkable
(:meth:`CSRTopology.validate`).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.kernels import isin_sorted, merge_unique, setdiff_sorted

__all__ = ["CSRTopology"]


class CSRTopology:
    """An undirected overlay graph over a fixed node index space.

    ``capacity`` fixes the index space up front (backbone + monitor +
    every churn session gets one slot); nodes toggle ``active`` as they
    join and leave.  Edges live in one sorted unique int64 key array
    with both directions present; the CSR view is cached and rebuilt
    only after a mutation.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.is_ultrapeer = np.zeros(self.capacity, dtype=bool)
        self.active = np.zeros(self.capacity, dtype=bool)
        self._keys = np.zeros(0, dtype=np.int64)
        self._csr: Tuple[np.ndarray, np.ndarray] | None = None

    # -- node lifecycle -----------------------------------------------------

    def add_nodes(self, indices: np.ndarray, ultrapeer: np.ndarray) -> None:
        """Activate a batch of node slots with their modes."""
        indices = self._indices(indices)
        if self.active[indices].any():
            raise ValueError("node slot already active")
        self.active[indices] = True
        self.is_ultrapeer[indices] = np.asarray(ultrapeer, dtype=bool)

    def remove_nodes(self, indices: np.ndarray) -> None:
        """Deactivate a batch of nodes, detaching any remaining edges."""
        indices = self._indices(indices)
        self.detach(indices)
        self.active[indices] = False

    # -- batch edge churn ---------------------------------------------------

    def connect(self, a: np.ndarray, b: np.ndarray) -> None:
        """Create the undirected edges ``(a[i], b[i])`` in one merge.

        Idempotent for edges that already exist (matching the scalar
        overlay's ``connect``); self-loops and inactive endpoints are
        errors.
        """
        a, b = self._edge_batch(a, b)
        if a.size == 0:
            return
        fresh = np.unique(
            np.concatenate([self._pack(a, b), self._pack(b, a)])
        )
        self._keys = merge_unique(self._keys, fresh)
        self._csr = None

    def disconnect(self, a: np.ndarray, b: np.ndarray) -> None:
        """Remove the undirected edges ``(a[i], b[i])`` in one difference.

        Absent edges are ignored (a departing peer's edges may already
        be gone).
        """
        a, b = self._edge_batch(a, b, check_active=False)
        if a.size == 0:
            return
        gone = np.unique(
            np.concatenate([self._pack(a, b), self._pack(b, a)])
        )
        self._keys = setdiff_sorted(self._keys, gone)
        self._csr = None

    def detach(self, indices: np.ndarray) -> None:
        """Drop every edge touching any of ``indices`` (batch departure)."""
        indices = np.unique(self._indices(indices))
        if indices.size == 0 or self._keys.size == 0:
            return
        src = self._keys // self.capacity
        dst = self._keys % self.capacity
        drop = isin_sorted(indices, src) | isin_sorted(indices, dst)
        if drop.any():
            self._keys = self._keys[~drop]
            self._csr = None

    # -- views --------------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        """Active node count."""
        return int(self.active.sum())

    @property
    def n_edges(self) -> int:
        """Undirected edge count."""
        return int(self._keys.size // 2)

    @property
    def edge_keys(self) -> np.ndarray:
        """The sorted directed key array (read-only view)."""
        view = self._keys.view()
        view.flags.writeable = False
        return view

    def csr(self) -> Tuple[np.ndarray, np.ndarray]:
        """The adjacency as ``(indptr, indices)``; cached until churn.

        Node ``i`` owns neighbours ``indices[indptr[i]:indptr[i+1]]``,
        ascending (the flood engine's canonical expansion order).
        """
        if self._csr is None:
            src = self._keys // self.capacity
            counts = np.bincount(src, minlength=self.capacity)
            indptr = np.zeros(self.capacity + 1, dtype=np.int64)
            np.cumsum(counts, out=indptr[1:])
            self._csr = (indptr, (self._keys % self.capacity).astype(np.int64))
        return self._csr

    def neighbours(self, index: int) -> np.ndarray:
        """One node's neighbour indices (ascending)."""
        indptr, indices = self.csr()
        return indices[indptr[index]:indptr[index + 1]]

    def degrees(self) -> np.ndarray:
        """Per-node connection counts."""
        indptr, _ = self.csr()
        return np.diff(indptr)

    def has_edges(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Whether each undirected edge ``(a[i], b[i])`` exists."""
        a = self._indices(a)
        b = self._indices(b)
        return isin_sorted(self._keys, self._pack(a, b))

    def validate(self) -> "CSRTopology":
        """Check the structural invariants; returns ``self`` for chaining."""
        if self._keys.size:
            if (np.diff(self._keys) <= 0).any():
                raise AssertionError("edge keys must be sorted unique")
            src = self._keys // self.capacity
            dst = self._keys % self.capacity
            if (src == dst).any():
                raise AssertionError("self-loop present")
            if not self.active[src].all() or not self.active[dst].all():
                raise AssertionError("edge endpoint inactive")
            if not isin_sorted(self._keys, self._pack(dst, src)).all():
                raise AssertionError("edge set not symmetric")
        return self

    # -- conversion ---------------------------------------------------------

    @classmethod
    def from_overlay(
        cls, overlay, capacity: Optional[int] = None
    ) -> Tuple["CSRTopology", List[str]]:
        """Convert an :class:`~repro.gnutella.overlay.OverlayNetwork`.

        Returns ``(topology, node_ids)`` with node ``node_ids[i]`` at
        index ``i`` (ids sorted, so the mapping is reproducible).  Both
        engine backends run the *same* object-built backbone through
        this conversion, which is what makes their topologies identical
        by construction rather than by parallel re-implementation.
        ``capacity`` reserves extra inactive slots past the backbone
        (one per future churn session) without changing the conversion.
        """
        node_ids = sorted(overlay.nodes)
        index = {node_id: i for i, node_id in enumerate(node_ids)}
        if capacity is None:
            capacity = len(node_ids)
        if capacity < len(node_ids):
            raise ValueError("capacity smaller than the overlay's node count")
        topo = cls(capacity)
        topo.active[: len(node_ids)] = True
        for node_id, node in overlay.nodes.items():
            topo.is_ultrapeer[index[node_id]] = node.is_ultrapeer
        pairs = [
            (index[node_id], index[neighbour])
            for node_id, node in overlay.nodes.items()
            for neighbour in node.neighbours
        ]
        if pairs:
            arr = np.asarray(pairs, dtype=np.int64)
            topo._keys = np.unique(arr[:, 0] * topo.capacity + arr[:, 1])
        return topo.validate(), node_ids

    # -- internals ----------------------------------------------------------

    def _pack(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return a * np.int64(self.capacity) + b

    def _indices(self, indices: np.ndarray) -> np.ndarray:
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and (
            indices.min() < 0 or indices.max() >= self.capacity
        ):
            raise IndexError("node index out of range")
        return indices

    def _edge_batch(
        self, a: np.ndarray, b: np.ndarray, check_active: bool = True
    ) -> Tuple[np.ndarray, np.ndarray]:
        a = self._indices(a)
        b = self._indices(b)
        if a.shape != b.shape:
            raise ValueError("edge endpoint arrays must have matching shapes")
        if (a == b).any():
            raise ValueError("a peer cannot connect to itself")
        if check_active and a.size and not (
            self.active[a].all() and self.active[b].all()
        ):
            raise ValueError("cannot connect inactive nodes")
        return a, b
