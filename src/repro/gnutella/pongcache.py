"""Pong caching.

Era Gnutella clients stopped re-flooding PINGs ("the Ping/Pong scheme
... was the dominant traffic source before caching"): each peer keeps a
small cache of recently seen PONGs and answers an incoming PING with its
own PONG plus a handful of cached ones, giving the asker a view of the
wider network at zero flooding cost.  The measurement node's Table 1
PONG counts (17.8M) reflect this behaviour -- most PONGs describe peers
far beyond one hop.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional

import numpy as np

from .messages import Pong

__all__ = ["PongCache", "DEFAULT_PONG_TTL_SECONDS"]

#: Cached peer addresses go stale quickly under churn.
DEFAULT_PONG_TTL_SECONDS = 60.0


class PongCache:
    """A small TTL+LRU cache of PONGs keyed by advertised address."""

    def __init__(
        self,
        capacity: int = 30,
        ttl_seconds: float = DEFAULT_PONG_TTL_SECONDS,
        seed: int = 0,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if ttl_seconds <= 0:
            raise ValueError(f"ttl_seconds must be positive, got {ttl_seconds}")
        self.capacity = capacity
        self.ttl_seconds = float(ttl_seconds)
        self._entries: "OrderedDict[tuple, tuple]" = OrderedDict()
        #: Default sampling stream when callers do not thread their own
        #: rng: seeded from the construction seed so two caches built the
        #: same way relay the same PONG subsets run after run.
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        return len(self._entries)

    def add(self, pong: Pong, now: float) -> None:
        """Cache a PONG observed at ``now`` (newest wins per address)."""
        key = (pong.ip, pong.port)
        if key in self._entries:
            del self._entries[key]
        self._entries[key] = (pong, now)
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def expire(self, now: float) -> int:
        """Drop entries older than the TTL; returns how many."""
        stale = [
            key for key, (_, seen) in self._entries.items()
            if now - seen >= self.ttl_seconds
        ]
        for key in stale:
            del self._entries[key]
        return len(stale)

    def sample(
        self, k: int, now: float, rng: Optional[np.random.Generator] = None
    ) -> List[Pong]:
        """Up to ``k`` fresh cached PONGs (random subset when over-full)."""
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        self.expire(now)
        pongs = [entry[0] for entry in self._entries.values()]
        if len(pongs) <= k:
            return pongs
        rng = rng if rng is not None else self._rng
        picks = rng.choice(len(pongs), size=k, replace=False)
        return [pongs[int(i)] for i in picks]
