"""Gnutella client implementation profiles and their automated behaviour.

The paper attributes several query anomalies to specific client
implementations, identified by the User-Agent header (Section 3.3):

1. SHA1 source-search re-queries for files already being downloaded
   (filter rule 1);
2. automatic periodic re-sending of a user's query to improve results
   (filter rule 2);
3. quick disconnects: ~70% of connections last under 64 seconds (rule 3);
4. back-to-back re-queries (< 1 s apart) sent right after connecting,
   repeating queries the user issued *before* connecting (rule 4);
5. re-queries at exactly regular intervals, e.g. every 10 s (rule 5).

A :class:`ClientProfile` encodes the rates of each behaviour for one
client implementation.  :func:`expand_user_session` applies a profile to
a *user* query plan and produces the full message-level query stream the
measurement node would observe from that client -- the ground-truth
mechanism behind Table 2.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "ClientProfile",
    "CLIENT_PROFILES",
    "MEASUREMENT_USER_AGENT",
    "choose_profile",
    "choose_profile_indices",
    "profile_attribute_arrays",
    "sha1_urns_for",
    "ExpandedQuery",
    "expand_user_session",
]

#: Upper bound on automated repeats of one query (a client eventually
#: gives up or the user closes the search tab).
_MAX_REQUERY_REPEATS = 300

#: The measurement node runs a modified mutella (Section 3.1).
MEASUREMENT_USER_AGENT = "Mutella-0.4.5-measure"


@dataclass(frozen=True)
class ClientProfile:
    """Automation behaviour of one Gnutella client implementation.

    Rates are per *user* query unless stated otherwise.  The defaults of
    zero make a profile fully well-behaved (no automation).
    """

    name: str
    user_agent: str
    market_share: float
    ultrapeer_capable: bool = True
    #: Mean seconds between automated duplicate re-queries of an open
    #: search (rule 2 traffic).  Zero disables re-querying.  Era clients
    #: re-sent a query periodically while its search tab stayed open, so
    #: the number of repeats grows with the session's remaining lifetime
    #: -- the heavy-tail amplification that inflates unfiltered
    #: popularity statistics (Section 4.6's comparison to ref [20]).
    requery_interval_seconds: float = 0.0
    #: How long an open search keeps re-querying before the user closes
    #: it or the client gives up (bounds rule 2 traffic per query).
    requery_window_seconds: float = 7200.0
    #: Mean SHA1 source-search queries per user query (rule 1 traffic).
    sha1_per_query: float = 0.0
    #: Probability an active session opens with a burst of pre-connection
    #: user queries re-sent < 1 s apart (rule 4 traffic).
    burst_prob: float = 0.0
    #: Mean number of queries in such a burst (>= 1).
    burst_mean: float = 2.0
    #: Probability an active session re-queries at a fixed interval (rule 5).
    fixed_interval_prob: float = 0.0
    #: The fixed re-query period in seconds.
    fixed_interval_seconds: float = 10.0
    #: Probability a connection is a quick system disconnect (< 64 s),
    #: independent of user intent (rule 3 traffic).
    quick_disconnect_prob: float = 0.70

    def __post_init__(self):
        if not 0.0 <= self.market_share <= 1.0:
            raise ValueError(f"market_share must be in [0, 1], got {self.market_share}")
        for attr in ("requery_interval_seconds", "requery_window_seconds",
                     "sha1_per_query", "burst_mean"):
            if getattr(self, attr) < 0:
                raise ValueError(f"{attr} must be non-negative")
        for attr in ("burst_prob", "fixed_interval_prob", "quick_disconnect_prob"):
            if not 0.0 <= getattr(self, attr) <= 1.0:
                raise ValueError(f"{attr} must be a probability")


#: Client mix of the 2004-era Gnutella network.  Market shares are
#: era-plausible; automation rates are calibrated so the synthesized
#: trace reproduces the Table 2 proportions: ~24% of raw hop-1 queries
#: carry SHA1, ~63% of the non-SHA1 stream are within-session duplicates,
#: ~70% of connections disconnect before 64 s, ~45% of surviving user
#: queries arrive in <1 s bursts, and ~8% at identical intervals.
CLIENT_PROFILES: Tuple[ClientProfile, ...] = (
    ClientProfile(
        name="limewire", user_agent="LimeWire/3.8.10", market_share=0.40,
        requery_interval_seconds=400.0, sha1_per_query=3.2,
        burst_prob=0.85, burst_mean=6.0, quick_disconnect_prob=0.72,
    ),
    ClientProfile(
        name="bearshare", user_agent="BearShare 4.6.2", market_share=0.20,
        requery_interval_seconds=330.0, sha1_per_query=2.8,
        burst_prob=0.60, burst_mean=5.0,
        fixed_interval_prob=0.75, fixed_interval_seconds=10.0,
        quick_disconnect_prob=0.70,
    ),
    ClientProfile(
        name="shareaza", user_agent="Shareaza 2.0.0.0", market_share=0.12,
        requery_interval_seconds=480.0, sha1_per_query=3.6,
        burst_prob=0.80, burst_mean=5.0,
        fixed_interval_prob=0.40, fixed_interval_seconds=20.0,
        quick_disconnect_prob=0.68,
    ),
    ClientProfile(
        name="morpheus", user_agent="Morpheus 3.2", market_share=0.10,
        requery_interval_seconds=650.0, sha1_per_query=1.8,
        burst_prob=0.80, burst_mean=6.0, quick_disconnect_prob=0.72,
    ),
    ClientProfile(
        name="gtk-gnutella", user_agent="gtk-gnutella/0.93", market_share=0.08,
        requery_interval_seconds=900.0, sha1_per_query=1.2,
        burst_prob=0.40, burst_mean=4.0,
        quick_disconnect_prob=0.65,
    ),
    ClientProfile(
        name="mutella", user_agent="Mutella-0.4.3", market_share=0.06,
        requery_interval_seconds=1200.0, sha1_per_query=0.8,
        quick_disconnect_prob=0.62, ultrapeer_capable=False,
    ),
    ClientProfile(
        name="gnucleus", user_agent="Gnucleus 1.8.6.0", market_share=0.04,
        requery_interval_seconds=650.0, sha1_per_query=1.4,
        burst_prob=0.40, burst_mean=4.0,
        fixed_interval_prob=0.65, fixed_interval_seconds=30.0,
        quick_disconnect_prob=0.70,
    ),
)

def choose_profile(
    rng: np.random.Generator,
    profiles: Optional[Sequence[ClientProfile]] = None,
) -> ClientProfile:
    """Draw a client profile according to market share.

    ``profiles`` overrides the default era mix (used by sensitivity
    sweeps and tests); shares are renormalized over the given set.
    """
    pool = tuple(profiles) if profiles is not None else CLIENT_PROFILES
    if not pool:
        raise ValueError("profiles must not be empty")
    cum = _share_cumweights(pool)
    return pool[int(np.searchsorted(cum, rng.random()))]


def choose_profile_indices(
    rng: np.random.Generator,
    count: int,
    profiles: Optional[Sequence[ClientProfile]] = None,
) -> np.ndarray:
    """``count`` market-share draws at once, as indices into the pool.

    The batch form of :func:`choose_profile` for the columnar synthesis
    path: one vectorized inverse-CDF pass instead of a searchsorted per
    connection.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    pool = tuple(profiles) if profiles is not None else CLIENT_PROFILES
    if not pool:
        raise ValueError("profiles must not be empty")
    cum = _share_cumweights(pool)
    return np.searchsorted(cum, rng.random(count))


_PROFILE_ARRAY_CACHE: dict = {}


def profile_attribute_arrays(
    profiles: Optional[Sequence[ClientProfile]] = None,
) -> dict:
    """Per-profile automation parameters as parallel arrays, cached.

    Keys mirror the :class:`ClientProfile` attribute names (plus
    ``user_agent`` and ``ultrapeer_capable``); indexing any of them with
    the result of :func:`choose_profile_indices` gathers that parameter
    for a whole batch of connections.
    """
    pool = tuple(profiles) if profiles is not None else CLIENT_PROFILES
    cached = _PROFILE_ARRAY_CACHE.get(pool)
    if cached is None:
        cached = {
            "user_agent": np.array([p.user_agent for p in pool], dtype=np.str_),
            "ultrapeer_capable": np.array([p.ultrapeer_capable for p in pool], dtype=bool),
            "quick_disconnect_prob": np.array([p.quick_disconnect_prob for p in pool]),
            "requery_interval_seconds": np.array([p.requery_interval_seconds for p in pool]),
            "requery_window_seconds": np.array([p.requery_window_seconds for p in pool]),
            "sha1_per_query": np.array([p.sha1_per_query for p in pool]),
            "burst_prob": np.array([p.burst_prob for p in pool]),
            "fixed_interval_prob": np.array([p.fixed_interval_prob for p in pool]),
            "fixed_interval_seconds": np.array([p.fixed_interval_seconds for p in pool]),
        }
        _PROFILE_ARRAY_CACHE[pool] = cached
    return cached


_SHARE_CUM_CACHE: dict = {}


def _share_cumweights(pool) -> np.ndarray:
    """Cumulative normalized market shares, cached per profile tuple.

    Inverse-CDF on one uniform replaces ``rng.choice(p=...)`` in the
    per-connection hot path; the cache keys on the (hashable, frozen)
    profile tuple so sweep-provided custom pools get their own entry.
    """
    key = pool
    cum = _SHARE_CUM_CACHE.get(key)
    if cum is None:
        shares = np.array([p.market_share for p in pool], dtype=float)
        if shares.sum() <= 0:
            raise ValueError("market shares must sum to a positive value")
        cum = np.cumsum(shares / shares.sum())
        _SHARE_CUM_CACHE[key] = cum
    return cum


@dataclass(frozen=True)
class ExpandedQuery:
    """One query in the full (user + automated) message stream."""

    offset: float  # seconds since session start
    keywords: str
    sha1: bool = False
    automated: bool = False


def _sha1_urn_for(keywords: str) -> str:
    """A deterministic fake SHA1 urn for the file behind a query."""
    return hashlib.sha1(keywords.encode("utf-8")).hexdigest()


_URN_CACHE: dict = {}


def sha1_urns_for(keywords: np.ndarray) -> np.ndarray:
    """Vectorized :func:`_sha1_urn_for` over a string array.

    Hashes each *distinct* keyword string once (memoized across calls --
    the popular-query head recurs in every shard) and gathers the result
    through the unique-inverse indices.
    """
    if keywords.size == 0:
        return np.empty(0, dtype="U40")
    # One memoized dict probe per row beats sorting the strings for a
    # unique-inverse gather: the popular-query head recurs constantly,
    # so nearly every probe is a cache hit.
    cache = _URN_CACHE
    urns = []
    for kw in keywords.tolist():
        urn = cache.get(kw)
        if urn is None:
            urn = _sha1_urn_for(kw)
            cache[kw] = urn
        urns.append(urn)
    return np.array(urns, dtype="U40")


def expand_user_session(
    user_queries: Sequence[Tuple[float, str]],
    session_duration: float,
    profile: ClientProfile,
    rng: np.random.Generator,
    pre_connect_queries: Optional[Sequence[str]] = None,
) -> List[ExpandedQuery]:
    """Expand a user's query plan into the observable message stream.

    ``user_queries`` is the ground-truth plan: (offset, keywords) pairs.
    The profile inserts its automated traffic around it:

    * each user query is automatically re-sent at roughly the profile's
      re-query interval for as long as the session lasts, so long
      sessions accumulate many duplicates (rule 2 traffic);
    * each user query spawns ``Poisson`` SHA1 source-search queries
      (rule 1 traffic);
    * with ``burst_prob`` (only when the user issued queries *before*
      connecting -- ``pre_connect_queries``), those are re-sent in the
      first second(s) of the session (rule 4 traffic);
    * with ``fixed_interval_prob`` the first user query is re-sent at
      exactly the profile's period until the session ends (rule 5).

    Returns the stream sorted by offset.  All offsets lie inside
    ``[0, session_duration]``.
    """
    if session_duration <= 0:
        raise ValueError(f"session_duration must be positive, got {session_duration}")
    stream: List[ExpandedQuery] = [
        ExpandedQuery(offset=o, keywords=k) for o, k in user_queries
    ]
    for offset, keywords in user_queries:
        remaining = session_duration - offset
        if remaining <= 0:
            continue
        # Rule 2 traffic: the client re-sends the open search roughly
        # every requery_interval_seconds until the session ends, so the
        # repeat count is proportional to the remaining session time.
        if profile.requery_interval_seconds > 0:
            horizon = min(session_duration, offset + profile.requery_window_seconds)
            t = offset + rng.exponential(profile.requery_interval_seconds)
            repeats = 0
            while t < horizon and repeats < _MAX_REQUERY_REPEATS:
                stream.append(ExpandedQuery(offset=t, keywords=keywords, automated=True))
                t += rng.exponential(profile.requery_interval_seconds)
                repeats += 1
        # Rule 1 traffic: SHA1 source searches for the downloading file.
        if profile.sha1_per_query > 0:
            for _ in range(int(rng.poisson(profile.sha1_per_query))):
                t = offset + rng.random() * remaining
                stream.append(
                    ExpandedQuery(offset=t, keywords=_sha1_urn_for(keywords),
                                  sha1=True, automated=True)
                )
    # Rule 4 traffic: pre-connection user queries re-sent back-to-back.
    if pre_connect_queries and rng.random() < profile.burst_prob:
        t = 0.05 + rng.random() * 0.2
        for keywords in pre_connect_queries:
            if t >= session_duration:
                break
            stream.append(ExpandedQuery(offset=t, keywords=keywords, automated=True))
            t += 0.1 + rng.random() * 0.8  # strictly under one second apart
    # Rule 5 traffic: the client walks its list of open searches at a
    # fixed period.  Distinct strings at identical intervals are exactly
    # what rule 5 targets (repeats of the *same* string fall to rule 2).
    search_list: List[str] = []
    for keywords in list(pre_connect_queries or []) + [k for _, k in user_queries]:
        if keywords not in search_list:
            search_list.append(keywords)
    if search_list and rng.random() < profile.fixed_interval_prob:
        period = profile.fixed_interval_seconds
        # Clients stop re-querying once enough results accumulate; cap
        # the metronome at a modest random repeat count.
        max_repeats = int(rng.integers(5, 25))
        t = period
        for i in range(max_repeats):
            if t >= session_duration:
                break
            stream.append(
                ExpandedQuery(offset=t, keywords=search_list[i % len(search_list)], automated=True)
            )
            t += period
    stream.sort(key=lambda q: q.offset)
    return stream
