"""Gnutella overlay network simulator.

Builds a full ultrapeer/leaf topology of :class:`~repro.gnutella.peer.PeerNode`
objects and delivers messages through the
:class:`~repro.gnutella.simulator.EventScheduler` with per-link latency.
This is the substrate for the search-behaviour examples (query flooding,
TTL horizon, QUERYHIT reverse routing) and for validating that the peer
forwarding rules compose correctly at network scale.

"The construction algorithm of the Gnutella overlay network does not
contain any geographic bias in the peers that are directly connected"
(Section 3.1) -- accordingly, topology construction here picks neighbours
uniformly at random, and a test verifies the no-bias property the paper's
measurement methodology leans on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.regions import Region
from repro.geoip import IpAllocator

from .messages import Message, Query, QueryHit
from .peer import PeerMode, PeerNode
from .simulator import EventScheduler

__all__ = ["OverlayNetwork", "QueryOutcome"]


@dataclass
class QueryOutcome:
    """Result of flooding one query through the overlay."""

    origin: str
    keywords: str
    messages_sent: int = 0
    peers_reached: Set[str] = field(default_factory=set)
    hits: int = 0
    hit_latency: List[float] = field(default_factory=list)

    @property
    def reach(self) -> int:
        return len(self.peers_reached)


class OverlayNetwork:
    """An in-memory Gnutella overlay with event-driven message delivery.

    Parameters
    ----------
    n_ultrapeers, n_leaves:
        Topology size.  Each ultrapeer connects to ``ultrapeer_degree``
        random other ultrapeers; each leaf attaches to
        ``leaves_per_ultrapeer`` random ultrapeers ("less powerful peers
        connect to only a small set of ultrapeers").
    region_weights:
        Optional geographic mix for peer placement; defaults to the
        paper's Figure 1 noon mix.
    latency_ms:
        (low, high) uniform per-link latency in milliseconds.
    """

    def __init__(
        self,
        n_ultrapeers: int = 50,
        n_leaves: int = 150,
        ultrapeer_degree: int = 6,
        leaf_attachments: int = 2,
        region_weights: Optional[Dict[Region, float]] = None,
        latency_ms: Tuple[float, float] = (20.0, 200.0),
        seed: int = 11,
    ):
        if n_ultrapeers < 2:
            raise ValueError("need at least 2 ultrapeers")
        if ultrapeer_degree < 1 or leaf_attachments < 1:
            raise ValueError("degrees must be >= 1")
        self.rng = np.random.default_rng(seed)
        self.scheduler = EventScheduler()
        self.nodes: Dict[str, PeerNode] = {}
        self.latency_ms = latency_ms
        self._allocator = IpAllocator(seed=seed)
        weights = region_weights or {
            Region.NORTH_AMERICA: 0.60, Region.EUROPE: 0.20,
            Region.ASIA: 0.13, Region.OTHER: 0.07,
        }
        self._regions = list(weights)
        self._region_p = np.array([weights[r] for r in self._regions], dtype=float)
        self._region_p = self._region_p / self._region_p.sum()
        self.region_of: Dict[str, Region] = {}
        self._build(n_ultrapeers, n_leaves, ultrapeer_degree, leaf_attachments)

    # -- construction -------------------------------------------------------------

    def _new_node(self, index: int, mode: PeerMode) -> PeerNode:
        region = self._regions[int(self.rng.choice(len(self._regions), p=self._region_p))]
        node_id = f"{mode.value[:2]}{index:05d}"
        node = PeerNode(
            node_id=node_id,
            ip=self._allocator.allocate(region),
            mode=mode,
            max_connections=200 if mode is PeerMode.ULTRAPEER else 5,
        )
        self.nodes[node_id] = node
        self.region_of[node_id] = region
        return node

    def _build(self, n_ultrapeers: int, n_leaves: int, degree: int, attachments: int) -> None:
        ultrapeers = [self._new_node(i, PeerMode.ULTRAPEER) for i in range(n_ultrapeers)]
        # Random regular-ish ultrapeer mesh: no geographic bias.
        ids = [u.node_id for u in ultrapeers]
        for u in ultrapeers:
            want = degree - len(u.neighbours)
            if want <= 0:
                continue
            candidates = [i for i in ids if i != u.node_id and i not in u.neighbours
                          and self.nodes[i].can_accept()]
            self.rng.shuffle(candidates)
            for other in candidates[:want]:
                self.connect(u.node_id, other)
        for j in range(n_leaves):
            leaf = self._new_node(j, PeerMode.LEAF)
            chosen = self.rng.choice(len(ids), size=min(attachments, len(ids)), replace=False)
            for idx in chosen:
                self.connect(leaf.node_id, ids[int(idx)])

    def connect(self, a: str, b: str) -> None:
        """Create a bidirectional overlay connection."""
        na, nb = self.nodes[a], self.nodes[b]
        if b in na.neighbours:
            return
        na.add_neighbour(b, nb.mode)
        nb.add_neighbour(a, na.mode)

    def disconnect(self, a: str, b: str) -> None:
        self.nodes[a].remove_neighbour(b)
        self.nodes[b].remove_neighbour(a)

    # -- library assignment -----------------------------------------------------

    def seed_libraries(self, catalog: Sequence[str], mean_files: float = 8.0, replication: float = 0.02) -> None:
        """Give each peer a random library drawn from ``catalog``.

        Each peer shares a Poisson number of items; each item is a
        uniformly random catalog entry, so an item's replication factor
        is roughly ``replication * n_peers`` when mean_files/len(catalog)
        ~ replication.  Free riders (sharing nothing) arise naturally
        from the Poisson draw, echoing Adar & Huberman's observation.
        """
        if not catalog:
            raise ValueError("catalog must not be empty")
        del replication  # documented knob; the draw below realizes it
        for node in self.nodes.values():
            count = int(self.rng.poisson(mean_files))
            picks = self.rng.choice(len(catalog), size=min(count, len(catalog)), replace=False)
            node.library = {catalog[int(i)].lower() for i in picks}
        self.exchange_qrp_tables()

    def exchange_qrp_tables(self) -> None:
        """Leaves push their QRP tables to their ultrapeers (Section 3.1:
        queries are only forwarded to leaves likely to respond)."""
        for node_id, node in self.nodes.items():
            if node.is_ultrapeer:
                continue
            table = node.build_qrp_table()
            for neighbour_id in node.neighbours:
                neighbour = self.nodes[neighbour_id]
                if neighbour.is_ultrapeer:
                    neighbour.install_leaf_table(node_id, table)

    # -- traffic -------------------------------------------------------------------

    def _latency(self) -> float:
        low, high = self.latency_ms
        return (low + self.rng.random() * (high - low)) / 1000.0

    def flood_query(self, origin: str, keywords: str, ttl: int = 7) -> QueryOutcome:
        """Originate a query at ``origin`` and run the flood to completion.

        Returns the outcome: overlay messages generated, distinct peers
        reached, hits received back at the origin, and per-hit latency.
        """
        node = self.nodes[origin]
        outcome = QueryOutcome(origin=origin, keywords=keywords)
        start = self.scheduler.now
        query, actions = node.originate_query(keywords, now=start, ttl=ttl)
        self._dispatch(origin, actions, outcome, query.guid, start)
        self.scheduler.run()
        return outcome

    def _dispatch(self, sender: str, actions, outcome: QueryOutcome, guid: bytes, start: float) -> None:
        for dest, message in actions:
            outcome.messages_sent += 1
            delay = self._latency()

            def deliver(dest=dest, message=message, sender=sender):
                target = self.nodes.get(dest)
                if target is None or sender not in target.neighbours:
                    return
                if isinstance(message, Query) and message.guid == guid:
                    outcome.peers_reached.add(dest)
                if isinstance(message, QueryHit) and message.guid == guid and dest == outcome.origin:
                    outcome.hits += message.n_hits
                    outcome.hit_latency.append(self.scheduler.now - start)
                    # Terminal delivery: the origin consumes its own hit.
                    self.nodes[dest].handle(message, sender, self.scheduler.now)
                    return
                follow_up = target.handle(message, sender, self.scheduler.now)
                self._dispatch(dest, follow_up, outcome, guid, start)

            self.scheduler.schedule_after(delay, deliver)

    # -- introspection --------------------------------------------------------------

    def degree_distribution(self) -> Dict[str, List[int]]:
        """Connection counts split by mode (for topology sanity checks)."""
        out: Dict[str, List[int]] = {"ultrapeer": [], "leaf": []}
        for node in self.nodes.values():
            out[node.mode.value].append(len(node.neighbours))
        return out

    def one_hop_region_mix(self, node_id: str) -> Dict[Region, float]:
        """Geographic mix of a node's direct neighbours (Figure 1 check)."""
        node = self.nodes[node_id]
        if not node.neighbours:
            return {}
        counts: Dict[Region, int] = {}
        for n in node.neighbours:
            counts[self.region_of[n]] = counts.get(self.region_of[n], 0) + 1
        total = sum(counts.values())
        return {r: c / total for r, c in counts.items()}
