"""GUID routing table (paper Section 3.1).

Forwarding a QUERY more than once is prevented by storing the query's
GUID in a routing table along with the identity of the directly connected
peer the query was first received from.  QUERYHIT responses travel the
reverse path by looking up that entry.  Entries expire after a specified
time, typically 10 minutes.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, Optional

from .messages import Guid

__all__ = ["RoutingTable", "DEFAULT_GUID_TTL_SECONDS"]

#: "a GUID is deleted from the routing table after a specified time,
#: typically after 10 minutes" (Section 3.1).
DEFAULT_GUID_TTL_SECONDS = 600.0


class RoutingTable:
    """Maps message GUIDs to the connection they first arrived on.

    Entries are kept in insertion order so expiry is O(expired).  The
    table answers two questions:

    * ``seen(guid)`` -- has this GUID been routed already?  (duplicate
      forwarding suppression)
    * ``reverse_route(guid)`` -- which neighbour should a QUERYHIT for
      this GUID be sent to?
    """

    def __init__(self, ttl_seconds: float = DEFAULT_GUID_TTL_SECONDS, max_entries: int = 1_000_000):
        if ttl_seconds <= 0:
            raise ValueError(f"ttl_seconds must be positive, got {ttl_seconds}")
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.ttl_seconds = float(ttl_seconds)
        self.max_entries = int(max_entries)
        self._entries: "OrderedDict[Guid, tuple]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def record(self, guid: Guid, origin: Hashable, now: float) -> bool:
        """Record a GUID arriving from ``origin`` at time ``now``.

        Returns True if the GUID is new (the message should be routed),
        False if it was already present (duplicate; drop it).  Re-seeing
        a GUID does not refresh its expiry, matching the protocol: the
        first arrival owns the reverse route.
        """
        self.expire(now)
        if guid in self._entries:
            return False
        if len(self._entries) >= self.max_entries:
            self._entries.popitem(last=False)
        self._entries[guid] = (origin, now)
        return True

    def seen(self, guid: Guid, now: Optional[float] = None) -> bool:
        """Whether the GUID has an unexpired entry."""
        if now is not None:
            self.expire(now)
        return guid in self._entries

    def reverse_route(self, guid: Guid, now: Optional[float] = None) -> Optional[Hashable]:
        """The neighbour to forward a response for ``guid`` to, if known."""
        if now is not None:
            self.expire(now)
        entry = self._entries.get(guid)
        return entry[0] if entry is not None else None

    def expire(self, now: float) -> int:
        """Drop entries older than the table TTL; return how many."""
        dropped = 0
        while self._entries:
            guid, (_, recorded) = next(iter(self._entries.items()))
            if now - recorded < self.ttl_seconds:
                break
            self._entries.popitem(last=False)
            dropped += 1
        return dropped
