"""Delta-stepped batched columnar overlay engine.

The scalar overlay (:mod:`repro.gnutella.overlay` /
:mod:`repro.gnutella.livesim`) delivers one message per scheduler
callback, which caps it at toy populations.  This module simulates the
same ultrapeer/leaf protocol as array programs over the
:class:`~repro.gnutella.topology.CSRTopology` adjacency:

* query flooding is frontier expansion -- one segmented gather/scatter
  over neighbour lists per TTL ring, duplicate-GUID suppression via
  sorted set-membership kernels, vectorized hop accounting;
* QRP leaf forwarding is resolved analytically after the ultrapeer BFS
  from per-keyword-code postings of the packed tables
  (:class:`~repro.gnutella.qrp.PackedQRPTables` bit semantics);
* QUERYHIT reverse routing is a depth sum (the reverse path of an
  answerer at BFS depth ``d`` is exactly ``d`` messages long);
* churn is delta-stepped: sessions connect at the round of their start
  and disconnect at the end of the round of their end, so the round
  width ``delta_seconds`` is part of the simulation's identity.

``backend="event"`` runs the *same* plan through the real
:class:`~repro.gnutella.peer.PeerNode` machinery with zero link latency
(floods complete instantaneously in virtual time, which makes delivery
a strict BFS) and the real :class:`~repro.measurement.MeasurementNode`.
The two backends are held to identical monitor-observed hop-1 query
streams, reach sets/TTL horizons, per-query message and hit counts,
reconstructed sessions, and keep-alive totals by
:func:`compare_runs` -- the equivalence battery CI enforces.

All array work dispatches through :mod:`repro.core.kernels`; query
batches shard over workers via ``pool_map`` with byte-identical output
for any ``jobs`` (floods are independent per query).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.generator_columnar import (
    WORKLOAD_REGION_CODE,
    WORKLOAD_REGION_ORDER,
    ColumnarWorkload,
)
from repro.core.kernels import (
    isin_sorted,
    merge_unique,
    pool_map,
    resolve_workers,
    segmented_arange,
    sorted_lookup,
)
from repro.core.regions import Region
from repro.measurement import MeasurementNode
from repro.measurement.monitor import IDLE_CLOSE_SECONDS, IDLE_PROBE_SECONDS

from .messages import Query, QueryHit
from .overlay import OverlayNetwork
from .peer import PeerMode, PeerNode
from .qrp import text_hash_table
from .simulator import EventScheduler
from .topology import CSRTopology

__all__ = [
    "ENGINE_BACKENDS",
    "MONITOR_ID",
    "FloodContext",
    "FloodResult",
    "OverlayConfig",
    "OverlayRunResult",
    "compare_runs",
    "flood_context_from_overlay",
    "flood_queries",
    "simulate_workload",
]

ENGINE_BACKENDS = ("columnar", "event")

MONITOR_ID = "monitor"
MONITOR_IP = "129.217.1.1"

#: Queries per worker task: small enough that the per-round frontier
#: arrays stay inside the laptop RSS budget at 50k+ populations.
QUERIES_PER_TASK = 512

_IDLE_OVERSHOOT = IDLE_PROBE_SECONDS + IDLE_CLOSE_SECONDS


@dataclass(frozen=True)
class OverlayConfig:
    """Shared knobs of one overlay simulation (both backends)."""

    n_backbone_ultrapeers: int = 24
    n_backbone_leaves: int = 48
    ultrapeer_degree: int = 6
    leaf_attachments: int = 2
    monitor_links: int = 6
    delta_seconds: float = 30.0
    ttl: int = 4
    churn_ultrapeer_prob: float = 0.15
    mean_library_files: float = 8.0
    qrp_log_size: int = 12
    user_agent: str = "repro-sim/1.0"
    seed: int = 11


# ---------------------------------------------------------------------------
# Flood context: topology + QRP postings + holder postings
# ---------------------------------------------------------------------------


@dataclass
class FloodContext:
    """Everything one batched flood needs besides the origins.

    ``matched_*`` is a per-keyword-code CSR of the leaf rows whose QRP
    table passes ``might_match`` for that code (bit-exact with the
    scalar tables, false positives included); ``holder_*`` is a
    per-code CSR of every node row whose library contains the code
    (the exact-match answer set of ``PeerNode._matches``).
    """

    topo: CSRTopology
    vocab: np.ndarray
    matched_offsets: np.ndarray
    matched_counts: np.ndarray
    matched_flat: np.ndarray
    holder_offsets: np.ndarray
    holder_counts: np.ndarray
    holder_flat: np.ndarray

    def codes_for(self, texts: Sequence[str]) -> np.ndarray:
        """Vocabulary codes of query texts (must all be in ``vocab``)."""
        values = np.char.lower(np.asarray(list(texts), dtype=np.str_))
        if values.size == 0:
            return np.zeros(0, dtype=np.int64)
        mask, idx = sorted_lookup(self.vocab, values)
        if not mask.all():
            raise ValueError("query text missing from the flood vocabulary")
        return idx


@dataclass
class FloodResult:
    """Per-query outcome of one batched flood."""

    messages: np.ndarray
    hits: np.ndarray
    reach: np.ndarray
    #: Only with ``record_reach``: flat (query, node, depth) triples
    #: sorted by (query, node) -- the TTL-horizon ground truth.
    reach_query: Optional[np.ndarray] = None
    reach_node: Optional[np.ndarray] = None
    reach_depth: Optional[np.ndarray] = None


def _csr_take(
    indptr: np.ndarray, indices: np.ndarray, nodes: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Concatenated neighbour lists of ``nodes`` and their counts."""
    counts = indptr[nodes + 1] - indptr[nodes]
    take = np.repeat(indptr[nodes], counts) + segmented_arange(counts)
    return indices[take], counts


def _code_csr(pairs_code: np.ndarray, pairs_row: np.ndarray, n_codes: int, cap: int):
    """(code, row) pairs -> per-code sorted unique row CSR."""
    if pairs_code.size:
        keys = np.unique(pairs_code * np.int64(cap) + pairs_row)
        counts = np.bincount(keys // cap, minlength=n_codes).astype(np.int64)
        flat = (keys % cap).astype(np.int64)
    else:
        counts = np.zeros(n_codes, dtype=np.int64)
        flat = np.zeros(0, dtype=np.int64)
    offsets = np.zeros(n_codes + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return offsets[:-1], counts, flat


def _build_flood_tables(
    vocab: np.ndarray,
    leaf_rows: np.ndarray,
    leaf_codes: np.ndarray,
    holder_rows: np.ndarray,
    holder_codes: np.ndarray,
    cap: int,
    log_size: int,
    used_codes: Optional[np.ndarray] = None,
):
    """Build the matched-leaf and holder CSRs of a :class:`FloodContext`.

    ``(leaf_rows[i], leaf_codes[i])`` enumerates leaf library entries
    (the QRP table contents); ``holder_*`` enumerates every node's
    library entries (the exact-match side).  ``used_codes`` restricts
    the (quadratic-ish) matched-leaf precomputation to codes actually
    queried.
    """
    n_codes = int(vocab.size)
    # Per-code keyword hash sets (CSR over the vocabulary).
    vhash, vcnt = text_hash_table([str(w) for w in vocab], log_size)
    voff = np.zeros(n_codes + 1, dtype=np.int64)
    np.cumsum(vcnt, out=voff[1:])

    # Leaf QRP bit postings: hash slot -> sorted leaf rows with that bit
    # set.  The bits are exactly the union of each leaf's library
    # keyword hashes, so postings reproduce the packed tables.
    size = 1 << log_size
    hcnt = vcnt[leaf_codes]
    hrows = np.repeat(leaf_rows, hcnt)
    hvals = vhash[np.repeat(voff[leaf_codes], hcnt) + segmented_arange(hcnt)]
    post_off, _, post_flat = _code_csr(hvals, hrows, size, cap)
    post_end = np.concatenate([post_off[1:], [np.int64(post_flat.size)]])

    # might_match(code) = intersection of the postings of its hashes;
    # zero-keyword codes never match (empty queries are not forwarded).
    if used_codes is None:
        used_codes = np.arange(n_codes, dtype=np.int64)
    m_counts = np.zeros(n_codes, dtype=np.int64)
    parts: List[np.ndarray] = []
    for c in np.asarray(used_codes, dtype=np.int64):
        cnt = int(vcnt[c])
        if cnt == 0:
            continue
        hs = vhash[voff[c]: voff[c] + cnt]
        rows = post_flat[post_off[hs[0]]: post_end[hs[0]]]
        for h in hs[1:]:
            if rows.size == 0:
                break
            rows = rows[isin_sorted(post_flat[post_off[h]: post_end[h]], rows)]
        if rows.size:
            m_counts[c] = rows.size
            parts.append(rows)
    m_flat = (
        np.concatenate(parts) if parts else np.zeros(0, dtype=np.int64)
    )
    m_off = np.zeros(n_codes + 1, dtype=np.int64)
    np.cumsum(m_counts, out=m_off[1:])

    h_off, h_counts, h_flat = _code_csr(holder_codes, holder_rows, n_codes, cap)
    return (m_off[:-1], m_counts, m_flat), (h_off, h_counts, h_flat)


def _library_codes(vocab: np.ndarray, library) -> np.ndarray:
    """Vocabulary codes of one node's library set (all must resolve)."""
    if not library:
        return np.zeros(0, dtype=np.int64)
    values = np.asarray(sorted(library), dtype=np.str_)
    mask, idx = sorted_lookup(vocab, values)
    if not mask.all():
        raise ValueError("library entry missing from the flood vocabulary")
    return idx


def flood_context_from_overlay(
    overlay: OverlayNetwork,
    extra_vocab: Sequence[str] = (),
    log_size: int = 12,
    capacity: Optional[int] = None,
) -> Tuple[FloodContext, List[str]]:
    """A :class:`FloodContext` over a scalar overlay's current state.

    The vocabulary is the union of every node's library with
    ``extra_vocab`` (include the query texts you intend to flood).
    Returns ``(context, node_ids)`` with the same index mapping as
    :meth:`CSRTopology.from_overlay`.
    """
    topo, node_ids = CSRTopology.from_overlay(overlay, capacity=capacity)
    words = {w for node in overlay.nodes.values() for w in node.library}
    words.update(str(w).lower() for w in extra_vocab)
    vocab = np.unique(np.asarray(sorted(words), dtype=np.str_))
    leaf_rows, leaf_codes, holder_rows, holder_codes = [], [], [], []
    for row, node_id in enumerate(node_ids):
        node = overlay.nodes[node_id]
        codes = _library_codes(vocab, node.library)
        if codes.size:
            holder_rows.append(np.full(codes.size, row, dtype=np.int64))
            holder_codes.append(codes)
            if not node.is_ultrapeer:
                leaf_rows.append(np.full(codes.size, row, dtype=np.int64))
                leaf_codes.append(codes)

    def _cat(parts):
        return (
            np.concatenate(parts) if parts else np.zeros(0, dtype=np.int64)
        )

    matched, holders = _build_flood_tables(
        vocab, _cat(leaf_rows), _cat(leaf_codes),
        _cat(holder_rows), _cat(holder_codes), topo.capacity, log_size,
    )
    return FloodContext(topo, vocab, *matched, *holders), node_ids


# ---------------------------------------------------------------------------
# The batched flood kernel
# ---------------------------------------------------------------------------


def _flood_chunk(task) -> Tuple[np.ndarray, ...]:
    """Flood one chunk of queries; pure function of its task tuple."""
    (cap, indptr, indices, up_indptr, up_indices, is_up, origins, codes,
     ttl, m_off, m_cnt, m_flat, h_off, h_cnt, h_flat, record_reach) = task
    capi = np.int64(cap)
    nq = origins.size
    qids = np.arange(nq, dtype=np.int64)
    msgs = np.zeros(nq, dtype=np.int64)
    hits = np.zeros(nq, dtype=np.int64)

    # Ring 1: origination sends one copy to *every* neighbour (leaves
    # included -- no QRP filter at the origin, per PeerNode.originate).
    nbr1, deg1 = _csr_take(indptr, indices, origins)
    msgs += deg1
    q1 = np.repeat(qids, deg1)
    leaf1 = ~is_up[nbr1]
    dleaf_q, dleaf = q1[leaf1], nbr1[leaf1]
    fq, fn = q1[~leaf1], nbr1[~leaf1]
    fsend = origins[fq]

    chunks_q = [qids]
    chunks_n = [origins.astype(np.int64)]
    chunks_d = [np.zeros(nq, dtype=np.int64)]
    if fq.size:
        chunks_q.append(fq)
        chunks_n.append(fn)
        chunks_d.append(np.ones(fq.size, dtype=np.int64))
    visited = np.sort(np.concatenate([qids * capi + origins, fq * capi + fn]),
                      kind="stable")

    # Rings 2..ttl: each depth-d ultrapeer (d < ttl) forwards to every
    # ultrapeer neighbour except its first sender; copies to already-
    # visited nodes are sent (and counted) but dropped as duplicates.
    for depth in range(1, int(ttl)):
        if fq.size == 0:
            break
        cn, cdeg = _csr_take(up_indptr, up_indices, fn)
        cq = np.repeat(fq, cdeg)
        cex = np.repeat(fn, cdeg)
        keep = cn != np.repeat(fsend, cdeg)
        cq, cn, cex = cq[keep], cn[keep], cex[keep]
        msgs += np.bincount(cq, minlength=nq).astype(np.int64)
        keys = cq * capi + cn
        uniq, first = np.unique(keys, return_index=True)
        fresh = ~isin_sorted(visited, uniq)
        new_keys = uniq[fresh]
        fsend = cex[first][fresh]
        fq = new_keys // capi
        fn = new_keys % capi
        visited = merge_unique(visited, new_keys)
        if fq.size:
            chunks_q.append(fq)
            chunks_n.append(fn)
            chunks_d.append(np.full(fq.size, depth + 1, dtype=np.int64))

    vq = np.concatenate(chunks_q)
    vn = np.concatenate(chunks_n)
    vd = np.concatenate(chunks_d)
    vkeys = vq * capi + vn
    vorder = np.argsort(vkeys, kind="stable")
    vkeys_s, vdepth_s = vkeys[vorder], vd[vorder]

    # Forwarders: visited ultrapeers still forwardable (depth < ttl).
    fmask = (vd >= 1) & (vd <= ttl - 1) & is_up[vn]
    forder = np.argsort(vkeys[fmask], kind="stable")
    fkeys = vkeys[fmask][forder]
    fdep = vd[fmask][forder]

    # QRP leaf forwarding, resolved analytically: a matched leaf gets
    # one copy per adjacent forwarder.  (Forwarders adjacent to a leaf
    # origin always have it as their first sender, so dropping the
    # origin row loses no copies.)
    mcnt = m_cnt[codes]
    mq = np.repeat(qids, mcnt)
    ml = m_flat[np.repeat(m_off[codes], mcnt) + segmented_arange(mcnt)]
    keepm = ml != origins[mq]
    mq, ml = mq[keepm], ml[keepm]
    lnbr, ldeg = _csr_take(indptr, indices, ml)
    pid = np.repeat(np.arange(mq.size, dtype=np.int64), ldeg)
    pq = np.repeat(mq, ldeg)
    mem, loc = sorted_lookup(fkeys, pq * capi + lnbr)
    mem &= is_up[lnbr]
    msgs += np.bincount(pq[mem], minlength=nq).astype(np.int64)
    nfwd = np.bincount(pid[mem], minlength=mq.size)
    mind = np.full(mq.size, np.iinfo(np.int64).max, dtype=np.int64)
    np.minimum.at(mind, pid[mem], fdep[loc[mem]])
    reached = nfwd > 0

    # Leaf reach set with first-arrival depth (direct leaves at depth
    # 1; matched leaves one past their nearest forwarder; min on ties).
    lr_q = np.concatenate([dleaf_q, mq[reached]])
    lr_n = np.concatenate([dleaf, ml[reached]])
    lr_d = np.concatenate(
        [np.ones(dleaf_q.size, dtype=np.int64), mind[reached] + 1]
    )
    lkeys = lr_q * capi + lr_n
    lorder = np.lexsort((lr_d, lkeys))
    lkeys, lr_d = lkeys[lorder], lr_d[lorder]
    first_of = np.ones(lkeys.size, dtype=bool)
    first_of[1:] = lkeys[1:] != lkeys[:-1]
    lkeys, lr_d = lkeys[first_of], lr_d[first_of]

    # Hits: every reached holder answers once; the QUERYHIT retraces
    # the forward path, costing depth(answerer) messages.
    hcnt = h_cnt[codes]
    hq = np.repeat(qids, hcnt)
    hn = h_flat[np.repeat(h_off[codes], hcnt) + segmented_arange(hcnt)]
    keeph = hn != origins[hq]
    hq, hn = hq[keeph], hn[keeph]
    hkeys = hq * capi + hn
    mem_u, loc_u = sorted_lookup(vkeys_s, hkeys)
    mem_l, loc_l = sorted_lookup(lkeys, hkeys)
    answered = mem_u | mem_l
    hits += np.bincount(hq[answered], minlength=nq).astype(np.int64)
    hdep = np.zeros(hq.size, dtype=np.int64)
    hdep[mem_u] = vdepth_s[loc_u[mem_u]]
    only_leaf = ~mem_u & mem_l
    hdep[only_leaf] = lr_d[loc_l[only_leaf]]
    msgs += np.bincount(hq, weights=hdep, minlength=nq).astype(np.int64)

    reach = (
        np.bincount(vq, minlength=nq) + np.bincount(lkeys // capi, minlength=nq)
    ).astype(np.int64)
    if not record_reach:
        return msgs, hits, reach, None, None, None
    rq = np.concatenate([vq, lkeys // capi])
    rn = np.concatenate([vn, lkeys % capi])
    rd = np.concatenate([vd, lr_d])
    rorder = np.lexsort((rn, rq))
    return msgs, hits, reach, rq[rorder], rn[rorder], rd[rorder]


def flood_queries(
    ctx: FloodContext,
    origins: np.ndarray,
    codes: np.ndarray,
    ttl: int = 4,
    jobs: int = 1,
    record_reach: bool = False,
) -> FloodResult:
    """Flood a batch of queries; byte-identical for any ``jobs``.

    ``origins[i]`` (a node index) floods vocabulary code ``codes[i]``.
    Floods are independent per query, so sharding the batch over
    workers cannot change any output.
    """
    if ttl < 1:
        raise ValueError(f"ttl must be >= 1, got {ttl}")
    origins = np.asarray(origins, dtype=np.int64)
    codes = np.asarray(codes, dtype=np.int64)
    if origins.shape != codes.shape:
        raise ValueError("origins and codes must have matching shapes")
    topo = ctx.topo
    indptr, indices = topo.csr()
    up_mask = topo.is_ultrapeer[indices]
    src = np.repeat(
        np.arange(topo.capacity, dtype=np.int64), np.diff(indptr)
    )
    up_counts = np.bincount(src[up_mask], minlength=topo.capacity)
    up_indptr = np.zeros(topo.capacity + 1, dtype=np.int64)
    np.cumsum(up_counts, out=up_indptr[1:])
    up_indices = indices[up_mask]

    bounds = list(range(0, max(origins.size, 1), QUERIES_PER_TASK))
    tasks = [
        (topo.capacity, indptr, indices, up_indptr, up_indices,
         topo.is_ultrapeer, origins[lo: lo + QUERIES_PER_TASK],
         codes[lo: lo + QUERIES_PER_TASK], int(ttl),
         ctx.matched_offsets, ctx.matched_counts, ctx.matched_flat,
         ctx.holder_offsets, ctx.holder_counts, ctx.holder_flat,
         record_reach)
        for lo in bounds
    ]
    workers = resolve_workers(jobs, len(tasks))
    parts = pool_map(_flood_chunk, tasks, workers)
    msgs = np.concatenate([p[0] for p in parts])
    hits = np.concatenate([p[1] for p in parts])
    reach = np.concatenate([p[2] for p in parts])
    result = FloodResult(messages=msgs, hits=hits, reach=reach)
    if record_reach:
        offs = [np.int64(lo) for lo in bounds]
        result.reach_query = np.concatenate(
            [p[3] + off for p, off in zip(parts, offs)]
        )
        result.reach_node = np.concatenate([p[4] for p in parts])
        result.reach_depth = np.concatenate([p[5] for p in parts])
    return result


# ---------------------------------------------------------------------------
# The shared churn plan
# ---------------------------------------------------------------------------


@dataclass
class OverlayPlan:
    """The seeded churn/query plan both backends consume verbatim.

    Every random draw happens here, once -- attachment ultrapeers,
    churn-peer modes, library contents -- so the backends cannot drift
    through RNG consumption order.  Sessions are the workload's rows
    with ``start <= run_seconds``; queries those with ``te <=
    run_seconds``, sorted by (round, workload row).
    """

    run_seconds: float
    delta: float
    n_rounds: int
    vocab: np.ndarray
    # sessions
    session_rows: np.ndarray
    start: np.ndarray
    end_true: np.ndarray
    departs: np.ndarray
    first_round: np.ndarray
    last_round: np.ndarray
    ultrapeer: np.ndarray
    attach_pos: np.ndarray
    region_code: np.ndarray
    peer_ip: List[str]
    lib_counts: np.ndarray
    lib_offsets: np.ndarray
    lib_codes: np.ndarray
    # queries (round-sorted)
    query_rows: np.ndarray
    query_session: np.ndarray
    query_te: np.ndarray
    query_code: np.ndarray
    query_round: np.ndarray

    @property
    def n_sessions(self) -> int:
        return int(self.start.size)

    @property
    def n_queries(self) -> int:
        return int(self.query_te.size)

    def session_lib_codes(self, i: int) -> np.ndarray:
        lo = self.lib_offsets[i]
        return self.lib_codes[lo: lo + self.lib_counts[i]]


def _plan_churn(
    workload: ColumnarWorkload,
    run_seconds: float,
    config: OverlayConfig,
    vocab: np.ndarray,
    n_attach_ups: int,
) -> OverlayPlan:
    """Derive the shared plan from the workload (one RNG, consumed once)."""
    delta = float(config.delta_seconds)
    if delta <= 0:
        raise ValueError("delta_seconds must be positive")
    n_rounds = int(np.floor(run_seconds / delta)) + 1
    rng = np.random.default_rng(config.seed + 9)

    keep = workload.session_start <= run_seconds
    rows = np.flatnonzero(keep).astype(np.int64)
    start = workload.session_start[rows].astype(np.float64)
    duration = workload.session_duration[rows].astype(np.float64)
    end_true = start + duration
    departs = end_true <= run_seconds
    first_round = np.floor(start / delta).astype(np.int64)
    last_round = np.minimum(
        np.floor(end_true / delta).astype(np.int64), n_rounds - 1
    )
    n = rows.size

    attach_pos = rng.integers(0, max(n_attach_ups, 1), size=n)
    ultrapeer = rng.random(n) < config.churn_ultrapeer_prob
    if vocab.size:
        want = rng.poisson(config.mean_library_files, size=n).astype(np.int64)
        total = int(want.sum())
        draws = rng.integers(0, vocab.size, size=total)
        owner = np.repeat(np.arange(n, dtype=np.int64), want)
        keys = np.unique(owner * np.int64(vocab.size) + draws)
        lib_counts = np.bincount(keys // vocab.size, minlength=n).astype(np.int64)
        lib_codes = (keys % vocab.size).astype(np.int64)
    else:
        lib_counts = np.zeros(n, dtype=np.int64)
        lib_codes = np.zeros(0, dtype=np.int64)
    lib_offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(lib_counts, out=lib_offsets[1:])
    peer_ip = [
        f"10.{(int(r) >> 16) & 255}.{(int(r) >> 8) & 255}.{int(r) & 255}"
        for r in rows
    ]

    # Queries: resolve emission times and vocabulary codes, then order
    # by round (stable, so workload row order survives within a round).
    q_keep = keep[workload.query_session]
    q_rows = np.flatnonzero(q_keep).astype(np.int64)
    sess_index = np.full(workload.n_sessions, -1, dtype=np.int64)
    sess_index[rows] = np.arange(n, dtype=np.int64)
    q_sess = sess_index[workload.query_session[q_rows]]
    q_te = start[q_sess] + workload.query_offset[q_rows].astype(np.float64)
    in_run = q_te <= run_seconds
    q_rows, q_sess, q_te = q_rows[in_run], q_sess[in_run], q_te[in_run]
    if q_rows.size:
        texts = np.char.lower(workload.query_keywords[q_rows].astype(np.str_))
        mask, q_code = sorted_lookup(vocab, texts)
        if not mask.all():
            raise ValueError("query keywords missing from the plan vocabulary")
    else:
        q_code = np.zeros(0, dtype=np.int64)
    q_round = np.minimum(
        np.floor(q_te / delta).astype(np.int64), n_rounds - 1
    )
    order = np.argsort(q_round, kind="stable")
    return OverlayPlan(
        run_seconds=float(run_seconds), delta=delta, n_rounds=n_rounds,
        vocab=vocab, session_rows=rows, start=start, end_true=end_true,
        departs=departs, first_round=first_round, last_round=last_round,
        ultrapeer=ultrapeer, attach_pos=attach_pos.astype(np.int64),
        region_code=workload.session_region[rows].astype(np.int64),
        peer_ip=peer_ip, lib_counts=lib_counts,
        lib_offsets=lib_offsets[:-1], lib_codes=lib_codes,
        query_rows=q_rows[order], query_session=q_sess[order],
        query_te=q_te[order], query_code=q_code[order],
        query_round=q_round[order],
    )


def _build_backbone(
    config: OverlayConfig, vocab: np.ndarray
) -> Tuple[OverlayNetwork, List[str]]:
    """The static backbone + monitor, shared by both backends.

    Zero link latency makes event-backend floods strict BFS; connection
    caps are lifted after construction (slot pressure is not part of
    the engine's semantics).  Backbone QRP tables are rebuilt at the
    configured ``qrp_log_size`` so both backends filter identically.
    """
    overlay = OverlayNetwork(
        n_ultrapeers=config.n_backbone_ultrapeers,
        n_leaves=config.n_backbone_leaves,
        ultrapeer_degree=config.ultrapeer_degree,
        leaf_attachments=config.leaf_attachments,
        latency_ms=(0.0, 0.0),
        seed=config.seed + 1,
    )
    if vocab.size:
        overlay.seed_libraries(
            [str(w) for w in vocab], mean_files=config.mean_library_files
        )
    monitor = PeerNode(
        node_id=MONITOR_ID, ip=MONITOR_IP, mode=PeerMode.ULTRAPEER,
        max_connections=2 ** 31,
    )
    overlay.nodes[MONITOR_ID] = monitor
    overlay.region_of[MONITOR_ID] = Region.EUROPE
    ups = [
        node_id for node_id, node in overlay.nodes.items()
        if node.is_ultrapeer and node_id != MONITOR_ID
    ]
    for other in ups[: config.monitor_links]:
        overlay.connect(MONITOR_ID, other)
    for node in overlay.nodes.values():
        node.max_connections = 2 ** 31
    for node_id, node in overlay.nodes.items():
        if node.is_ultrapeer:
            continue
        table = node.build_qrp_table(config.qrp_log_size)
        for neighbour_id in node.neighbours:
            neighbour = overlay.nodes[neighbour_id]
            if neighbour.is_ultrapeer:
                neighbour.install_leaf_table(node_id, table)
    return overlay, ups


# ---------------------------------------------------------------------------
# Run results and the equivalence battery
# ---------------------------------------------------------------------------


@dataclass
class OverlayRunResult:
    """One backend's complete observable output, in plan order."""

    backend: str
    run_seconds: float
    n_rounds: int
    peers_simulated: int
    #: Wall-clock seconds, stamped by the bench harness after the run
    #: (the engine itself never reads the host clock; see DET201).
    elapsed_seconds: float
    messages_total: int
    # per query (plan order)
    query_messages: np.ndarray
    query_hits: np.ndarray
    query_reach: np.ndarray
    # monitor hop-1 stream, sorted by (session, emission order)
    hop1_session: np.ndarray
    hop1_time: np.ndarray
    hop1_code: np.ndarray
    # reconstructed sessions (plan session order)
    session_start: np.ndarray
    session_end_observed: np.ndarray
    session_n_queries: np.ndarray
    session_region: np.ndarray
    session_ultrapeer: np.ndarray
    session_shared_files: np.ndarray
    keepalive_pings: int
    keepalive_pongs: int
    # optional reach triples, sorted by (query, node)
    reach_query: Optional[np.ndarray] = None
    reach_node: Optional[np.ndarray] = None
    reach_depth: Optional[np.ndarray] = None

    @property
    def n_queries(self) -> int:
        return int(self.query_messages.size)

    @property
    def messages_per_second(self) -> float:
        return self.messages_total / max(self.elapsed_seconds, 1e-9)


def compare_runs(a: OverlayRunResult, b: OverlayRunResult) -> Dict[str, bool]:
    """The backend-equivalence battery: every observable must match."""
    checks = {
        "query_messages": bool(np.array_equal(a.query_messages, b.query_messages)),
        "query_hits": bool(np.array_equal(a.query_hits, b.query_hits)),
        "query_reach": bool(np.array_equal(a.query_reach, b.query_reach)),
        "messages_total": a.messages_total == b.messages_total,
        "hop1_stream": (
            np.array_equal(a.hop1_session, b.hop1_session)
            and np.array_equal(a.hop1_time, b.hop1_time)
            and np.array_equal(a.hop1_code, b.hop1_code)
        ),
        "sessions": all(
            np.array_equal(getattr(a, name), getattr(b, name))
            for name in (
                "session_start", "session_end_observed", "session_n_queries",
                "session_region", "session_ultrapeer", "session_shared_files",
            )
        ),
        "keepalives": (
            a.keepalive_pings == b.keepalive_pings
            and a.keepalive_pongs == b.keepalive_pongs
        ),
    }
    if a.reach_query is not None and b.reach_query is not None:
        checks["reach_sets"] = (
            np.array_equal(a.reach_query, b.reach_query)
            and np.array_equal(a.reach_node, b.reach_node)
            and np.array_equal(a.reach_depth, b.reach_depth)
        )
    checks["ok"] = all(checks.values())
    return checks


def _round_groups(values: np.ndarray, n_rounds: int, order: np.ndarray):
    """Per-round slices: ``order[offsets[r]:offsets[r+1]]``."""
    counts = np.bincount(values[order], minlength=n_rounds)
    offsets = np.zeros(n_rounds + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return offsets


def _hop1_order(plan: OverlayPlan) -> np.ndarray:
    """Canonical hop-1 stream order: by session, emission order within."""
    return np.argsort(plan.query_session, kind="stable")


def _session_keepalives(plan: OverlayPlan) -> Tuple[int, int]:
    """Monitor keep-alive totals from the plan's activity timeline.

    One PING/PONG exchange per full ``IDLE_PROBE_SECONDS`` of idleness
    between consecutive activity points (open, each hop-1 query, the
    depart-or-trace-end), plus the single unanswered probe per silent
    departure -- exactly ``MeasurementNode._count_keepalives``.
    """
    n = plan.n_sessions
    terminal = np.where(plan.departs, plan.end_true, plan.run_seconds)
    sids = np.concatenate([
        np.arange(n, dtype=np.int64), plan.query_session,
        np.arange(n, dtype=np.int64),
    ])
    times = np.concatenate([plan.start, plan.query_te, terminal])
    order = np.lexsort((times, sids))
    sids, times = sids[order], times[order]
    gaps = np.diff(times)
    same = sids[1:] == sids[:-1]
    idle = gaps[same & (gaps > IDLE_PROBE_SECONDS)]
    exchanges = int(np.floor(idle / IDLE_PROBE_SECONDS).sum())
    pings = exchanges + int(plan.departs.sum())
    return pings, exchanges

# ---------------------------------------------------------------------------
# Columnar backend
# ---------------------------------------------------------------------------


def _run_columnar(
    plan: OverlayPlan,
    config: OverlayConfig,
    overlay: OverlayNetwork,
    ups: List[str],
    jobs: int,
    record_reach: bool,
) -> OverlayRunResult:
    """The delta-stepped array engine over the CSR topology."""
    node_ids = sorted(overlay.nodes)
    base = len(node_ids)
    n = plan.n_sessions
    topo, _ = CSRTopology.from_overlay(overlay, capacity=base + n)
    index_of = {node_id: i for i, node_id in enumerate(node_ids)}
    monitor_idx = index_of[MONITOR_ID]
    up_idx = np.asarray([index_of[u] for u in ups], dtype=np.int64)
    sess_idx = base + np.arange(n, dtype=np.int64)

    # QRP/holder postings over the full slot space: backbone libraries
    # plus every churn session's planned library.  Static tables --
    # connectivity (the CSR) gates who can actually be reached.
    leaf_rows, leaf_codes, holder_rows, holder_codes = [], [], [], []
    for row, node_id in enumerate(node_ids):
        codes = _library_codes(plan.vocab, overlay.nodes[node_id].library)
        if codes.size:
            holder_rows.append(np.full(codes.size, row, dtype=np.int64))
            holder_codes.append(codes)
            if not overlay.nodes[node_id].is_ultrapeer:
                leaf_rows.append(np.full(codes.size, row, dtype=np.int64))
                leaf_codes.append(codes)
    if plan.lib_codes.size:
        owners = sess_idx[np.repeat(np.arange(n, dtype=np.int64), plan.lib_counts)]
        holder_rows.append(owners)
        holder_codes.append(plan.lib_codes)
        is_leaf_entry = ~plan.ultrapeer[
            np.repeat(np.arange(n, dtype=np.int64), plan.lib_counts)
        ]
        leaf_rows.append(owners[is_leaf_entry])
        leaf_codes.append(plan.lib_codes[is_leaf_entry])

    def _cat(parts):
        return np.concatenate(parts) if parts else np.zeros(0, dtype=np.int64)

    matched, holders = _build_flood_tables(
        plan.vocab, _cat(leaf_rows), _cat(leaf_codes),
        _cat(holder_rows), _cat(holder_codes), topo.capacity,
        config.qrp_log_size, used_codes=np.unique(plan.query_code),
    )
    ctx = FloodContext(topo, plan.vocab, *matched, *holders)

    starts_order = np.argsort(plan.first_round, kind="stable")
    starts_off = _round_groups(plan.first_round, plan.n_rounds, starts_order)
    dep_ids = np.flatnonzero(plan.departs)
    dep_order = dep_ids[np.argsort(plan.last_round[dep_ids], kind="stable")]
    dep_off = _round_groups(
        plan.last_round[dep_ids], plan.n_rounds,
        np.argsort(plan.last_round[dep_ids], kind="stable"),
    )
    q_off = np.zeros(plan.n_rounds + 1, dtype=np.int64)
    np.cumsum(
        np.bincount(plan.query_round, minlength=plan.n_rounds), out=q_off[1:]
    )

    msgs = np.zeros(plan.n_queries, dtype=np.int64)
    hits = np.zeros(plan.n_queries, dtype=np.int64)
    reach = np.zeros(plan.n_queries, dtype=np.int64)
    reach_parts: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []

    for r in range(plan.n_rounds):
        new = starts_order[starts_off[r]: starts_off[r + 1]]
        if new.size:
            topo.add_nodes(sess_idx[new], plan.ultrapeer[new])
            topo.connect(
                np.concatenate([sess_idx[new], sess_idx[new]]),
                np.concatenate([
                    np.full(new.size, monitor_idx, dtype=np.int64),
                    up_idx[plan.attach_pos[new]],
                ]),
            )
        lo, hi = int(q_off[r]), int(q_off[r + 1])
        if hi > lo:
            origins = sess_idx[plan.query_session[lo:hi]]
            if not topo.has_edges(
                origins, np.full(origins.size, monitor_idx, dtype=np.int64)
            ).all():
                raise AssertionError("query origin not adjacent to the monitor")
            out = flood_queries(
                ctx, origins, plan.query_code[lo:hi], ttl=config.ttl,
                jobs=jobs, record_reach=record_reach,
            )
            msgs[lo:hi] = out.messages
            hits[lo:hi] = out.hits
            reach[lo:hi] = out.reach
            if record_reach:
                reach_parts.append(
                    (out.reach_query + lo, out.reach_node, out.reach_depth)
                )
        gone = dep_order[dep_off[r]: dep_off[r + 1]]
        if gone.size:
            topo.remove_nodes(sess_idx[gone])

    # Monitor-side reducers: hop-1 capture is total by construction
    # (every session keeps its monitor link for its whole lifetime);
    # session reconstruction applies the idle-detection overshoot.
    h_order = _hop1_order(plan)
    last_activity = plan.start.copy()
    if plan.n_queries:
        np.maximum.at(last_activity, plan.query_session, plan.query_te)
    end_obs = np.where(
        plan.departs, plan.end_true + _IDLE_OVERSHOOT, plan.run_seconds
    )
    n_queries = np.bincount(plan.query_session, minlength=n).astype(np.int64)
    pings, pongs = _session_keepalives(plan)

    result = OverlayRunResult(
        backend="columnar", run_seconds=plan.run_seconds,
        n_rounds=plan.n_rounds, peers_simulated=base + n,
        elapsed_seconds=0.0,
        messages_total=int(msgs.sum()),
        query_messages=msgs, query_hits=hits, query_reach=reach,
        hop1_session=plan.query_session[h_order],
        hop1_time=plan.query_te[h_order],
        hop1_code=plan.query_code[h_order],
        session_start=plan.start, session_end_observed=end_obs,
        session_n_queries=n_queries, session_region=plan.region_code,
        session_ultrapeer=plan.ultrapeer,
        session_shared_files=plan.lib_counts,
        keepalive_pings=pings, keepalive_pongs=pongs,
    )
    if record_reach:
        result.reach_query = _cat([p[0] for p in reach_parts])
        result.reach_node = _cat([p[1] for p in reach_parts])
        result.reach_depth = _cat([p[2] for p in reach_parts])
    return result


# ---------------------------------------------------------------------------
# Event reference backend
# ---------------------------------------------------------------------------


def _run_event(
    plan: OverlayPlan,
    config: OverlayConfig,
    overlay: OverlayNetwork,
    ups: List[str],
    record_reach: bool,
) -> OverlayRunResult:
    """The same plan through real PeerNode/EventScheduler machinery.

    Rounds are driven procedurally (connect batch, flood the round's
    queries through the scheduler, disconnect batch); only the floods
    themselves are event-driven.  Zero latency makes delivery strict
    BFS, which is what the columnar engine computes directly.
    """
    node_ids = sorted(overlay.nodes)
    index_of = {node_id: i for i, node_id in enumerate(node_ids)}
    base = len(node_ids)
    n = plan.n_sessions
    scheduler = EventScheduler()
    monitor = MeasurementNode(max_slots=None)
    msgs = np.zeros(plan.n_queries, dtype=np.int64)
    hits = np.zeros(plan.n_queries, dtype=np.int64)
    guid_of: Dict[bytes, int] = {}
    origin_of: Dict[bytes, str] = {}
    conn_of: Dict[str, int] = {}
    session_node: Dict[int, str] = {}
    reach_min: Dict[Tuple[int, int], int] = {}
    hop1_count = 0

    def node_index(node_id: str) -> int:
        if node_id in index_of:
            return index_of[node_id]
        return base + int(node_id[1:])

    def deliver(dest: str, message, sender: str) -> None:
        nonlocal hop1_count
        target = overlay.nodes.get(dest)
        if target is None or sender not in target.neighbours:
            return
        now = scheduler.now
        k = guid_of.get(message.guid)
        if isinstance(message, Query) and k is not None:
            key = (k, node_index(dest))
            if key not in reach_min:
                reach_min[key] = int(message.hops)
            if dest == MONITOR_ID and message.hops == 1 and sender in conn_of:
                hop1_count += 1
                monitor.receive_query(
                    conn_of[sender], now, keywords=message.keywords,
                    sha1=message.has_sha1,
                )
        if (
            isinstance(message, QueryHit)
            and k is not None
            and dest == origin_of[message.guid]
        ):
            hits[k] += message.n_hits
            target.handle(message, sender, now)
            return
        dispatch(dest, target.handle(message, sender, now), k)

    def dispatch(sender: str, actions, k: Optional[int]) -> None:
        for dest, message in actions:
            if k is not None:
                msgs[k] += 1
            scheduler.schedule(
                scheduler.now,
                lambda dest=dest, message=message, sender=sender: deliver(
                    dest, message, sender
                ),
            )

    def emit(k: int) -> None:
        node = overlay.nodes[session_node[int(plan.query_session[k])]]
        query, actions = node.originate_query(
            str(plan.vocab[plan.query_code[k]]), now=scheduler.now,
            ttl=config.ttl,
        )
        guid_of[query.guid] = k
        origin_of[query.guid] = node.node_id
        reach_min[(k, node_index(node.node_id))] = 0
        dispatch(node.node_id, actions, k)

    starts_order = np.argsort(plan.first_round, kind="stable")
    starts_off = _round_groups(plan.first_round, plan.n_rounds, starts_order)
    dep_ids = np.flatnonzero(plan.departs)
    dep_sort = np.lexsort((dep_ids, plan.end_true[dep_ids],
                           plan.last_round[dep_ids]))
    dep_order = dep_ids[dep_sort]
    dep_off = _round_groups(
        plan.last_round[dep_ids], plan.n_rounds, dep_sort
    )
    q_off = np.zeros(plan.n_rounds + 1, dtype=np.int64)
    np.cumsum(
        np.bincount(plan.query_round, minlength=plan.n_rounds), out=q_off[1:]
    )

    for r in range(plan.n_rounds):
        for i in starts_order[starts_off[r]: starts_off[r + 1]]:
            i = int(i)
            node_id = f"s{i:07d}"
            library = {
                str(plan.vocab[c]) for c in plan.session_lib_codes(i)
            }
            node = PeerNode(
                node_id=node_id, ip=plan.peer_ip[i],
                mode=(PeerMode.ULTRAPEER if plan.ultrapeer[i]
                      else PeerMode.LEAF),
                library=library, max_connections=2 ** 31,
            )
            overlay.nodes[node_id] = node
            region = WORKLOAD_REGION_ORDER[int(plan.region_code[i])]
            overlay.region_of[node_id] = region
            conn = monitor.open_connection(
                float(plan.start[i]), peer_ip=plan.peer_ip[i], region=region,
                user_agent=config.user_agent,
                ultrapeer=bool(plan.ultrapeer[i]),
                shared_files=int(plan.lib_counts[i]),
            )
            if conn is None:
                raise AssertionError("monitor rejected a planned session")
            conn_of[node_id] = conn
            session_node[i] = node_id
            overlay.connect(node_id, MONITOR_ID)
            overlay.connect(node_id, ups[int(plan.attach_pos[i])])
            if not node.is_ultrapeer:
                table = node.build_qrp_table(config.qrp_log_size)
                for neighbour_id in node.neighbours:
                    overlay.nodes[neighbour_id].install_leaf_table(
                        node_id, table
                    )
        for k in range(int(q_off[r]), int(q_off[r + 1])):
            scheduler.schedule(float(plan.query_te[k]), lambda k=k: emit(k))
        scheduler.run(max_events=10 ** 9)
        for i in dep_order[dep_off[r]: dep_off[r + 1]]:
            i = int(i)
            node_id = session_node[i]
            node = overlay.nodes.pop(node_id)
            for neighbour in list(node.neighbours):
                if neighbour in overlay.nodes:
                    overlay.nodes[neighbour].remove_neighbour(node_id)
            monitor.client_departed(conn_of.pop(node_id), float(plan.end_true[i]))

    records = monitor.finalize(plan.run_seconds)
    if hop1_count != plan.n_queries:
        raise AssertionError("monitor missed a hop-1 query")

    # Reassemble plan-order arrays from the monitor's session records.
    by_ip = {ip: i for i, ip in enumerate(plan.peer_ip)}
    end_obs = np.zeros(n, dtype=np.float64)
    start_obs = np.zeros(n, dtype=np.float64)
    n_queries = np.zeros(n, dtype=np.int64)
    region_code = np.zeros(n, dtype=np.int64)
    ultrapeer = np.zeros(n, dtype=bool)
    shared = np.zeros(n, dtype=np.int64)
    hop1_parts: List[Tuple[int, List]] = []
    if len(records) != n:
        raise AssertionError("monitor session count does not match the plan")
    for record in records:
        i = by_ip[record.peer_ip]
        start_obs[i] = record.start
        end_obs[i] = record.end
        n_queries[i] = len(record.queries)
        region_code[i] = WORKLOAD_REGION_CODE[record.region]
        ultrapeer[i] = record.ultrapeer
        shared[i] = record.shared_files
        hop1_parts.append((i, list(record.queries)))
    hop1_parts.sort(key=lambda item: item[0])
    h_sess = np.concatenate(
        [np.full(len(qs), i, dtype=np.int64) for i, qs in hop1_parts]
    ) if hop1_parts else np.zeros(0, dtype=np.int64)
    h_time = np.asarray(
        [q.timestamp for _, qs in hop1_parts for q in qs], dtype=np.float64
    )
    h_kw = [q.keywords for _, qs in hop1_parts for q in qs]
    if h_kw:
        kw_mask, h_code = sorted_lookup(
            plan.vocab, np.asarray(h_kw, dtype=np.str_)
        )
        if not kw_mask.all():
            raise AssertionError("monitor recorded an unknown keyword")
    else:
        h_code = np.zeros(0, dtype=np.int64)

    result = OverlayRunResult(
        backend="event", run_seconds=plan.run_seconds,
        n_rounds=plan.n_rounds, peers_simulated=base + n,
        elapsed_seconds=0.0,
        messages_total=int(msgs.sum()),
        query_messages=msgs, query_hits=hits,
        query_reach=np.bincount(
            np.asarray([k for k, _ in reach_min], dtype=np.int64),
            minlength=plan.n_queries,
        ).astype(np.int64) if reach_min else np.zeros(
            plan.n_queries, dtype=np.int64
        ),
        hop1_session=h_sess, hop1_time=h_time, hop1_code=h_code,
        session_start=start_obs, session_end_observed=end_obs,
        session_n_queries=n_queries, session_region=region_code,
        session_ultrapeer=ultrapeer, session_shared_files=shared,
        keepalive_pings=monitor.keepalive_pings_sent,
        keepalive_pongs=monitor.keepalive_pongs_received,
    )
    if record_reach:
        triples = np.asarray(
            [(k, node, depth) for (k, node), depth in reach_min.items()],
            dtype=np.int64,
        ).reshape(-1, 3)
        order = np.lexsort((triples[:, 1], triples[:, 0]))
        result.reach_query = triples[order, 0]
        result.reach_node = triples[order, 1]
        result.reach_depth = triples[order, 2]
    return result


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def simulate_workload(
    workload: ColumnarWorkload,
    run_seconds: float,
    config: Optional[OverlayConfig] = None,
    backend: str = "columnar",
    jobs: int = 1,
    record_reach: bool = False,
) -> OverlayRunResult:
    """Run a Fig. 12 workload through the overlay with a live monitor.

    Every workload session becomes a churn peer that connects to the
    measurement ultrapeer plus one backbone ultrapeer, floods its
    queries with TTL/hops semantics, and departs; the monitor observes
    the hop-1 stream and reconstructs sessions with idle-detection
    overshoot.  ``backend`` selects the delta-stepped columnar engine
    or the scalar event-driven reference; both consume the identical
    seeded plan and must produce identical observables
    (:func:`compare_runs`).
    """
    if backend not in ENGINE_BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {ENGINE_BACKENDS}"
        )
    if run_seconds <= 0:
        raise ValueError("run_seconds must be positive")
    config = config or OverlayConfig()
    if config.ttl < 1:
        raise ValueError("config.ttl must be >= 1")
    workload.validate()
    if workload.n_queries:
        vocab = np.unique(
            np.char.lower(workload.query_keywords.astype(np.str_))
        )
    else:
        vocab = np.zeros(0, dtype=np.str_)
    overlay, ups = _build_backbone(config, vocab)
    plan = _plan_churn(workload, float(run_seconds), config, vocab, len(ups))
    if backend == "columnar":
        return _run_columnar(plan, config, overlay, ups, jobs, record_reach)
    return _run_event(plan, config, overlay, ups, record_reach)
