"""Gnutella protocol substrate: messages, routing, handshake, peers,
client-implementation profiles, and the overlay simulator."""

from .clients import (
    CLIENT_PROFILES,
    MEASUREMENT_USER_AGENT,
    ClientProfile,
    ExpandedQuery,
    choose_profile,
    expand_user_session,
)
from .handshake import HandshakeError, HandshakeOffer, HandshakeResponse, negotiate, parse_headers
from .messages import (
    DEFAULT_TTL,
    Bye,
    Message,
    MessageError,
    Ping,
    Pong,
    Query,
    QueryHit,
    decode,
    new_guid,
)
from .overlay import OverlayNetwork, QueryOutcome
from .peer import Action, PeerMode, PeerNode
from .qrp import QueryRouteTable, keyword_hash
from .routing import DEFAULT_GUID_TTL_SECONDS, RoutingTable
from .simulator import EventScheduler
from .wire import MessageStream

__all__ = [
    "CLIENT_PROFILES", "MEASUREMENT_USER_AGENT", "ClientProfile",
    "ExpandedQuery", "choose_profile", "expand_user_session",
    "HandshakeError", "HandshakeOffer", "HandshakeResponse", "negotiate", "parse_headers",
    "DEFAULT_TTL", "Bye", "Message", "MessageError", "Ping", "Pong", "Query",
    "QueryHit", "decode", "new_guid",
    "OverlayNetwork", "QueryOutcome",
    "Action", "PeerMode", "PeerNode",
    "QueryRouteTable", "keyword_hash",
    "DEFAULT_GUID_TTL_SECONDS", "RoutingTable",
    "EventScheduler",
    "MessageStream",
]
