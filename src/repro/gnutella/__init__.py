"""Gnutella protocol substrate: messages, routing, handshake, peers,
client-implementation profiles, and the overlay simulator."""

from .clients import (
    CLIENT_PROFILES,
    MEASUREMENT_USER_AGENT,
    ClientProfile,
    ExpandedQuery,
    choose_profile,
    expand_user_session,
)
from .handshake import HandshakeError, HandshakeOffer, HandshakeResponse, negotiate, parse_headers
from .messages import (
    DEFAULT_TTL,
    Bye,
    Message,
    MessageError,
    Ping,
    Pong,
    Query,
    QueryHit,
    decode,
    new_guid,
)
from .overlay import OverlayNetwork, QueryOutcome
from .peer import Action, PeerMode, PeerNode
from .qrp import (
    PackedQRPTables,
    QueryRouteTable,
    keyword_hash,
    keyword_hashes,
    text_hash_table,
)
from .routing import DEFAULT_GUID_TTL_SECONDS, RoutingTable
from .simulator import EventScheduler
from .topology import CSRTopology
from .wire import MessageStream

#: Batched overlay-engine names resolved lazily (PEP 562): the engine
#: imports ``repro.measurement``, whose monitor imports this package
#: back, so an eager import here would close a cycle.
_COLUMNAR_OVERLAY_EXPORTS = frozenset({
    "ENGINE_BACKENDS", "FloodContext", "FloodResult", "OverlayConfig",
    "OverlayRunResult", "compare_runs", "flood_context_from_overlay",
    "flood_queries", "simulate_workload",
})


def __getattr__(name):
    if name in _COLUMNAR_OVERLAY_EXPORTS:
        from . import columnar_overlay

        return getattr(columnar_overlay, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "CLIENT_PROFILES", "MEASUREMENT_USER_AGENT", "ClientProfile",
    "ExpandedQuery", "choose_profile", "expand_user_session",
    "HandshakeError", "HandshakeOffer", "HandshakeResponse", "negotiate", "parse_headers",
    "DEFAULT_TTL", "Bye", "Message", "MessageError", "Ping", "Pong", "Query",
    "QueryHit", "decode", "new_guid",
    "ENGINE_BACKENDS", "FloodContext", "FloodResult", "OverlayConfig",
    "OverlayRunResult", "compare_runs", "flood_context_from_overlay",
    "flood_queries", "simulate_workload",
    "OverlayNetwork", "QueryOutcome",
    "Action", "PeerMode", "PeerNode",
    "PackedQRPTables", "QueryRouteTable", "keyword_hash", "keyword_hashes",
    "text_hash_table",
    "DEFAULT_GUID_TTL_SECONDS", "RoutingTable",
    "EventScheduler",
    "CSRTopology",
    "MessageStream",
]
