"""QUERYHIT response model: how many responders a query attracts.

The paper's stated future work is "characterizing the query hit rate of
the peers, including the correlation of hit rate with other measures".
This module implements the generative side so the reproduction can carry
that extension: each hop-1 query observed at the measurement node draws a
responder count from a popularity-driven model.

Mechanics.  A query for a file replicated on ``r`` of the ``N`` peers
reachable within the TTL horizon returns ``~Binomial(N, r/N)`` hits; the
replication of a file tracks its *long-run* query popularity (peers hold
what other peers fetched).  With per-day class popularity Zipf(alpha) and
class-size ``n``, the expected hit count for the rank-``k`` query of a
class is::

    E[hits | rank k] = reachable_peers * replication_rate * n * p_cls(k)

where ``p_cls`` is the class's normalized rank pmf -- so intersection
classes (globally popular content) hit more per query than single-region
classes, and rank 1 beats rank 1000.  SHA1 source searches look for one
specific (usually rare) file and use a small constant mean.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.popularity import CLASS_ORDER, QueryUniverse, zipf_for_class

__all__ = ["HitModel"]


class HitModel:
    """Samples QUERYHIT response counts for observed queries.

    Parameters
    ----------
    universe:
        The query content model (for rank lookups).
    reachable_peers:
        Peers within the query's TTL horizon.  The paper's Table 1 ratio
        (1.34M QUERYHITs / 34.4M QUERYs ~ 0.04 per overlay message, or
        ~0.77 per hop-1 query) anchors the default.
    replication_rate:
        Fraction of reachable peers sharing the catalog-average file.
    sha1_hit_mean:
        Mean responders to a SHA1 source search (rare-file download).
    unknown_hit_mean:
        Mean responders for strings outside the content model.
    """

    def __init__(
        self,
        universe: QueryUniverse,
        reachable_peers: int = 4000,
        replication_rate: float = 2.5e-4,
        sha1_hit_mean: float = 0.25,
        unknown_hit_mean: float = 0.1,
    ):
        if reachable_peers < 1:
            raise ValueError("reachable_peers must be >= 1")
        if replication_rate <= 0:
            raise ValueError("replication_rate must be positive")
        self.universe = universe
        self.reachable_peers = int(reachable_peers)
        self.replication_rate = float(replication_rate)
        self.sha1_hit_mean = float(sha1_hit_mean)
        self.unknown_hit_mean = float(unknown_hit_mean)
        self._pmf_cache = {}
        self._mean_cache = {}

    def expected_hits(self, day: int, keywords: str, sha1: bool = False) -> float:
        """Mean responder count for a query (before Poisson sampling)."""
        if sha1:
            return self.sha1_hit_mean
        located = self.universe.lookup(day, keywords)
        if located is None:
            return self.unknown_hit_mean
        cls, rank = located
        n = self.universe.daily_size(cls)
        # The mean depends only on (class, rank), not the day or the
        # query string, so popular (frequently repeated) queries hit
        # this cache instead of re-evaluating the rank pmf.
        key = (cls, min(rank, n))
        mean = self._mean_cache.get(key)
        if mean is None:
            pmf = self._pmf_cache.get(cls)
            if pmf is None:
                pmf = zipf_for_class(cls, n)
                self._pmf_cache[cls] = pmf
            probability = float(pmf.pmf(key[1]))
            mean = self.reachable_peers * self.replication_rate * n * probability
            self._mean_cache[key] = mean
        return mean

    def mean_for_codes(self, cls_codes: np.ndarray, ranks: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`expected_hits` for (class, rank) query codes.

        ``cls_codes`` indexes :data:`repro.core.popularity.CLASS_ORDER`.
        Equivalent to looking each generated query string up on its own
        sample day (the day's rank-``k`` string has rank ``k`` by
        construction); callers must route queries whose *event* day
        differs from their sample day through :meth:`expected_hits`.
        """
        cls_codes = np.asarray(cls_codes)
        ranks = np.asarray(ranks, dtype=np.int64)
        means = np.empty(cls_codes.size, dtype=np.float64)
        for code in np.unique(cls_codes):
            cls = CLASS_ORDER[int(code)]
            n = self.universe.daily_size(cls)
            pmf = self._pmf_cache.get(cls)
            if pmf is None:
                pmf = zipf_for_class(cls, n)
                self._pmf_cache[cls] = pmf
            mask = cls_codes == code
            k = np.minimum(ranks[mask], n)
            means[mask] = (
                self.reachable_peers * self.replication_rate * n * pmf._pmf[k - 1]
            )
        return means

    def sample_hits(
        self, rng: np.random.Generator, day: int, keywords: str, sha1: bool = False
    ) -> int:
        """Draw the responder count for one observed query."""
        return int(rng.poisson(self.expected_hits(day, keywords, sha1=sha1)))
