"""Vectorized columnar synthesis: the whole trace as NumPy batches.

The event-loop engine (:class:`~repro.synthesis.synthesizer._ShardEngine`)
walks a heap of per-event Python tuples through the measurement monitor.
This module synthesizes the *same generative model* -- arrivals,
identities, quick disconnects, session plans, the four client-automation
rules, monitor end/keep-alive semantics, and background samples -- as
whole-shard array operations, emitting a
:class:`~repro.measurement.columnar.ColumnarTrace` directly: no per-event
tuples, no ``Trace`` record objects, no JSONL hop.

Equivalence contract
--------------------

Every random quantity is drawn from the *same distribution* as the event
path, but batched RNG calls consume the streams in a different order, so
for a fixed seed the columnar trace is a different, equally-distributed
realization (see METHODOLOGY.md section 8).  Deterministic quantities are
replicated exactly:

* arrival times (same ``ArrivalProcess`` batch draw, same stream);
* IP allocation (same per-region counters, arrival order, disjoint
  per-shard ranges);
* monitor semantics in closed form: silent departures overshoot by the
  idle probe + close window, socket closes and BYEs end exactly, sessions
  open at the global trace end are truncated to it, and keep-alive
  PING/PONG exchanges are one per 15 s of continuous idleness;
* the Table 2 automation machinery (re-query trains, SHA1 spawns,
  pre-connect bursts, fixed-interval metronomes) with the same rates.

The renewal re-query train is drawn as its equivalent Poisson form:
``N ~ Poisson(span / interval)`` events placed uniformly over the span
(the count cap of ``_MAX_REQUERY_REPEATS`` is applied to ``N``); the
final per-session time sort restores the order the renewal walk would
have produced.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.agents import ArrivalProcess, PeerPopulation, UserBehavior
from repro.agents.population import sample_shared_files_batch
from repro.core.kernels import (
    CategoricalTableStack,
    group_slices,
    segmented_arange,
    segmented_offsets_scatter,
)
from repro.core.model import WorkloadModel
from repro.core.parameters import MIN_SESSION_SECONDS, geographic_mix_arrays
from repro.core.popularity import CLASS_ORDER, QueryUniverse
from repro.gnutella.clients import (
    _MAX_REQUERY_REPEATS,
    CLIENT_PROFILES,
    profile_attribute_arrays,
    sha1_urns_for,
)
from repro.measurement import IDLE_CLOSE_SECONDS, IDLE_PROBE_SECONDS
from repro.measurement.columnar import (
    REGION_CODE,
    REGION_ORDER,
    ColumnarTrace,
    norm_keys_array,
)

from .hits import HitModel

__all__ = ["ColumnarShardEngine", "synthesize_shard_columnar"]

_SECONDS_PER_DAY = 86400.0

#: Per-hour Figure 1 region-mix draw table, shared by every shard engine
#: (the mix is a process-wide constant).  Exact-equivalent to counting
#: ``mix_cum[hour] < u`` -- same draws, same regions, O(1) per sample.
_REGION_MIX_STACK: Optional[CategoricalTableStack] = None


def _region_mix_stack() -> CategoricalTableStack:
    global _REGION_MIX_STACK
    if _REGION_MIX_STACK is None:
        _, _, mix_cum = geographic_mix_arrays()
        _REGION_MIX_STACK = CategoricalTableStack(mix_cum)
    return _REGION_MIX_STACK


def synthesize_shard_columnar(
    config,
    n_shards: int,
    index: int,
    start: float,
    end: float,
    model: Optional[WorkloadModel] = None,
    universe: Optional[QueryUniverse] = None,
) -> ColumnarTrace:
    """Columnar counterpart of ``_synthesize_shard`` (worker entry point)."""
    from .synthesizer import _prebuild_day, _shard_ip_range, _shard_streams

    streams = _shard_streams(config.seed, n_shards, index)
    model = model or WorkloadModel.paper()
    if universe is None:
        universe = QueryUniverse(seed=config.seed + 1).prebuild(_prebuild_day(config))
    population = PeerPopulation(seed=streams[0], **_shard_ip_range(n_shards, index))
    behavior = UserBehavior(model=model, universe=universe, seed=streams[1])
    arrivals = ArrivalProcess(config.mean_arrival_rate, seed=streams[2])
    engine = ColumnarShardEngine(
        config, model, universe, population, behavior, arrivals,
        HitModel(universe), np.random.default_rng(streams[3]),
    )
    return engine.run(start, end)


class ColumnarShardEngine:
    """Vectorized synthesis of one time shard into a ColumnarTrace.

    Owns connections *arriving* in ``[start, end)``; their sessions may
    extend past ``end`` up to the global trace end, exactly like the
    event engine, so shard merges need no warm-up margin.
    """

    def __init__(self, config, model, universe, population, behavior,
                 arrivals, hit_model, rng):
        self.config = config
        self.model = model
        self.universe = universe
        self.population = population
        self.behavior = behavior
        self.arrivals = arrivals
        self.hit_model = hit_model
        self._rng = rng

    def run(self, start: float, end: float) -> ColumnarTrace:
        cfg = self.config
        rng = self._rng
        global_end = cfg.end_time
        t_arr = np.asarray(self.arrivals.arrival_times(start, end), dtype=np.float64)
        n = t_arr.size
        ident = self.population.spawn_batch(t_arr)
        attrs = profile_attribute_arrays(self.population.profiles)
        pool = self.population.profiles or CLIENT_PROFILES

        # -- connection fate ------------------------------------------------
        quick = rng.random(n) < attrs["quick_disconnect_prob"][ident.profile_index]
        nq_idx = np.nonzero(~quick)[0]
        q_idx = np.nonzero(quick)[0]

        dur_quick = self._quick_durations(q_idx.size)
        stray = rng.random(q_idx.size) < cfg.quick_query_prob
        silent = rng.random(nq_idx.size) >= cfg.bye_prob

        plans = self.behavior.plan_sessions_batch(
            ident.region_code[nq_idx], t_arr[nq_idx]
        )
        duration = np.maximum(plans.duration, 1.0)
        overshoot = (IDLE_PROBE_SECONDS + IDLE_CLOSE_SECONDS) * silent
        depart_at = np.maximum(duration - overshoot, 0.5)

        # -- query stream (flat rows over all connections) ------------------
        rows: List[Tuple[np.ndarray, ...]] = []

        def emit(sess, t_off, cls, rank, day, sha1, automated):
            """Queue flat query rows: (session row, offset, code, flags)."""
            sess = np.asarray(sess, dtype=np.int64)
            rows.append((
                sess,
                np.asarray(t_off, dtype=np.float64),
                np.asarray(cls, dtype=np.int8),
                np.asarray(rank, dtype=np.int64),
                np.asarray(day, dtype=np.int64),
                np.full(sess.size, sha1, dtype=bool),
                np.full(sess.size, automated, dtype=bool),
            ))

        self._emit_stray_queries(emit, q_idx, t_arr, ident, dur_quick, stray)
        self._emit_planned_queries(
            emit, nq_idx, plans, duration, depart_at, attrs, ident
        )

        if rows:
            q_sess, q_off, q_cls, q_rank, q_day, q_sha1, q_auto = (
                np.concatenate(cols) for cols in zip(*rows)
            )
        else:
            q_sess = np.empty(0, dtype=np.int64)
            q_off = np.empty(0, dtype=np.float64)
            q_cls = np.empty(0, dtype=np.int8)
            q_rank = np.empty(0, dtype=np.int64)
            q_day = np.empty(0, dtype=np.int64)
            q_sha1 = np.empty(0, dtype=bool)
            q_auto = np.empty(0, dtype=bool)

        # Absolute time; drop rows at/after the global trace end (the
        # event loop skips those events and finalize truncates).
        q_time = t_arr[q_sess] + q_off
        keep = q_time < global_end
        q_sess, q_time, q_cls, q_rank, q_day, q_sha1, q_auto = (
            a[keep] for a in (q_sess, q_time, q_cls, q_rank, q_day, q_sha1, q_auto)
        )
        order = np.lexsort((q_time, q_sess))
        q_sess, q_time, q_cls, q_rank, q_day, q_sha1, q_auto = (
            a[order] for a in (q_sess, q_time, q_cls, q_rank, q_day, q_sha1, q_auto)
        )
        counts = np.bincount(q_sess, minlength=n).astype(np.int64)
        offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])

        keywords, norm_keys = self._gather_strings(q_cls, q_rank, q_day, q_sha1)
        hits = self._sample_hits(q_time, q_cls, q_rank, q_day, q_sha1, keywords)

        # -- session end times ---------------------------------------------
        session_end = np.empty(n, dtype=np.float64)
        session_end[q_idx] = np.minimum(t_arr[q_idx] + dur_quick, global_end)
        close_t = t_arr[nq_idx] + depart_at
        idle_extra = IDLE_PROBE_SECONDS + IDLE_CLOSE_SECONDS
        session_end[nq_idx] = np.where(
            close_t < global_end,
            np.where(silent, close_t + idle_extra, close_t),
            global_end,
        )

        # -- keep-alive accounting (closed form of the monitor) -------------
        # Activity sequence per session: open, kept queries, final probe
        # point (close time capped at the global end).  One PING/PONG
        # exchange per 15 s of continuous idleness between neighbours.
        final_at = np.empty(n, dtype=np.float64)
        final_at[q_idx] = np.minimum(t_arr[q_idx] + dur_quick, global_end)
        final_at[nq_idx] = np.minimum(close_t, global_end)
        prev = np.insert(q_time, offsets[:-1], t_arr)
        nxt = np.insert(q_time, offsets[1:], final_at)
        gaps = nxt - prev
        idle = gaps > IDLE_PROBE_SECONDS
        exchanges = int(np.floor(gaps[idle] / IDLE_PROBE_SECONDS).sum())
        # Silent departures noticed before the trace end cost one extra,
        # unanswered probe PING each.
        extra_pings = int((silent & (close_t < global_end)).sum())

        trace = ColumnarTrace(
            start_time=start,
            end_time=global_end,
            session_peer_ip=ident.ip,
            session_region=ident.region_code,
            session_start=t_arr,
            session_end=session_end,
            session_user_agent=attrs["user_agent"][ident.profile_index],
            session_ultrapeer=ident.ultrapeer,
            session_shared_files=ident.shared_files,
            query_offsets=offsets,
            query_timestamp=q_time,
            query_keywords=keywords,
            query_norm_key=norm_keys,
            query_sha1=q_sha1,
            query_hops=np.full(q_time.size, 1, dtype=np.int64),
            query_ttl=np.full(q_time.size, 6, dtype=np.int64),
            query_automated=q_auto,
            query_hits=hits,
            counters={
                "_raw_keepalive_pings": exchanges + extra_pings,
                "_raw_keepalive_pongs": exchanges,
                "rejected_connections": 0,
            },
        )
        self._emit_background_samples(trace, start, min(end, global_end))
        return trace

    # -- connection fate helpers -------------------------------------------

    def _quick_durations(self, count: int) -> np.ndarray:
        """Rule-3 quick-disconnect durations, two uniforms per draw like
        the scalar path: 41% under 10 s, 46% in 10-35 s, rest to 64 s."""
        rng = self._rng
        u1 = rng.random(count)
        u2 = rng.random(count)
        return np.where(
            u1 < 0.41,
            1.0 + u2 * 9.0,
            np.where(
                u1 < 0.87,
                10.0 + u2 * 25.0,
                35.0 + u2 * (MIN_SESSION_SECONDS - 35.0 - 1e-3),
            ),
        )

    def _emit_stray_queries(self, emit, q_idx, t_arr, ident, dur_quick, stray):
        """The occasional automated query a quick disconnect still fires."""
        rng = self._rng
        s_idx = q_idx[stray]
        if s_idx.size == 0:
            return
        t_off = rng.random(s_idx.size) * dur_quick[stray]
        day = (t_arr[s_idx] // _SECONDS_PER_DAY).astype(np.int64)
        cls = np.empty(s_idx.size, dtype=np.int8)
        rank = np.empty(s_idx.size, dtype=np.int64)
        order, codes, bounds = group_slices(ident.region_code[s_idx])
        for g in range(codes.size):
            idx = order[bounds[g]:bounds[g + 1]]
            cls[idx], rank[idx] = self.universe.sample_batch_codes(
                rng, REGION_ORDER[int(codes[g])], idx.size
            )
        emit(s_idx, t_off, cls, rank, day, False, True)

    # -- client automation ---------------------------------------------------

    def _emit_planned_queries(
        self, emit, nq_idx, plans, duration, depart_at, attrs, ident
    ):
        """User queries plus the four automation rules for one shard.

        All offsets are clamped to just before the client's quiet point
        (``depart_at - 1e-3``), mirroring the event engine's per-event
        clamp, so the recorded close time is always ``depart_at``.
        """
        rng = self._rng
        n_nq = nq_idx.size
        if n_nq == 0:
            return
        profile = ident.profile_index[nq_idx]
        interval = attrs["requery_interval_seconds"][profile]
        window = attrs["requery_window_seconds"][profile]
        sha1_rate = attrs["sha1_per_query"][profile]
        burst_prob = attrs["burst_prob"][profile]
        fixed_prob = attrs["fixed_interval_prob"][profile]
        fixed_period = attrs["fixed_interval_seconds"][profile]

        nq_counts = plans.n_queries
        q_total = int(nq_counts.sum())
        clamp = depart_at - 1e-3

        # Flat user-query rows: session-local index + per-row gathers.
        u_sess_local = np.repeat(np.arange(n_nq, dtype=np.int64), nq_counts)
        u_sess = nq_idx[u_sess_local]
        u_off = plans.q_time
        u_day = plans.sample_day[u_sess_local]
        u_dur = duration[u_sess_local]
        u_clamp = clamp[u_sess_local]
        emit(u_sess, np.minimum(u_off, u_clamp), plans.q_cls, plans.q_rank,
             u_day, False, False)

        remaining = u_dur - u_off

        # Rule 2: automated re-query train per open search.  Renewal walk
        # with Exp(interval) gaps over [offset, horizon) == Poisson count
        # with uniform placements; the cap applies to the count.
        u_interval = interval[u_sess_local]
        span = np.minimum(u_dur, u_off + window[u_sess_local]) - u_off
        live = (u_interval > 0) & (remaining > 0) & (span > 0)
        if live.any():
            counts = np.zeros(q_total, dtype=np.int64)
            counts[live] = np.minimum(
                rng.poisson(span[live] / u_interval[live]), _MAX_REQUERY_REPEATS
            )
            total = int(counts.sum())
            if total:
                parent = np.repeat(np.arange(q_total, dtype=np.int64), counts)
                t = u_off[parent] + rng.random(total) * span[parent]
                emit(u_sess[parent], np.minimum(t, u_clamp[parent]),
                     plans.q_cls[parent], plans.q_rank[parent],
                     u_day[parent], False, True)

        # Rule 1: SHA1 source-search spawns per user query.
        live = (sha1_rate[u_sess_local] > 0) & (remaining > 0)
        if live.any():
            counts = np.zeros(q_total, dtype=np.int64)
            counts[live] = rng.poisson(sha1_rate[u_sess_local][live])
            total = int(counts.sum())
            if total:
                parent = np.repeat(np.arange(q_total, dtype=np.int64), counts)
                t = u_off[parent] + rng.random(total) * remaining[parent]
                emit(u_sess[parent], np.minimum(t, u_clamp[parent]),
                     plans.q_cls[parent], plans.q_rank[parent],
                     u_day[parent], True, True)

        # Rule 4: pre-connect queries re-sent back-to-back after connect.
        pre_counts = plans.pre_offsets[1:] - plans.pre_offsets[:-1]
        has_pre = pre_counts > 0
        if has_pre.any():
            burst = np.zeros(n_nq, dtype=bool)
            burst[has_pre] = (
                rng.random(int(has_pre.sum())) < burst_prob[has_pre]
            )
            b_counts = np.where(burst, pre_counts, 0)
            total = int(b_counts.sum())
            if total:
                t0 = 0.05 + rng.random(int(burst.sum())) * 0.2
                gaps = 0.1 + rng.random(total) * 0.8
                pos = segmented_arange(b_counts)
                # The gap drawn for each first slot is discarded (the
                # scalar path draws it too), keeping the streams aligned.
                t = segmented_offsets_scatter(t0, gaps[pos != 0], b_counts)
                sess_local = np.repeat(np.arange(n_nq, dtype=np.int64), b_counts)
                keep = t < duration[sess_local]
                if keep.any():
                    src = plans.pre_offsets[:-1][sess_local] + pos
                    emit(nq_idx[sess_local[keep]],
                         np.minimum(t[keep], clamp[sess_local[keep]]),
                         plans.pre_cls[src[keep]], plans.pre_rank[src[keep]],
                         plans.sample_day[sess_local[keep]], False, True)

        # Rule 5: fixed-interval metronome over the session's open-search
        # list (pre-connect + user queries, order-preserving dedup).
        # Only sessions that issued queries hold a non-empty list.
        active = nq_counts > 0
        if active.any():
            metro = np.zeros(n_nq, dtype=bool)
            metro[active] = rng.random(int(active.sum())) < fixed_prob[active]
            m_idx = np.nonzero(metro)[0]
            if m_idx.size:
                max_repeats = rng.integers(5, 25, size=m_idx.size)
                period = fixed_period[m_idx]
                slots = np.ceil(duration[m_idx] / period) - 1
                kept = np.minimum(max_repeats, np.maximum(slots, 0)).astype(np.int64)
                total = int(kept.sum())
                if total:
                    sess_pos = np.repeat(np.arange(m_idx.size, dtype=np.int64), kept)
                    step = segmented_arange(kept)  # 0-based repeat index
                    t = period[sess_pos] * (step + 1)
                    m_cls = np.empty(total, dtype=np.int8)
                    m_rank = np.empty(total, dtype=np.int64)
                    for j, local in enumerate(m_idx.tolist()):
                        list_cls, list_rank = self._search_list(plans, local)
                        take = np.nonzero(sess_pos == j)[0]
                        idx = step[take] % list_cls.size
                        m_cls[take] = list_cls[idx]
                        m_rank[take] = list_rank[idx]
                    sess_local = m_idx[sess_pos]
                    emit(nq_idx[sess_local],
                         np.minimum(t, clamp[sess_local]),
                         m_cls, m_rank, plans.sample_day[sess_local],
                         False, True)

    @staticmethod
    def _search_list(plans, local: int) -> Tuple[np.ndarray, np.ndarray]:
        """Order-preserving dedup of a session's (class, rank) codes.

        Within one session all codes resolve against the same sample
        day, so code equality coincides with string equality.
        """
        cls = np.concatenate([
            plans.pre_cls[plans.pre_offsets[local]:plans.pre_offsets[local + 1]],
            plans.q_cls[plans.q_offsets[local]:plans.q_offsets[local + 1]],
        ])
        rank = np.concatenate([
            plans.pre_rank[plans.pre_offsets[local]:plans.pre_offsets[local + 1]],
            plans.q_rank[plans.q_offsets[local]:plans.q_offsets[local + 1]],
        ])
        seen = set()
        keep = []
        for i, code in enumerate(zip(cls.tolist(), rank.tolist())):
            if code not in seen:
                seen.add(code)
                keep.append(i)
        keep = np.asarray(keep, dtype=np.int64)
        return cls[keep], rank[keep]

    # -- strings and hits ----------------------------------------------------

    def _gather_strings(self, q_cls, q_rank, q_day, q_sha1):
        """Resolve (class, rank, day) codes to query strings per group.

        Returns ``(keywords, norm_keys)``: SHA1 rows first resolve their
        *parent* string, then hash it into the source-search urn,
        matching the event path's derivation.  The rule-2 norm key is
        normalized once per *distinct* catalog string (ranking arrays
        hold each string once) and gathered alongside -- elementwise
        identical to normalizing the full keyword column.
        """
        if q_cls.size == 0:
            return np.empty(0, dtype="U1"), np.empty(0, dtype="U1")
        # One stable argsort replaces a full-size boolean mask per
        # (day, class) group -- the groups partition the rows exactly.
        order, keys, bounds = group_slices(q_day * len(CLASS_ORDER) + q_cls)
        rankings = [
            self.universe.ranking_array(
                int(key) // len(CLASS_ORDER), CLASS_ORDER[int(key) % len(CLASS_ORDER)]
            )
            for key in keys
        ]
        # Width covers every source ranking plus the 40-hex SHA1 urns.
        width = max([40] + [a.dtype.itemsize // 4 for a in rankings])
        raw = np.empty(q_cls.size, dtype=f"U{width}")
        norm = np.empty(q_cls.size, dtype=f"U{width}")
        for g, ranking in enumerate(rankings):
            idx = order[bounds[g]:bounds[g + 1]]
            ranks = q_rank[idx] - 1
            raw[idx] = ranking[ranks]
            norm[idx] = norm_keys_array(ranking)[ranks]
        if q_sha1.any():
            urns = sha1_urns_for(raw[q_sha1])
            raw[q_sha1] = urns
            norm[q_sha1] = norm_keys_array(urns)
        return raw, norm

    def _sample_hits(self, q_time, q_cls, q_rank, q_day, q_sha1, keywords):
        """Poisson responder counts with vectorized same-day means.

        The event path resolves each query string on its *event* day;
        rows whose event day matches their sample day (the vast
        majority) use the code-indexed mean table, midnight-crossing
        rows fall back to the per-string lookup.
        """
        if q_time.size == 0:
            return np.empty(0, dtype=np.int64)
        means = np.empty(q_time.size, dtype=np.float64)
        means[q_sha1] = self.hit_model.sha1_hit_mean
        event_day = (q_time // _SECONDS_PER_DAY).astype(np.int64)
        plain = ~q_sha1
        same = plain & (event_day == q_day)
        means[same] = self.hit_model.mean_for_codes(q_cls[same], q_rank[same])
        cross = np.nonzero(plain & (event_day != q_day))[0]
        if cross.size:
            # expected_hits is deterministic in (day, string), so one
            # scalar lookup per *unique* pair covers every cross row.
            strings, inverse = np.unique(keywords[cross], return_inverse=True)
            pair = event_day[cross] * np.int64(strings.size) + inverse
            pairs, pair_inv = np.unique(pair, return_inverse=True)
            lookups = np.array([
                self.hit_model.expected_hits(
                    int(p // strings.size), str(strings[p % strings.size]), sha1=False
                )
                for p in pairs.tolist()
            ], dtype=np.float64)
            means[cross] = lookups[pair_inv]
        return self._rng.poisson(means).astype(np.int64)

    # -- background traffic --------------------------------------------------

    def _emit_background_samples(self, trace: ColumnarTrace, start: float, end: float):
        """Figure 1/2 all-peers PONG/QUERYHIT samples, fully columnar."""
        per_hour = self.config.background_samples_per_hour
        if per_hour <= 0 or end <= start:
            return
        rng = self._rng
        gap = 3600.0 / per_hour
        times = np.arange(start + rng.random() * gap, end, gap)
        if times.size == 0:
            return
        regions, _, _ = geographic_mix_arrays()
        codes = np.array([REGION_CODE[r] for r in regions], dtype=np.int8)
        hours = ((times % _SECONDS_PER_DAY) // 3600.0).astype(np.intp)
        region_idx = _region_mix_stack().sample(rng, hours)
        shared = sample_shared_files_batch(rng, times.size).astype(np.int64)
        is_hit = rng.random(times.size) < _queryhit_sample_prob()
        ips = np.empty(times.size, dtype="U15")
        for index in np.unique(region_idx):
            positions = np.nonzero(region_idx == index)[0]
            ips[positions] = self.population.allocate_ip_array(
                regions[index], positions.size
            )
        trace.pong_timestamp = times
        trace.pong_ip = ips
        trace.pong_region = codes[region_idx]
        trace.pong_shared_files = shared
        trace.pong_one_hop = np.zeros(times.size, dtype=bool)
        trace.hit_timestamp = times[is_hit]
        trace.hit_ip = ips[is_hit]
        trace.hit_region = codes[region_idx[is_hit]]
        trace.hit_one_hop = np.zeros(int(is_hit.sum()), dtype=bool)


def _queryhit_sample_prob() -> float:
    from .synthesizer import _QUERYHIT_SAMPLE_PROB

    return _QUERYHIT_SAMPLE_PROB
