"""Trace synthesis: substitute for the paper's 40-day live measurement."""

from .hits import HitModel
from .scenarios import SCENARIOS, scenario_config
from .synthesizer import BACKGROUND_RATIOS, SynthesisConfig, TraceSynthesizer, synthesize_trace

__all__ = ["BACKGROUND_RATIOS", "HitModel", "SCENARIOS", "scenario_config", "SynthesisConfig", "TraceSynthesizer", "synthesize_trace"]
