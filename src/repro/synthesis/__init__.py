"""Trace synthesis: substitute for the paper's 40-day live measurement."""

from .cache import (
    TraceCache,
    default_cache_dir,
    load_or_synthesize,
    load_or_synthesize_columnar,
    load_or_synthesize_sharded,
    trace_cache_key,
)
from .hits import HitModel
from .scenarios import SCENARIOS, scenario_config
from .synthesizer import (
    BACKGROUND_RATIOS,
    SynthesisConfig,
    TraceSynthesizer,
    shard_windows,
    synthesize_trace,
)

__all__ = [
    "BACKGROUND_RATIOS",
    "HitModel",
    "SCENARIOS",
    "SynthesisConfig",
    "TraceCache",
    "TraceSynthesizer",
    "default_cache_dir",
    "load_or_synthesize",
    "load_or_synthesize_columnar",
    "load_or_synthesize_sharded",
    "scenario_config",
    "shard_windows",
    "synthesize_trace",
    "trace_cache_key",
]
