"""Trace synthesis: the substitute for 40 days of live Gnutella measurement.

Drives the ground-truth layers against the measurement node:

1. connection arrivals follow a diurnal Poisson process
   (:class:`~repro.agents.diurnal.ArrivalProcess`);
2. each connection gets an identity from the
   :class:`~repro.agents.population.PeerPopulation` (region by the
   Figure 1 mix, unique IP, client profile, ultrapeer flag, library size);
3. ~70% of connections are quick system disconnects under 64 seconds
   (Section 3.3 rule 3: 29% under 10 s, another 32% within the next
   20-25 s);
4. surviving connections carry a ground-truth user session plan
   (:class:`~repro.agents.user_model.UserBehavior`) expanded through the
   client profile's automation (:func:`~repro.gnutella.clients.expand_user_session`)
   into the observable query stream;
5. the measurement node records sessions with its idle-detection end
   semantics, and background overlay traffic (relayed queries, PING/PONG,
   QUERYHIT) is accounted at the Table 1 ratios, with PONG/QUERYHIT
   address samples drawn for the Figures 1-2 all-peers comparisons.

The result is a :class:`~repro.measurement.trace.Trace` whose *user*
layer follows the paper's fitted model and whose *system* layer carries
every anomaly class the filter rules target.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.agents import ArrivalProcess, PeerPopulation, UserBehavior
from repro.core.model import WorkloadModel
from repro.core.parameters import MIN_SESSION_SECONDS, geographic_mix
from repro.core.popularity import QueryUniverse
from repro.core.regions import Region, hour_of_day
from repro.agents.population import sample_shared_files
from repro.gnutella.clients import expand_user_session

from .hits import HitModel
from repro.measurement import (
    IDLE_CLOSE_SECONDS,
    IDLE_PROBE_SECONDS,
    MeasurementNode,
    PongObservation,
    QueryHitObservation,
    Trace,
)

__all__ = ["SynthesisConfig", "TraceSynthesizer", "synthesize_trace"]


#: Table 1 ratios relative to the hop-1 query count / connection count.
#: relayed QUERYs: (34,425,154 - 1,735,538) / 1,735,538; QUERYHITs per
#: hop-1 query; PING/PONG per direct connection.
BACKGROUND_RATIOS = {
    "relayed_queries_per_hop1": 18.84,
    "queryhits_per_hop1": 0.772,
    "pings_per_connection": 6.23,
    "pongs_per_connection": 4.08,
}


@dataclass
class SynthesisConfig:
    """Knobs of a synthesis run.

    ``days`` and ``mean_arrival_rate`` set the scale: the paper saw
    ~4.36M connections over 40 days (~1.26/s); the defaults produce a
    laptop-sized trace with the same distributions.  ``max_slots=None``
    removes the 200-slot cap so scaled-down runs don't reject arrivals.
    """

    days: float = 2.0
    mean_arrival_rate: float = 0.35  # connections per second
    seed: int = 20040315
    max_slots: Optional[int] = None
    #: Probability a departing client sends a proper BYE ("many Gnutella
    #: clients do not terminate ... by sending a BYE message").
    bye_prob: float = 0.05
    #: Probability a quick-disconnect session still emits a stray query.
    quick_query_prob: float = 0.08
    #: All-peers PONG/QUERYHIT samples recorded per hour (Figures 1-2).
    background_samples_per_hour: int = 240

    def __post_init__(self):
        if self.days <= 0:
            raise ValueError("days must be positive")
        if self.mean_arrival_rate <= 0:
            raise ValueError("mean_arrival_rate must be positive")
        if not 0.0 <= self.bye_prob <= 1.0:
            raise ValueError("bye_prob must be a probability")


class TraceSynthesizer:
    """Produces a complete synthetic measurement trace."""

    def __init__(
        self,
        config: Optional[SynthesisConfig] = None,
        model: Optional[WorkloadModel] = None,
        universe: Optional[QueryUniverse] = None,
        population: Optional[PeerPopulation] = None,
    ):
        self.config = config or SynthesisConfig()
        seed = self.config.seed
        self.universe = universe or QueryUniverse(seed=seed + 1)
        self.model = model or WorkloadModel.paper()
        self.population = population or PeerPopulation(seed=seed + 2)
        self.behavior = UserBehavior(model=self.model, universe=self.universe, seed=seed + 3)
        self.arrivals = ArrivalProcess(self.config.mean_arrival_rate, seed=seed + 4)
        self.hit_model = HitModel(self.universe)
        self._rng = np.random.default_rng(seed + 5)

    def run(self) -> Trace:
        """Synthesize the full trace."""
        cfg = self.config
        end_time = cfg.days * 86400.0
        monitor = MeasurementNode(max_slots=cfg.max_slots)
        trace = Trace(start_time=0.0, end_time=end_time)

        # Global event heap keeps monitor slot accounting time-ordered.
        # Events: (time, seq, kind, payload).
        heap: List[Tuple[float, int, str, tuple]] = []
        seq = 0

        def push(when: float, kind: str, payload: tuple) -> None:
            nonlocal seq
            heapq.heappush(heap, (when, seq, kind, payload))
            seq += 1

        for t in self.arrivals.arrivals(0.0, end_time):
            push(t, "connect", (t,))

        self._schedule_background_samples(push, end_time)

        while heap:
            when, _, kind, payload = heapq.heappop(heap)
            if when >= end_time:
                break  # the measurement window is over; finalize() truncates
            if kind == "connect":
                self._handle_connect(monitor, push, payload[0])
            elif kind == "query":
                conn_id, keywords, sha1, automated = payload
                hits = self.hit_model.sample_hits(
                    self._rng, day=int(when // 86400.0), keywords=keywords, sha1=sha1
                )
                monitor.receive_query(
                    conn_id, when, keywords, sha1=sha1, automated=automated, hits=hits
                )
            elif kind == "close":
                monitor.client_closed(payload[0], when)
            elif kind == "bye":
                monitor.client_bye(payload[0], when)
            elif kind == "depart":
                monitor.client_departed(payload[0], when)
            elif kind == "sample":
                self._record_background_sample(trace, when)
            else:  # pragma: no cover - defensive
                raise RuntimeError(f"unknown event kind {kind}")

        trace.sessions = monitor.finalize(end_time)
        self._finalize_counters(trace, monitor)
        return trace

    # -- per-connection logic ---------------------------------------------------

    def _handle_connect(self, monitor: MeasurementNode, push, t: float) -> None:
        rng = self._rng
        identity = self.population.spawn(hour_of_day(t))
        conn_id = monitor.open_connection(
            t,
            peer_ip=identity.ip,
            region=identity.region,
            user_agent=identity.profile.user_agent,
            ultrapeer=identity.ultrapeer,
            shared_files=identity.shared_files,
        )
        if conn_id is None:
            return  # all slots busy; the arrival is lost
        if rng.random() < identity.profile.quick_disconnect_prob:
            duration = self._quick_disconnect_duration()
            # A few quick connections still fire a stray (automated) query.
            if rng.random() < self.config.quick_query_prob:
                day = int(t // 86400)
                keywords = self.universe.sample(rng, day=day, region=identity.region).keywords
                push(t + rng.random() * duration, "query", (conn_id, keywords, False, True))
            # Quick system disconnects tear the TCP connection down, so
            # their recorded duration is exact (no +30 s idle penalty).
            push(t + duration, "close", (conn_id,))
            return
        plan = self.behavior.plan_session(identity.region, t)
        duration = max(plan.duration, 1.0)
        # Most clients leave silently, so the monitor's idle detection
        # adds ~30 s to the recorded duration; the workload model was
        # fitted to *recorded* durations, so the client goes quiet 30 s
        # before the planned (recorded) session end.
        silent = rng.random() >= self.config.bye_prob
        overshoot = IDLE_PROBE_SECONDS + IDLE_CLOSE_SECONDS if silent else 0.0
        depart_at = max(duration - overshoot, 0.5)
        stream = expand_user_session(
            plan.queries, duration, identity.profile, rng,
            pre_connect_queries=plan.pre_connect_queries,
        )
        last_query_offset = 0.0
        for item in stream:
            offset = min(item.offset, depart_at - 1e-3)
            last_query_offset = max(last_query_offset, offset)
            push(t + offset, "query", (conn_id, item.keywords, item.sha1, item.automated))
        push(t + max(depart_at, last_query_offset + 1e-3), "bye" if not silent else "depart", (conn_id,))

    def _quick_disconnect_duration(self) -> float:
        """Rule-3 quick disconnect durations: 29% of *all* connections end
        under 10 s and 32% within the next 20-25 s, i.e. of the ~70%
        quick connections ~41% are <10 s, ~46% land in 10-35 s, and the
        rest stretch to the 64 s cutoff."""
        u = self._rng.random()
        if u < 0.41:
            return 1.0 + self._rng.random() * 9.0
        if u < 0.87:
            return 10.0 + self._rng.random() * 25.0
        return 35.0 + self._rng.random() * (MIN_SESSION_SECONDS - 35.0 - 1e-3)

    # -- background traffic -------------------------------------------------------

    def _schedule_background_samples(self, push, end_time: float) -> None:
        """Spread the Figure 1/2 all-peers samples uniformly over the run."""
        per_hour = self.config.background_samples_per_hour
        if per_hour <= 0:
            return
        gap = 3600.0 / per_hour
        t = self._rng.random() * gap
        while t < end_time:
            push(t, "sample", ())
            t += gap

    def _record_background_sample(self, trace: Trace, now: float) -> None:
        """One sampled PONG (and, at the Table 1 rate, QUERYHIT) from the
        wider network.  Regions follow the same Figure 1 mix as one-hop
        peers: the paper verifies one-hop peers are representative."""
        rng = self._rng
        mix = geographic_mix(hour_of_day(now))
        regions = list(mix)
        weights = np.array([mix[r] for r in regions])
        region = regions[int(rng.choice(len(regions), p=weights / weights.sum()))]
        ip = self.population._allocator.allocate(region)
        trace.pongs.append(
            PongObservation(
                timestamp=now, ip=ip, region=region,
                shared_files=sample_shared_files(rng), one_hop=False,
            )
        )
        if rng.random() < 0.35:  # QUERYHITs are rarer than PONGs (Table 1)
            trace.queryhits.append(
                QueryHitObservation(timestamp=now, ip=ip, region=region, one_hop=False)
            )

    def _finalize_counters(self, trace: Trace, monitor: MeasurementNode) -> None:
        """Table 1 counters: measured quantities plus background ratios."""
        hop1 = trace.hop1_query_count()
        connections = trace.n_connections
        observed_hits = sum(q.hits for s in trace.sessions for q in s.queries)
        ratios = BACKGROUND_RATIOS
        trace.counters.update(
            {
                "direct_connections": connections,
                "hop1_query_messages": hop1,
                "hop1_queryhits": observed_hits,
                "query_messages": hop1 + int(round(hop1 * ratios["relayed_queries_per_hop1"])),
                "queryhit_messages": observed_hits
                + int(round(hop1 * ratios["queryhits_per_hop1"])),
                "ping_messages": monitor.keepalive_pings_sent
                + int(round(connections * ratios["pings_per_connection"])),
                "pong_messages": monitor.keepalive_pongs_received
                + int(round(connections * ratios["pongs_per_connection"])),
                "rejected_connections": monitor.rejected_connections,
            }
        )


def synthesize_trace(
    days: float = 2.0,
    mean_arrival_rate: float = 0.35,
    seed: int = 20040315,
    **kwargs,
) -> Trace:
    """Convenience wrapper: synthesize a trace with default wiring."""
    config = SynthesisConfig(days=days, mean_arrival_rate=mean_arrival_rate, seed=seed, **kwargs)
    return TraceSynthesizer(config).run()
