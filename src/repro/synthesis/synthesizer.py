"""Trace synthesis: the substitute for 40 days of live Gnutella measurement.

Drives the ground-truth layers against the measurement node:

1. connection arrivals follow a diurnal Poisson process
   (:class:`~repro.agents.diurnal.ArrivalProcess`);
2. each connection gets an identity from the
   :class:`~repro.agents.population.PeerPopulation` (region by the
   Figure 1 mix, unique IP, client profile, ultrapeer flag, library size);
3. ~70% of connections are quick system disconnects under 64 seconds
   (Section 3.3 rule 3: 29% under 10 s, another 32% within the next
   20-25 s);
4. surviving connections carry a ground-truth user session plan
   (:class:`~repro.agents.user_model.UserBehavior`) expanded through the
   client profile's automation (:func:`~repro.gnutella.clients.expand_user_session`)
   into the observable query stream;
5. the measurement node records sessions with its idle-detection end
   semantics, and background overlay traffic (relayed queries, PING/PONG,
   QUERYHIT) is accounted at the Table 1 ratios, with PONG/QUERYHIT
   address samples drawn for the Figures 1-2 all-peers comparisons.

The result is a :class:`~repro.measurement.trace.Trace` whose *user*
layer follows the paper's fitted model and whose *system* layer carries
every anomaly class the filter rules target.

Sharded synthesis
-----------------

With ``SynthesisConfig.jobs > 1`` (or an explicit ``shard_days``) the
measurement window is split into equal-width time shards, each
synthesized by an independent worker process -- the same
divide-by-time-slice strategy the distributed eDonkey captures used
across collectors.  Shard independence rests on three invariants:

* **RNG streams**: every shard derives its generators from
  ``np.random.SeedSequence(seed).spawn(n_shards)[index]``, so streams
  are statistically independent and a run is byte-reproducible for a
  fixed ``(config, seed, shard count)``.  Different shard counts yield
  different (equally distributed) realizations; the test suite checks
  KS equivalence between 1-shard and N-shard runs.
* **Content universe**: all shards share one
  :class:`~repro.core.popularity.QueryUniverse`, prebuilt in canonical
  (day, class) order so every worker holds identical daily rankings.
* **Boundary handling**: a connection belongs to the shard its *arrival*
  falls in, but its session may outlive the shard window -- events are
  processed up to the *global* trace end, so no warm-up margin or
  deduplication is needed and merged sessions are exactly the sessions a
  single sequential node would have recorded (restriction of a Poisson
  process to disjoint windows is again Poisson).  Peer IPs stay
  globally unique because each shard allocates from a disjoint
  per-region counter range (``SHARD_IP_STRIDE`` addresses wide).

Slot-capped runs (``max_slots``) need global concurrent-connection
accounting and therefore fall back to a single shard, as do runs with a
caller-supplied population (its RNG and allocator cannot be partitioned).
"""

from __future__ import annotations

import heapq
import math
import warnings
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.agents import ArrivalProcess, PeerPopulation, UserBehavior
from repro.core.kernels import (
    pool_map,
    pool_map_windowed,
    resolve_workers,
    spawn_shard_streams,
    time_windows,
)
from repro.core.model import WorkloadModel
from repro.core.parameters import MIN_SESSION_SECONDS, geographic_mix_arrays
from repro.core.popularity import QueryUniverse
from repro.core.regions import Region, hour_of_day
from repro.core.runtime import available_cpus
from repro.agents.population import sample_shared_files_batch
from repro.gnutella.clients import expand_user_session

from .hits import HitModel
from repro.measurement import (
    IDLE_CLOSE_SECONDS,
    IDLE_PROBE_SECONDS,
    MeasurementNode,
    PongObservation,
    QueryHitObservation,
    Trace,
    merge_traces,
)

__all__ = [
    "SHARD_IP_STRIDE",
    "SynthesisConfig",
    "TraceSynthesizer",
    "shard_windows",
    "synthesize_trace",
]


#: Table 1 ratios relative to the hop-1 query count / connection count.
#: relayed QUERYs: (34,425,154 - 1,735,538) / 1,735,538; QUERYHITs per
#: hop-1 query; PING/PONG per direct connection.
BACKGROUND_RATIOS = {
    "relayed_queries_per_hop1": 18.84,
    "queryhits_per_hop1": 0.772,
    "pings_per_connection": 6.23,
    "pongs_per_connection": 4.08,
}

#: Width of the per-shard, per-region IP allocator counter range.  Each
#: shard may observe at most this many distinct peers per region (the
#: paper-scale run needs ~100k per shard); with the 16-block /8 regions
#: this supports up to ~125 shards before the address space runs out.
SHARD_IP_STRIDE = 1 << 21

#: Fraction of background PONG samples that also yield a QUERYHIT
#: observation (QUERYHITs are rarer than PONGs -- Table 1).
_QUERYHIT_SAMPLE_PROB = 0.35

#: Private counter keys carrying raw monitor totals from shard traces to
#: the merge step; replaced by the Table 1 counters at finalization.
_RAW_PINGS = "_raw_keepalive_pings"
_RAW_PONGS = "_raw_keepalive_pongs"


@dataclass
class SynthesisConfig:
    """Knobs of a synthesis run.

    ``days`` and ``mean_arrival_rate`` set the scale: the paper saw
    ~4.36M connections over 40 days (~1.26/s); the defaults produce a
    laptop-sized trace with the same distributions.  ``max_slots=None``
    removes the 200-slot cap so scaled-down runs don't reject arrivals.

    ``jobs`` is the number of synthesis worker processes; ``shard_days``
    optionally pins the shard width (in days) instead of the default
    ``days / jobs`` split.  Both only shape *how* the trace is computed;
    the trace content depends on the resulting shard count, not on the
    worker count (``jobs=2`` and ``jobs=8`` over the same shards give
    byte-identical traces).
    """

    days: float = 2.0
    mean_arrival_rate: float = 0.35  # connections per second
    seed: int = 20040315
    max_slots: Optional[int] = None
    #: Synthesis engine: "columnar" (vectorized fast path, the default)
    #: or "event" (the per-event reference loop).  Both realize the same
    #: generative model; their RNG consumption orders differ, so fixed
    #: seeds give different (equally distributed) traces.  Configurations
    #: the fast path cannot vectorize (slot caps, custom populations/
    #: models, subclassed universes) silently use the event engine.
    backend: str = "columnar"
    #: Probability a departing client sends a proper BYE ("many Gnutella
    #: clients do not terminate ... by sending a BYE message").
    bye_prob: float = 0.05
    #: Probability a quick-disconnect session still emits a stray query.
    quick_query_prob: float = 0.08
    #: All-peers PONG/QUERYHIT samples recorded per hour (Figures 1-2).
    background_samples_per_hour: int = 240
    #: Worker processes for sharded synthesis (1 = sequential).
    jobs: int = 1
    #: Optional shard width in days; None derives it from ``jobs``.
    shard_days: Optional[float] = None

    def __post_init__(self):
        if self.days <= 0:
            raise ValueError("days must be positive")
        if self.mean_arrival_rate <= 0:
            raise ValueError("mean_arrival_rate must be positive")
        if not 0.0 <= self.bye_prob <= 1.0:
            raise ValueError("bye_prob must be a probability")
        if int(self.jobs) != self.jobs or self.jobs < 1:
            raise ValueError(f"jobs must be a positive integer, got {self.jobs}")
        if self.shard_days is not None and self.shard_days <= 0:
            raise ValueError("shard_days must be positive")
        if self.backend not in ("columnar", "event"):
            raise ValueError(
                f"backend must be 'columnar' or 'event', got {self.backend!r}"
            )

    @property
    def end_time(self) -> float:
        return self.days * 86400.0


def shard_windows(config: SynthesisConfig) -> List[Tuple[float, float]]:
    """Equal-width ``[start, end)`` time shards covering the window.

    One shard unless the config asks for parallel synthesis; the count
    is ``ceil(days / shard_days)``, or ``jobs`` when no width is given.
    """
    end = config.end_time
    if config.shard_days is not None:
        n = max(1, int(math.ceil(config.days / config.shard_days - 1e-9)))
    elif config.jobs > 1:
        n = int(config.jobs)
    else:
        n = 1
    return time_windows(end, n)


def _shard_streams(seed: int, n_shards: int, index: int):
    """The four per-shard RNG streams (population, behavior, arrivals,
    synthesizer), spawned from the root seed so shards never overlap."""
    return spawn_shard_streams(seed, n_shards, index, substreams=4)


def _prebuild_day(config: SynthesisConfig) -> int:
    """Last universe day materialized up front.

    Covers the window plus a margin for sessions whose first query falls
    shortly after the trace ends.  (Queries landing beyond the margin
    fall back to lazy ranking construction, which in multi-shard runs
    may diverge between workers -- harmless for those vanishing-tail
    events, and impossible inside the window itself.)
    """
    return int(math.ceil(config.days)) + 2


class TraceSynthesizer:
    """Produces a complete synthetic measurement trace.

    ``model``/``universe``/``population`` override the default wiring
    (used by sensitivity sweeps).  A caller-supplied population forces a
    single shard; a caller-supplied model or universe is shipped to the
    workers as-is and must be picklable.
    """

    def __init__(
        self,
        config: Optional[SynthesisConfig] = None,
        model: Optional[WorkloadModel] = None,
        universe: Optional[QueryUniverse] = None,
        population: Optional[PeerPopulation] = None,
    ):
        self.config = config or SynthesisConfig()
        self._custom_model = model is not None
        self._custom_universe = universe is not None
        self._custom_population = population is not None
        self._windows = shard_windows(self.config)
        if len(self._windows) > 1:
            reason = None
            if self._custom_population:
                reason = "a caller-supplied population cannot be partitioned"
            elif self.config.max_slots is not None:
                reason = "slot caps need global concurrent-connection accounting"
            if reason:
                warnings.warn(
                    f"sharded synthesis disabled ({reason}); running one shard",
                    RuntimeWarning,
                    stacklevel=2,
                )
                self._windows = [(0.0, self.config.end_time)]
        seed = self.config.seed
        n_shards = len(self._windows)
        self.model = model or WorkloadModel.paper()
        self.universe = universe or QueryUniverse(seed=seed + 1)
        if n_shards == 1 or self._custom_universe:
            self.universe.prebuild(_prebuild_day(self.config))
        streams = _shard_streams(seed, n_shards, 0)
        self.population = population or PeerPopulation(
            seed=streams[0], **_shard_ip_range(n_shards, 0)
        )
        self.behavior = UserBehavior(model=self.model, universe=self.universe, seed=streams[1])
        self.arrivals = ArrivalProcess(self.config.mean_arrival_rate, seed=streams[2])
        self.hit_model = HitModel(self.universe)
        self._rng = np.random.default_rng(streams[3])

    @property
    def n_shards(self) -> int:
        return len(self._windows)

    @property
    def effective_backend(self) -> str:
        """The engine actually used: the fast path only covers default
        wiring.  Slot caps need event-ordered accounting, custom
        populations/models expose scalar-only hooks, and a subclassed
        universe may override sampling the batch path would bypass."""
        if self.config.backend == "event":
            return "event"
        if self._custom_population or self._custom_model:
            return "event"
        if self.config.max_slots is not None:
            return "event"
        if self._custom_universe and type(self.universe) is not QueryUniverse:
            return "event"
        return "columnar"

    def run(self) -> Trace:
        """Synthesize the full trace (in parallel when configured)."""
        if self.effective_backend == "columnar":
            return self.run_columnar().to_trace()
        return self._run_event()

    def _run_event(self) -> Trace:
        cfg = self.config
        if len(self._windows) == 1:
            start, end = self._windows[0]
            trace = _ShardEngine(
                cfg, self.model, self.universe, self.population,
                self.behavior, self.arrivals, self.hit_model, self._rng,
            ).run(start, end)
        else:
            trace = self._run_sharded()
        _finalize_counters(trace)
        return trace

    def run_columnar(self):
        """Synthesize directly into a ColumnarTrace (no record objects).

        Falls back to columnarizing the event engine's output when the
        configuration needs it (see :attr:`effective_backend`).
        """
        from repro.measurement.columnar import ColumnarTrace, ColumnarTraceBuilder

        if self.effective_backend == "event":
            return ColumnarTrace.from_trace(self._run_event())

        from .columnar_engine import ColumnarShardEngine, synthesize_shard_columnar

        cfg = self.config
        if len(self._windows) == 1:
            start, end = self._windows[0]
            self.universe.prebuild(_prebuild_day(cfg))
            parts = [
                ColumnarShardEngine(
                    cfg, self.model, self.universe, self.population,
                    self.behavior, self.arrivals, self.hit_model, self._rng,
                ).run(start, end)
            ]
        else:
            n = len(self._windows)
            universe = self.universe if self._custom_universe else None
            tasks = [
                (cfg, n, index, start, end, None, universe)
                for index, (start, end) in enumerate(self._windows)
            ]
            parts = pool_map(
                _columnar_shard_task, tasks, resolve_workers(cfg.jobs, n)
            )
        builder = ColumnarTraceBuilder()
        for part in parts:
            builder.append(part)
        trace = builder.build()
        trace.start_time, trace.end_time = 0.0, cfg.end_time
        _finalize_counters_columnar(trace)
        return trace

    def run_sharded(self, dest):
        """Synthesize straight to a :class:`~repro.measurement.shards.ShardedTrace`.

        The out-of-core twin of :meth:`run_columnar`: each time shard is
        synthesized (in parallel when configured), canonically sorted,
        and spilled to ``dest/shard-NNNNN.npz`` the moment it is ready --
        at no point does more than roughly ``workers + 1`` shards' worth
        of trace live in memory.  ``ShardedTrace.concat()`` of the result
        is byte-identical to :meth:`run_columnar` for the same config.

        Only the columnar fast path can shard to disk; configurations
        that fall back to the event engine (slot caps, custom
        populations/models) must use :meth:`run` instead.
        """
        from repro.measurement.shards import ShardWriter

        if self.effective_backend != "columnar":
            raise ValueError(
                "run_sharded() requires the columnar backend; this configuration "
                f"falls back to the event engine (backend={self.config.backend!r})"
            )
        from .columnar_engine import ColumnarShardEngine, synthesize_shard_columnar

        cfg = self.config
        writer = ShardWriter(dest, 0.0, cfg.end_time)
        if len(self._windows) == 1:
            start, end = self._windows[0]
            self.universe.prebuild(_prebuild_day(cfg))
            writer.append(
                ColumnarShardEngine(
                    cfg, self.model, self.universe, self.population,
                    self.behavior, self.arrivals, self.hit_model, self._rng,
                ).run(start, end)
            )
        else:
            n = len(self._windows)
            universe = self.universe if self._custom_universe else None
            tasks = [
                (cfg, n, index, start, end, None, universe)
                for index, (start, end) in enumerate(self._windows)
            ]
            # Bounded in-flight window, consumed in shard order: the
            # writer sees at most ~workers + 1 completed parts at once,
            # keeping the out-of-core RSS budget intact.
            pool_map_windowed(
                _columnar_shard_task, tasks, resolve_workers(cfg.jobs, n),
                writer.append,
            )
        counters = dict(writer.raw_counters)
        _finalize_counter_dict(
            counters,
            hop1=writer.total_queries,
            connections=writer.total_sessions,
            observed_hits=writer.total_observed_hits,
        )
        return writer.close(counters)

    def _run_sharded(self) -> Trace:
        cfg = self.config
        n = len(self._windows)
        model = self.model if self._custom_model else None
        universe = self.universe if self._custom_universe else None
        tasks = [
            (cfg, n, index, start, end, model, universe)
            for index, (start, end) in enumerate(self._windows)
        ]
        # Worker count never affects trace content (the shard count does),
        # so cap it at the CPUs actually available: on a single-core host
        # the serial shard loop beats a process pool by skipping the
        # result pickling and scheduler churn.
        shards = pool_map(
            _synthesize_shard_task, tasks, resolve_workers(cfg.jobs, n)
        )
        merged = merge_traces(shards)
        merged.start_time, merged.end_time = 0.0, cfg.end_time
        return merged


def _shard_ip_range(n_shards: int, index: int) -> dict:
    """Population kwargs giving shard ``index`` a disjoint IP pool."""
    if n_shards <= 1:
        return {}
    return {
        "ip_counter_start": index * SHARD_IP_STRIDE,
        "ip_counter_limit": (index + 1) * SHARD_IP_STRIDE,
    }


#: Shared CPU-budget helper (see :func:`repro.core.runtime.available_cpus`);
#: kept under the old private name for existing callers.
_available_cpus = available_cpus


def _columnar_shard_task(task):
    from .columnar_engine import synthesize_shard_columnar

    return synthesize_shard_columnar(*task)


def _synthesize_shard_task(task) -> Trace:
    return _synthesize_shard(*task)


def _synthesize_shard(
    config: SynthesisConfig,
    n_shards: int,
    index: int,
    start: float,
    end: float,
    model: Optional[WorkloadModel] = None,
    universe: Optional[QueryUniverse] = None,
) -> Trace:
    """Synthesize one time shard (worker-process entry point).

    A ``None`` universe/model means "default wiring": each worker builds
    its own copy deterministically (the canonical-order
    :meth:`~repro.core.popularity.QueryUniverse.prebuild` makes every
    worker's universe identical) instead of paying to pickle it across
    the process boundary.
    """
    streams = _shard_streams(config.seed, n_shards, index)
    model = model or WorkloadModel.paper()
    if universe is None:
        universe = QueryUniverse(seed=config.seed + 1).prebuild(_prebuild_day(config))
    population = PeerPopulation(seed=streams[0], **_shard_ip_range(n_shards, index))
    behavior = UserBehavior(model=model, universe=universe, seed=streams[1])
    arrivals = ArrivalProcess(config.mean_arrival_rate, seed=streams[2])
    engine = _ShardEngine(
        config, model, universe, population, behavior, arrivals,
        HitModel(universe), np.random.default_rng(streams[3]),
    )
    return engine.run(start, end)


class _ShardEngine:
    """Event-driven synthesis of one time shard.

    Owns connections *arriving* in ``[start, end)``; their sessions may
    extend beyond ``end`` up to the global trace end, where the monitor's
    finalization truncates them exactly like the sequential path.
    """

    def __init__(self, config, model, universe, population, behavior,
                 arrivals, hit_model, rng):
        self.config = config
        self.model = model
        self.universe = universe
        self.population = population
        self.behavior = behavior
        self.arrivals = arrivals
        self.hit_model = hit_model
        self._rng = rng

    def run(self, start: float, end: float) -> Trace:
        cfg = self.config
        global_end = cfg.end_time
        monitor = MeasurementNode(max_slots=cfg.max_slots)
        trace = Trace(start_time=start, end_time=global_end)

        # Global event heap keeps monitor slot accounting time-ordered.
        # Events: (time, seq, kind, payload).  Arrivals are batch-drawn
        # and ascending, so the initial list is already a valid heap.
        arrival_times = self.arrivals.arrival_times(start, end)
        heap: List[Tuple[float, int, str, tuple]] = [
            (t, seq, "connect", (t,)) for seq, t in enumerate(arrival_times)
        ]
        self._seq = len(heap)

        def push(when: float, kind: str, payload: tuple) -> None:
            heapq.heappush(heap, (when, self._seq, kind, payload))
            self._seq += 1

        for when, kind, payload in self._drain_events(heap, global_end):
            if kind == "connect":
                self._handle_connect(monitor, push, payload[0])
            elif kind == "query":
                conn_id, keywords, sha1, automated = payload
                hits = self.hit_model.sample_hits(
                    self._rng, day=int(when // 86400.0), keywords=keywords, sha1=sha1
                )
                monitor.receive_query(
                    conn_id, when, keywords, sha1=sha1, automated=automated, hits=hits
                )
            elif kind == "close":
                monitor.client_closed(payload[0], when)
            elif kind == "bye":
                monitor.client_bye(payload[0], when)
            elif kind == "depart":
                monitor.client_departed(payload[0], when)
            else:  # pragma: no cover - defensive
                raise RuntimeError(f"unknown event kind {kind}")

        trace.sessions = monitor.finalize(global_end)
        self._emit_background_samples(trace, start, min(end, global_end))
        trace.counters[_RAW_PINGS] = monitor.keepalive_pings_sent
        trace.counters[_RAW_PONGS] = monitor.keepalive_pongs_received
        trace.counters["rejected_connections"] = monitor.rejected_connections
        return trace

    @staticmethod
    def _drain_events(heap, end_time: float) -> Iterator[Tuple[float, str, tuple]]:
        """Pop every queued event in time order, yielding in-window ones.

        Out-of-window events (``when >= end_time``) are *skipped*, not
        used as a stop signal: breaking on the first one would silently
        drop any still-queued in-window events ordered after it, so the
        boundary stays exact even for event sources that are not
        strictly time-sorted.
        """
        while heap:
            when, _, kind, payload = heapq.heappop(heap)
            if when >= end_time:
                continue  # past the window; finalize() truncates its session
            yield when, kind, payload

    # -- per-connection logic ---------------------------------------------------

    def _handle_connect(self, monitor: MeasurementNode, push, t: float) -> None:
        rng = self._rng
        identity = self.population.spawn(hour_of_day(t))
        conn_id = monitor.open_connection(
            t,
            peer_ip=identity.ip,
            region=identity.region,
            user_agent=identity.profile.user_agent,
            ultrapeer=identity.ultrapeer,
            shared_files=identity.shared_files,
        )
        if conn_id is None:
            return  # all slots busy; the arrival is lost
        if rng.random() < identity.profile.quick_disconnect_prob:
            duration = self._quick_disconnect_duration()
            # A few quick connections still fire a stray (automated) query.
            if rng.random() < self.config.quick_query_prob:
                day = int(t // 86400)
                keywords = self.universe.sample(rng, day=day, region=identity.region).keywords
                push(t + rng.random() * duration, "query", (conn_id, keywords, False, True))
            # Quick system disconnects tear the TCP connection down, so
            # their recorded duration is exact (no +30 s idle penalty).
            push(t + duration, "close", (conn_id,))
            return
        plan = self.behavior.plan_session(identity.region, t)
        duration = max(plan.duration, 1.0)
        # Most clients leave silently, so the monitor's idle detection
        # adds ~30 s to the recorded duration; the workload model was
        # fitted to *recorded* durations, so the client goes quiet 30 s
        # before the planned (recorded) session end.
        silent = rng.random() >= self.config.bye_prob
        overshoot = IDLE_PROBE_SECONDS + IDLE_CLOSE_SECONDS if silent else 0.0
        depart_at = max(duration - overshoot, 0.5)
        stream = expand_user_session(
            plan.queries, duration, identity.profile, rng,
            pre_connect_queries=plan.pre_connect_queries,
        )
        last_query_offset = 0.0
        for item in stream:
            offset = min(item.offset, depart_at - 1e-3)
            last_query_offset = max(last_query_offset, offset)
            push(t + offset, "query", (conn_id, item.keywords, item.sha1, item.automated))
        push(t + max(depart_at, last_query_offset + 1e-3), "bye" if not silent else "depart", (conn_id,))

    def _quick_disconnect_duration(self) -> float:
        """Rule-3 quick disconnect durations: 29% of *all* connections end
        under 10 s and 32% within the next 20-25 s, i.e. of the ~70%
        quick connections ~41% are <10 s, ~46% land in 10-35 s, and the
        rest stretch to the 64 s cutoff."""
        u = self._rng.random()
        if u < 0.41:
            return 1.0 + self._rng.random() * 9.0
        if u < 0.87:
            return 10.0 + self._rng.random() * 25.0
        return 35.0 + self._rng.random() * (MIN_SESSION_SECONDS - 35.0 - 1e-3)

    # -- background traffic -------------------------------------------------------

    def _emit_background_samples(self, trace: Trace, start: float, end: float) -> None:
        """The Figure 1/2 all-peers PONG/QUERYHIT samples for the window.

        One vectorized pass: sample times are spread uniformly over the
        shard, regions come from the precomputed per-hour Figure 1 mix
        (one inverse-CDF gather instead of a weight-dict rebuild and
        ``rng.choice`` per sample), library sizes and the QUERYHIT coin
        are batch-drawn, and addresses are allocated through the
        population's public per-region API.  Regions follow the same mix
        as one-hop peers: the paper verifies one-hop peers are
        representative.
        """
        per_hour = self.config.background_samples_per_hour
        if per_hour <= 0 or end <= start:
            return
        rng = self._rng
        gap = 3600.0 / per_hour
        times = np.arange(start + rng.random() * gap, end, gap)
        if times.size == 0:
            return
        from .columnar_engine import _region_mix_stack

        regions, _, _ = geographic_mix_arrays()
        hours = ((times % 86400.0) // 3600.0).astype(np.intp)
        region_idx = _region_mix_stack().sample(rng, hours)
        shared = sample_shared_files_batch(rng, times.size)
        is_hit = rng.random(times.size) < _QUERYHIT_SAMPLE_PROB
        ips: List[Optional[str]] = [None] * times.size
        for index in np.unique(region_idx):
            positions = np.nonzero(region_idx == index)[0]
            for pos, ip in zip(
                positions, self.population.allocate_ips(regions[index], positions.size)
            ):
                ips[pos] = ip
        for i in range(times.size):
            region = regions[region_idx[i]]
            trace.pongs.append(
                PongObservation(
                    timestamp=float(times[i]), ip=ips[i], region=region,
                    shared_files=int(shared[i]), one_hop=False,
                )
            )
            if is_hit[i]:
                trace.queryhits.append(
                    QueryHitObservation(
                        timestamp=float(times[i]), ip=ips[i], region=region, one_hop=False
                    )
                )


def _finalize_counter_dict(
    counters: dict, hop1: int, connections: int, observed_hits: int
) -> None:
    """Table 1 counters: measured quantities plus background ratios.

    Consumes the raw keep-alive totals the shard engines left in
    ``counters`` (summed across shards in shard order) and writes the
    final keys in one fixed insertion order, so every synthesis path --
    event, columnar, sharded-on-disk -- produces an identical dict.
    """
    keepalive_pings = counters.pop(_RAW_PINGS, 0)
    keepalive_pongs = counters.pop(_RAW_PONGS, 0)
    ratios = BACKGROUND_RATIOS
    counters.update(
        {
            "direct_connections": connections,
            "hop1_query_messages": hop1,
            "hop1_queryhits": observed_hits,
            "query_messages": hop1 + int(round(hop1 * ratios["relayed_queries_per_hop1"])),
            "queryhit_messages": observed_hits
            + int(round(hop1 * ratios["queryhits_per_hop1"])),
            "ping_messages": keepalive_pings
            + int(round(connections * ratios["pings_per_connection"])),
            "pong_messages": keepalive_pongs
            + int(round(connections * ratios["pongs_per_connection"])),
            "rejected_connections": counters.get("rejected_connections", 0),
        }
    )


def _finalize_counters(trace: Trace) -> None:
    """Record-trace front end of :func:`_finalize_counter_dict`."""
    observed_hits = sum(q.hits for s in trace.sessions for q in s.queries)
    _finalize_counter_dict(
        trace.counters, trace.hop1_query_count(), trace.n_connections, observed_hits
    )


def _finalize_counters_columnar(trace) -> None:
    """Array form of :func:`_finalize_counters` for a ColumnarTrace."""
    hop1 = trace.n_queries
    observed_hits = int(trace.query_hits.sum()) if hop1 else 0
    _finalize_counter_dict(trace.counters, hop1, trace.n_sessions, observed_hits)


def synthesize_trace(
    days: float = 2.0,
    mean_arrival_rate: float = 0.35,
    seed: int = 20040315,
    **kwargs,
) -> Trace:
    """Convenience wrapper: synthesize a trace with default wiring.

    Extra keyword arguments (``jobs``, ``shard_days``, ``max_slots``,
    ...) forward to :class:`SynthesisConfig`.
    """
    config = SynthesisConfig(days=days, mean_arrival_rate=mean_arrival_rate, seed=seed, **kwargs)
    return TraceSynthesizer(config).run()
