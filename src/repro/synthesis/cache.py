"""Content-addressed trace cache.

Synthesizing a trace is by far the most expensive step of every
experiment run, yet its output is a pure function of the
:class:`~repro.synthesis.synthesizer.SynthesisConfig` (and of the
synthesis code itself).  This module memoizes that function on disk:
traces are serialized — as columnar ``.npz`` archives by default, with
the JSON-lines schema kept for archival interchange — under a key
derived from

* every content-affecting config field (``jobs`` is deliberately
  *excluded* -- the worker count never changes the trace, only the shard
  count does, and the *effective* shard count is part of the key);
* the wiring fingerprint (the default model/universe/population stack;
  custom wiring bypasses the cache entirely);
* a schema/code version stamp, bumped whenever the synthesizer's output
  for a fixed config changes, so stale entries can never be mistaken for
  fresh ones.

The default cache root honours ``REPRO_P2P_CACHE`` and falls back to
``~/.cache/repro-p2p/traces`` (under ``XDG_CACHE_HOME`` when set).
A warm hit replays a multi-minute synthesis in the time it takes to
parse a JSONL file -- the experiment CLI and benchmarks lean on this to
make "run everything again" cheap.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import shutil
import warnings
import zipfile
from pathlib import Path
from typing import Optional, Tuple, Union

from repro import __version__
from repro.measurement import ColumnarTrace, ShardedTrace, Trace

from .synthesizer import SynthesisConfig, TraceSynthesizer, shard_windows

__all__ = [
    "TRACE_CACHE_VERSION",
    "TraceCache",
    "default_cache_dir",
    "load_or_synthesize",
    "load_or_synthesize_columnar",
    "load_or_synthesize_sharded",
    "trace_cache_key",
]

#: Bump whenever synthesis output changes for an unchanged config (new
#: RNG derivation, schema change, distribution fix, ...).  Stamped into
#: every cache key alongside the package version.
#: v2: columnar ``.npz`` became the preferred on-disk entry format.
#: v3: the columnar synthesis backend became the default; it consumes
#: random draws in a different (batched) order than the event engine, so
#: traces for a fixed config changed realization.
TRACE_CACHE_VERSION = 3

#: Fingerprint of the default component wiring (paper WorkloadModel +
#: seed-derived QueryUniverse/PeerPopulation/UserBehavior).  Runs with
#: caller-supplied components are not cacheable under this scheme.
_DEFAULT_WIRING = "paper-default"


def default_cache_dir() -> Path:
    """Resolve the cache root: ``$REPRO_P2P_CACHE`` wins, then
    ``$XDG_CACHE_HOME/repro-p2p/traces``, then ``~/.cache/repro-p2p/traces``."""
    env = os.environ.get("REPRO_P2P_CACHE")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-p2p" / "traces"


def effective_shard_count(config: SynthesisConfig) -> int:
    """Shard count a default-wiring :class:`TraceSynthesizer` will use.

    Mirrors the synthesizer's single-shard fallback for slot-capped
    configs; part of the cache key because the shard count (unlike the
    worker count) determines trace content.
    """
    n = len(shard_windows(config))
    if n > 1 and config.max_slots is not None:
        return 1
    return n


def trace_cache_key(config: SynthesisConfig) -> str:
    """Content hash addressing the trace this config synthesizes.

    Two configs share a key exactly when they are guaranteed to produce
    byte-identical traces under the current code version.
    """
    fields = dataclasses.asdict(config)
    # jobs/shard_days shape *how* the trace is computed; the effective
    # shard count is what decides content.
    fields.pop("jobs", None)
    fields.pop("shard_days", None)
    payload = {
        "config": fields,
        "n_shards": effective_shard_count(config),
        "wiring": _DEFAULT_WIRING,
        "cache_version": TRACE_CACHE_VERSION,
        "package_version": __version__,
    }
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True, default=repr).encode()
    ).hexdigest()
    return digest[:32]


#: Exceptions treated as "corrupt entry" on a cache read: interrupted
#: writes from older non-atomic writers, disk trouble, truncated zips.
_CORRUPT_ENTRY_ERRORS = (
    ValueError, KeyError, TypeError, json.JSONDecodeError, OSError,
    zipfile.BadZipFile,
)


class TraceCache:
    """Directory of content-addressed serialized traces.

    Entries are columnar ``<key>.npz`` archives
    (:meth:`~repro.measurement.columnar.ColumnarTrace.save_npz`) by
    default — a warm read is a handful of array loads instead of a
    per-record JSON parse — or plain ``<key>.jsonl`` files in the trace
    schema of :meth:`~repro.measurement.trace.Trace.to_jsonl` when
    ``format="jsonl"`` is selected (archival interchange; entries double
    as archived traces).  Reads accept either format regardless of the
    configured write format, so switching formats never invalidates a
    warm cache.  Writes go through a temporary file + rename, so readers
    never see partial entries.
    """

    FORMATS = ("npz", "jsonl")

    def __init__(
        self,
        root: Optional[Union[str, Path]] = None,
        format: str = "npz",
    ):
        if format not in self.FORMATS:
            raise ValueError(f"format must be one of {self.FORMATS}, got {format!r}")
        self.root = Path(root) if root is not None else default_cache_dir()
        self.format = format

    def path_for(self, config: SynthesisConfig) -> Path:
        """Where a new entry for ``config`` would be written."""
        return self.root / f"{trace_cache_key(config)}.{self.format}"

    def _candidate_paths(self, config: SynthesisConfig) -> Tuple[Path, ...]:
        """Readable entry paths, preferred format first."""
        key = trace_cache_key(config)
        ordered = (self.format,) + tuple(f for f in self.FORMATS if f != self.format)
        return tuple(self.root / f"{key}.{fmt}" for fmt in ordered)

    def contains(self, config: SynthesisConfig) -> bool:
        return any(path.exists() for path in self._candidate_paths(config))

    def load(self, config: SynthesisConfig) -> Optional[Trace]:
        """The cached trace for ``config``, or None on a miss.

        A corrupt entry (interrupted write from an older, non-atomic
        writer; disk trouble) is treated as a miss and removed.
        """
        for path in self._candidate_paths(config):
            if not path.exists():
                continue
            try:
                if path.suffix == ".npz":
                    return ColumnarTrace.load_npz(path).to_trace()
                return Trace.from_jsonl(path)
            except _CORRUPT_ENTRY_ERRORS:
                try:
                    path.unlink()
                except OSError:  # pragma: no cover - race/permissions
                    pass
        return None

    def load_columnar(self, config: SynthesisConfig) -> Optional[ColumnarTrace]:
        """The cached trace as columns, or None on a miss.

        The fast path for array-based analysis: a warm ``.npz`` entry is
        returned without materializing any dataclass records.  A
        JSONL-only entry is parsed and columnarized.
        """
        for path in self._candidate_paths(config):
            if not path.exists():
                continue
            try:
                if path.suffix == ".npz":
                    return ColumnarTrace.load_npz(path)
                return ColumnarTrace.from_trace(Trace.from_jsonl(path))
            except _CORRUPT_ENTRY_ERRORS:
                try:
                    path.unlink()
                except OSError:  # pragma: no cover - race/permissions
                    pass
        return None

    def store(self, config: SynthesisConfig, trace: Trace) -> Path:
        """Serialize ``trace`` under ``config``'s key; returns the path."""
        path = self.path_for(config)
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            if self.format == "npz":
                ColumnarTrace.from_trace(trace).save_npz(tmp)
            else:
                trace.to_jsonl(tmp)
            os.replace(tmp, path)
        finally:
            if tmp.exists():  # pragma: no cover - only on failed replace
                tmp.unlink()
        return path

    def store_columnar(self, config: SynthesisConfig, trace: ColumnarTrace) -> Path:
        """Serialize an already-columnar ``trace`` under ``config``'s key.

        The zero-copy sibling of :meth:`store`: the columnar synthesis
        backend hands its arrays straight to ``save_npz`` with no
        per-record objects in between.  When the cache is configured for
        JSONL the trace is materialized once for interchange.
        """
        path = self.path_for(config)
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            if self.format == "npz":
                trace.save_npz(tmp)
            else:
                trace.to_trace().to_jsonl(tmp)
            os.replace(tmp, path)
        finally:
            if tmp.exists():  # pragma: no cover - only on failed replace
                tmp.unlink()
        return path

    # -- sharded entries ------------------------------------------------------

    def shards_path_for(self, config: SynthesisConfig) -> Path:
        """Directory a sharded entry for ``config`` lives in."""
        return self.root / f"{trace_cache_key(config)}.shards"

    def load_sharded(self, config: SynthesisConfig) -> Optional[ShardedTrace]:
        """The cached sharded trace for ``config``, or None on a miss.

        A directory without a readable manifest (interrupted writer,
        version skew, disk trouble) is treated as a miss and removed --
        the manifest is written last, so its validity marks the entry
        complete.
        """
        path = self.shards_path_for(config)
        if not path.is_dir():
            return None
        try:
            return ShardedTrace.open(path)
        except _CORRUPT_ENTRY_ERRORS:
            shutil.rmtree(path, ignore_errors=True)
            return None

    def adopt_sharded(self, config: SynthesisConfig, sharded: ShardedTrace) -> ShardedTrace:
        """Copy an existing shard directory in as the entry for ``config``.

        Used to publish an already-synthesized sharded trace (e.g. one
        living in a temporary directory) to a cache that worker processes
        will read.  Copies into a temp sibling then renames, so readers
        never see a partial entry; an entry that appears concurrently
        wins.
        """
        path = self.shards_path_for(config)
        existing = self.load_sharded(config)
        if existing is not None:
            return existing
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = Path(f"{path}.tmp.{os.getpid()}")
        try:
            shutil.copytree(sharded.root, tmp)
            os.replace(tmp, path)
        finally:
            if tmp.exists():  # pragma: no cover - only on failed replace
                shutil.rmtree(tmp, ignore_errors=True)
        return ShardedTrace.open(path)

    def clear(self) -> int:
        """Delete every cache entry (all formats); returns the number removed."""
        if not self.root.exists():
            return 0
        removed = 0
        for fmt in self.FORMATS:
            for entry in sorted(self.root.glob(f"*.{fmt}")):
                entry.unlink()
                removed += 1
        for entry in sorted(self.root.glob("*.shards")):
            if entry.is_dir():
                shutil.rmtree(entry)
                removed += 1
        return removed


def load_or_synthesize(
    config: SynthesisConfig,
    cache: Optional[TraceCache] = None,
    use_cache: bool = True,
) -> Trace:
    """The trace for ``config``: from cache when warm, else synthesized
    (and stored for next time).

    Only default-wiring synthesis is cacheable; callers overriding the
    model/universe/population must call :class:`TraceSynthesizer`
    directly.  ``use_cache=False`` degrades to plain synthesis.
    """
    if not use_cache:
        return TraceSynthesizer(config).run()
    cache = cache or TraceCache()
    trace = cache.load(config)
    if trace is None:
        return load_or_synthesize_columnar(config, cache=cache).to_trace()
    return trace


def load_or_synthesize_columnar(
    config: SynthesisConfig,
    cache: Optional[TraceCache] = None,
    use_cache: bool = True,
) -> ColumnarTrace:
    """The columnar trace for ``config``: warm ``.npz`` entries load as
    plain array bundles, and a cold synthesis on the columnar backend
    feeds the cache without ever materializing per-record objects.
    """
    if not use_cache:
        return TraceSynthesizer(config).run_columnar()
    cache = cache or TraceCache()
    trace = cache.load_columnar(config)
    if trace is None:
        trace = TraceSynthesizer(config).run_columnar()
        try:
            cache.store_columnar(config, trace)
        except OSError as exc:
            # An unwritable cache must not discard a finished synthesis.
            warnings.warn(
                f"could not write trace cache entry ({exc}); continuing uncached",
                RuntimeWarning,
                stacklevel=2,
            )
    return trace


def load_or_synthesize_sharded(
    config: SynthesisConfig,
    cache: Optional[TraceCache] = None,
    use_cache: bool = True,
    workdir: Optional[Union[str, Path]] = None,
) -> ShardedTrace:
    """The sharded on-disk trace for ``config``: opened from cache when
    warm, else synthesized shard by shard *directly into* the cache entry
    (through a temp directory + rename, so concurrent readers never see a
    partial entry).

    Unlike the in-memory loaders a sharded trace always lives on disk
    somewhere; with ``use_cache=False`` the caller must supply the
    ``workdir`` to synthesize into.
    """
    if not use_cache:
        if workdir is None:
            raise ValueError("workdir is required when use_cache=False")
        return TraceSynthesizer(config).run_sharded(Path(workdir))
    cache = cache or TraceCache()
    sharded = cache.load_sharded(config)
    if sharded is not None:
        return sharded
    path = cache.shards_path_for(config)
    tmp = Path(f"{path}.tmp.{os.getpid()}")
    try:
        cache.root.mkdir(parents=True, exist_ok=True)
        TraceSynthesizer(config).run_sharded(tmp)
        os.replace(tmp, path)
    except OSError as exc:
        if workdir is not None:
            warnings.warn(
                f"could not write sharded cache entry ({exc}); "
                f"synthesizing uncached into {workdir}",
                RuntimeWarning,
                stacklevel=2,
            )
            return TraceSynthesizer(config).run_sharded(Path(workdir))
        raise
    finally:
        if tmp.exists():
            shutil.rmtree(tmp, ignore_errors=True)
    return ShardedTrace.open(path)
