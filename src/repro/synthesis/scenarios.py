"""Named synthesis scenarios: reproducible preset scales.

Every consumer (CLI, benchmarks, examples, docs) refers to traces by
scenario name rather than ad-hoc day/rate pairs, so results are
comparable across runs and machines:

* ``smoke``  -- seconds-scale; CI and unit tests.
* ``laptop`` -- the default: one day, distribution-stable, <10 s.
* ``bench``  -- the benchmark scale: two days at a higher rate.
* ``paper``  -- the paper's full 40 days at ~1.26 connections/second
  (~4.5M connections); runs end to end in minutes at ~1 GB peak RSS
  via the streaming pipeline (``repro-p2p experiment all --scenario
  paper --stream``; see ``BENCH_paper_scale.json``).
"""

from __future__ import annotations

import dataclasses
from typing import Dict

from .synthesizer import SynthesisConfig

__all__ = ["SCENARIOS", "scenario_config"]

SCENARIOS: Dict[str, SynthesisConfig] = {
    "smoke": SynthesisConfig(days=0.05, mean_arrival_rate=0.25, seed=20040315),
    "laptop": SynthesisConfig(days=1.0, mean_arrival_rate=0.3, seed=20040315),
    "bench": SynthesisConfig(days=2.0, mean_arrival_rate=0.35, seed=20040315),
    "paper": SynthesisConfig(days=40.0, mean_arrival_rate=1.26, seed=20040315),
}


def scenario_config(name: str, seed: int = None, **overrides) -> SynthesisConfig:
    """Look up a scenario; optionally override the seed or any other
    :class:`SynthesisConfig` field (e.g. ``jobs=4`` for sharded runs)."""
    try:
        base = SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; known: {sorted(SCENARIOS)}"
        ) from None
    if seed is not None:
        overrides["seed"] = seed
    if not overrides:
        return base
    return dataclasses.replace(base, **overrides)
