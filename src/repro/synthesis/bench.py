"""Substrate throughput measurement, shared by benchmarks and smoke tests.

:func:`measure_substrate` times the three performance-critical paths of
the synthesis substrate -- sequential synthesis, sharded synthesis, and
the warm content-addressed cache -- and returns a plain dict of
throughput figures.  The real benchmark suite
(``benchmarks/bench_substrate.py``) runs it at bench scale; the tier-1
smoke test (``tests/test_bench_smoke.py``) runs the same code at
``days=0.05`` so the measurement path itself is exercised on every test
run, and both emit the same ``BENCH_substrate.json`` report shape.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path
from typing import Optional, Sequence, Union

from .cache import TraceCache, load_or_synthesize
from .synthesizer import SynthesisConfig, TraceSynthesizer

__all__ = ["measure_substrate", "write_bench_report"]


def measure_substrate(
    days: float = 0.05,
    mean_arrival_rate: float = 0.3,
    seed: int = 77,
    jobs: Sequence[int] = (1, 2),
    cache_dir: Optional[Union[str, Path]] = None,
) -> dict:
    """Time sequential synthesis, sharded synthesis, and the warm cache.

    Returns a report dict with one entry per measured path:
    ``{"connections": ..., "seconds": ..., "throughput": ...}`` (traces
    per second for the cache entries, connections per second otherwise).
    ``cache_dir=None`` skips the cache measurements.
    """
    report = {
        "scale": {"days": days, "mean_arrival_rate": mean_arrival_rate, "seed": seed},
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
        },
        "runs": {},
    }

    def timed(label, fn):
        t0 = time.perf_counter()
        trace = fn()
        elapsed = time.perf_counter() - t0
        # Each run records its own scale: reports from different windows
        # (smoke vs. bench) must never be read as comparable.
        report["runs"][label] = {
            "days": days,
            "connections": trace.n_connections,
            "seconds": round(elapsed, 4),
            "connections_per_second": round(trace.n_connections / max(elapsed, 1e-9), 1),
        }
        return trace

    for n in jobs:
        config = SynthesisConfig(
            days=days, mean_arrival_rate=mean_arrival_rate, seed=seed, jobs=int(n)
        )
        label = "sequential" if n == 1 else f"sharded_jobs{n}"
        timed(label, TraceSynthesizer(config).run)

    if cache_dir is not None:
        cache = TraceCache(cache_dir)
        config = SynthesisConfig(
            days=days, mean_arrival_rate=mean_arrival_rate, seed=seed
        )
        timed("cache_cold", lambda: load_or_synthesize(config, cache=cache))
        timed("cache_warm", lambda: load_or_synthesize(config, cache=cache))
        cold = report["runs"]["cache_cold"]["seconds"]
        warm = report["runs"]["cache_warm"]["seconds"]
        report["runs"]["cache_warm"]["speedup_vs_cold"] = round(cold / max(warm, 1e-9), 1)

    return report


def write_bench_report(report: dict, path: Union[str, Path]) -> Path:
    """Write a :func:`measure_substrate` report as pretty-printed JSON."""
    path = Path(path)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path
