"""Substrate throughput measurement, shared by benchmarks and smoke tests.

:func:`measure_substrate` times the three performance-critical paths of
the synthesis substrate -- sequential synthesis, sharded synthesis, and
the warm content-addressed cache -- and returns a plain dict of
throughput figures.  The real benchmark suite
(``benchmarks/bench_substrate.py``) runs it at bench scale; the tier-1
smoke test (``tests/test_bench_smoke.py``) runs the same code at
``days=0.05`` so the measurement path itself is exercised on every test
run, and both emit the same ``BENCH_substrate.json`` report shape.
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path
from typing import Optional, Sequence, Union

import numpy as np

from repro.core import host_block, peak_rss_mb
from repro.measurement import ColumnarTrace

from .cache import TraceCache, effective_shard_count, load_or_synthesize
from .synthesizer import SynthesisConfig, TraceSynthesizer

__all__ = ["columnar_ks_checks", "measure_substrate", "write_bench_report"]


def _ks_statistic(a: np.ndarray, b: np.ndarray) -> float:
    """Two-sample Kolmogorov-Smirnov statistic (max CDF gap)."""
    a = np.sort(np.asarray(a, dtype=np.float64))
    b = np.sort(np.asarray(b, dtype=np.float64))
    grid = np.concatenate([a, b])
    grid.sort(kind="stable")
    cdf_a = np.searchsorted(a, grid, side="right") / max(a.size, 1)
    cdf_b = np.searchsorted(b, grid, side="right") / max(b.size, 1)
    return float(np.abs(cdf_a - cdf_b).max()) if grid.size else 0.0


def columnar_ks_checks(
    reference: ColumnarTrace, candidate: ColumnarTrace
) -> dict:
    """Distributional-equivalence report between two trace realizations.

    The columnar synthesis backend consumes random draws in a different
    (batched) order than the event engine, so traces for a fixed seed
    are different *realizations* of the same process.  This compares the
    distributions the paper's tables depend on: session durations and
    queries-per-session (two-sample KS against the asymptotic critical
    value at alpha~0.001, plus a small floor so huge samples are not
    held to sampling noise below modelling fidelity), the Fig. 1 region
    mix (max per-region share gap), and the Table 2 rule proportions
    (share of initial queries each filter rule removes, within 0.08).
    """
    from repro.filtering import apply_filters_columnar

    checks: dict = {}
    n1, n2 = max(reference.n_sessions, 1), max(candidate.n_sessions, 1)
    crit = 1.95 * math.sqrt((n1 + n2) / (n1 * n2)) + 0.02

    for label, ref_vals, cand_vals in (
        (
            "session_duration_ks",
            reference.session_end - reference.session_start,
            candidate.session_end - candidate.session_start,
        ),
        (
            "queries_per_session_ks",
            np.diff(reference.query_offsets),
            np.diff(candidate.query_offsets),
        ),
    ):
        stat = _ks_statistic(ref_vals, cand_vals)
        checks[label] = {
            "statistic": round(stat, 4),
            "critical": round(crit, 4),
            "ok": stat <= crit,
        }

    ref_mix = np.bincount(reference.session_region, minlength=4) / n1
    cand_mix = np.bincount(candidate.session_region, minlength=4) / n2
    gap = float(np.abs(ref_mix - cand_mix).max())
    checks["region_mix_max_gap"] = {
        "statistic": round(gap, 4),
        "critical": 0.05,
        "ok": gap <= 0.05,
    }

    ref_t2 = apply_filters_columnar(reference).report.as_dict()
    cand_t2 = apply_filters_columnar(candidate).report.as_dict()
    rule_checks = {}
    for key in (
        "rule1_removed_queries",
        "rule2_removed_queries",
        "rule3_removed_queries",
        "rule4_removed_queries",
        "rule5_removed_queries",
    ):
        ref_frac = ref_t2[key] / max(ref_t2["initial_queries"], 1)
        cand_frac = cand_t2[key] / max(cand_t2["initial_queries"], 1)
        diff = abs(ref_frac - cand_frac)
        rule_checks[key] = {
            "reference_fraction": round(ref_frac, 4),
            "candidate_fraction": round(cand_frac, 4),
            "abs_diff": round(diff, 4),
            "ok": diff <= 0.08,
        }
    checks["table2_rule_fractions"] = rule_checks

    checks["ok"] = (
        all(c["ok"] for c in rule_checks.values())
        and all(
            checks[k]["ok"]
            for k in ("session_duration_ks", "queries_per_session_ks", "region_mix_max_gap")
        )
    )
    return checks


def measure_substrate(
    days: float = 0.05,
    mean_arrival_rate: float = 0.3,
    seed: int = 77,
    jobs: Sequence[int] = (1, 2),
    cache_dir: Optional[Union[str, Path]] = None,
) -> dict:
    """Time sequential synthesis, sharded synthesis, and the warm cache.

    Returns a report dict with one entry per measured path:
    ``{"connections": ..., "seconds": ..., "throughput": ...}`` (traces
    per second for the cache entries, connections per second otherwise).
    ``cache_dir=None`` skips the cache measurements.

    The ``jobs`` entries run the reference **event** backend (the
    sequential entry is the speedup baseline); ``synth_columnar`` runs
    the vectorized columnar backend at the same scale and records its
    speedup plus a :func:`columnar_ks_checks` equivalence report under
    ``"ks_checks"``.
    """
    report = {
        "scale": {"days": days, "mean_arrival_rate": mean_arrival_rate, "seed": seed},
        "host": host_block(),
        "runs": {},
    }

    def timed(label, fn):
        t0 = time.perf_counter()
        trace = fn()
        elapsed = time.perf_counter() - t0
        # Each run records its own scale: reports from different windows
        # (smoke vs. bench) must never be read as comparable.
        report["runs"][label] = {
            "days": days,
            "connections": trace.n_connections,
            "seconds": round(elapsed, 4),
            "connections_per_second": round(trace.n_connections / max(elapsed, 1e-9), 1),
        }
        return trace

    event_trace = None
    for n in jobs:
        config = SynthesisConfig(
            days=days,
            mean_arrival_rate=mean_arrival_rate,
            seed=seed,
            jobs=int(n),
            backend="event",
        )
        label = "sequential" if n == 1 else f"sharded_jobs{n}"
        trace = timed(label, TraceSynthesizer(config).run)
        if n == 1:
            event_trace = trace

    columnar_config = SynthesisConfig(
        days=days, mean_arrival_rate=mean_arrival_rate, seed=seed
    )
    columnar = timed(
        "synth_columnar", TraceSynthesizer(columnar_config).run_columnar
    )
    if event_trace is not None:
        seq = report["runs"]["sequential"]["seconds"]
        col = report["runs"]["synth_columnar"]["seconds"]
        report["runs"]["synth_columnar"]["speedup_vs_sequential"] = round(
            seq / max(col, 1e-9), 1
        )
        report["ks_checks"] = columnar_ks_checks(
            ColumnarTrace.from_trace(event_trace), columnar
        )

    if cache_dir is not None:
        cache = TraceCache(cache_dir)
        config = SynthesisConfig(
            days=days, mean_arrival_rate=mean_arrival_rate, seed=seed
        )
        timed("cache_cold", lambda: load_or_synthesize(config, cache=cache))
        timed("cache_warm", lambda: load_or_synthesize(config, cache=cache))
        cold = report["runs"]["cache_cold"]["seconds"]
        warm = report["runs"]["cache_warm"]["seconds"]
        report["runs"]["cache_warm"]["speedup_vs_cold"] = round(cold / max(warm, 1e-9), 1)

    # Memory joins speed in the perf trajectory: the high-water RSS over
    # all the runs above, and the shard grid the benched config implies.
    report["host"]["peak_rss_mb"] = round(peak_rss_mb(), 1)
    report["host"]["shard_count"] = effective_shard_count(columnar_config)
    return report


def write_bench_report(report: dict, path: Union[str, Path]) -> Path:
    """Write a :func:`measure_substrate` report as pretty-printed JSON.

    Stamps the determinism-linter ruleset version so an archived CI
    artifact states which invariant battery was enforced when it ran.
    """
    from repro.lint import RULESET_VERSION

    report = {**report, "lint_ruleset": RULESET_VERSION}
    path = Path(path)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path
