"""The Figure 12 synthetic workload generator.

The paper's algorithm (Section 4.7): a system in steady state with ``N``
peers; when a peer finishes a session it is replaced by a new peer.  For
each peer session:

1. select the geographic region with probability conditioned on time of
   day (Fig. 1);
2. decide passive vs. active conditioned on region (Fig. 4);
3. passive: draw the connected session duration (Table A.1);
4. active: draw the number of queries (Table A.2), the time until the
   first query (Table A.3), per-query interarrival times (Table A.4) and
   query identities (Table 3 + Fig. 11), and the time after the last
   query (Table A.5).

The generator streams :class:`~repro.core.events.GeneratedSession`
objects, so arbitrarily long workloads can be produced in constant
memory.
"""

from __future__ import annotations

import heapq
import math
from typing import Iterator, List, Optional

import numpy as np

from .events import GeneratedQuery, GeneratedSession
from .generator_columnar import (
    ColumnarWorkload,
    generate_columnar_workload,
    major_region_cum,
)
from .model import WorkloadModel
from .popularity import QueryUniverse
from .regions import MAJOR_REGIONS, Region, hour_of_day, is_peak_hour

__all__ = ["SyntheticWorkloadGenerator"]

_SECONDS_PER_DAY = 86400.0

#: Supported generation engines.
_BACKENDS = ("event", "columnar")


class SyntheticWorkloadGenerator:
    """Generate synthetic peer sessions per the Figure 12 algorithm.

    Parameters
    ----------
    model:
        The conditional distributions to draw from (defaults to the
        paper's published model).
    universe:
        Query content model for steps (c)(ii)-(iii).  A fresh single-day
        universe is created if omitted.
    n_peers:
        Number of concurrently connected peers held in steady state.
    seed:
        RNG seed; generation is fully deterministic given the seed.
    max_session_seconds:
        Safety cap on a single session's duration.  The heavy lognormal
        tails occasionally produce multi-month sessions; the paper's own
        trace is bounded by the 40-day measurement period, so the default
        cap matches that.
    backend:
        ``"columnar"`` (default) batch-samples whole waves of sessions
        with NumPy (see :mod:`repro.core.generator_columnar`);
        ``"event"`` is the scalar per-session reference engine.  Both
        draw from the same model; a fixed seed gives each backend its
        own deterministic, KS-equivalent realization.
    jobs:
        Worker processes for the columnar backend's shard fan-out
        (capped by :func:`~repro.core.runtime.available_cpus`).  Output
        is byte-identical for any value.
    """

    def __init__(
        self,
        model: Optional[WorkloadModel] = None,
        universe: Optional[QueryUniverse] = None,
        n_peers: int = 200,
        seed: int = 42,
        max_session_seconds: float = 40 * _SECONDS_PER_DAY,
        backend: str = "columnar",
        jobs: int = 1,
    ):
        if n_peers < 1:
            raise ValueError(f"n_peers must be >= 1, got {n_peers}")
        if max_session_seconds <= 0:
            raise ValueError("max_session_seconds must be positive")
        if backend not in _BACKENDS:
            raise ValueError(f"backend must be one of {_BACKENDS}, got {backend!r}")
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.model = model or WorkloadModel.paper()
        self.universe = universe or QueryUniverse()
        self.n_peers = n_peers
        self.max_session_seconds = float(max_session_seconds)
        self.backend = backend
        self.jobs = int(jobs)
        self._seed = seed
        self._rng = np.random.default_rng(seed)
        # Per-hour cumulative region weights (Fig. 1), precomputed once;
        # rebuilding the weight array per session was the hottest line of
        # the scalar path.
        self._region_cum = major_region_cum(self.model)

    # -- single session -----------------------------------------------------

    def generate_session(self, start_time: float) -> GeneratedSession:
        """Generate one peer session starting at ``start_time``."""
        rng = self._rng
        hour = hour_of_day(start_time)
        region = self._choose_region(hour)
        # Step 2: passive vs. active, conditioned on region (and hour).
        if rng.random() < self.model.passive_fraction(region, hour):
            duration = self._bounded(self.model.passive_duration(region, is_peak_hour(region, start_time)).sample(rng))
            return GeneratedSession(region=region, start=start_time, duration=duration, passive=True)
        return self._generate_active(region, start_time)

    def _generate_active(self, region: Region, start_time: float) -> GeneratedSession:
        rng = self._rng
        peak = is_peak_hour(region, start_time)
        # Step 4a: number of queries (ceil of the continuous lognormal).
        n_queries = max(1, int(math.ceil(self.model.queries_per_session(region).sample(rng))))
        # Step 4b: time until the first query.
        t_first = self._bounded(self.model.first_query(region, peak, n_queries).sample(rng))
        offsets: List[float] = [t_first]
        # Step 4c(i): interarrival gaps between successive queries.
        for _ in range(n_queries - 1):
            gap = self._bounded(self.model.interarrival(region, peak, n_queries).sample(rng))
            offsets.append(offsets[-1] + gap)
        # Step 4d: time after the last query.
        t_after = self._bounded(self.model.last_query(region, peak, n_queries).sample(rng))
        duration = min(offsets[-1] + t_after, self.max_session_seconds)
        offsets = [min(o, duration) for o in offsets]
        day = int((start_time + offsets[0]) // _SECONDS_PER_DAY)
        queries: List[GeneratedQuery] = []
        for offset in offsets:
            # Steps 4c(ii)-(iii): query class, then rank within the class.
            sampled = self.universe.sample(rng, day=day, region=region)
            queries.append(
                GeneratedQuery(
                    offset=offset,
                    keywords=sampled.keywords,
                    rank=sampled.rank,
                    query_class=sampled.query_class.value,
                )
            )
        return GeneratedSession(
            region=region, start=start_time, duration=duration, passive=False, queries=queries
        )

    # -- steady-state stream -------------------------------------------------

    def iter_sessions(self, duration_seconds: float, start_time: float = 0.0) -> Iterator[GeneratedSession]:
        """Stream sessions from ``n_peers`` steady-state peer slots.

        Each slot runs sessions back to back (a finished peer is replaced
        immediately, per Section 4.7).  Sessions are yielded in start-time
        order; generation stops once every slot has passed
        ``start_time + duration_seconds``.
        """
        if self.backend == "columnar":
            workload = self.generate_columnar(duration_seconds, start_time)
            yield from workload.iter_sessions()
            return
        if duration_seconds <= 0:
            raise ValueError("duration_seconds must be positive")
        end_time = start_time + duration_seconds
        # (next_session_start, slot_id) priority queue.
        slots = [(start_time, i) for i in range(self.n_peers)]
        heapq.heapify(slots)
        while slots:
            t, slot = heapq.heappop(slots)
            if t >= end_time:
                continue
            session = self.generate_session(t)
            yield session
            heapq.heappush(slots, (session.end, slot))

    def generate(self, duration_seconds: float, start_time: float = 0.0) -> List[GeneratedSession]:
        """Materialize :meth:`iter_sessions` into a list."""
        if self.backend == "columnar":
            return self.generate_columnar(duration_seconds, start_time).to_sessions()
        return list(self.iter_sessions(duration_seconds, start_time))

    def generate_columnar(
        self,
        duration_seconds: float,
        start_time: float = 0.0,
        jobs: Optional[int] = None,
    ) -> ColumnarWorkload:
        """Generate the workload as a :class:`ColumnarWorkload` (no objects).

        Available regardless of ``backend``; always uses the vectorized
        wave engine with this generator's model, universe, and seed.
        """
        return generate_columnar_workload(
            model=self.model,
            universe=self.universe,
            n_peers=self.n_peers,
            seed=self._seed,
            duration_seconds=duration_seconds,
            start_time=start_time,
            max_session_seconds=self.max_session_seconds,
            jobs=self.jobs if jobs is None else jobs,
        )

    # -- helpers ---------------------------------------------------------------

    def _choose_region(self, hour: int) -> Region:
        """Step 1: region choice conditioned on time of day (Fig. 1).

        The OTHER share is folded into the three characterized regions,
        since the paper's model covers only those (Section 4.1); the
        per-hour cumulative weights are precomputed at construction.
        """
        index = int(np.searchsorted(self._region_cum[hour], self._rng.random(), side="right"))
        return MAJOR_REGIONS[min(index, len(MAJOR_REGIONS) - 1)]

    def _bounded(self, value: float) -> float:
        return float(min(max(value, 0.0), self.max_session_seconds))
