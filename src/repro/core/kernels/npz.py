"""``.npz`` round-trip kernels shared by every columnar persistence path.

One writer and one reader for the struct-of-arrays archives (trace
shards, cached traces, generated workloads).  The writer stores members
uncompressed so the reader can hand back zero-copy ``np.memmap`` views
straight into the archive -- ``np.load(..., mmap_mode=...)`` silently
ignores the mmap request for ``.npz``, so the reader walks the zip
layout by hand and maps each stored ``.npy`` member's byte range.
"""

from __future__ import annotations

import zipfile
from pathlib import Path
from typing import Dict, Union

import numpy as np

__all__ = ["save_npz_payload", "load_npz_members"]


def save_npz_payload(path: Union[str, Path], payload: Dict[str, np.ndarray]) -> None:
    """Write named arrays to an uncompressed ``.npz`` archive.

    Member order follows ``payload`` insertion order; callers that hash
    or diff archives rely on that being deterministic.
    """
    # A wide userspace buffer batches the zip member writes (header +
    # chunked array body per member) into few large syscalls.
    with open(path, "wb", buffering=1 << 22) as fh:
        np.savez(fh, **payload)


def load_npz_members(path: Union[str, Path], mmap_mode) -> Dict[str, np.ndarray]:
    """All members of an uncompressed ``.npz``, memory-mapped when possible.

    With a truthy ``mmap_mode`` each member comes back as a read-only
    ``np.memmap`` view into the archive (the zip local-file header gives
    the payload offset, the ``.npy`` header gives dtype/shape).  Any
    archive this cannot map (compressed members, unexpected layout)
    falls back to a whole-file eager load; ``mmap_mode=None`` forces
    the eager load, e.g. before deleting the file.
    """
    if not mmap_mode:
        with np.load(path, allow_pickle=False, mmap_mode=None) as data:
            return {name: data[name] for name in data.files}
    try:
        members: Dict[str, np.ndarray] = {}
        with zipfile.ZipFile(path) as archive, open(path, "rb") as fh:
            for info in archive.infolist():
                if info.compress_type != zipfile.ZIP_STORED:
                    raise ValueError(f"{info.filename}: compressed member")
                fh.seek(info.header_offset)
                local = fh.read(30)
                if len(local) != 30 or local[:4] != b"PK\x03\x04":
                    raise ValueError(f"{info.filename}: bad local file header")
                name_len = int.from_bytes(local[26:28], "little")
                extra_len = int.from_bytes(local[28:30], "little")
                fh.seek(info.header_offset + 30 + name_len + extra_len)
                version = np.lib.format.read_magic(fh)
                if version == (1, 0):
                    shape, fortran, dtype = np.lib.format.read_array_header_1_0(fh)
                elif version == (2, 0):
                    shape, fortran, dtype = np.lib.format.read_array_header_2_0(fh)
                else:
                    raise ValueError(f"{info.filename}: npy format v{version}")
                if dtype.hasobject:
                    raise ValueError(f"{info.filename}: object dtype")
                name = info.filename[:-4] if info.filename.endswith(".npy") else info.filename
                if np.prod(shape, dtype=np.int64) == 0:
                    # mmap cannot map zero bytes; an empty array is free.
                    members[name] = np.empty(shape, dtype=dtype)
                else:
                    members[name] = np.memmap(
                        path, dtype=dtype, mode=mmap_mode, offset=fh.tell(),
                        shape=shape, order="F" if fortran else "C",
                    )
        return members
    except (ValueError, KeyError, OSError, zipfile.BadZipFile):
        with np.load(path, allow_pickle=False, mmap_mode=None) as data:
            return {name: data[name] for name in data.files}
