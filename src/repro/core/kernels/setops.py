"""Sorted-set membership kernels.

The batched overlay engine (:mod:`repro.gnutella.columnar_overlay`)
replaces per-node GUID routing tables and Python ``set`` membership with
flat sorted key arrays: duplicate-query suppression, visited-frontier
checks, and CSR edge-set churn all reduce to probes and merges over
sorted unique int64 keys.  These wrappers dispatch through the active
:class:`~.backend.ArrayBackend` like every other kernel, so a backend
that accelerates binary search accelerates the overlay engine too.

Contract: *haystack* inputs (and both operands of the merge/diff forms)
must be sorted and duplicate-free; outputs preserve that invariant.
"""

from __future__ import annotations

import numpy as np

from .backend import active_backend

__all__ = [
    "sorted_lookup",
    "isin_sorted",
    "merge_unique",
    "setdiff_sorted",
]


def sorted_lookup(haystack: np.ndarray, values: np.ndarray):
    """Membership mask + positions of ``values`` in sorted unique ``haystack``.

    Returns ``(mask, idx)``; ``idx[i]`` is only meaningful where
    ``mask[i]`` is True.
    """
    return active_backend().sorted_lookup(haystack, values)


def isin_sorted(haystack: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Boolean membership of ``values`` in a sorted unique ``haystack``."""
    mask, _ = active_backend().sorted_lookup(haystack, values)
    return mask


def merge_unique(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Sorted-unique union of two sorted unique arrays."""
    return active_backend().merge_unique(a, b)


def setdiff_sorted(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elements of sorted unique ``a`` that are absent from sorted ``b``."""
    return active_backend().setdiff_sorted(a, b)
