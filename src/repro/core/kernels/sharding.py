"""Shard planning, per-shard RNG streams, and worker-pool fan-out.

Shard layout is part of output identity: a run is byte-reproducible for
a fixed (config, seed, shard plan), and worker counts must never leak
into results.  These kernels centralize the three pieces every engine
needs to honor that contract:

* deterministic shard plans (:func:`shard_sizes`, :func:`time_windows`);
* independent per-shard RNG streams spawned from one root seed
  (:func:`spawn_shard_streams`);
* order-preserving process-pool dispatch (:func:`pool_map`,
  :func:`pool_map_windowed`) with the worker count capped at the CPUs
  actually available (:func:`resolve_workers`), falling back to a
  serial loop where a pool could only lose.
"""

from __future__ import annotations

import itertools
import math
import multiprocessing
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..runtime import available_cpus

__all__ = [
    "shard_sizes",
    "time_windows",
    "spawn_shard_streams",
    "resolve_workers",
    "pool_map",
    "pool_map_windowed",
]


def shard_sizes(total: int, n_shards: int) -> List[int]:
    """Split ``total`` items into ``n_shards`` near-equal deterministic sizes.

    The first ``total % n_shards`` shards get one extra item -- the
    fixed plan the generator's slot grid is defined by.
    """
    base, rem = divmod(int(total), int(n_shards))
    return [base + (1 if i < rem else 0) for i in range(int(n_shards))]


def time_windows(end: float, n_shards: int) -> List[Tuple[float, float]]:
    """Equal-width ``[start, end)`` windows covering ``[0, end)``."""
    bounds = np.linspace(0.0, float(end), int(n_shards) + 1)
    return [(float(bounds[i]), float(bounds[i + 1])) for i in range(int(n_shards))]


def spawn_shard_streams(
    seed: int,
    n_shards: int,
    index: Optional[int] = None,
    substreams: Optional[int] = None,
):
    """Per-shard RNG seed material spawned from one root seed.

    Spawns ``SeedSequence(seed)`` into one child per shard -- streams
    are statistically independent and stable against the worker count.
    ``index=None`` returns the full list of shard sequences; an integer
    ``index`` returns that shard's sequence, or -- with ``substreams`` --
    its first ``substreams`` children (e.g. the synthesis engine's
    population/behavior/arrivals/engine quadruple).
    """
    children = np.random.SeedSequence(seed).spawn(int(n_shards))
    if index is None:
        if substreams is not None:
            raise ValueError("substreams requires an explicit shard index")
        return children
    child = children[index]
    if substreams is None:
        return child
    return child.spawn(int(substreams))


def resolve_workers(jobs: int, n_tasks: int) -> int:
    """Process count for a shard fan-out: never more than the tasks or
    the CPUs this process may actually run on (a pool on fewer cores
    than workers loses to the serial loop it replaces)."""
    return min(int(jobs), int(n_tasks), available_cpus())


def _fork_context():
    """Fork where available (spawn re-imports numpy/scipy per worker,
    costing seconds); the platform default elsewhere."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def pool_map(fn: Callable, tasks: Sequence, workers: int) -> List:
    """Run ``fn`` over ``tasks`` preserving task order.

    Serial when ``workers <= 1`` -- identical results either way; the
    pool only changes wall-clock.
    """
    if workers <= 1:
        return [fn(task) for task in tasks]
    with ProcessPoolExecutor(max_workers=workers, mp_context=_fork_context()) as pool:
        return list(pool.map(fn, tasks))


def pool_map_windowed(
    fn: Callable, tasks: Iterable, workers: int, consume: Callable
) -> None:
    """Bounded in-flight pool: at most ``workers + 1`` results buffered.

    Feeds each completed result to ``consume`` *in task order* -- the
    out-of-core writer's contract -- without ever submitting the whole
    task list (which would buffer every completed shard in the pool and
    defeat the RSS budget).  Serial loop when ``workers <= 1``.
    """
    if workers <= 1:
        for task in tasks:
            consume(fn(task))
        return
    with ProcessPoolExecutor(max_workers=workers, mp_context=_fork_context()) as pool:
        task_iter = iter(tasks)
        pending = deque(
            pool.submit(fn, task)
            for task in itertools.islice(task_iter, workers + 1)
        )
        while pending:
            result = pending.popleft().result()
            nxt = next(task_iter, None)
            if nxt is not None:
                pending.append(pool.submit(fn, nxt))
            consume(result)
