"""repro.core.kernels: the shared array-engine layer.

Every columnar engine in this repository -- trace synthesis
(:mod:`repro.synthesis.columnar_engine`), the Figure 12 workload
generator (:mod:`repro.core.generator_columnar`), and the vectorized
filter rules (:mod:`repro.filtering.columnar`) -- is built from the
same handful of array idioms: segmented (ragged/CSR) arithmetic,
batched categorical draws against cumulative tables, batch distribution
sampling, fixed shard planning with ``SeedSequence``-spawned RNG
streams, worker-pool fan-out, and ``.npz`` round trips.  This package
is the single home for those kernels; the engines import from here and
the KER601 lint rule forbids re-implementing the raw idioms in engine
modules.

The kernels dispatch through a pluggable :class:`~.backend.ArrayBackend`
(NumPy reference implementation by default; see :mod:`.backend` for the
contract an accelerated backend must satisfy).  Byte-identical output
across backends, shard counts, and worker counts is part of the
contract -- the equivalence battery in ``tests/test_kernels.py``
enforces it.

See ``docs/KERNELS.md`` for the kernel inventory and backend guide.
"""

from __future__ import annotations

from .backend import (
    ArrayBackend,
    NumpyBackend,
    StubBackend,
    active_backend,
    available_backends,
    get_backend,
    register_backend,
    use_backend,
)
from .npz import load_npz_members, save_npz_payload
from .sampling import (
    CategoricalTable,
    CategoricalTableStack,
    distribution_sample_n,
    searchsorted_left,
)
from .segmented import (
    group_slices,
    segment_ids,
    segmented_arange,
    segmented_cumsum,
    segmented_offsets_base,
    segmented_offsets_scatter,
)
from .setops import (
    isin_sorted,
    merge_unique,
    setdiff_sorted,
    sorted_lookup,
)
from .sharding import (
    pool_map,
    pool_map_windowed,
    resolve_workers,
    shard_sizes,
    spawn_shard_streams,
    time_windows,
)

__all__ = [
    # backend
    "ArrayBackend", "NumpyBackend", "StubBackend", "active_backend",
    "available_backends", "get_backend", "register_backend", "use_backend",
    # segmented
    "group_slices", "segment_ids", "segmented_arange", "segmented_cumsum",
    "segmented_offsets_base", "segmented_offsets_scatter",
    # sampling
    "CategoricalTable", "CategoricalTableStack", "distribution_sample_n",
    "searchsorted_left",
    # setops
    "isin_sorted", "merge_unique", "setdiff_sorted", "sorted_lookup",
    # sharding
    "pool_map", "pool_map_windowed", "resolve_workers", "shard_sizes",
    "spawn_shard_streams", "time_windows",
    # npz
    "load_npz_members", "save_npz_payload",
]
