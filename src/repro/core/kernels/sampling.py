"""Batched categorical draws and batch distribution sampling.

The engines draw categories by inverting cumulative tables::

    np.searchsorted(cdf, u, side="left")          # flat CDF
    (u[:, None] > cum[rows]).sum(axis=1)          # per-row (per-hour) CDFs

Both count ``#{cdf values < u}``.  :class:`CategoricalTable` replaces
the O(log K) / O(n*K) inversion with an O(1) precomputed bucket table
-- the alias-table idea adapted to be **bit-exact**: a classic Walker
alias table consumes randomness differently (and maps uniforms to
categories through a different partition), which would change the RNG
stream contract the traces are defined by.  Instead we bucket the unit
interval into ``M = 2**k`` equal cells and precompute, per cell, the
searchsorted answer on each side of the (at most one) CDF value that
falls inside it.  Because ``u * M`` and the cell boundaries ``b / M``
are exact in IEEE-754 for power-of-two ``M``, the lookup

    b = floor(u * M);  where(u <= cut[b], low[b], high[b])

returns exactly ``searchsorted(cdf, u, side="left")`` for every float
``u`` in ``[0, 1)`` -- including ties, duplicate CDF entries, and the
out-of-range tail.  The golden test pins this equivalence draw-by-draw.

Construction doubles ``M`` until no cell holds two distinct CDF values;
CDFs too dense for the cap (e.g. many-thousand-rank Zipf tails with
sub-2^-18 gaps) fall back to calling ``searchsorted`` directly, so the
table is always safe to build.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .backend import active_backend

__all__ = [
    "CategoricalTable",
    "CategoricalTableStack",
    "distribution_sample_n",
    "searchsorted_left",
]

#: Cells in the smallest table; keeps tiny CDFs (region mixes, class
#: tables) cheap to build while already separating well-spaced values.
_MIN_BUCKETS = 64
#: Cap on table size: 2**18 cells = 2 MiB per int64 column.  Denser
#: CDFs use the searchsorted fallback.
_MAX_BUCKETS = 1 << 18


def searchsorted_left(cdf: np.ndarray, u: np.ndarray) -> np.ndarray:
    """The reference inversion: ``#{cdf values < u}`` per element."""
    return np.searchsorted(cdf, u, side="left")


def _plan_buckets(cdf: np.ndarray) -> Optional[int]:
    """Smallest power-of-two M giving <= 1 distinct CDF value per cell.

    Only values in ``[0, 1)`` matter: draws are uniforms in ``[0, 1)``,
    so a CDF entry >= 1.0 can never satisfy ``value < u`` and entries
    < 0 cannot occur in a CDF.  Returns None when the cap is exceeded.
    """
    inside = np.unique(cdf[(cdf >= 0.0) & (cdf < 1.0)])
    m = _MIN_BUCKETS
    while m <= _MAX_BUCKETS:
        cells = (inside * m).astype(np.int64)
        if inside.size < 2 or np.all(np.diff(cells) > 0):
            return m
        m <<= 1
    return None


def _build_columns(cdf: np.ndarray, m: int):
    """(low, high, cut) columns for an M-cell table over one CDF."""
    boundaries = np.arange(m, dtype=np.float64) / m
    low = np.searchsorted(cdf, boundaries, side="left").astype(np.int64)
    high = low.copy()
    cut = np.ones(m, dtype=np.float64)
    inside = np.unique(cdf[(cdf >= 0.0) & (cdf < 1.0)])
    if inside.size:
        cells = (inside * m).astype(np.intp)
        cut[cells] = inside
        high[cells] = np.searchsorted(cdf, inside, side="right")
    return low, high, cut


class CategoricalTable:
    """Precomputed O(1) replacement for ``searchsorted(cdf, u, 'left')``."""

    __slots__ = ("cdf", "_m", "_low", "_high", "_cut")

    def __init__(self, cdf: np.ndarray):
        self.cdf = np.ascontiguousarray(cdf, dtype=np.float64)
        m = _plan_buckets(self.cdf)
        self._m = m
        if m is None:  # too dense: keep the reference inversion
            self._low = self._high = self._cut = None
        else:
            self._low, self._high, self._cut = _build_columns(self.cdf, m)

    @property
    def uses_fallback(self) -> bool:
        """True when the CDF was too dense and lookups call searchsorted."""
        return self._m is None

    def lookup(self, u: np.ndarray) -> np.ndarray:
        """``searchsorted(cdf, u, side='left')`` for uniforms in [0, 1)."""
        u = np.asarray(u, dtype=np.float64)
        if self._m is None:
            return np.searchsorted(self.cdf, u, side="left")
        return active_backend().categorical_lookup(
            u, self._m, self._low, self._high, self._cut
        )

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` categories, consuming exactly ``rng.random(n)``."""
        return self.lookup(rng.random(int(n)))


class CategoricalTableStack:
    """Per-row categorical tables sharing one bucket grid.

    Replaces the broadcast idiom ``(u[:, None] > cum[rows]).sum(axis=1)``
    over a (R, K) matrix of row CDFs (e.g. the 24 per-hour region
    mixes) with one gather per draw.  Bit-exact for the same reason as
    :class:`CategoricalTable`; rows too dense for the cap fall back to
    the broadcast form.
    """

    __slots__ = ("cum", "_m", "_low", "_high", "_cut")

    def __init__(self, cum: np.ndarray):
        self.cum = np.ascontiguousarray(cum, dtype=np.float64)
        if self.cum.ndim != 2:
            raise ValueError(f"expected a (rows, K) CDF matrix, got {self.cum.shape}")
        m = 0
        for row in self.cum:
            row_m = _plan_buckets(row)
            if row_m is None:
                m = None
                break
            m = max(m, row_m)
        self._m = m
        if m is None:
            self._low = self._high = self._cut = None
            return
        rows = [_build_columns(row, m) for row in self.cum]
        self._low = np.stack([r[0] for r in rows])
        self._high = np.stack([r[1] for r in rows])
        self._cut = np.stack([r[2] for r in rows])

    @property
    def uses_fallback(self) -> bool:
        return self._m is None

    def lookup(self, rows: np.ndarray, u: np.ndarray) -> np.ndarray:
        """Per-element inversion of row ``rows[i]`` at uniform ``u[i]``."""
        u = np.asarray(u, dtype=np.float64)
        rows = np.asarray(rows)
        if self._m is None:
            return (u[:, None] > self.cum[rows]).sum(axis=1)
        return active_backend().categorical_lookup_rows(
            rows, u, self._m, self._low, self._high, self._cut
        )

    def sample(
        self, rng: np.random.Generator, rows: np.ndarray
    ) -> np.ndarray:
        """One draw per row index, consuming ``rng.random(len(rows))``."""
        return self.lookup(rows, rng.random(len(rows)))


def distribution_sample_n(dist, rng: np.random.Generator, n: int) -> np.ndarray:
    """Batch inverse-transform sampling for a model distribution.

    The single RNG-consumption point for continuous model draws:
    ``n`` uniforms through the distribution's ``ppf``, returned as a
    flat float64 array.  :meth:`repro.core.distributions.Distribution.sample_n`
    delegates here.
    """
    return np.asarray(dist.ppf(rng.random(int(n))), dtype=np.float64).reshape(-1)
