"""Segmented (ragged/CSR) kernels.

The columnar engines carry flat arrays with one element per query,
grouped into variable-length per-session segments described by a
``counts`` vector.  These kernels are the primitives everything else is
built from; each dispatches through the active
:class:`~.backend.ArrayBackend` (see :mod:`.backend` for the reference
semantics, which define the byte-identity contract).
"""

from __future__ import annotations

import numpy as np

from .backend import active_backend

__all__ = [
    "segmented_arange",
    "segmented_cumsum",
    "segment_ids",
    "segmented_offsets_scatter",
    "segmented_offsets_base",
    "group_slices",
]


def segmented_arange(counts: np.ndarray) -> np.ndarray:
    """``[0..counts[0]), [0..counts[1]), ...`` as one flat int64 array."""
    return active_backend().segmented_arange(counts)


def segmented_cumsum(values: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Per-segment cumulative sum of ``values`` (inclusive).

    ``values`` is flat segment-major data; segment ``i`` owns the next
    ``counts[i]`` elements.  Equivalent to ``np.cumsum`` applied to each
    segment independently.
    """
    return active_backend().segmented_cumsum(values, counts)


def segment_ids(counts: np.ndarray) -> np.ndarray:
    """Owning segment index for every flat element."""
    return active_backend().segment_ids(counts)


def segmented_offsets_scatter(
    first: np.ndarray, gaps: np.ndarray, counts: np.ndarray
) -> np.ndarray:
    """Fused first/gap draws -> inclusive offsets (scatter-first order).

    Element ``j`` of segment ``i`` is ``cumsum([first[i], gaps...])[j]``.
    ``first`` has one element per segment; ``gaps`` has one element per
    flat non-head position, in segment-major order.
    """
    return active_backend().segmented_offsets_scatter(first, gaps, counts)


def group_slices(codes: np.ndarray):
    """Stable grouping of flat rows by integer code.

    Returns ``(order, keys, bounds)``; group ``k`` owns positions
    ``order[bounds[k]:bounds[k+1]]``, positions ascending within each
    group and ``keys`` ascending overall -- the iteration order the
    engines' RNG consumption contract is defined by.
    """
    return active_backend().group_slices(codes)


def segmented_offsets_base(
    first: np.ndarray, gaps: np.ndarray, counts: np.ndarray
) -> np.ndarray:
    """Fused offsets in base-plus-gaps order: ``first[i] + cumsum([0, gaps...])``.

    Same mathematical value as :func:`segmented_offsets_scatter` but a
    different float summation order; kept separate because each
    engine's historical rounding is part of its output identity.
    """
    return active_backend().segmented_offsets_base(first, gaps, counts)
