"""Pluggable array backend for the kernel layer.

The contract is deliberately *kernel-grained*, not ufunc-grained: a
backend implements (or inherits) whole kernels -- segmented arange and
cumsum, categorical-table lookup, fused offset assembly -- rather than
shadowing every NumPy primitive.  That keeps the dispatch surface small
enough that a numba-jitted or GPU backend can accelerate exactly the
kernels it cares about and inherit the NumPy reference for the rest,
while the engines above stay backend-agnostic.

Backend rules:

* Inputs and outputs are plain ``numpy.ndarray`` objects at the
  boundary (an accelerated backend may use device arrays internally but
  must hand back host arrays with identical dtype, shape, and bytes).
* Every kernel must be **byte-identical** to the NumPy reference for
  the same inputs.  The engines' reproducibility claims (fixed seed +
  shard layout => identical trace) are defined against the reference
  semantics; a backend that changes summation order or rounding is not
  a valid backend.  ``tests/test_kernels.py`` runs the equivalence
  battery over every registered backend.
* RNG draws stay in ``numpy.random.Generator`` on the host -- stream
  order is part of trace identity and never delegated to a backend.

Selection: :func:`active_backend` returns the process-wide default
(the ``numpy`` reference unless ``REPRO_KERNELS_BACKEND`` says
otherwise at import time, or :func:`use_backend` overrides it).  The
``stub`` backend is a registered alternate that inherits every
reference kernel unchanged -- it exists so tests and CI can exercise
the dispatch path itself and prove that backend switching cannot
change results.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Type

import numpy as np

__all__ = [
    "ArrayBackend",
    "NumpyBackend",
    "StubBackend",
    "register_backend",
    "get_backend",
    "available_backends",
    "active_backend",
    "use_backend",
]


_REGISTRY: Dict[str, "ArrayBackend"] = {}


def register_backend(cls: Type["ArrayBackend"]) -> Type["ArrayBackend"]:
    """Class decorator: instantiate and register a backend by its name."""
    instance = cls()
    name = instance.name
    if not name:
        raise ValueError(f"backend {cls.__name__} must define a non-empty name")
    _REGISTRY[name] = instance
    return cls


def get_backend(name: str) -> "ArrayBackend":
    """Look up a registered backend by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown kernels backend {name!r} (registered: {known})")


def available_backends() -> List[str]:
    """Names of every registered backend, sorted."""
    return sorted(_REGISTRY)


class ArrayBackend:
    """Base class and NumPy reference implementation of every kernel.

    Subclasses override :attr:`name` and whichever kernels they
    accelerate; anything not overridden inherits the reference.
    """

    #: Registry key; also stamped into benchmark host blocks.
    name = ""

    # -- segmented (ragged) kernels ------------------------------------

    def segmented_arange(self, counts: np.ndarray) -> np.ndarray:
        """``[0..counts[0]), [0..counts[1]), ...`` as one flat int64 array."""
        counts = np.asarray(counts, dtype=np.int64)
        total = int(counts.sum())
        if total == 0:
            return np.zeros(0, dtype=np.int64)
        ends = np.cumsum(counts)
        starts = ends - counts
        return np.arange(total, dtype=np.int64) - np.repeat(starts, counts)

    def segmented_cumsum(self, values: np.ndarray, counts: np.ndarray) -> np.ndarray:
        """Per-segment inclusive cumulative sum of flat segment-major data."""
        values = np.asarray(values, dtype=np.float64)
        counts = np.asarray(counts, dtype=np.int64)
        if values.size == 0:
            return np.zeros(0, dtype=np.float64)
        running = np.cumsum(values)
        ends = np.cumsum(counts)
        starts = ends - counts
        base = np.where(starts > 0, running[starts - 1], 0.0)
        return running - np.repeat(base, counts)

    def segment_ids(self, counts: np.ndarray) -> np.ndarray:
        """Segment index of every flat element: ``[0]*counts[0] + [1]*counts[1] ...``."""
        counts = np.asarray(counts, dtype=np.int64)
        return np.repeat(np.arange(counts.size, dtype=np.int64), counts)

    def segmented_offsets_scatter(
        self, first: np.ndarray, gaps: np.ndarray, counts: np.ndarray
    ) -> np.ndarray:
        """Fused draw->scatter->cumsum offsets, *scatter-first* form.

        One preallocated buffer holds ``first[i]`` at each segment head
        and the inter-element ``gaps`` elsewhere; a single segmented
        cumsum turns it into inclusive offsets.  Float summation order
        is ``cumsum([first, g1, g2, ...])`` -- the user-model planner's
        historical order, preserved bit-for-bit.
        """
        counts = np.asarray(counts, dtype=np.int64)
        total = int(counts.sum())
        vals = np.zeros(total, dtype=np.float64)
        is_first = self.segmented_arange(counts) == 0
        vals[is_first] = first
        vals[~is_first] = gaps
        return self.segmented_cumsum(vals, counts)

    def segmented_offsets_base(
        self, first: np.ndarray, gaps: np.ndarray, counts: np.ndarray
    ) -> np.ndarray:
        """Fused offsets, *base-plus-gaps* form.

        ``repeat(first, counts) + cumsum([0, g1, g2, ...])`` -- the
        generator wave engine's historical order.  Numerically this is
        ``first + (g1 + g2)`` where the scatter form computes
        ``((first + g1) + g2)``; both are kept because each engine's
        float rounding is part of its output identity.
        """
        counts = np.asarray(counts, dtype=np.int64)
        total = int(counts.sum())
        vals = np.zeros(total, dtype=np.float64)
        vals[self.segmented_arange(counts) > 0] = gaps
        return np.repeat(first, counts) + self.segmented_cumsum(vals, counts)

    def group_slices(self, codes: np.ndarray):
        """Sort flat rows by integer group code and slice per group.

        Returns ``(order, keys, bounds)``: ``order`` is a stable
        position permutation grouping equal codes, ``keys`` the sorted
        distinct codes, and group ``k`` owns positions
        ``order[bounds[k]:bounds[k+1]]`` (ascending within each group).
        Replaces the O(groups * n) boolean-mask-per-key idiom with one
        O(n log n) pass; visiting groups in ``keys`` order preserves the
        engines' ascending-key RNG consumption contract.
        """
        codes = np.asarray(codes)
        order = np.argsort(codes, kind="stable")
        if codes.size == 0:
            return order, codes[:0], np.zeros(1, dtype=np.int64)
        sorted_codes = codes[order]
        # The argsort already grouped equal codes; boundaries fall out of
        # one linear inequality pass instead of a second sort (np.unique).
        change = np.nonzero(sorted_codes[1:] != sorted_codes[:-1])[0] + 1
        bounds = np.empty(change.size + 2, dtype=np.int64)
        bounds[0] = 0
        bounds[1:-1] = change
        bounds[-1] = codes.size
        keys = sorted_codes[bounds[:-1]]
        return order, keys, bounds

    # -- sorted-set membership kernels ---------------------------------

    def sorted_lookup(self, haystack: np.ndarray, values: np.ndarray):
        """Membership + position of ``values`` in a sorted unique ``haystack``.

        Returns ``(mask, idx)``: ``mask[i]`` is True when ``values[i]``
        occurs in ``haystack`` and ``idx[i]`` is then its position;
        where ``mask`` is False the position is meaningless (clipped).
        This is the duplicate-suppression primitive of the batched
        overlay engine: GUID/visited-set checks become one vectorized
        probe against a sorted key array instead of a Python set.
        """
        haystack = np.asarray(haystack)
        values = np.asarray(values)
        if haystack.size == 0:
            return (
                np.zeros(values.shape, dtype=bool),
                np.zeros(values.shape, dtype=np.int64),
            )
        pos = np.searchsorted(haystack, values, side="left")
        idx = np.minimum(pos, haystack.size - 1).astype(np.int64)
        mask = haystack[idx] == values
        return mask, idx

    def merge_unique(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Sorted-unique union of two sorted unique arrays."""
        a = np.asarray(a)
        b = np.asarray(b)
        if a.size == 0:
            return b.copy()
        if b.size == 0:
            return a.copy()
        merged = np.concatenate([a, b])
        merged.sort(kind="stable")
        keep = np.empty(merged.size, dtype=bool)
        keep[0] = True
        np.not_equal(merged[1:], merged[:-1], out=keep[1:])
        return merged[keep]

    def setdiff_sorted(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Elements of sorted unique ``a`` absent from sorted unique ``b``."""
        mask, _ = self.sorted_lookup(b, a)
        return np.asarray(a)[~mask]

    # -- categorical lookup --------------------------------------------

    def categorical_lookup(
        self,
        u: np.ndarray,
        n_buckets: int,
        low: np.ndarray,
        high: np.ndarray,
        cut: np.ndarray,
    ) -> np.ndarray:
        """O(1) bucketed inverse-CDF lookup (see :class:`.sampling.CategoricalTable`)."""
        b = (u * n_buckets).astype(np.intp)
        return np.where(u <= cut[b], low[b], high[b])

    def categorical_lookup_rows(
        self,
        rows: np.ndarray,
        u: np.ndarray,
        n_buckets: int,
        low: np.ndarray,
        high: np.ndarray,
        cut: np.ndarray,
    ) -> np.ndarray:
        """Row-indexed variant over stacked per-row tables (shape (R, M))."""
        b = (u * n_buckets).astype(np.intp)
        return np.where(u <= cut[rows, b], low[rows, b], high[rows, b])


@register_backend
class NumpyBackend(ArrayBackend):
    """The pure-NumPy reference backend (the default)."""

    name = "numpy"


@register_backend
class StubBackend(NumpyBackend):
    """Alternate backend inheriting every reference kernel unchanged.

    Exists to exercise the dispatch machinery: CI runs the equivalence
    battery against it to prove that switching backends cannot change
    engine output.  It is also the template for a real accelerated
    backend -- subclass, rename, override hot kernels.
    """

    name = "stub"


_active: ArrayBackend = get_backend(os.environ.get("REPRO_KERNELS_BACKEND", "numpy"))


def active_backend() -> ArrayBackend:
    """The process-wide backend every kernel call dispatches through."""
    return _active


class use_backend:
    """Select the active backend, usable as a call or a context manager::

        use_backend("stub")            # switch for the rest of the process
        with use_backend("stub"):      # switch for a scope
            ...
    """

    def __init__(self, name: str):
        global _active
        self._previous = _active
        _active = get_backend(name)

    def __enter__(self) -> ArrayBackend:
        return _active

    def __exit__(self, *exc) -> None:
        global _active
        _active = self._previous
