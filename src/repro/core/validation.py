"""Statistical validation utilities: comparing distributions rigorously.

The per-figure experiments compare anchor points; this module provides
the heavier machinery used by the closed-loop validation and available
to downstream users who want to check their own workloads against the
model:

* :func:`ks_two_sample` -- two-sample Kolmogorov-Smirnov test;
* :func:`quantile_report` -- side-by-side quantiles of two samples;
* :func:`ccdf_max_gap` -- largest vertical gap between two empirical
  CCDFs, evaluated on the union of their supports;
* :func:`compare_models` -- one-line verdicts ("close" / "divergent")
  given a tolerance, for batch validation runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = [
    "KsResult",
    "ks_two_sample",
    "quantile_report",
    "ccdf_max_gap",
    "ComparisonVerdict",
    "compare_models",
]


@dataclass(frozen=True)
class KsResult:
    """Outcome of a two-sample KS test."""

    statistic: float
    pvalue: float
    n_a: int
    n_b: int

    def rejects_at(self, alpha: float = 0.01) -> bool:
        """Whether equality of distributions is rejected at level alpha."""
        return self.pvalue < alpha


def ks_two_sample(a: Sequence[float], b: Sequence[float]) -> KsResult:
    """Two-sample KS test (scipy implementation, asymptotic p-value)."""
    from scipy.stats import ks_2samp

    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.size < 2 or b.size < 2:
        raise ValueError(f"need >= 2 samples per side, got {a.size} and {b.size}")
    result = ks_2samp(a, b, method="asymp")
    return KsResult(
        statistic=float(result.statistic),
        pvalue=float(result.pvalue),
        n_a=int(a.size),
        n_b=int(b.size),
    )


def quantile_report(
    a: Sequence[float],
    b: Sequence[float],
    quantiles: Sequence[float] = (0.1, 0.25, 0.5, 0.75, 0.9, 0.99),
) -> List[Dict[str, float]]:
    """Side-by-side quantiles with the log-ratio between the samples.

    A |log10 ratio| under ~0.15 (factor 1.4) at every quantile is the
    practical "same shape" bar used by the closed-loop benchmark.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.size == 0 or b.size == 0:
        raise ValueError("both samples must be non-empty")
    rows = []
    for q in quantiles:
        qa = float(np.quantile(a, q))
        qb = float(np.quantile(b, q))
        if qa > 0 and qb > 0:
            log_ratio = float(np.log10(qa / qb))
        else:
            log_ratio = float("nan")
        rows.append({"quantile": q, "a": qa, "b": qb, "log10_ratio": log_ratio})
    return rows


def ccdf_max_gap(a: Sequence[float], b: Sequence[float]) -> float:
    """Largest |CCDF_a(x) - CCDF_b(x)| over the union of sample points.

    Identical to the two-sample KS statistic, exposed separately because
    the experiments report it as the "curve gap" even when the sample
    sizes make the KS p-value uninformatively tiny.
    """
    a = np.sort(np.asarray(a, dtype=float))
    b = np.sort(np.asarray(b, dtype=float))
    if a.size == 0 or b.size == 0:
        raise ValueError("both samples must be non-empty")
    support = np.union1d(a, b)
    ccdf_a = 1.0 - np.searchsorted(a, support, side="right") / a.size
    ccdf_b = 1.0 - np.searchsorted(b, support, side="right") / b.size
    return float(np.max(np.abs(ccdf_a - ccdf_b)))


@dataclass(frozen=True)
class ComparisonVerdict:
    """Summary verdict of a model/sample comparison."""

    name: str
    max_gap: float
    close: bool

    def __str__(self) -> str:
        status = "close" if self.close else "DIVERGENT"
        return f"{self.name}: max CCDF gap {self.max_gap:.3f} ({status})"


def compare_models(
    samples: Dict[str, Tuple[Sequence[float], Sequence[float]]],
    tolerance: float = 0.10,
) -> List[ComparisonVerdict]:
    """Batch-compare (sample_a, sample_b) pairs by max CCDF gap."""
    if not 0.0 < tolerance < 1.0:
        raise ValueError("tolerance must be in (0, 1)")
    verdicts = []
    for name, (a, b) in samples.items():
        gap = ccdf_max_gap(a, b)
        verdicts.append(ComparisonVerdict(name=name, max_gap=gap, close=gap <= tolerance))
    return verdicts
