"""Generator throughput measurement, shared by benchmarks and smoke tests.

:func:`measure_generator` times the Figure 12 generator's two engines --
the scalar event backend and the vectorized columnar backend -- at a set
of ``n_peers`` scales and returns a plain dict of sessions/second and
queries/second figures, a jobs-invariance check (the columnar output
must be byte-identical for any worker count), and a
:func:`generator_ks_checks` distributional-equivalence report.  The real
benchmark suite (``benchmarks/bench_generator.py``) runs it at bench
scale and emits ``BENCH_generator.json``; the tier-1 smoke test runs the
same code at toy scale.
"""

from __future__ import annotations

import math
import time
from typing import Sequence

import numpy as np

from .generator import SyntheticWorkloadGenerator
from .generator_columnar import SLOTS_PER_SHARD, ColumnarWorkload
from .runtime import available_cpus, host_block, peak_rss_mb

__all__ = ["generator_ks_checks", "measure_generator"]


def _ks_statistic(a: np.ndarray, b: np.ndarray) -> float:
    """Two-sample Kolmogorov-Smirnov statistic (max CDF gap)."""
    a = np.sort(np.asarray(a, dtype=np.float64))
    b = np.sort(np.asarray(b, dtype=np.float64))
    grid = np.concatenate([a, b])
    grid.sort(kind="stable")
    cdf_a = np.searchsorted(a, grid, side="right") / max(a.size, 1)
    cdf_b = np.searchsorted(b, grid, side="right") / max(b.size, 1)
    return float(np.abs(cdf_a - cdf_b).max()) if grid.size else 0.0


def _interarrival_gaps(workload: ColumnarWorkload) -> np.ndarray:
    """All within-session query interarrival gaps, one flat array."""
    if workload.n_queries < 2:
        return np.empty(0, dtype=np.float64)
    same = np.diff(workload.query_session) == 0
    return np.diff(workload.query_offset)[same]


def _first_last_gaps(workload: ColumnarWorkload):
    """(time to first query, time after last query) per session with queries."""
    counts = workload.query_counts()
    has_queries = counts > 0
    index = workload.query_index()
    first = workload.query_offset[index[:-1][has_queries]]
    last = workload.query_offset[index[1:][has_queries] - 1]
    after = workload.session_duration[has_queries] - last
    return first, after


def generator_ks_checks(
    reference: ColumnarWorkload, candidate: ColumnarWorkload
) -> dict:
    """Distributional-equivalence report between two workload realizations.

    The columnar backend consumes random draws in a different (batched)
    order than the event engine, so workloads for a fixed seed are
    different *realizations* of the same steady-state process.  This
    compares the distributions the Figure 12 recipe is built from:
    session duration, queries per active session, query interarrival
    time, time to first query, time after the last query (two-sample KS
    against the asymptotic critical value at alpha~0.001 plus a small
    modelling-fidelity floor), and the Fig. 1 region mix per hour of day
    (max per-region share gap over hours both sides sampled well).
    """
    checks: dict = {}

    def ks_entry(label, ref_vals, cand_vals):
        n1, n2 = max(len(ref_vals), 1), max(len(cand_vals), 1)
        crit = 1.95 * math.sqrt((n1 + n2) / (n1 * n2)) + 0.02
        stat = _ks_statistic(ref_vals, cand_vals)
        checks[label] = {
            "statistic": round(stat, 4),
            "critical": round(crit, 4),
            "ok": stat <= crit,
        }

    ks_entry(
        "session_duration_ks", reference.session_duration, candidate.session_duration
    )
    ks_entry(
        "queries_per_session_ks",
        reference.query_counts()[~reference.session_passive],
        candidate.query_counts()[~candidate.session_passive],
    )
    ks_entry(
        "interarrival_ks", _interarrival_gaps(reference), _interarrival_gaps(candidate)
    )
    ref_first, ref_after = _first_last_gaps(reference)
    cand_first, cand_after = _first_last_gaps(candidate)
    ks_entry("first_query_gap_ks", ref_first, cand_first)
    ks_entry("last_query_gap_ks", ref_after, cand_after)

    # Fig. 1: the region mix is conditioned on the hour of day; compare
    # per-region shares hour by hour wherever both sides have enough
    # sessions for the share to be meaningful.  Each hour gets its own
    # sample-size-dependent critical value (same asymptotic form as the
    # KS entries); the reported statistic is the worst gap/critical
    # ratio, so ok means every hour passed its own bound.
    def hourly_shares(workload):
        hours = ((workload.session_start % 86400.0) // 3600.0).astype(np.intp)
        table = np.zeros((24, 4), dtype=np.float64)
        totals = np.zeros(24, dtype=np.int64)
        for hour in range(24):
            mask = hours == hour
            totals[hour] = int(mask.sum())
            if totals[hour]:
                table[hour] = np.bincount(
                    workload.session_region[mask], minlength=4
                ) / totals[hour]
        return table, totals

    ref_table, ref_totals = hourly_shares(reference)
    cand_table, cand_totals = hourly_shares(candidate)
    usable = (ref_totals >= 30) & (cand_totals >= 30)
    worst_ratio = 0.0
    for hour in np.nonzero(usable)[0]:
        n1, n2 = int(ref_totals[hour]), int(cand_totals[hour])
        crit = 1.95 * math.sqrt((n1 + n2) / (n1 * n2)) + 0.02
        gap = float(np.abs(ref_table[hour] - cand_table[hour]).max())
        worst_ratio = max(worst_ratio, gap / crit)
    checks["region_mix_by_hour_worst_ratio"] = {
        "statistic": round(worst_ratio, 4),
        "critical": 1.0,
        "hours_compared": int(usable.sum()),
        "ok": worst_ratio <= 1.0,
    }

    checks["ok"] = all(
        entry["ok"] for name, entry in checks.items() if isinstance(entry, dict)
    )
    return checks


def measure_generator(
    n_peers: Sequence[int] = (200, 10_000),
    hours: float = 1.0,
    seed: int = 77,
    jobs: int = 1,
    ks_n_peers: int = 300,
    ks_hours: float = 12.0,
) -> dict:
    """Time the event vs. columnar generator backends at each scale.

    Returns a report dict with one ``event_n{N}`` / ``columnar_n{N}``
    entry per scale (sessions and queries per second of wall time, the
    columnar entries with ``speedup_vs_event``), a ``jobs_identical``
    flag (columnar output at the largest scale, ``jobs=1`` vs.
    ``jobs=max(2, jobs)``, must be byte-identical), and a
    :func:`generator_ks_checks` equivalence report under ``ks_checks``.
    """
    report = {
        "scale": {
            "n_peers": list(n_peers),
            "hours": hours,
            "seed": seed,
            "effective_jobs": min(int(jobs), available_cpus()),
        },
        "host": host_block(),
        "runs": {},
    }
    duration = hours * 3600.0

    for n in n_peers:
        event_gen = SyntheticWorkloadGenerator(n_peers=n, seed=seed, backend="event")
        t0 = time.perf_counter()
        event_workload = ColumnarWorkload.from_sessions(
            event_gen.iter_sessions(duration)
        )
        event_seconds = time.perf_counter() - t0

        columnar_gen = SyntheticWorkloadGenerator(n_peers=n, seed=seed, jobs=jobs)
        t0 = time.perf_counter()
        columnar_workload = columnar_gen.generate_columnar(duration)
        columnar_seconds = time.perf_counter() - t0

        for label, workload, seconds in (
            (f"event_n{n}", event_workload, event_seconds),
            (f"columnar_n{n}", columnar_workload, columnar_seconds),
        ):
            report["runs"][label] = {
                "n_peers": n,
                "hours": hours,
                "sessions": workload.n_sessions,
                "queries": workload.n_queries,
                "seconds": round(seconds, 4),
                "sessions_per_second": round(
                    workload.n_sessions / max(seconds, 1e-9), 1
                ),
                "queries_per_second": round(
                    workload.n_queries / max(seconds, 1e-9), 1
                ),
            }
        report["runs"][f"columnar_n{n}"]["speedup_vs_event"] = round(
            event_seconds / max(columnar_seconds, 1e-9), 1
        )

    # Byte-identical output regardless of the worker count: the shard
    # grid depends only on n_peers, never on jobs.
    check_n = max(n_peers)
    check_gen = SyntheticWorkloadGenerator(n_peers=check_n, seed=seed)
    check_hours = min(hours, 0.5)
    serial = check_gen.generate_columnar(check_hours * 3600.0, jobs=1)
    pooled = check_gen.generate_columnar(check_hours * 3600.0, jobs=max(2, jobs))
    report["jobs_identical"] = serial.equals(pooled)

    # Distributional equivalence at a scale with enough sessions per
    # hour-of-day bucket to make the Fig. 1 mix comparison meaningful.
    ks_duration = ks_hours * 3600.0
    ks_event = ColumnarWorkload.from_sessions(
        SyntheticWorkloadGenerator(
            n_peers=ks_n_peers, seed=seed + 1, backend="event"
        ).iter_sessions(ks_duration)
    )
    ks_columnar = SyntheticWorkloadGenerator(
        n_peers=ks_n_peers, seed=seed + 1, jobs=jobs
    ).generate_columnar(ks_duration)
    report["ks_checks"] = generator_ks_checks(ks_event, ks_columnar)
    # Memory joins speed in the perf trajectory: the high-water RSS over
    # all the runs above, and the slot-shard grid at the largest scale.
    report["host"]["peak_rss_mb"] = round(peak_rss_mb(), 1)
    report["host"]["shard_count"] = max(
        1, math.ceil(max(n_peers) / SLOTS_PER_SHARD)
    )
    return report
