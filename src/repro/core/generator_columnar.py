"""Vectorized columnar backend for the Figure 12 workload generator.

The event backend (:class:`~repro.core.generator.SyntheticWorkloadGenerator`
with ``backend="event"``) walks a heap of per-slot Python tuples and
draws every random quantity with a scalar ``sample()`` call.  This
module generates the *same steady-state model* -- region choice by the
Fig. 1 per-hour mix, the passive/active split, query counts, first-query
/ interarrival / last-query offsets, and query identities -- as whole
NumPy batches, emitting a :class:`ColumnarWorkload` struct-of-arrays
with no per-session or per-query Python objects.

Wave algorithm
--------------

A steady-state system of ``n_peers`` slots replaces each finished
session immediately (Section 4.7).  Instead of a priority queue popping
one slot at a time, generation proceeds in *waves*: every wave samples
one full session for every slot still inside the window, advances all
slot clocks by the sampled durations in one vectorized step, and drops
slots whose clocks passed the window end.  The number of waves equals
the longest per-slot session chain; every wave is a handful of batched
RNG draws grouped by the model's conditioning keys, visited in fixed
(region, peak, class) order so output is deterministic for a seed.

Sharding
--------

Large ``n_peers`` runs split the slots into fixed-size shards of
:data:`SLOTS_PER_SHARD`; each shard draws from its own
``SeedSequence(seed).spawn(n_shards)[index]`` stream and is generated
independently (possibly in a worker-process pool capped by
:func:`~repro.core.runtime.available_cpus`).  The shard count depends
only on ``n_peers`` -- never on the worker count -- so output is
byte-identical regardless of ``jobs``.  Workers never touch the query
universe: they emit ``(class, rank, day)`` integer codes via a
:class:`~repro.core.popularity.ClassRankSampler` snapshot, and the
parent resolves codes to strings once, after the merge, in sorted
(day, class) order.

Equivalence contract
--------------------

Every random quantity is drawn from the same distribution as the event
backend, but batched draws consume the stream in a different order, so
a fixed seed yields a different, equally-distributed realization.  The
test suite holds the two backends to KS equivalence on session
durations, queries per session, interarrival times, first/last-query
gaps, and the per-hour region mix (see docs/METHODOLOGY.md section 8).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from .events import GeneratedQuery, GeneratedSession
from .kernels import (
    CategoricalTableStack,
    group_slices,
    pool_map,
    resolve_workers,
    segmented_cumsum,
    segmented_offsets_base,
    shard_sizes,
    spawn_shard_streams,
)
from .model import (
    WorkloadModel,
    first_query_class_codes,
    interarrival_class_codes,
    last_query_class_codes,
)
from .popularity import CLASS_ORDER, ClassRankSampler, QueryUniverse
from .regions import MAJOR_REGIONS, PEAK_HOURS, Region

__all__ = [
    "SLOTS_PER_SHARD",
    "WORKLOAD_REGION_ORDER",
    "WORKLOAD_REGION_CODE",
    "ColumnarWorkload",
    "GeneratorTables",
    "generate_columnar_workload",
    "major_region_cum",
]

_SECONDS_PER_DAY = 86400.0

#: Slots per generation shard.  Fixed (never derived from the worker
#: count) so a workload is byte-identical for any ``jobs`` value; small
#: enough that a 10k-peer run fans out across several cores.
SLOTS_PER_SHARD = 2048

#: Region <-> small-integer code table for the session column.  The
#: generator itself only emits the three characterized regions, but the
#: round-trip constructors accept OTHER so any session list columnarizes.
WORKLOAD_REGION_ORDER: Tuple[Region, ...] = MAJOR_REGIONS + (Region.OTHER,)
WORKLOAD_REGION_CODE: Dict[Region, int] = {
    r: i for i, r in enumerate(WORKLOAD_REGION_ORDER)
}

_CLASS_VALUE_CODE: Dict[str, int] = {c.value: i for i, c in enumerate(CLASS_ORDER)}

#: (region code, hour) -> peak flag, from the static Section 4.2 periods.
_PEAK_TABLE = np.array(
    [[h in PEAK_HOURS[r] for h in range(24)] for r in MAJOR_REGIONS], dtype=bool
)


def major_region_cum(model: WorkloadModel) -> np.ndarray:
    """Per-hour cumulative weights over the three characterized regions.

    The OTHER share is folded into the major regions by normalization,
    exactly as the scalar ``_choose_region`` did per session (Section
    4.1); rebuilding the weight dict per draw was the generator's
    hottest line.  ``searchsorted(cum[hour], u)`` yields a region index.
    """
    weights = np.empty((24, len(MAJOR_REGIONS)), dtype=np.float64)
    for hour in range(24):
        mix = model.geographic_mix(hour)
        weights[hour] = [mix[r] for r in MAJOR_REGIONS]
    weights /= weights.sum(axis=1, keepdims=True, dtype=np.float64)
    cum = np.cumsum(weights, axis=1, dtype=np.float64)
    cum[:, -1] = 1.0
    return cum


@dataclass
class GeneratorTables:
    """Picklable snapshot of everything a generation shard samples from.

    Distribution objects (not the model's factory callables) plus the
    precomputed per-hour tables, so shards work for fitted models whose
    factories are unpicklable closures.  Grid keys use integer codes --
    see :meth:`WorkloadModel.conditional_grid`.
    """

    region_cum: np.ndarray                    # (24, 3) cumulative Fig. 1 mix
    passive_prob: np.ndarray                  # (3, 24) Fig. 4 passive fraction
    peak: np.ndarray                          # (3, 24) peak-hour flags
    queries_per_session: dict                 # region -> Distribution
    passive_duration: dict                    # (region, peak) -> Distribution
    first_query: dict                         # (region, peak, class) -> Distribution
    interarrival: dict
    last_query: dict
    sampler: ClassRankSampler
    #: O(1) per-hour region draw table over ``region_cum`` (built lazily
    #: so unpickled snapshots from older callers keep working).
    region_table: Optional[CategoricalTableStack] = field(default=None, repr=False)

    def region_stack(self) -> CategoricalTableStack:
        if self.region_table is None:
            self.region_table = CategoricalTableStack(self.region_cum)
        return self.region_table

    @classmethod
    def from_model(
        cls, model: WorkloadModel, universe: QueryUniverse
    ) -> "GeneratorTables":
        grid = model.conditional_grid()
        passive_prob = np.empty((len(MAJOR_REGIONS), 24), dtype=np.float64)
        for code, region in enumerate(MAJOR_REGIONS):
            for hour in range(24):
                passive_prob[code, hour] = model.passive_fraction(region, hour)
        region_cum = major_region_cum(model)
        return cls(
            region_cum=region_cum,
            passive_prob=passive_prob,
            peak=_PEAK_TABLE.copy(),
            queries_per_session=grid["queries_per_session"],
            passive_duration=grid["passive_duration"],
            first_query=grid["first_query"],
            interarrival=grid["interarrival"],
            last_query=grid["last_query"],
            sampler=universe.batch_sampler(),
            region_table=CategoricalTableStack(region_cum),
        )


# ---------------------------------------------------------------------------
# The columnar session/query table
# ---------------------------------------------------------------------------


@dataclass(eq=False)
class ColumnarWorkload:
    """A generated workload as a struct-of-arrays (session + query table).

    Sessions are sorted by start time; queries are grouped contiguously
    per session (``query_session`` is nondecreasing) and time-sorted
    within each group, mirroring the event backend's yield order.  The
    representation round-trips losslessly to
    :class:`~repro.core.events.GeneratedSession` objects and to ``.npz``
    files via :mod:`repro.core.workload_io`.
    """

    session_region: np.ndarray     # int8, WORKLOAD_REGION_ORDER codes
    session_start: np.ndarray      # float64, seconds since trace epoch
    session_duration: np.ndarray   # float64, seconds
    session_passive: np.ndarray    # bool
    query_session: np.ndarray      # int64, row index into the session table
    query_offset: np.ndarray       # float64, seconds since session start
    query_rank: np.ndarray         # int64, 1-based rank within the class
    query_class: np.ndarray        # int8, CLASS_ORDER codes
    query_keywords: np.ndarray     # unicode

    ARRAY_FIELDS = (
        "session_region", "session_start", "session_duration", "session_passive",
        "query_session", "query_offset", "query_rank", "query_class",
        "query_keywords",
    )

    @property
    def n_sessions(self) -> int:
        return int(self.session_start.size)

    @property
    def n_queries(self) -> int:
        return int(self.query_offset.size)

    def query_counts(self) -> np.ndarray:
        """Queries per session (aligned with the session table)."""
        return np.bincount(self.query_session, minlength=self.n_sessions).astype(
            np.int64
        )

    def query_index(self) -> np.ndarray:
        """Prefix offsets: session ``i`` owns query rows ``[idx[i], idx[i+1])``."""
        index = np.zeros(self.n_sessions + 1, dtype=np.int64)
        np.cumsum(self.query_counts(), out=index[1:])
        return index

    def validate(self) -> "ColumnarWorkload":
        """Check the structural invariants; returns ``self`` for chaining."""
        n, q = self.n_sessions, self.n_queries
        for name in ("session_region", "session_duration", "session_passive"):
            if getattr(self, name).size != n:
                raise ValueError(f"{name} has {getattr(self, name).size} rows, expected {n}")
        for name in ("query_offset", "query_rank", "query_class", "query_keywords"):
            if getattr(self, name).size != q:
                raise ValueError(f"{name} has {getattr(self, name).size} rows, expected {q}")
        if q:
            if self.query_session.min() < 0 or self.query_session.max() >= n:
                raise ValueError("query_session indexes outside the session table")
            if (np.diff(self.query_session) < 0).any():
                raise ValueError("query rows must be grouped by session")
            if self.query_offset.min() < 0 or self.query_rank.min() < 1:
                raise ValueError("query offsets must be >= 0 and ranks >= 1")
            if self.query_class.min() < 0 or self.query_class.max() >= len(CLASS_ORDER):
                raise ValueError("query_class codes out of range")
            if self.session_passive[self.query_session].any():
                raise ValueError("passive sessions must not carry queries")
        if n and self.session_duration.min() < 0:
            raise ValueError("session durations must be non-negative")
        return self

    def equals(self, other: "ColumnarWorkload") -> bool:
        """Exact (byte-level) equality of all columns."""
        return all(
            np.array_equal(getattr(self, name), getattr(other, name))
            for name in self.ARRAY_FIELDS
        )

    # -- round trip to record objects ---------------------------------------

    def iter_sessions(self) -> Iterator[GeneratedSession]:
        """Yield :class:`GeneratedSession` objects one at a time."""
        index = self.query_index()
        for i in range(self.n_sessions):
            lo, hi = int(index[i]), int(index[i + 1])
            queries = [
                GeneratedQuery(
                    offset=float(self.query_offset[j]),
                    keywords=str(self.query_keywords[j]),
                    rank=int(self.query_rank[j]),
                    query_class=CLASS_ORDER[int(self.query_class[j])].value,
                )
                for j in range(lo, hi)
            ]
            yield GeneratedSession(
                region=WORKLOAD_REGION_ORDER[int(self.session_region[i])],
                start=float(self.session_start[i]),
                duration=float(self.session_duration[i]),
                passive=bool(self.session_passive[i]),
                queries=queries,
            )

    def to_sessions(self) -> List[GeneratedSession]:
        """Materialize :meth:`iter_sessions` into a list."""
        return list(self.iter_sessions())

    @classmethod
    def from_sessions(cls, sessions) -> "ColumnarWorkload":
        """Columnarize an iterable of :class:`GeneratedSession` objects."""
        sessions = list(sessions)
        n = len(sessions)
        region = np.empty(n, dtype=np.int8)
        start = np.empty(n, dtype=np.float64)
        duration = np.empty(n, dtype=np.float64)
        passive = np.empty(n, dtype=bool)
        q_sess: List[int] = []
        q_off: List[float] = []
        q_rank: List[int] = []
        q_cls: List[int] = []
        q_kw: List[str] = []
        for i, session in enumerate(sessions):
            code = WORKLOAD_REGION_CODE.get(session.region)
            if code is None:
                raise ValueError(f"unknown region {session.region!r}")
            region[i] = code
            start[i] = session.start
            duration[i] = session.duration
            passive[i] = session.passive
            for query in session.queries:
                cls_code = _CLASS_VALUE_CODE.get(query.query_class)
                if cls_code is None:
                    raise ValueError(f"unknown query class {query.query_class!r}")
                q_sess.append(i)
                q_off.append(query.offset)
                q_rank.append(query.rank)
                q_cls.append(cls_code)
                q_kw.append(query.keywords)
        width = max([1] + [len(k) for k in q_kw])
        return cls(
            session_region=region,
            session_start=start,
            session_duration=duration,
            session_passive=passive,
            query_session=np.asarray(q_sess, dtype=np.int64),
            query_offset=np.asarray(q_off, dtype=np.float64),
            query_rank=np.asarray(q_rank, dtype=np.int64),
            query_class=np.asarray(q_cls, dtype=np.int8),
            query_keywords=np.asarray(q_kw, dtype=f"U{width}"),
        ).validate()


# ---------------------------------------------------------------------------
# Shard engine (wave algorithm)
# ---------------------------------------------------------------------------


def _draw_grouped(rng, table, keys, size: int, cap: float) -> np.ndarray:
    """Bulk draws from ``table[(region, peak, class)]`` per encoded key.

    ``keys`` encodes ``(region * 2 + peak) * 3 + class``; groups are
    visited in ascending key order (the :func:`group_slices` contract)
    so RNG consumption is deterministic.  Samples are clamped to
    ``[0, cap]`` like the scalar ``_bounded``.
    """
    out = np.empty(size, dtype=np.float64)
    order, group_keys, bounds = group_slices(keys)
    for g in range(group_keys.size):
        key = int(group_keys[g])
        idx = order[bounds[g]:bounds[g + 1]]
        rc, rem = divmod(key, 6)
        pk, ci = divmod(rem, 3)
        draws = table[rc, bool(pk), ci].sample_n(rng, idx.size)
        out[idx] = np.clip(draws, 0.0, cap)
    return out


def _generate_shard(
    tables: GeneratorTables,
    n_slots: int,
    start_time: float,
    end_time: float,
    cap: float,
    seed_seq: np.random.SeedSequence,
) -> dict:
    """Run the wave algorithm for one shard of peer slots.

    Returns flat column arrays; query identities stay integer codes
    (class, rank, day) for the parent to resolve after the merge.
    """
    rng = np.random.default_rng(seed_seq)
    clocks = np.full(n_slots, float(start_time), dtype=np.float64)
    alive = np.arange(n_slots, dtype=np.int64)

    s_cols: List[Tuple[np.ndarray, ...]] = []
    q_cols: List[Tuple[np.ndarray, ...]] = []
    emitted = 0

    while alive.size:
        starts = clocks[alive]
        n = alive.size
        hours = ((starts % _SECONDS_PER_DAY) // 3600.0).astype(np.intp)

        # Step 1: region, conditioned on time of day (Fig. 1).
        region = tables.region_stack().sample(rng, hours)
        region = np.minimum(region, len(MAJOR_REGIONS) - 1).astype(np.int8)
        peak = tables.peak[region, hours]

        # Step 2: passive vs. active, conditioned on region and hour.
        passive = rng.random(n) < tables.passive_prob[region, hours]
        durations = np.empty(n, dtype=np.float64)

        # Step 3: passive connected-session durations (Table A.1).
        pas = np.nonzero(passive)[0]
        if pas.size:
            order, keys, bounds = group_slices(region[pas] * 2 + peak[pas])
            for g in range(keys.size):
                rc, pk = divmod(int(keys[g]), 2)
                idx = pas[order[bounds[g]:bounds[g + 1]]]
                draws = tables.passive_duration[rc, bool(pk)].sample_n(rng, idx.size)
                durations[idx] = np.clip(draws, 0.0, cap)

        # Step 4: active sessions -- counts, offsets, identities.
        act = np.nonzero(~passive)[0]
        if act.size:
            r_act = region[act].astype(np.int64)
            pk_act = peak[act].astype(np.int64)

            # 4a: number of queries (ceil of the continuous lognormal).
            nq = np.empty(act.size, dtype=np.int64)
            order, keys, bounds = group_slices(r_act)
            for g in range(keys.size):
                idx = order[bounds[g]:bounds[g + 1]]
                draws = tables.queries_per_session[int(keys[g])].sample_n(rng, idx.size)
                nq[idx] = np.maximum(1, np.ceil(draws)).astype(np.int64)

            base_key = (r_act * 2 + pk_act) * 3
            # 4b: time until the first query.
            t_first = _draw_grouped(
                rng, tables.first_query, base_key + first_query_class_codes(nq),
                act.size, cap,
            )
            # 4c(i): interarrival gaps, flat over all sessions' queries.
            gap_counts = nq - 1
            total_gaps = int(gap_counts.sum())
            if total_gaps:
                gap_keys = np.repeat(
                    base_key + interarrival_class_codes(nq), gap_counts
                )
                gaps = _draw_grouped(
                    rng, tables.interarrival, gap_keys, total_gaps, cap
                )
            else:
                gaps = np.zeros(0, dtype=np.float64)
            # 4d: time after the last query.
            t_after = _draw_grouped(
                rng, tables.last_query, base_key + last_query_class_codes(nq),
                act.size, cap,
            )

            gap_cum = segmented_cumsum(gaps, gap_counts)
            last_off = t_first.copy()
            has_gaps = gap_counts > 0
            if has_gaps.any():
                ends = np.cumsum(gap_counts)
                last_off[has_gaps] = t_first[has_gaps] + gap_cum[ends[has_gaps] - 1]
            dur_act = np.minimum(last_off + t_after, cap)
            durations[act] = dur_act

            # Flat query rows: offset = first + per-session gap cumsum,
            # clamped to the session duration like the event path.
            offs = segmented_offsets_base(t_first, gaps, nq)
            offs = np.minimum(offs, np.repeat(dur_act, nq))

            # 4c(ii)-(iii): class and rank codes; the sample day is the
            # day the (clamped) first query lands on, as in the event path.
            day = (
                (starts[act] + np.minimum(t_first, dur_act)) // _SECONDS_PER_DAY
            ).astype(np.int64)
            q_region = np.repeat(r_act, nq).astype(np.int8)
            cls_codes, ranks = tables.sampler.sample(rng, q_region)

            q_cols.append((
                emitted + np.repeat(act, nq),
                offs,
                cls_codes,
                ranks,
                np.repeat(day, nq),
            ))

        s_cols.append((region, starts, durations, passive))
        emitted += n
        clocks[alive] = starts + durations
        alive = alive[clocks[alive] < end_time]

    region, starts, durations, passive = (
        np.concatenate(cols) for cols in zip(*s_cols)
    )
    if q_cols:
        q_sess, q_off, q_cls, q_rank, q_day = (
            np.concatenate(cols) for cols in zip(*q_cols)
        )
    else:  # pragma: no cover - an all-passive wave sequence
        q_sess = np.empty(0, dtype=np.int64)
        q_off = np.empty(0, dtype=np.float64)
        q_cls = np.empty(0, dtype=np.int8)
        q_rank = np.empty(0, dtype=np.int64)
        q_day = np.empty(0, dtype=np.int64)
    return {
        "region": region, "start": starts, "duration": durations,
        "passive": passive, "q_sess": q_sess, "q_off": q_off,
        "q_cls": q_cls, "q_rank": q_rank, "q_day": q_day,
    }


def _shard_task(task) -> dict:
    return _generate_shard(*task)


# ---------------------------------------------------------------------------
# Fan-out, merge, and string resolution
# ---------------------------------------------------------------------------


def _resolve_keywords(
    universe: QueryUniverse,
    q_cls: np.ndarray,
    q_rank: np.ndarray,
    q_day: np.ndarray,
) -> np.ndarray:
    """Resolve (class, rank, day) codes to query strings per group.

    Groups are visited in sorted (day, class) order, so the universe's
    lazily built rankings are consumed canonically regardless of how
    the codes were produced (or across how many workers).
    """
    if q_cls.size == 0:
        return np.empty(0, dtype="U1")
    order, keys, bounds = group_slices(q_day * len(CLASS_ORDER) + q_cls)
    rankings = [
        universe.ranking_array(
            int(key) // len(CLASS_ORDER), CLASS_ORDER[int(key) % len(CLASS_ORDER)]
        )
        for key in keys
    ]
    width = max(a.dtype.itemsize // 4 for a in rankings)
    out = np.empty(q_cls.size, dtype=f"U{width}")
    for g, ranking in enumerate(rankings):
        idx = order[bounds[g]:bounds[g + 1]]
        out[idx] = ranking[np.minimum(q_rank[idx], ranking.size) - 1]
    return out


def generate_columnar_workload(
    model: WorkloadModel,
    universe: QueryUniverse,
    n_peers: int,
    seed: int,
    duration_seconds: float,
    start_time: float = 0.0,
    max_session_seconds: float = 40 * _SECONDS_PER_DAY,
    jobs: int = 1,
) -> ColumnarWorkload:
    """Generate a steady-state workload as a :class:`ColumnarWorkload`.

    Stateless: the same arguments always produce the same workload,
    byte for byte, independent of ``jobs`` (which only sizes the worker
    pool over the fixed :data:`SLOTS_PER_SHARD` shard grid).
    """
    if duration_seconds <= 0:
        raise ValueError("duration_seconds must be positive")
    if n_peers < 1:
        raise ValueError(f"n_peers must be >= 1, got {n_peers}")
    tables = GeneratorTables.from_model(model, universe)
    n_shards = max(1, math.ceil(n_peers / SLOTS_PER_SHARD))
    slot_counts = shard_sizes(n_peers, n_shards)
    seeds = spawn_shard_streams(seed, n_shards)
    end_time = start_time + duration_seconds
    cap = float(max_session_seconds)
    tasks = [
        (tables, slot_counts[i], float(start_time), end_time, cap, seeds[i])
        for i in range(n_shards)
    ]
    parts = pool_map(_shard_task, tasks, resolve_workers(jobs, n_shards))

    session_base = np.cumsum([0] + [p["start"].size for p in parts])
    region = np.concatenate([p["region"] for p in parts])
    start = np.concatenate([p["start"] for p in parts])
    duration = np.concatenate([p["duration"] for p in parts])
    passive = np.concatenate([p["passive"] for p in parts])
    q_sess = np.concatenate(
        [p["q_sess"] + session_base[i] for i, p in enumerate(parts)]
    )
    q_off = np.concatenate([p["q_off"] for p in parts])
    q_cls = np.concatenate([p["q_cls"] for p in parts])
    q_rank = np.concatenate([p["q_rank"] for p in parts])
    q_day = np.concatenate([p["q_day"] for p in parts])

    # Global start-time order (the event backend's yield order); the
    # stable sort keeps the shard/slot order deterministic across ties.
    order = np.argsort(start, kind="stable")
    inverse = np.empty(order.size, dtype=np.int64)
    inverse[order] = np.arange(order.size)
    region, start, duration, passive = (
        a[order] for a in (region, start, duration, passive)
    )
    new_sess = inverse[q_sess]
    q_order = np.argsort(new_sess, kind="stable")
    q_sess = new_sess[q_order]
    q_off, q_cls, q_rank, q_day = (a[q_order] for a in (q_off, q_cls, q_rank, q_day))

    return ColumnarWorkload(
        session_region=region.astype(np.int8),
        session_start=start,
        session_duration=duration,
        session_passive=passive,
        query_session=q_sess,
        query_offset=q_off,
        query_rank=q_rank,
        query_class=q_cls,
        query_keywords=_resolve_keywords(universe, q_cls, q_rank, q_day),
    ).validate()
